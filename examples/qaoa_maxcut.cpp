/**
 * @file
 * Domain example: solve a small MaxCut instance with QAOA, compiling
 * the ansatz with Geyser and reading the best cut from the (noisy)
 * output distribution — the variational workload the paper's intro
 * motivates.
 *
 *   $ ./examples/qaoa_maxcut
 */
#include <cstdio>
#include <vector>

#include "algos/algos.hpp"
#include "geyser/pipeline.hpp"

using namespace geyser;

namespace {

/** The fixed 5-vertex graph used by the qaoa-5 benchmark (seed 23). */
int
cutValue(size_t assignment, const std::vector<std::pair<int, int>> &edges)
{
    int cut = 0;
    for (const auto &[a, b] : edges) {
        const int sa = (assignment >> a) & 1;
        const int sb = (assignment >> b) & 1;
        if (sa != sb)
            ++cut;
    }
    return cut;
}

}  // namespace

int
main()
{
    // A 5-vertex ring plus one chord.
    const std::vector<std::pair<int, int>> edges{
        {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}};

    // Build a QAOA circuit by hand on this graph (p = 2 rounds with
    // hand-picked angles; a production loop would optimize them).
    Circuit qaoa(5);
    for (int q = 0; q < 5; ++q)
        qaoa.h(q);
    const double gammas[] = {0.6, 1.1};
    const double betas[] = {0.9, 0.4};
    for (int round = 0; round < 2; ++round) {
        for (const auto &[a, b] : edges)
            qaoa.rzz(a, b, 2.0 * gammas[round]);
        for (int q = 0; q < 5; ++q)
            qaoa.rx(q, 2.0 * betas[round]);
    }

    const CompileResult gey = compileGeyser(qaoa);
    std::printf("QAOA MaxCut on 5 vertices / %zu edges\n", edges.size());
    std::printf("Geyser circuit: %ld pulses (%d U3, %d CZ, %d CCZ)\n\n",
                gey.stats.totalPulses, gey.stats.u3Count, gey.stats.czCount,
                gey.stats.cczCount);

    // Sample the noisy machine and rank assignments by probability.
    TrajectoryConfig cfg;
    cfg.trajectories = 400;
    const Distribution phys =
        noisyDistribution(gey.physical, NoiseModel::paperDefault(), cfg);
    const Distribution dist = projectToLogical(
        phys, gey.finalLayout, 5, gey.physical.numQubits());

    // Expected cut value and the best assignment found.
    double expectedCut = 0.0;
    size_t best = 0;
    for (size_t s = 0; s < dist.size(); ++s) {
        expectedCut += dist[s] * cutValue(s, edges);
        if (dist[s] > dist[best])
            best = s;
    }
    int maxCut = 0;
    for (size_t s = 0; s < dist.size(); ++s)
        maxCut = std::max(maxCut, cutValue(s, edges));

    std::printf("expected cut from QAOA output: %.3f\n", expectedCut);
    std::printf("most likely assignment: 0b");
    for (int q = 4; q >= 0; --q)
        std::printf("%d", static_cast<int>((best >> q) & 1));
    std::printf(" with cut %d (optimum %d)\n", cutValue(best, edges),
                maxCut);
    return 0;
}
