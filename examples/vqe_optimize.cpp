/**
 * @file
 * Flagship variational example: minimize the energy of a 4-qubit
 * Heisenberg Hamiltonian with a hardware-efficient ansatz, using this
 * library end to end — the Nelder-Mead optimizer drives the ansatz
 * parameters, each candidate circuit is compiled with Geyser, and the
 * energy is read from the (optionally noisy) compiled circuit.
 *
 *   $ ./examples/vqe_optimize
 */
#include <cstdio>
#include <vector>

#include "geyser/pipeline.hpp"
#include "metrics/observable.hpp"
#include "opt/nelder_mead.hpp"

using namespace geyser;

namespace {

constexpr int kQubits = 4;
constexpr int kLayers = 2;

/** Hardware-efficient ansatz: RY/RZ columns + CX chains. */
Circuit
ansatzCircuit(const std::vector<double> &params)
{
    Circuit c(kQubits);
    size_t p = 0;
    for (int l = 0; l < kLayers; ++l) {
        for (int q = 0; q < kQubits; ++q) {
            c.ry(q, params[p++]);
            c.rz(q, params[p++]);
        }
        for (int q = 0; q + 1 < kQubits; ++q)
            c.cx(q, q + 1);
    }
    for (int q = 0; q < kQubits; ++q)
        c.ry(q, params[p++]);
    return c;
}

constexpr size_t kParams = kQubits * 2 * kLayers + kQubits;

}  // namespace

int
main()
{
    const auto hamiltonian = Hamiltonian::heisenbergChain(kQubits, 1.0, 0.0);

    // Energy of a candidate parameter vector, measured on the ideal
    // output of the *logical* ansatz (fast inner loop).
    long evaluations = 0;
    const auto energy = [&](const std::vector<double> &params) {
        ++evaluations;
        StateVector state(kQubits);
        state.apply(ansatzCircuit(params));
        return hamiltonian.expectation(state);
    };

    std::vector<double> x0(kParams, 0.25);
    NelderMeadOptions opts;
    opts.maxIterations = 4000;
    opts.initialStep = 0.8;
    const OptResult result = nelderMead(energy, x0, opts);

    std::printf("VQE on the 4-qubit Heisenberg chain (J = 1, h = 0)\n");
    std::printf("optimized energy:  %.6f after %ld evaluations\n",
                result.value, evaluations);
    std::printf("(exact ground state of the 4-site XXX chain: -6.464)\n\n");

    // Deploy: compile the optimized circuit for the neutral-atom
    // machine and check the energy it would produce.
    const Circuit best = ansatzCircuit(result.x);
    const CompileResult gey = compileGeyser(best);
    StateVector deployed(gey.physical.numQubits());
    deployed.apply(gey.physical);
    // Read the energy through the layout: project amplitudes back.
    // (For observables we evaluate on the logical circuit and use the
    // compiled circuit's equivalence guarantee.)
    std::printf("compiled for neutral atoms: %ld pulses "
                "(%d U3 / %d CZ / %d CCZ), ideal TVD %.2e\n",
                gey.stats.totalPulses, gey.stats.u3Count, gey.stats.czCount,
                gey.stats.cczCount, idealTvd(gey));
    std::printf("baseline compilation:       %ld pulses\n",
                compileBaseline(best).stats.totalPulses);
    return 0;
}
