/**
 * @file
 * Operations example (paper Sec 6): simulate atom loss across shots and
 * plan the optical-tweezer refills that restore a loss-free register
 * between shots — reporting how much tweezer time the loss rate costs
 * and verifying that computation fidelity is insensitive to *between-
 * shot* loss once refills happen.
 *
 *   $ ./examples/atom_loss_refill
 */
#include <cstdio>

#include "algos/algos.hpp"
#include "common/rng.hpp"
#include "geyser/pipeline.hpp"
#include "topology/rearrange.hpp"

using namespace geyser;

int
main()
{
    // A 3x3 computational register inside a 5x3 lattice: the bottom two
    // rows hold spare atoms for refills.
    const Topology lattice = Topology::makeTriangular(5, 3);
    constexpr int kRegister = 9;
    constexpr int kShots = 1000;

    std::printf("register: 9 atoms; spares: %d; shots: %d\n\n",
                lattice.numAtoms() - kRegister, kShots);
    std::printf("%-12s %14s %14s %14s\n", "loss rate", "lost atoms",
                "moves", "tweezer time");

    for (const double loss : {0.002, 0.01, 0.05}) {
        Rng rng(2026);
        long totalLost = 0, totalMoves = 0;
        double totalTime = 0.0;
        bool allComplete = true;
        for (int shot = 0; shot < kShots; ++shot) {
            std::vector<int> lost;
            for (int a = 0; a < kRegister; ++a)
                if (rng.bernoulli(loss))
                    lost.push_back(a);
            if (lost.empty())
                continue;
            const RearrangementPlan plan =
                planRefill(lattice, kRegister, lost);
            totalLost += static_cast<long>(lost.size());
            totalMoves += static_cast<long>(plan.moves.size());
            totalTime += plan.cycleTime;
            allComplete = allComplete && plan.complete;
        }
        std::printf("%-12.3f %14ld %14ld %14.1f%s\n", loss, totalLost,
                    totalMoves, totalTime,
                    allComplete ? "" : "  (ran out of spares!)");
    }

    std::printf("\nBetween-shot refills keep the register loss-free, so\n"
                "only *in-shot* loss touches fidelity. In-shot loss on the\n"
                "Geyser-compiled adder (in-circuit loss channel):\n");
    const auto gey = compileGeyser(adderBenchmark(1, true));
    TrajectoryConfig cfg;
    cfg.trajectories = 400;
    for (const double loss : {0.0, 0.002, 0.01}) {
        NoiseModel nm = NoiseModel::paperDefault();
        nm.atomLoss = loss;
        std::printf("  in-shot loss %.1f%%: TVD %.4f\n", loss * 100.0,
                    evaluateTvd(gey, nm, cfg));
    }
    return 0;
}
