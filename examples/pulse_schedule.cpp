/**
 * @file
 * Control-stack example: compile a small program with Geyser, draw the
 * compiled circuit, and lower it to the laser-pulse program a
 * neutral-atom controller would execute (paper Figs 2-3).
 *
 *   $ ./examples/pulse_schedule
 */
#include <cstdio>

#include "circuit/draw.hpp"
#include "geyser/pipeline.hpp"
#include "pulse/pulse.hpp"

using namespace geyser;

int
main()
{
    Circuit program(3);
    program.h(0);
    program.cx(0, 1);
    program.ccx(0, 1, 2);

    std::printf("logical program:\n%s\n",
                drawCircuit(program).c_str());

    const CompileResult gey = compileGeyser(program);
    std::printf("geyser-compiled (%ld pulses, %ld depth):\n%s\n",
                gey.stats.totalPulses, gey.stats.depthPulses,
                drawCircuit(gey.physical, 16).c_str());

    const Schedule sched =
        scheduleRestrictionAware(gey.physical, gey.topology);
    const PulseProgram pulses = lowerToPulses(gey.physical, sched);
    std::printf("pulse program (%zu pulses: %d Raman, %d pi, %d 2pi):\n%s",
                pulses.pulses.size(), pulses.countKind(PulseKind::Raman),
                pulses.countKind(PulseKind::RydbergPi),
                pulses.countKind(PulseKind::Rydberg2Pi),
                pulses.toString().c_str());
    return 0;
}
