/**
 * @file
 * Quickstart: build a small program, compile it with all three
 * techniques, and inspect the pulse counts and the composed circuit.
 *
 *   $ ./examples/quickstart
 */
#include <cstdio>

#include "geyser/pipeline.hpp"

using namespace geyser;

int
main()
{
    // 1. Write a logical program using standard gates. This one
    //    entangles three qubits and runs a Toffoli — the pattern Geyser
    //    recomposes into a native CCZ on neutral atoms.
    Circuit program(3);
    program.h(0);
    program.cx(0, 1);
    program.ccx(0, 1, 2);
    program.t(2);
    program.ccx(0, 1, 2);
    program.h(2);

    // 2. Compile with each technique.
    for (const Technique t :
         {Technique::Baseline, Technique::OptiMap, Technique::Geyser}) {
        const CompileResult result = compile(t, program);
        std::printf("%-10s: %4ld pulses, %4ld depth pulses, "
                    "%3d U3 / %2d CZ / %d CCZ gates\n",
                    techniqueName(result.technique),
                    result.stats.totalPulses, result.stats.depthPulses,
                    result.stats.u3Count, result.stats.czCount,
                    result.stats.cczCount);
    }

    // 3. Verify the Geyser circuit still computes the same function.
    const CompileResult geyser = compileGeyser(program);
    std::printf("\nGeyser vs original, ideal-output TVD: %.2e "
                "(paper requires < 1e-2)\n",
                idealTvd(geyser));

    // 4. Estimate output fidelity under the paper's 0.1%% noise model.
    const NoiseModel noise = NoiseModel::paperDefault();
    TrajectoryConfig cfg;
    cfg.trajectories = 500;
    std::printf("Noisy-output TVD to ideal: %.4f\n",
                evaluateTvd(geyser, noise, cfg));
    return 0;
}
