/**
 * @file
 * Domain example: Trotterized Heisenberg-chain dynamics (the paper's
 * material-simulation workload). Tracks the staggered magnetization of
 * a Neel state over time on the Geyser-compiled circuit and reports the
 * compilation savings at each evolution length.
 *
 *   $ ./examples/heisenberg_dynamics
 */
#include <cmath>
#include <cstdio>

#include "algos/algos.hpp"
#include "geyser/pipeline.hpp"
#include "metrics/observable.hpp"

using namespace geyser;

namespace {

/** Staggered magnetization sum_q (-1)^q <Z_q> / n from a distribution. */
double
staggeredMagnetization(const Distribution &dist, int n)
{
    double m = 0.0;
    for (size_t s = 0; s < dist.size(); ++s) {
        double contrib = 0.0;
        for (int q = 0; q < n; ++q) {
            const int z = (s >> q) & 1 ? -1 : 1;
            contrib += (q % 2 == 0 ? 1.0 : -1.0) * z;
        }
        m += dist[s] * contrib;
    }
    return m / n;
}

}  // namespace

int
main()
{
    constexpr int kQubits = 6;
    constexpr double kDt = 0.15;
    std::printf("Heisenberg chain on %d qubits, dt = %.2f\n\n", kQubits,
                kDt);
    std::printf("%6s %12s %12s %12s %12s %14s\n", "steps", "m_stag",
                "energy", "base", "geyser", "pulse saving");

    const auto hamiltonian =
        Hamiltonian::heisenbergChain(kQubits, 1.0, 0.5);
    for (const int steps : {1, 2, 4, 6}) {
        const Circuit evolution = heisenbergBenchmark(kQubits, steps, kDt);
        const auto base = compileBaseline(evolution);
        const auto gey = compileGeyser(evolution);
        StateVector state(kQubits);
        state.apply(evolution);
        const double m =
            staggeredMagnetization(state.probabilities(), kQubits);
        const double energy = hamiltonian.expectation(state);
        std::printf("%6d %12.4f %12.4f %12ld %12ld %13.1f%%\n", steps, m,
                    energy, base.stats.totalPulses, gey.stats.totalPulses,
                    100.0 * (1.0 - static_cast<double>(
                                       gey.stats.totalPulses) /
                                       base.stats.totalPulses));
    }
    std::printf("\nThe Neel state's staggered magnetization decays as the\n"
                "XXX chain evolves; Geyser compresses every Trotter step's\n"
                "RXX+RYY+RZZ bond terms into composed blocks.\n");
    return 0;
}
