/**
 * @file
 * Interop example: compile a benchmark with Geyser and export both the
 * logical input and the compiled neutral-atom circuit as OpenQASM 2.0
 * (the CCZ gates are emitted as H-conjugated Toffolis for portability).
 *
 *   $ ./examples/export_qasm [benchmark-name]
 */
#include <cstdio>
#include <string>

#include "algos/suite.hpp"
#include "geyser/pipeline.hpp"
#include "io/serialize.hpp"

using namespace geyser;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "multiplier-5";
    const auto &spec = benchmarkByName(name);
    const Circuit logical = spec.make();
    const CompileResult gey = compileGeyser(logical);

    std::printf("// ---- logical input: %s ----\n%s\n", name.c_str(),
                circuitToQasm(logical).c_str());
    std::printf("// ---- geyser-compiled (%ld pulses, %d CCZ) ----\n%s",
                gey.stats.totalPulses, gey.stats.cczCount,
                circuitToQasm(gey.physical).c_str());
    return 0;
}
