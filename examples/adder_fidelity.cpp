/**
 * @file
 * Domain example: compile a 4-qubit Cuccaro ripple-carry adder for a
 * neutral-atom machine and compare the output fidelity of all four
 * compilation strategies (including the superconducting square-grid
 * baseline) under increasing noise — a miniature of the paper's
 * Figs 15-18.
 *
 *   $ ./examples/adder_fidelity
 */
#include <cstdio>

#include "algos/algos.hpp"
#include "geyser/pipeline.hpp"

using namespace geyser;

int
main()
{
    const Circuit adder = adderBenchmark(1, true);
    std::printf("4-qubit Cuccaro adder (|a>|b> -> |a>|a+b>), "
                "%zu logical gates\n\n", adder.size());

    const auto base = compileBaseline(adder);
    const auto opti = compileOptiMap(adder);
    const auto gey = compileGeyser(adder);
    const auto sc = compileSuperconducting(adder);

    std::printf("%-16s %8s %8s\n", "technique", "pulses", "depth");
    for (const auto *r : {&base, &opti, &gey, &sc})
        std::printf("%-16s %8ld %8ld\n", techniqueName(r->technique),
                    r->stats.totalPulses, r->stats.depthPulses);

    std::printf("\nTVD to ideal output vs error rate "
                "(500 trajectories):\n");
    std::printf("%-10s %10s %10s %10s %10s\n", "rate", "Baseline",
                "OptiMap", "Geyser", "SC-square");
    TrajectoryConfig cfg;
    cfg.trajectories = 500;
    for (const double rate : {0.0005, 0.001, 0.005}) {
        const NoiseModel nm = NoiseModel::withRate(rate);
        std::printf("%-10.4f %10.4f %10.4f %10.4f %10.4f\n", rate,
                    evaluateTvd(base, nm, cfg), evaluateTvd(opti, nm, cfg),
                    evaluateTvd(gey, nm, cfg), evaluateTvd(sc, nm, cfg));
    }
    std::printf("\nGeyser's composed CCZs (%d in this circuit) carry the\n"
                "Toffoli logic in 5 pulses each instead of ~27.\n",
                gey.stats.cczCount);
    return 0;
}
