// A Toffoli chain over 4 qubits — exercises CCX lowering, routing on
// the triangular lattice, and Geyser's 3-qubit block composition.
// Try: geyserc --verify examples/toffoli_chain.qasm
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[0];
h q[1];
ccx q[0],q[1],q[2];
t q[2];
ccx q[1],q[2],q[3];
h q[3];
cz q[0],q[3];
