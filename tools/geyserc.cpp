/**
 * @file
 * geyserc — the command-line compiler driver: reads an OpenQASM 2.0
 * program, compiles it for a neutral-atom machine with the selected
 * technique, and writes the compiled circuit (QASM or native text) plus
 * a statistics summary.
 *
 * Usage:
 *   geyserc [options] <input.qasm>
 *   geyserc --benchmark <name>         (compile a built-in benchmark)
 *
 * Options:
 *   --technique baseline|optimap|geyser|superconducting   (default geyser)
 *   --output <file>        write the compiled circuit (default stdout)
 *   --format qasm|text     output format (default qasm)
 *   --evaluate             also report ideal-equivalence and noisy TVD
 *   --verify               differentially verify all four techniques and
 *                          the simulator engines; exits 1 on divergence
 *   --draw                 print the compiled circuit as ASCII art
 *   --pulses               print the lowered laser-pulse program
 *   --noise <rate>         error rate for --evaluate (default 0.001)
 *   --noise-channel <name>=<rate>
 *                          set one composable noise channel's rate for
 *                          --evaluate / --verify (repeatable; channels:
 *                          legacy-pauli, amp-damp, idle-dephasing,
 *                          atom-loss, correlated-pauli, readout). Applied
 *                          on top of the --noise base model; use
 *                          --noise 0 for a single-channel ablation
 *   --trajectories <n>     trajectories for --evaluate (default 200)
 *   --quiet                suppress the statistics summary
 *   --trace <file>         write a Chrome trace_event JSON of the run
 *                          (open in chrome://tracing or ui.perfetto.dev)
 *   --metrics <file>       write the JSONL span/metric log of the run
 *   --prom <file>          write a Prometheus text-format dump of the
 *                          run's counters/gauges/histograms ('-' for
 *                          stdout) — same exposition geyserd serves
 *                          live via the `metrics` wire verb
 *   --cache-dir <dir>      serve/store compiles through the persistent
 *                          result cache rooted at <dir> (crash-safe,
 *                          checksummed; corrupt entries recompute).
 *                          Defaults to $GEYSER_CACHE_DIR when that is set.
 *   --no-cache             compile uncached even if GEYSER_CACHE_DIR is set
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "algos/suite.hpp"
#include "cache/result_cache.hpp"
#include "circuit/draw.hpp"
#include "common/error.hpp"
#include "geyser/pipeline.hpp"
#include "io/qasm_parser.hpp"
#include "io/serialize.hpp"
#include "obs/obs.hpp"
#include "obs/prometheus.hpp"
#include "pulse/pulse.hpp"
#include "verify/differential.hpp"
#include "verify/equivalence.hpp"

using namespace geyser;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [options] <input.qasm>\n"
                 "       %s --benchmark <name> [options]\n"
                 "options:\n"
                 "  --technique baseline|optimap|geyser|superconducting\n"
                 "  --output <file>   --format qasm|text\n"
                 "  --evaluate        --noise <rate>  --trajectories <n>\n"
                 "  --noise-channel <name>=<rate>   (repeatable)\n"
                 "  --verify          --quiet\n"
                 "  --trace <file>    --metrics <file>  --prom <file>\n"
                 "  --cache-dir <dir> --no-cache\n",
                 argv0, argv0);
    std::exit(2);
}

/**
 * Compile with every technique under the pipeline's built-in stage
 * verification, re-check each final result, and cross-check the
 * simulator engines on the logical program. Returns 0 if all PASS.
 */
int
runVerify(const Circuit &logical, const NoiseModel &noise)
{
    PipelineOptions options;
    options.verifyEquivalence = true;
    bool allPass = true;
    for (const Technique technique :
         {Technique::Baseline, Technique::OptiMap, Technique::Geyser,
          Technique::Superconducting}) {
        try {
            const CompileResult result = compile(technique, logical, options);
            const auto report = verify::checkCompileResult(result);
            allPass = allPass && report.equivalent;
            std::fprintf(stderr, "verify %-16s %s  [%s %s]\n",
                         techniqueName(technique),
                         report.equivalent ? "PASS" : "FAIL",
                         report.method.c_str(), report.detail.c_str());
        } catch (const verify::VerificationError &e) {
            allPass = false;
            std::fprintf(stderr, "verify %-16s FAIL  [%s]\n",
                         techniqueName(technique), e.what());
        }
    }
    const auto diff = verify::runDifferential(logical, noise);
    allPass = allPass && diff.passed;
    std::fprintf(stderr, "verify %-16s %s  [%s]\n", "simulators",
                 diff.passed ? "PASS" : "FAIL", diff.detail.c_str());
    std::fprintf(stderr, "%s\n", allPass ? "PASS: all techniques equivalent"
                                         : "FAIL: divergence detected");
    return allPass ? 0 : 1;
}

Technique
parseTechnique(const std::string &name)
{
    if (name == "baseline")
        return Technique::Baseline;
    if (name == "optimap")
        return Technique::OptiMap;
    if (name == "geyser")
        return Technique::Geyser;
    if (name == "superconducting")
        return Technique::Superconducting;
    throw ParseError("unknown technique: " + name);
}

/** Strict numeric option parsing: no raw std::stod/stoi escapes. */
double
parseDoubleArg(const char *flag, const std::string &text)
{
    size_t consumed = 0;
    double v = 0.0;
    try {
        v = std::stod(text, &consumed);
    } catch (const std::exception &) {
        consumed = std::string::npos;
    }
    if (consumed != text.size() || text.empty())
        throw ParseError(std::string(flag) + ": bad number '" + text + "'");
    return v;
}

int
parseIntArg(const char *flag, const std::string &text)
{
    size_t consumed = 0;
    long v = 0;
    try {
        v = std::stol(text, &consumed);
    } catch (const std::exception &) {
        consumed = std::string::npos;
    }
    if (consumed != text.size() || text.empty() || v < 0 ||
        v > std::numeric_limits<int>::max())
        throw ParseError(std::string(flag) + ": bad count '" + text + "'");
    return static_cast<int>(v);
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string input, benchmark, output, format = "qasm";
    std::string tracePath, metricsPath, promPath, cacheDir;
    Technique technique = Technique::Geyser;
    bool evaluate = false, quiet = false, draw = false, pulses = false;
    bool verifyMode = false, noCache = false;
    double noiseRate = 0.001;
    int trajectories = 200;
    std::vector<std::pair<std::string, double>> channelRates;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (++i >= argc)
                    usage(argv[0]);
                return argv[i];
            };
            if (arg == "--technique")
                technique = parseTechnique(next());
            else if (arg == "--benchmark")
                benchmark = next();
            else if (arg == "--output")
                output = next();
            else if (arg == "--format")
                format = next();
            else if (arg == "--evaluate")
                evaluate = true;
            else if (arg == "--verify")
                verifyMode = true;
            else if (arg == "--draw")
                draw = true;
            else if (arg == "--pulses")
                pulses = true;
            else if (arg == "--noise")
                noiseRate = parseDoubleArg("--noise", next());
            else if (arg == "--noise-channel") {
                const std::string spec = next();
                const size_t eq = spec.find('=');
                if (eq == std::string::npos)
                    throw ParseError(
                        "--noise-channel: expected <name>=<rate>, got '" +
                        spec + "'");
                channelRates.emplace_back(
                    spec.substr(0, eq),
                    parseDoubleArg("--noise-channel", spec.substr(eq + 1)));
            }
            else if (arg == "--trajectories")
                trajectories = parseIntArg("--trajectories", next());
            else if (arg == "--quiet")
                quiet = true;
            else if (arg == "--trace")
                tracePath = next();
            else if (arg == "--metrics")
                metricsPath = next();
            else if (arg == "--prom")
                promPath = next();
            else if (arg == "--cache-dir")
                cacheDir = next();
            else if (arg == "--no-cache")
                noCache = true;
            else if (arg == "--help" || arg == "-h")
                usage(argv[0]);
            else if (!arg.empty() && arg[0] == '-')
                usage(argv[0]);
            else
                input = arg;
        }
        if (format != "qasm" && format != "text")
            usage(argv[0]);
        if (input.empty() == benchmark.empty())
            usage(argv[0]);  // Exactly one source.

        Circuit logical;
        if (!benchmark.empty()) {
            logical = benchmarkByName(benchmark).make();
        } else {
            std::ifstream in(input);
            if (!in) {
                std::fprintf(stderr, "geyserc: cannot open %s\n",
                             input.c_str());
                return 1;
            }
            std::ostringstream text;
            text << in.rdbuf();
            logical = circuitFromQasm(text.str());
        }

        const bool tracing = !tracePath.empty() || !metricsPath.empty() ||
                             !promPath.empty();
        if (tracing) {
            obs::setEnabled(true);
            obs::setThreadName("main");
        }
        auto writeObs = [&] {
            if (!tracePath.empty()) {
                obs::writeChromeTrace(tracePath);
                if (!quiet)
                    std::fprintf(stderr,
                                 "trace written to %s (open in "
                                 "chrome://tracing or ui.perfetto.dev)\n",
                                 tracePath.c_str());
            }
            if (!metricsPath.empty())
                obs::writeMetricsJsonl(metricsPath);
            if (!promPath.empty()) {
                const std::string text = obs::prometheusText();
                if (promPath == "-") {
                    std::fwrite(text.data(), 1, text.size(), stdout);
                } else {
                    std::ofstream out(promPath);
                    out << text;
                }
            }
        };

        // The evaluation/verification noise model: the paper's coupled
        // bit/phase-flip rate, with any --noise-channel overrides
        // composed on top (names are validated here, rates by
        // setChannelRate).
        NoiseModel noiseModel = NoiseModel::withRate(noiseRate);
        for (const auto &channel : channelRates)
            noiseModel.setChannelRate(noiseChannelFromName(channel.first),
                                      channel.second);

        if (verifyMode) {
            const int rc = runVerify(logical, noiseModel);
            writeObs();
            return rc;
        }

        // Persistent result cache: --cache-dir wins, else GEYSER_CACHE_DIR
        // from the environment; --no-cache (or GEYSER_NO_CACHE=1) compiles
        // uncached. Library/CLI users get the same crash-safe cache the
        // bench binaries use.
        cache::CacheConfig cacheConfig = cache::CacheConfig::fromEnv();
        if (!cacheDir.empty())
            cacheConfig.dir = cacheDir;
        else if (std::getenv("GEYSER_CACHE_DIR") == nullptr)
            cacheConfig.enabled = false;  // No cache unless asked for one.
        if (noCache)
            cacheConfig.enabled = false;
        cache::ResultCache resultCache(cacheConfig);

        PipelineOptions options;
        if (resultCache.enabled())
            options.cache = &resultCache;
        const CompileResult result = compile(technique, logical, options);

        const std::string compiled = format == "qasm"
                                         ? circuitToQasm(result.physical)
                                         : circuitToText(result.physical);
        if (output.empty()) {
            std::fputs(compiled.c_str(), stdout);
        } else {
            std::ofstream out(output);
            if (!out) {
                std::fprintf(stderr, "geyserc: cannot write %s\n",
                             output.c_str());
                return 1;
            }
            out << compiled;
        }

        if (!quiet) {
            std::fprintf(stderr,
                         "technique:     %s\n"
                         "topology:      %s\n"
                         "gates:         %d u3, %d cz, %d ccz\n"
                         "total pulses:  %ld\n"
                         "depth pulses:  %ld\n"
                         "swaps:         %d\n",
                         techniqueName(result.technique),
                         result.topology.name().c_str(), result.stats.u3Count,
                         result.stats.czCount, result.stats.cczCount,
                         result.stats.totalPulses, result.stats.depthPulses,
                         result.swapsInserted);
            if (technique == Technique::Geyser)
                std::fprintf(stderr, "blocks:        %d (%d composed)\n",
                             result.blockCount, result.composedBlockCount);
            std::fprintf(stderr,
                         "wall ms:       %.1f total (%.1f transpile, "
                         "%.1f blocking, %.1f compose)\n",
                         result.totalMs, result.transpileMs,
                         result.blockingMs, result.composeMs);
        }
        if (draw)
            std::fprintf(stderr, "%s", drawCircuit(result.physical,
                                                   40).c_str());
        if (pulses) {
            const Schedule sched = scheduleRestrictionAware(
                result.physical, result.topology);
            std::fprintf(stderr, "%s",
                         lowerToPulses(result.physical, sched)
                             .toString().c_str());
        }
        if (evaluate) {
            TrajectoryConfig cfg;
            cfg.trajectories = trajectories;
            std::fprintf(stderr, "ideal TVD:     %.3e\n", idealTvd(result));
            std::fprintf(stderr, "noisy TVD:     %.4f (rate %.4g%s)\n",
                         evaluateTvd(result, noiseModel, cfg), noiseRate,
                         channelRates.empty() ? ""
                                              : ", +channel overrides");
        }
        writeObs();
        return 0;
    } catch (const std::exception &e) {
        // Shared with geyserd: taxonomy errors render kind-labelled
        // ("geyserc: parse error: qasm:17: ...") with exit 3 reserved
        // for internal bugs, and the two tools cannot drift apart.
        return renderCliError("geyserc", e);
    }
}
