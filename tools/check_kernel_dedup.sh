#!/usr/bin/env bash
# Lint: split-complex multiply-accumulate loops live in
# src/linalg/kernels and nowhere else.
#
# The compose evaluator, the dense ansatz oracle, and the statevector
# simulator used to each carry a hand-rolled copy of the same complex
# MAC inner loop; they now all route through the ComputeBackend kernel
# layer so the scalar/AVX2/AVX-512 implementations stay the single
# source of truth. This script fails CI if a split-complex product
# (`...Re[i] * ...Im[j]` and friends) is reintroduced outside the
# kernel directory.
#
# Usage: tools/check_kernel_dedup.sh   (from anywhere; exits non-zero
# on a violation and prints the offending lines)
set -euo pipefail
cd "$(dirname "$0")/.."

# A split-complex MAC term: an re/im-suffixed indexed load multiplied
# by another re/im-suffixed indexed load, e.g. `aRe[k] * bIm[j]`,
# `mre[r * d + k] * u3Im_[q][1]`.
pattern='[A-Za-z_]*[Rr]e_?\[[^]]+\]\s*\*\s*[A-Za-z_]*([Rr]e|[Ii]m)_?\[|[A-Za-z_]*[Ii]m_?\[[^]]+\]\s*\*\s*[A-Za-z_]*([Rr]e|[Ii]m)_?\['

# Positive control: the kernel layer itself must match, or the pattern
# has rotted and the lint is vacuous.
if ! grep -rEq "$pattern" src/linalg/kernels --include='*.cpp' \
    --include='*.hpp'; then
  echo "check_kernel_dedup: pattern no longer matches the kernel" >&2
  echo "layer itself; the lint regex needs updating" >&2
  exit 2
fi

matches=$(grep -rEn "$pattern" src/compose src/sim src/linalg \
  --include='*.cpp' --include='*.hpp' \
  | grep -v '^src/linalg/kernels/' || true)

if [ -n "$matches" ]; then
  echo "Hand-rolled split-complex MAC outside src/linalg/kernels:" >&2
  echo "$matches" >&2
  echo >&2
  echo "Route the loop through kernels::active() (or" >&2
  echo "kernels::reference() for oracle paths) instead." >&2
  exit 1
fi
echo "OK: no hand-rolled split-complex MAC loops outside" \
  "src/linalg/kernels"
