/**
 * @file
 * geyserd — the long-running compile daemon: accepts line-framed
 * protocol requests (see src/service/protocol.hpp) over loopback TCP or
 * a Unix-domain socket, compiles submitted OpenQASM programs on a
 * worker pool with priorities, deadlines, and cooperative cancellation,
 * and serves results back — deduplicating identical jobs through the
 * persistent result cache's single-flight path when one is attached.
 *
 * Usage:
 *   geyserd [options]
 *
 * Options:
 *   --port <n>         listen on loopback TCP port n (default 0 picks
 *                      an ephemeral port; the bound port is printed)
 *   --socket <path>    listen on a Unix-domain socket instead of TCP
 *   --workers <n>      compile worker threads (default: hardware)
 *   --max-queued <n>   backpressure cap on pending jobs (default 4096)
 *   --deadline-ms <n>  default per-job deadline when a submit carries
 *                      none (default 0 = unlimited)
 *   --cache-dir <dir>  persistent result cache rooted at <dir>
 *                      (defaults to $GEYSER_CACHE_DIR when set)
 *   --no-cache         compile uncached even if GEYSER_CACHE_DIR is set
 *   --access-log <f>   append one JSONL line per finished job (id,
 *                      peer, outcome, queue/compile micros, cache hit)
 *   --trace <file>     write a Chrome trace_event JSON on exit
 *   --metrics <file>   write the JSONL span/metric log on exit
 *   --report <file>    write a structured run report on exit (the CI
 *                      smoke asserts its counters: zero cache.corrupt,
 *                      zero pool exceptions)
 *
 * Shutdown: SIGINT, SIGTERM, or a protocol `shutdown` request all wake
 * the main thread through a self-pipe (the only async-signal-safe
 * option), which then stops the socket front end and aborts in-flight
 * jobs via their cancel tokens.
 */
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include <unistd.h>

#include "cache/result_cache.hpp"
#include "common/error.hpp"
#include "linalg/kernels/backend.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "service/access_log.hpp"
#include "service/server.hpp"
#include "service/service.hpp"

using namespace geyser;
using namespace geyser::service;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [options]\n"
                 "options:\n"
                 "  --port <n>        --socket <path>\n"
                 "  --workers <n>     --max-queued <n>  --deadline-ms <n>\n"
                 "  --cache-dir <dir> --no-cache       --access-log <file>\n"
                 "  --trace <file>    --metrics <file>  --report <file>\n",
                 argv0);
    std::exit(2);
}

long
parseLongArg(const char *flag, const std::string &text, long lo, long hi)
{
    size_t consumed = 0;
    long v = 0;
    try {
        v = std::stol(text, &consumed);
    } catch (const std::exception &) {
        consumed = std::string::npos;
    }
    if (consumed != text.size() || text.empty() || v < lo || v > hi)
        throw ParseError(std::string(flag) + ": bad number '" + text + "'");
    return v;
}

// Self-pipe: the one mechanism that is both async-signal-safe (the
// handler) and thread-safe (the protocol shutdown callback).
int gWakePipe[2] = {-1, -1};

void
requestShutdown(int)
{
    const char byte = 'x';
    // The result is irrelevant: a full pipe means a wake-up is already
    // pending. (void)! silences -Wunused-result without a cast warning.
    const ssize_t rc = ::write(gWakePipe[1], &byte, 1);
    (void)rc;
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string socketPath, cacheDir, accessLogPath;
    std::string tracePath, metricsPath, reportPath;
    int port = 0;
    int workers = -1;
    long maxQueued = 4096, deadlineMs = 0;
    bool noCache = false;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (++i >= argc)
                    usage(argv[0]);
                return argv[i];
            };
            if (arg == "--port")
                port = static_cast<int>(
                    parseLongArg("--port", next(), 0, 65535));
            else if (arg == "--socket")
                socketPath = next();
            else if (arg == "--workers")
                workers = static_cast<int>(
                    parseLongArg("--workers", next(), 1, 1024));
            else if (arg == "--max-queued")
                maxQueued = parseLongArg("--max-queued", next(), 1, 1 << 20);
            else if (arg == "--deadline-ms")
                deadlineMs = parseLongArg("--deadline-ms", next(), 0,
                                          1000L * 1000 * 1000);
            else if (arg == "--cache-dir")
                cacheDir = next();
            else if (arg == "--no-cache")
                noCache = true;
            else if (arg == "--access-log")
                accessLogPath = next();
            else if (arg == "--trace")
                tracePath = next();
            else if (arg == "--metrics")
                metricsPath = next();
            else if (arg == "--report")
                reportPath = next();
            else if (arg == "--help" || arg == "-h")
                usage(argv[0]);
            else
                usage(argv[0]);
        }

        const bool observing = !tracePath.empty() || !metricsPath.empty() ||
                               !reportPath.empty();
        if (observing) {
            obs::setEnabled(true);
            obs::setThreadName("main");
        }

        cache::CacheConfig cacheConfig = cache::CacheConfig::fromEnv();
        if (!cacheDir.empty())
            cacheConfig.dir = cacheDir;
        else if (std::getenv("GEYSER_CACHE_DIR") == nullptr)
            cacheConfig.enabled = false;
        if (noCache)
            cacheConfig.enabled = false;
        cache::ResultCache resultCache(cacheConfig);

        std::unique_ptr<AccessLog> accessLog;
        if (!accessLogPath.empty())
            accessLog = std::make_unique<AccessLog>(accessLogPath);

        ServiceConfig serviceConfig;
        serviceConfig.workers = workers;
        serviceConfig.maxQueuedJobs = static_cast<int>(maxQueued);
        serviceConfig.defaultDeadlineMs = deadlineMs;
        serviceConfig.accessLog = accessLog.get();
        if (resultCache.enabled())
            serviceConfig.cache = &resultCache;
        CompileService compileService(serviceConfig);

        if (::pipe(gWakePipe) != 0) {
            std::fprintf(stderr, "geyserd: pipe failed: %s\n",
                         std::strerror(errno));
            return 1;
        }
        std::signal(SIGINT, requestShutdown);
        std::signal(SIGTERM, requestShutdown);
        std::signal(SIGPIPE, SIG_IGN);

        ServerConfig serverConfig;
        serverConfig.unixPath = socketPath;
        serverConfig.tcpPort = port;
        serverConfig.onShutdownRequest = [] { requestShutdown(0); };
        SocketServer server(compileService, serverConfig);
        server.start();

        if (socketPath.empty())
            std::printf(
                "geyserd: listening on 127.0.0.1:%d (workers=%d, "
                "backend=%s)\n",
                server.port(), compileService.workerCount(),
                kernels::activeName());
        else
            std::printf(
                "geyserd: listening on %s (workers=%d, backend=%s)\n",
                socketPath.c_str(), compileService.workerCount(),
                kernels::activeName());
        std::fflush(stdout);

        // Block until a signal or a protocol shutdown pokes the pipe.
        char byte = 0;
        while (::read(gWakePipe[0], &byte, 1) < 0 && errno == EINTR) {
        }

        std::fprintf(stderr, "geyserd: shutting down\n");
        server.stop();
        compileService.shutdown(/*drain=*/false);

        const ServiceStats stats = compileService.stats();
        const PoolStats pool = compileService.poolStats();
        std::fprintf(stderr,
                     "geyserd: served %ld jobs (%ld done, %ld failed, "
                     "%ld cancelled, %ld expired, %ld rejected, "
                     "%ld cache hits)\n",
                     stats.submitted, stats.done, stats.failed,
                     stats.cancelled, stats.expired, stats.rejected,
                     stats.cacheHits);

        if (!reportPath.empty()) {
            obs::RunReport report("geyserd");
            report.setConfig("workers", compileService.workerCount());
            report.setConfig("cache_enabled", resultCache.enabled());
            report.setConfig("submitted", stats.submitted);
            report.setConfig("done", stats.done);
            report.setConfig("failed", stats.failed);
            report.setConfig("cancelled", stats.cancelled);
            report.setConfig("expired", stats.expired);
            report.setConfig("rejected", stats.rejected);
            report.setConfig("cache_hits", stats.cacheHits);
            report.setConfig("pool_exceptions",
                             static_cast<long>(pool.exceptions));
            report.write(reportPath);
        }
        if (!tracePath.empty())
            obs::writeChromeTrace(tracePath);
        if (!metricsPath.empty())
            obs::writeMetricsJsonl(metricsPath);
        return 0;
    } catch (const std::exception &e) {
        return renderCliError("geyserd", e);
    }
}
