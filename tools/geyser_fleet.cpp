/**
 * @file
 * geyser-fleet — batch compilation front end: compiles a fleet of
 * circuits (QASM files and/or generated parameter sweeps) across one or
 * more techniques on one standard footing, exploiting skeleton /
 * parameter structure sharing, and emits the aggregate fair-comparison
 * report as a rendered table and/or JSON.
 *
 * Usage:
 *   geyser-fleet [options] [member.qasm ...]
 *   geyser-fleet --sweep vqe:<qubits>x<layers>:<members> [options]
 *
 * Options:
 *   --sweep vqe:<q>x<l>:<n>  append n VQE members (seeds 0..n-1): same
 *                            circuit skeleton, per-seed random angles —
 *                            the canonical structure-sharing workload
 *                            (repeatable)
 *   --techniques <a,b,...>   comma-separated technique list; each member
 *                            is compiled once per technique (default
 *                            geyser)
 *   --verify <n>             re-bound members per skeleton group checked
 *                            against a from-scratch compile (default 1;
 *                            0 disables)
 *   --tvd <n>                members per technique to simulate for the
 *                            noisy-TVD report column (default 0 = skip)
 *   --noise <rate>           noise rate for --tvd (default 0.001)
 *   --trajectories <n>       trajectories for --tvd (default honours
 *                            GEYSER_TRAJECTORIES, else 200)
 *   --json <file>            write the aggregate report JSON ('-' for
 *                            stdout)
 *   --serial                 compile members sequentially (defaults to
 *                            the global thread pool)
 *   --quiet                  suppress the rendered table
 *   --cache-dir <dir>        persistent result cache root (skeleton
 *                            plans, composed blocks, and exact entries
 *                            all persist there). Defaults to
 *                            $GEYSER_CACHE_DIR when set.
 *   --no-cache               compile uncached even if GEYSER_CACHE_DIR
 *                            is set
 */
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "algos/algos.hpp"
#include "cache/result_cache.hpp"
#include "common/error.hpp"
#include "fleet/fleet.hpp"
#include "io/qasm_parser.hpp"

using namespace geyser;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [options] [member.qasm ...]\n"
                 "       %s --sweep vqe:<q>x<l>:<n> [options]\n"
                 "options:\n"
                 "  --sweep vqe:<q>x<l>:<n>   (repeatable)\n"
                 "  --techniques <a,b,...>    --verify <n>\n"
                 "  --tvd <n>  --noise <rate>  --trajectories <n>\n"
                 "  --json <file|->  --serial  --quiet\n"
                 "  --cache-dir <dir>  --no-cache\n",
                 argv0, argv0);
    std::exit(2);
}

Technique
parseTechnique(const std::string &name)
{
    if (name == "baseline")
        return Technique::Baseline;
    if (name == "optimap")
        return Technique::OptiMap;
    if (name == "geyser")
        return Technique::Geyser;
    if (name == "superconducting")
        return Technique::Superconducting;
    throw ParseError("unknown technique: " + name);
}

int
parseIntArg(const char *flag, const std::string &text)
{
    size_t consumed = 0;
    long v = 0;
    try {
        v = std::stol(text, &consumed);
    } catch (const std::exception &) {
        consumed = std::string::npos;
    }
    if (consumed != text.size() || text.empty() || v < 0 ||
        v > std::numeric_limits<int>::max())
        throw ParseError(std::string(flag) + ": bad count '" + text + "'");
    return static_cast<int>(v);
}

double
parseDoubleArg(const char *flag, const std::string &text)
{
    size_t consumed = 0;
    double v = 0.0;
    try {
        v = std::stod(text, &consumed);
    } catch (const std::exception &) {
        consumed = std::string::npos;
    }
    if (consumed != text.size() || text.empty())
        throw ParseError(std::string(flag) + ": bad number '" + text + "'");
    return v;
}

/** "vqe:<q>x<l>:<n>" → n fleet members named vqe<q>x<l>-s<seed>. */
void
appendSweep(const std::string &spec, std::vector<fleet::FleetJob> &jobs)
{
    const size_t colon1 = spec.find(':');
    const size_t colon2 =
        colon1 == std::string::npos ? colon1 : spec.find(':', colon1 + 1);
    if (colon1 == std::string::npos || colon2 == std::string::npos)
        throw ParseError("--sweep: expected vqe:<q>x<l>:<n>, got '" +
                         spec + "'");
    const std::string kind = spec.substr(0, colon1);
    const std::string shape = spec.substr(colon1 + 1, colon2 - colon1 - 1);
    const int members = parseIntArg("--sweep", spec.substr(colon2 + 1));
    if (kind != "vqe")
        throw ParseError("--sweep: unknown generator '" + kind +
                         "' (only vqe)");
    const size_t x = shape.find('x');
    if (x == std::string::npos)
        throw ParseError("--sweep: expected <q>x<l>, got '" + shape + "'");
    const int qubits = parseIntArg("--sweep", shape.substr(0, x));
    const int layers = parseIntArg("--sweep", shape.substr(x + 1));
    for (int seed = 0; seed < members; ++seed) {
        fleet::FleetJob job;
        job.name = "vqe" + shape + "-s" + std::to_string(seed);
        job.logical =
            vqeBenchmark(qubits, layers, static_cast<uint64_t>(seed));
        jobs.push_back(std::move(job));
    }
}

}  // namespace

int
main(int argc, char **argv)
{
    try {
        std::vector<fleet::FleetJob> jobs;
        std::string jsonPath, cacheDir;
        fleet::FleetOptions options;
        options.techniques.clear();
        bool quiet = false, noCache = false;

        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (++i >= argc)
                    usage(argv[0]);
                return argv[i];
            };
            if (arg == "--sweep")
                appendSweep(next(), jobs);
            else if (arg == "--techniques") {
                std::istringstream list(next());
                std::string token;
                while (std::getline(list, token, ','))
                    if (!token.empty())
                        options.techniques.push_back(
                            parseTechnique(token));
            }
            else if (arg == "--verify")
                options.verifySample = parseIntArg("--verify", next());
            else if (arg == "--tvd")
                options.tvdSample = parseIntArg("--tvd", next());
            else if (arg == "--noise")
                options.noise = NoiseModel::withRate(
                    parseDoubleArg("--noise", next()));
            else if (arg == "--trajectories")
                options.trajectories.trajectories =
                    parseIntArg("--trajectories", next());
            else if (arg == "--json")
                jsonPath = next();
            else if (arg == "--serial")
                options.parallel = false;
            else if (arg == "--quiet")
                quiet = true;
            else if (arg == "--cache-dir")
                cacheDir = next();
            else if (arg == "--no-cache")
                noCache = true;
            else if (arg == "--help" || arg == "-h")
                usage(argv[0]);
            else if (!arg.empty() && arg[0] == '-')
                usage(argv[0]);
            else {
                std::ifstream in(arg);
                if (!in) {
                    std::fprintf(stderr, "geyser-fleet: cannot open %s\n",
                                 arg.c_str());
                    return 1;
                }
                std::ostringstream text;
                text << in.rdbuf();
                fleet::FleetJob job;
                job.name = arg;
                job.logical = circuitFromQasm(text.str());
                jobs.push_back(std::move(job));
            }
        }
        if (jobs.empty())
            usage(argv[0]);
        if (options.techniques.empty())
            options.techniques.push_back(Technique::Geyser);

        cache::CacheConfig cacheConfig = cache::CacheConfig::fromEnv();
        if (!cacheDir.empty())
            cacheConfig.dir = cacheDir;
        else if (std::getenv("GEYSER_CACHE_DIR") == nullptr)
            cacheConfig.enabled = false;
        if (noCache)
            cacheConfig.enabled = false;
        cache::ResultCache resultCache(cacheConfig);
        if (resultCache.enabled())
            options.pipeline.cache = &resultCache;

        const fleet::FleetReport report = fleet::compileFleet(jobs, options);

        if (!quiet)
            std::fputs(report.renderTable().c_str(), stdout);
        if (!jsonPath.empty()) {
            const std::string json = report.toJson();
            if (jsonPath == "-") {
                std::fwrite(json.data(), 1, json.size(), stdout);
            } else {
                std::ofstream out(jsonPath);
                if (!out) {
                    std::fprintf(stderr, "geyser-fleet: cannot write %s\n",
                                 jsonPath.c_str());
                    return 1;
                }
                out << json;
            }
        }
        return report.verifyFailures == 0 ? 0 : 1;
    } catch (const std::exception &e) {
        return renderCliError("geyser-fleet", e);
    }
}
