#!/usr/bin/env python3
"""Wire-protocol client for geyserd (protocol v1). Stdlib only.

Frames are a single header line plus an optional length-prefixed
payload, both newline-terminated:

    geyser/1 <verb> key=value ... [payload=<N>]\n
    <N raw payload bytes>\n

Subcommands mirror the protocol verbs (ping, submit, status, result,
cancel, stats, shutdown, metrics, trace) plus two drivers:

`smoke`, the CI driver: it submits every given QASM file `--repeat`
times (duplicates exercise the cache / single-flight path), waits for
all results, and fails loudly unless every job lands in `done` with a
QASM payload and the duplicates were served as cache hits.

`watch`, a terminal dashboard: it scrapes the `metrics` verb every
`--interval` seconds and renders the headline service series (queue
depth, in-flight, job outcomes, latency percentiles) until ^C.

Examples:
    geyser_client.py --port 7421 ping
    geyser_client.py --port 7421 submit examples/bell.qasm
    geyser_client.py --port 7421 smoke examples/*.qasm --repeat 2
    geyser_client.py --port 7421 metrics          # one Prometheus scrape
    geyser_client.py --port 7421 trace 3 > job3.json   # open in Perfetto
    geyser_client.py --port 7421 watch --interval 1
"""

import argparse
import socket
import sys
import time

MAGIC = b"geyser/1"
MAX_HEADER = 64 * 1024


class ProtocolError(Exception):
    pass


class Response:
    def __init__(self, ok, fields, payload):
        self.ok = ok
        self.fields = fields  # dict, first occurrence wins
        self.payload = payload  # bytes or None

    def __repr__(self):
        return "Response(ok=%r, fields=%r, payload=%s)" % (
            self.ok, self.fields,
            "None" if self.payload is None else "%d bytes" % len(self.payload))


class GeyserClient:
    """One protocol connection; requests are strictly sequential."""

    def __init__(self, host=None, port=None, unix_path=None):
        if unix_path:
            self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self.sock.connect(unix_path)
        else:
            self.sock = socket.create_connection((host or "127.0.0.1", port))
        self._buffer = b""

    def close(self):
        self.sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # -- framing ----------------------------------------------------

    def _read_line(self):
        while b"\n" not in self._buffer:
            if len(self._buffer) > MAX_HEADER:
                raise ProtocolError("oversize header line")
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ProtocolError("connection closed mid-frame")
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line

    def _read_exact(self, n):
        while len(self._buffer) < n:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ProtocolError("connection closed mid-payload")
            self._buffer += chunk
        data, self._buffer = self._buffer[:n], self._buffer[n:]
        return data

    def _round_trip(self, header_tokens, payload=None):
        header = b" ".join([MAGIC] + [t.encode() for t in header_tokens])
        frame = header
        if payload is not None:
            frame += b" payload=%d\n" % len(payload) + payload
        frame += b"\n"
        self.sock.sendall(frame)
        return self._read_response()

    def _read_response(self):
        tokens = self._read_line().split(b" ")
        if len(tokens) < 2 or tokens[0] != MAGIC:
            raise ProtocolError("bad response header: %r" % tokens)
        ok = tokens[1] == b"ok"
        if not ok and tokens[1] != b"err":
            raise ProtocolError("expected ok/err, got %r" % tokens[1])
        fields = {}
        payload = None
        for i, token in enumerate(tokens[2:], start=2):
            key, eq, value = token.partition(b"=")
            if not eq:
                raise ProtocolError("bad field token %r" % token)
            if key == b"payload":
                if i != len(tokens) - 1:
                    raise ProtocolError("payload= must be the last field")
                payload = self._read_exact(int(value) + 1)
                if payload[-1:] != b"\n":
                    raise ProtocolError("missing payload terminator")
                payload = payload[:-1]
            else:
                fields.setdefault(key.decode(), value.decode())
        return Response(ok, fields, payload)

    # -- verbs ------------------------------------------------------

    def ping(self):
        return self._round_trip(["ping"])

    def stats(self):
        return self._round_trip(["stats"])

    def shutdown(self):
        return self._round_trip(["shutdown"])

    def submit(self, qasm, technique="geyser", fmt="qasm", priority=0,
               deadline_ms=0, cache=True):
        if isinstance(qasm, str):
            qasm = qasm.encode()
        # Canonical field order, matching the C++ encoder byte for byte.
        return self._round_trip(
            ["submit", "technique=%s" % technique, "format=%s" % fmt,
             "priority=%d" % priority, "deadline_ms=%d" % deadline_ms,
             "cache=%s" % ("on" if cache else "off")],
            payload=qasm)

    def metrics(self):
        """Prometheus text-format scrape of the daemon's live registry."""
        return self._round_trip(["metrics"])

    def trace(self, job_id):
        """Chrome trace JSON of one job's pipeline spans (Perfetto)."""
        return self._round_trip(["trace", "id=%d" % job_id])

    def status(self, job_id):
        return self._round_trip(["status", "id=%d" % job_id])

    def result(self, job_id):
        return self._round_trip(["result", "id=%d" % job_id])

    def cancel(self, job_id):
        return self._round_trip(["cancel", "id=%d" % job_id])

    def wait_result(self, job_id, poll_s=0.02, timeout_s=300.0):
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.status(job_id)
            if not status.ok:
                return status
            if status.fields.get("state") not in ("queued", "running"):
                return self.result(job_id)
            if time.monotonic() > deadline:
                raise ProtocolError("job %d still %s after %gs" % (
                    job_id, status.fields.get("state"), timeout_s))
            time.sleep(poll_s)


def show(response):
    state = "ok" if response.ok else "err"
    parts = ["%s=%s" % kv for kv in response.fields.items()]
    print(state, " ".join(parts))
    if response.payload is not None:
        sys.stdout.write(response.payload.decode(errors="replace"))
        if not response.payload.endswith(b"\n"):
            sys.stdout.write("\n")
    return 0 if response.ok else 1


def smoke(client, paths, repeat):
    """Submit every file `repeat` times; everything must compile and
    the duplicate submissions must be served from the cache."""
    jobs = []  # (path, job_id)
    for path in paths:
        with open(path, "rb") as f:
            qasm = f.read()
        for _ in range(repeat):
            accepted = client.submit(qasm)
            if not accepted.ok:
                print("FAIL submit %s: %r" % (path, accepted))
                return 1
            jobs.append((path, int(accepted.fields["id"])))

    failures = 0
    cache_hits = 0
    for path, job_id in jobs:
        result = client.wait_result(job_id)
        state = result.fields.get("state", "?")
        hit = result.fields.get("cache_hit") == "1"
        cache_hits += hit
        ok = (result.ok and state == "done" and result.payload is not None
              and b"OPENQASM" in result.payload)
        failures += not ok
        print("%s job=%d %s state=%s cache_hit=%d pulses=%s" % (
            "ok  " if ok else "FAIL", job_id, path, state, int(hit),
            result.fields.get("total_pulses", "?")))

    stats = client.stats()
    print("stats:", " ".join("%s=%s" % kv for kv in stats.fields.items()))
    total = len(jobs)
    distinct = len(paths)
    if repeat > 1 and cache_hits < total - distinct:
        print("FAIL: expected >= %d cache hits for the duplicate "
              "submissions, saw %d" % (total - distinct, cache_hits))
        return 1
    if failures:
        print("FAIL: %d/%d jobs did not complete cleanly" % (failures, total))
        return 1
    print("smoke OK: %d jobs (%d distinct programs, %d cache hits)" % (
        total, distinct, cache_hits))
    return 0


def parse_prometheus(text):
    """Parse exposition text into {series_with_labels: float}."""
    series = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        try:
            series[name] = float(value)
        except ValueError:
            continue
    return series


def watch(client, interval):
    """Scrape `metrics` every `interval` seconds, render a one-screen
    summary of the service series until interrupted."""
    headline = [
        ("queue", "geyser_queue_depth"),
        ("running", "geyser_jobs_in_flight"),
        ("done", 'geyser_jobs_total{outcome="done"}'),
        ("failed", 'geyser_jobs_total{outcome="failed"}'),
        ("cancelled", 'geyser_jobs_total{outcome="cancelled"}'),
        ("expired", 'geyser_jobs_total{outcome="expired"}'),
        ("rejected", 'geyser_jobs_total{outcome="rejected"}'),
        ("cache_hit%", "geyser_cache_hit_ratio"),
    ]
    try:
        while True:
            response = client.metrics()
            if not response.ok:
                print("metrics scrape failed: %r" % response)
                return 1
            series = parse_prometheus(response.payload.decode())
            parts = []
            for label, key in headline:
                value = series.get(key)
                if value is None:
                    continue
                if label == "cache_hit%":
                    parts.append("%s=%.0f%%" % (label, 100.0 * value))
                else:
                    parts.append("%s=%d" % (label, int(value)))
            for hist in ("geyser_compile_seconds", "geyser_e2e_seconds"):
                count = series.get(hist + "_count")
                total = series.get(hist + "_sum")
                if count:
                    parts.append("%s_avg=%.3fs" % (
                        hist.replace("geyser_", "").replace("_seconds", ""),
                        total / count))
            print(time.strftime("%H:%M:%S"), " ".join(parts), flush=True)
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int)
    parser.add_argument("--socket", dest="unix_path")
    sub = parser.add_subparsers(dest="verb", required=True)
    sub.add_parser("ping")
    sub.add_parser("stats")
    sub.add_parser("shutdown")
    sub.add_parser("metrics")
    sub.add_parser("trace").add_argument("id", type=int)
    p = sub.add_parser("watch")
    p.add_argument("--interval", type=float, default=2.0)
    p = sub.add_parser("submit")
    p.add_argument("file")
    p.add_argument("--technique", default="geyser")
    p.add_argument("--format", dest="fmt", default="qasm")
    p.add_argument("--priority", type=int, default=0)
    p.add_argument("--deadline-ms", type=int, default=0)
    p.add_argument("--no-cache", action="store_true")
    p.add_argument("--wait", action="store_true",
                   help="poll until terminal and print the result")
    for verb in ("status", "result", "cancel"):
        sub.add_parser(verb).add_argument("id", type=int)
    p = sub.add_parser("smoke")
    p.add_argument("files", nargs="+")
    p.add_argument("--repeat", type=int, default=2)
    args = parser.parse_args()

    if not args.port and not args.unix_path:
        parser.error("need --port or --socket")

    with GeyserClient(args.host, args.port, args.unix_path) as client:
        if args.verb == "ping":
            return show(client.ping())
        if args.verb == "stats":
            return show(client.stats())
        if args.verb == "shutdown":
            return show(client.shutdown())
        if args.verb == "metrics":
            response = client.metrics()
            if not response.ok:
                return show(response)
            sys.stdout.write(response.payload.decode(errors="replace"))
            return 0
        if args.verb == "trace":
            response = client.trace(args.id)
            if not response.ok:
                return show(response)
            sys.stdout.write(response.payload.decode(errors="replace"))
            return 0
        if args.verb == "watch":
            return watch(client, args.interval)
        if args.verb == "submit":
            with open(args.file, "rb") as f:
                qasm = f.read()
            accepted = client.submit(qasm, args.technique, args.fmt,
                                     args.priority, args.deadline_ms,
                                     not args.no_cache)
            if not accepted.ok or not args.wait:
                return show(accepted)
            return show(client.wait_result(int(accepted.fields["id"])))
        if args.verb == "status":
            return show(client.status(args.id))
        if args.verb == "result":
            return show(client.result(args.id))
        if args.verb == "cancel":
            return show(client.cancel(args.id))
        if args.verb == "smoke":
            return smoke(client, args.files, args.repeat)
    return 2


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pipe (e.g. | head) closed early: not an error, but
        # suppress the noisy traceback Python prints when stdout dies.
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(141)  # conventional 128 + SIGPIPE
