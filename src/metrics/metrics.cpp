#include "metrics/metrics.hpp"

#include <cmath>
#include <stdexcept>

#include "circuit/schedule.hpp"

namespace geyser {

double
totalVariationDistance(const Distribution &p1, const Distribution &p2)
{
    if (p1.size() != p2.size())
        throw std::invalid_argument("TVD: distribution size mismatch");
    double s = 0.0;
    for (size_t i = 0; i < p1.size(); ++i)
        s += std::abs(p1[i] - p2[i]);
    return 0.5 * s;
}

CircuitStats
circuitStats(const Circuit &circuit)
{
    CircuitStats stats;
    stats.numQubits = circuit.numQubits();
    stats.u3Count = circuit.countKind(GateKind::U3);
    stats.czCount = circuit.countKind(GateKind::CZ);
    stats.cczCount = circuit.countKind(GateKind::CCZ);
    stats.totalPulses = circuit.totalPulses();
    stats.depthPulses = depthPulses(circuit);
    return stats;
}

}  // namespace geyser
