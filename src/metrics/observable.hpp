/**
 * @file
 * Pauli-string observables and expectation values — the measurement
 * layer for variational workloads (VQE energies, Heisenberg
 * magnetization) on top of the statevector simulator.
 */
#ifndef GEYSER_METRICS_OBSERVABLE_HPP
#define GEYSER_METRICS_OBSERVABLE_HPP

#include <string>
#include <vector>

#include "sim/statevector.hpp"

namespace geyser {

/**
 * A tensor product of Pauli operators, written with qubit 0 first:
 * "XZI" means X on qubit 0, Z on qubit 1, identity on qubit 2.
 */
class PauliString
{
  public:
    /** Parse from a label of {I, X, Y, Z} characters. */
    explicit PauliString(const std::string &label);

    int numQubits() const { return static_cast<int>(ops_.size()); }
    char op(int qubit) const { return ops_[static_cast<size_t>(qubit)]; }
    const std::string &label() const { return ops_; }

    /** <state| P |state>. The state must have >= numQubits() qubits
     *  (identity on the rest). Always real for Hermitian P. */
    double expectation(const StateVector &state) const;

  private:
    std::string ops_;
};

/** One term of a Hamiltonian: coefficient times a Pauli string. */
struct PauliTerm
{
    double coefficient = 0.0;
    PauliString pauli;
};

/** A weighted sum of Pauli strings. */
class Hamiltonian
{
  public:
    Hamiltonian() = default;

    void add(double coefficient, const std::string &label)
    {
        terms_.push_back({coefficient, PauliString(label)});
    }

    const std::vector<PauliTerm> &terms() const { return terms_; }

    /** <state| H |state>. */
    double expectation(const StateVector &state) const;

    /**
     * The 1-D Heisenberg XXX chain with transverse field used by the
     * heisenberg benchmark: sum_bonds J (XX + YY + ZZ) + sum_i h Z_i.
     */
    static Hamiltonian heisenbergChain(int num_qubits, double coupling,
                                       double field);

  private:
    std::vector<PauliTerm> terms_;
};

}  // namespace geyser

#endif  // GEYSER_METRICS_OBSERVABLE_HPP
