#include "metrics/observable.hpp"

#include <stdexcept>

namespace geyser {

PauliString::PauliString(const std::string &label) : ops_(label)
{
    for (const char c : ops_)
        if (c != 'I' && c != 'X' && c != 'Y' && c != 'Z')
            throw std::invalid_argument("PauliString: bad operator " +
                                        std::string(1, c));
}

double
PauliString::expectation(const StateVector &state) const
{
    if (numQubits() > state.numQubits())
        throw std::invalid_argument("PauliString: state too narrow");
    // Apply P to a copy and take the inner product with the original.
    StateVector transformed = state;
    for (int q = 0; q < numQubits(); ++q) {
        switch (op(q)) {
          case 'X':
            transformed.applyX(q);
            break;
          case 'Y':
            transformed.applyY(q);
            break;
          case 'Z':
            transformed.applyZ(q);
            break;
          default:
            break;
        }
    }
    return state.innerProduct(transformed).real();
}

double
Hamiltonian::expectation(const StateVector &state) const
{
    double total = 0.0;
    for (const auto &term : terms_)
        total += term.coefficient * term.pauli.expectation(state);
    return total;
}

Hamiltonian
Hamiltonian::heisenbergChain(int num_qubits, double coupling, double field)
{
    Hamiltonian h;
    for (int q = 0; q + 1 < num_qubits; ++q) {
        std::string xx(static_cast<size_t>(num_qubits), 'I');
        std::string yy = xx, zz = xx;
        xx[static_cast<size_t>(q)] = xx[static_cast<size_t>(q) + 1] = 'X';
        yy[static_cast<size_t>(q)] = yy[static_cast<size_t>(q) + 1] = 'Y';
        zz[static_cast<size_t>(q)] = zz[static_cast<size_t>(q) + 1] = 'Z';
        h.add(coupling, xx);
        h.add(coupling, yy);
        h.add(coupling, zz);
    }
    for (int q = 0; q < num_qubits; ++q) {
        std::string z(static_cast<size_t>(num_qubits), 'I');
        z[static_cast<size_t>(q)] = 'Z';
        h.add(field, z);
    }
    return h;
}

}  // namespace geyser
