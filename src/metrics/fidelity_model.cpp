#include "metrics/fidelity_model.hpp"

#include <cmath>

namespace geyser {

double
noErrorProbability(const Circuit &circuit, const NoiseModel &noise)
{
    // Work in log space: thousands of factors just below 1.
    double logP = 0.0;
    for (const auto &g : circuit.gates()) {
        const double pb = noise.bitFlipFor(g);
        const double pp = noise.phaseFlipFor(g);
        const double perQubit = (1.0 - pb) * (1.0 - pp);
        if (perQubit <= 0.0)
            return 0.0;
        logP += g.numQubits() * std::log(perQubit);
    }
    return std::exp(logP);
}

double
tvdUpperBound(const Circuit &circuit, const NoiseModel &noise)
{
    return 1.0 - noErrorProbability(circuit, noise);
}

}  // namespace geyser
