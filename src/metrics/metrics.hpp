/**
 * @file
 * Evaluation metrics from the paper (Sec 2.3 / Sec 4): total variation
 * distance over output distributions and summary statistics over
 * compiled circuits.
 */
#ifndef GEYSER_METRICS_METRICS_HPP
#define GEYSER_METRICS_METRICS_HPP

#include "circuit/circuit.hpp"
#include "common/types.hpp"

namespace geyser {

/**
 * Total variation distance: 1/2 * sum_k |p1(k) - p2(k)|. Distributions
 * must have the same length. In [0, 1]; 0 means identical outputs.
 */
double totalVariationDistance(const Distribution &p1, const Distribution &p2);

/** Gate/pulse summary of a physical circuit. */
struct CircuitStats
{
    int numQubits = 0;
    int u3Count = 0;
    int czCount = 0;
    int cczCount = 0;
    long totalPulses = 0;
    long depthPulses = 0;
};

/** Collect counts; depthPulses is filled with the ASAP schedule. */
CircuitStats circuitStats(const Circuit &circuit);

}  // namespace geyser

#endif  // GEYSER_METRICS_METRICS_HPP
