/**
 * @file
 * Analytic fidelity cost model: a closed-form estimate of the success
 * probability of a circuit under the stochastic Pauli noise model,
 * usable as a compiler cost function without running any simulation.
 *
 * Under independent per-qubit errors, the probability that *no* error
 * occurs anywhere is prod over gates g, qubits q of
 * (1 - pb(g))(1 - pp(g)). The no-error trajectory reproduces the ideal
 * output, so 1 - P(no error) upper-bounds the TVD to the ideal output
 * (error trajectories can at worst displace all probability mass).
 * This is why minimizing pulses (with per-pulse error scaling) or
 * qubit-operations (paper model) directly optimizes fidelity.
 */
#ifndef GEYSER_METRICS_FIDELITY_MODEL_HPP
#define GEYSER_METRICS_FIDELITY_MODEL_HPP

#include "circuit/circuit.hpp"
#include "sim/noise.hpp"

namespace geyser {

/**
 * P(no error anywhere) for a physical circuit under `noise`
 * (bit/phase-flip channels; atom loss and crosstalk are ignored).
 */
double noErrorProbability(const Circuit &circuit, const NoiseModel &noise);

/** The model's TVD upper bound: 1 - noErrorProbability(...). */
double tvdUpperBound(const Circuit &circuit, const NoiseModel &noise);

}  // namespace geyser

#endif  // GEYSER_METRICS_FIDELITY_MODEL_HPP
