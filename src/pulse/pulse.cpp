#include "pulse/pulse.hpp"

#include <cstdio>
#include <stdexcept>

namespace geyser {

const char *
pulseKindName(PulseKind kind)
{
    switch (kind) {
      case PulseKind::Raman:
        return "raman";
      case PulseKind::RydbergPi:
        return "pi";
      case PulseKind::Rydberg2Pi:
        return "2pi";
    }
    return "?";
}

int
PulseProgram::countKind(PulseKind kind) const
{
    int n = 0;
    for (const auto &p : pulses)
        if (p.kind == kind)
            ++n;
    return n;
}

std::string
PulseProgram::toString() const
{
    std::string out;
    char buf[96];
    for (const auto &p : pulses) {
        std::snprintf(buf, sizeof(buf), "t=%-6ld %-5s atom %d (gate %d)\n",
                      p.startTime, pulseKindName(p.kind), p.atom,
                      p.gateIndex);
        out += buf;
    }
    std::snprintf(buf, sizeof(buf), "makespan %ld, %zu pulses\n", makespan,
                  pulses.size());
    out += buf;
    return out;
}

PulseProgram
lowerToPulses(const Circuit &circuit, const Schedule &schedule)
{
    if (schedule.start.size() != circuit.size())
        throw std::invalid_argument("lowerToPulses: schedule mismatch");
    PulseProgram program;
    program.makespan = schedule.makespan;
    program.pulses.reserve(static_cast<size_t>(circuit.totalPulses()));

    for (size_t i = 0; i < circuit.size(); ++i) {
        const Gate &g = circuit.gates()[i];
        const long t0 = schedule.start[i];
        const int gi = static_cast<int>(i);
        switch (g.kind()) {
          case GateKind::U3:
            program.pulses.push_back(
                {PulseKind::Raman, g.qubit(0), t0, gi});
            break;
          case GateKind::CZ:
            // Fig 3(a): pi(control), 2pi(target), pi(control).
            program.pulses.push_back(
                {PulseKind::RydbergPi, g.qubit(0), t0, gi});
            program.pulses.push_back(
                {PulseKind::Rydberg2Pi, g.qubit(1), t0 + 1, gi});
            program.pulses.push_back(
                {PulseKind::RydbergPi, g.qubit(0), t0 + 2, gi});
            break;
          case GateKind::CCZ:
            // Fig 3(b): pi(c1), pi(c2), 2pi(target), pi(c2), pi(c1).
            program.pulses.push_back(
                {PulseKind::RydbergPi, g.qubit(0), t0, gi});
            program.pulses.push_back(
                {PulseKind::RydbergPi, g.qubit(1), t0 + 1, gi});
            program.pulses.push_back(
                {PulseKind::Rydberg2Pi, g.qubit(2), t0 + 2, gi});
            program.pulses.push_back(
                {PulseKind::RydbergPi, g.qubit(1), t0 + 3, gi});
            program.pulses.push_back(
                {PulseKind::RydbergPi, g.qubit(0), t0 + 4, gi});
            break;
          default:
            throw std::invalid_argument(
                "lowerToPulses: physical circuit required");
        }
    }
    return program;
}

PulseProgram
lowerToPulses(const Circuit &circuit)
{
    if (!circuit.isPhysical())
        throw std::invalid_argument(
            "lowerToPulses: physical circuit required");
    return lowerToPulses(circuit, scheduleAsap(circuit));
}

}  // namespace geyser
