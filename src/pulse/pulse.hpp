/**
 * @file
 * Pulse-level lowering — the "classical control interface" layer of the
 * paper's Fig 2 stack. Expands a physical circuit into the individual
 * laser pulses of Fig 3:
 *
 *  - U3: one Raman pulse on its atom.
 *  - CZ: pi (control), 2*pi (target), pi (control) — three serial
 *    Rydberg pulses.
 *  - CCZ: pi (c1), pi (c2), 2*pi (target), pi (c2), pi (c1) — five
 *    serial Rydberg pulses. The composer's categorical parameter picks
 *    which atom plays the 2*pi target role; the unitary is invariant.
 *
 * Pulses inherit start times from a gate schedule, so the program's
 * makespan equals the schedule's depth-pulse metric.
 */
#ifndef GEYSER_PULSE_PULSE_HPP
#define GEYSER_PULSE_PULSE_HPP

#include <string>
#include <vector>

#include "circuit/schedule.hpp"

namespace geyser {

/** The physical pulse types of the neutral-atom control stack. */
enum class PulseKind : uint8_t {
    Raman,      ///< One-qubit U3 drive.
    RydbergPi,  ///< pi pulse toward the Rydberg state (control role).
    Rydberg2Pi, ///< 2*pi pulse (target role).
};

/** Mnemonic for a pulse kind. */
const char *pulseKindName(PulseKind kind);

/** One laser pulse aimed at one atom. */
struct Pulse
{
    PulseKind kind = PulseKind::Raman;
    int atom = 0;
    long startTime = 0;  ///< In pulse-duration units.
    int gateIndex = -1;  ///< Index of the originating gate.
};

/** A fully lowered pulse program. */
struct PulseProgram
{
    std::vector<Pulse> pulses;
    long makespan = 0;

    int countKind(PulseKind kind) const;

    /** Human-readable listing (one pulse per line). */
    std::string toString() const;
};

/**
 * Lower a physical circuit to pulses using the given gate schedule
 * (scheduleAsap / scheduleRestrictionAware output for this circuit).
 * The total pulse count always equals circuit.totalPulses().
 */
PulseProgram lowerToPulses(const Circuit &circuit, const Schedule &schedule);

/** Convenience: lower with an ASAP schedule. */
PulseProgram lowerToPulses(const Circuit &circuit);

}  // namespace geyser

#endif  // GEYSER_PULSE_PULSE_HPP
