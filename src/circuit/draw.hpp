/**
 * @file
 * ASCII circuit rendering for small circuits — used by examples, the
 * CLI, and test failure messages.
 */
#ifndef GEYSER_CIRCUIT_DRAW_HPP
#define GEYSER_CIRCUIT_DRAW_HPP

#include <string>

#include "circuit/circuit.hpp"

namespace geyser {

/**
 * Render a circuit as ASCII art: one row per qubit, one column per
 * moment (gates pack left as their qubits free up). Multi-qubit gates
 * draw a vertical connector; parameters are omitted for compactness.
 *
 *   q0: -H---*------
 *            |
 *   q1: -----Z--RX--
 */
std::string drawCircuit(const Circuit &circuit, int max_columns = 0);

}  // namespace geyser

#endif  // GEYSER_CIRCUIT_DRAW_HPP
