#include "circuit/schedule.hpp"

#include <algorithm>

namespace geyser {

Schedule
scheduleAsap(const Circuit &circuit)
{
    Schedule sched;
    sched.start.resize(circuit.size());
    std::vector<long> avail(static_cast<size_t>(circuit.numQubits()), 0);
    for (size_t i = 0; i < circuit.size(); ++i) {
        const Gate &g = circuit.gates()[i];
        long start = 0;
        for (int k = 0; k < g.numQubits(); ++k)
            start = std::max(start, avail[static_cast<size_t>(g.qubit(k))]);
        const long end = start + g.pulses();
        for (int k = 0; k < g.numQubits(); ++k)
            avail[static_cast<size_t>(g.qubit(k))] = end;
        sched.start[i] = start;
        sched.makespan = std::max(sched.makespan, end);
    }
    return sched;
}

Schedule
scheduleRestrictionAware(const Circuit &circuit, const Topology &topo)
{
    Schedule sched;
    sched.start.resize(circuit.size());
    const size_t n = static_cast<size_t>(topo.numAtoms());
    std::vector<long> avail(n, 0);     // Qubit is running its own gates.
    std::vector<long> restrict_(n, 0); // Qubit is inside someone's zone.
    for (size_t i = 0; i < circuit.size(); ++i) {
        const Gate &g = circuit.gates()[i];
        std::vector<int> involved;
        involved.reserve(static_cast<size_t>(g.numQubits()));
        for (int k = 0; k < g.numQubits(); ++k)
            involved.push_back(g.qubit(k));

        long start = 0;
        for (int q : involved) {
            start = std::max(start, avail[static_cast<size_t>(q)]);
            start = std::max(start, restrict_[static_cast<size_t>(q)]);
        }
        std::vector<int> zone;
        if (g.numQubits() >= 2) {
            zone = topo.restrictionZone(involved);
            // A Rydberg gate cannot start while a zone atom is mid-gate
            // (list scheduling: all program-earlier gates on zone atoms
            // are already placed and reflected in avail[]).
            for (int z : zone)
                start = std::max(start, avail[static_cast<size_t>(z)]);
        }
        const long end = start + g.pulses();
        for (int q : involved)
            avail[static_cast<size_t>(q)] = end;
        for (int z : zone)
            restrict_[static_cast<size_t>(z)] =
                std::max(restrict_[static_cast<size_t>(z)], end);
        sched.start[i] = start;
        sched.makespan = std::max(sched.makespan, end);
    }
    return sched;
}

long
depthPulses(const Circuit &circuit)
{
    return scheduleAsap(circuit).makespan;
}

long
depthPulses(const Circuit &circuit, const Topology &topo)
{
    return scheduleRestrictionAware(circuit, topo).makespan;
}

}  // namespace geyser
