/**
 * @file
 * The quantum circuit IR: an ordered gate list over n qubits, plus the
 * counting metrics the paper evaluates (gate counts, total pulses).
 */
#ifndef GEYSER_CIRCUIT_CIRCUIT_HPP
#define GEYSER_CIRCUIT_CIRCUIT_HPP

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "circuit/gate.hpp"
#include "common/types.hpp"

namespace geyser {

/**
 * Hard ceiling on the circuit width accepted at input boundaries.
 * Far above any realistic neutral-atom array; exists so a hostile
 * `qreg q[2000000000]` cannot drive downstream per-qubit allocations
 * (qubitOpLists, topologies) into resource exhaustion.
 */
inline constexpr int kMaxCircuitQubits = 1 << 20;

/**
 * An ordered list of gates over numQubits() qubits. Gate order is program
 * order; two gates commute trivially when they share no qubits.
 */
class Circuit
{
  public:
    Circuit() = default;
    explicit Circuit(int num_qubits) : numQubits_(num_qubits) {}

    int numQubits() const { return numQubits_; }
    void setNumQubits(int n) { numQubits_ = n; }

    const std::vector<Gate> &gates() const { return gates_; }
    std::vector<Gate> &gates() { return gates_; }
    size_t size() const { return gates_.size(); }
    bool empty() const { return gates_.empty(); }

    /** Append a gate, validating its qubit operands against numQubits(). */
    void append(const Gate &gate);

    /** Append every gate of another circuit (same qubit numbering). */
    void append(const Circuit &other);

    // Convenience builders (validated like append()).
    void u3(Qubit q, double theta, double phi, double lambda);
    void i(Qubit q) { append(Gate(GateKind::I, q)); }
    void x(Qubit q) { append(Gate(GateKind::X, q)); }
    void y(Qubit q) { append(Gate(GateKind::Y, q)); }
    void z(Qubit q) { append(Gate(GateKind::Z, q)); }
    void h(Qubit q) { append(Gate(GateKind::H, q)); }
    void s(Qubit q) { append(Gate(GateKind::S, q)); }
    void sdg(Qubit q) { append(Gate(GateKind::SDG, q)); }
    void t(Qubit q) { append(Gate(GateKind::T, q)); }
    void tdg(Qubit q) { append(Gate(GateKind::TDG, q)); }
    void rx(Qubit q, double theta) { append(Gate(GateKind::RX, q, theta)); }
    void ry(Qubit q, double theta) { append(Gate(GateKind::RY, q, theta)); }
    void rz(Qubit q, double theta) { append(Gate(GateKind::RZ, q, theta)); }
    void p(Qubit q, double lambda) { append(Gate(GateKind::P, q, lambda)); }
    void cx(Qubit control, Qubit target);
    void cz(Qubit a, Qubit b) { append(Gate(GateKind::CZ, a, b)); }
    void cp(Qubit a, Qubit b, double lambda);
    void rzz(Qubit a, Qubit b, double theta);
    void rxx(Qubit a, Qubit b, double theta);
    void ryy(Qubit a, Qubit b, double theta);
    void swap(Qubit a, Qubit b) { append(Gate(GateKind::SWAP, a, b)); }
    void ccx(Qubit c0, Qubit c1, Qubit target);
    void ccz(Qubit a, Qubit b, Qubit c) { append(Gate(GateKind::CCZ, a, b, c)); }

    /** Number of gates of one kind. */
    int countKind(GateKind kind) const;

    /** Gate count per kind, for reporting. */
    std::map<GateKind, int> gateCounts() const;

    /** True if every gate is in the physical basis {U3, CZ, CCZ}. */
    bool isPhysical() const;

    /**
     * Total physical pulse count (paper metric "Number of Pulses").
     * Requires a physical circuit.
     */
    long totalPulses() const;

    /**
     * Per-qubit views: for each qubit, the indices (into gates()) of the
     * gates acting on it, in program order. This is the structure that
     * drives blocking (Algorithm 1's per-qubit frontiers).
     */
    std::vector<std::vector<int>> qubitOpLists() const;

    /**
     * Remap qubit operands through `map` (old index -> new index) and set
     * the qubit count to new_num_qubits.
     */
    Circuit remapped(const std::vector<Qubit> &map, int new_num_qubits) const;

    /** The inverse circuit: gates reversed and individually inverted. */
    Circuit inverted() const;

    /**
     * First broken structural invariant, or nullopt if the circuit is
     * well-formed: qubit count in [0, kMaxCircuitQubits]; every gate's
     * operand count matching its kind's arity; every operand in
     * [0, numQubits()); operands pairwise distinct; every declared
     * parameter finite. Never throws — usable from noexcept paths.
     */
    std::optional<std::string> validationError() const;

    /**
     * Throw ValidationError unless validationError() is empty. Called
     * after every untrusted-boundary crossing (QASM parse, text
     * deserialize, cache-entry load) so no invalid circuit can reach
     * the transpiler or the simulators. `source` tags the diagnostic
     * ("qasm", "circuit-text", a file path); empty means unattributed.
     */
    void validate(const std::string &source = {}) const;

    /** One gate per line. */
    std::string toString() const;

  private:
    int numQubits_ = 0;
    std::vector<Gate> gates_;
};

}  // namespace geyser

#endif  // GEYSER_CIRCUIT_CIRCUIT_HPP
