#include "circuit/gate.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace geyser {

namespace {

struct KindInfo
{
    const char *name;
    int arity;
    int params;
};

const KindInfo &
kindInfo(GateKind kind)
{
    static const KindInfo table[] = {
        {"u3", 1, 3},   // U3
        {"cz", 2, 0},   // CZ
        {"ccz", 3, 0},  // CCZ
        {"id", 1, 0},   // I
        {"x", 1, 0},    // X
        {"y", 1, 0},    // Y
        {"z", 1, 0},    // Z
        {"h", 1, 0},    // H
        {"s", 1, 0},    // S
        {"sdg", 1, 0},  // SDG
        {"t", 1, 0},    // T
        {"tdg", 1, 0},  // TDG
        {"rx", 1, 1},   // RX
        {"ry", 1, 1},   // RY
        {"rz", 1, 1},   // RZ
        {"p", 1, 1},    // P
        {"cx", 2, 0},   // CX
        {"cp", 2, 1},   // CP
        {"rzz", 2, 1},  // RZZ
        {"rxx", 2, 1},  // RXX
        {"ryy", 2, 1},  // RYY
        {"swap", 2, 0}, // SWAP
        {"ccx", 3, 0},  // CCX
    };
    return table[static_cast<size_t>(kind)];
}

}  // namespace

const char *
gateKindName(GateKind kind)
{
    return kindInfo(kind).name;
}

GateKind
gateKindFromName(const std::string &name)
{
    for (int k = 0; k <= static_cast<int>(GateKind::CCX); ++k) {
        const auto kind = static_cast<GateKind>(k);
        if (name == kindInfo(kind).name)
            return kind;
    }
    throw std::invalid_argument("unknown gate mnemonic: " + name);
}

int
gateKindArity(GateKind kind)
{
    return kindInfo(kind).arity;
}

int
gateKindParamCount(GateKind kind)
{
    return kindInfo(kind).params;
}

bool
gateKindIsPhysical(GateKind kind)
{
    return kind == GateKind::U3 || kind == GateKind::CZ ||
           kind == GateKind::CCZ;
}

Gate::Gate(GateKind kind, Qubit q, double p0, double p1, double p2)
    : kind_(kind), numQubits_(1), qubits_{{q, 0, 0}}, params_{{p0, p1, p2}}
{
    assert(gateKindArity(kind) == 1);
}

Gate::Gate(GateKind kind, Qubit a, Qubit b, double p0)
    : kind_(kind), numQubits_(2), qubits_{{a, b, 0}}, params_{{p0, 0.0, 0.0}}
{
    assert(gateKindArity(kind) == 2);
    assert(a != b);
}

Gate::Gate(GateKind kind, Qubit a, Qubit b, Qubit c)
    : kind_(kind), numQubits_(3), qubits_{{a, b, c}}, params_{{0.0, 0.0, 0.0}}
{
    assert(gateKindArity(kind) == 3);
    assert(a != b && b != c && a != c);
}

bool
Gate::actsOn(Qubit q) const
{
    for (int i = 0; i < numQubits_; ++i)
        if (qubits_[static_cast<size_t>(i)] == q)
            return true;
    return false;
}

int
Gate::pulses() const
{
    return pulsesForKind(kind_);
}

int
pulsesForKind(GateKind kind)
{
    switch (kind) {
      case GateKind::U3:
        return 1;
      case GateKind::CZ:
        return 3;
      case GateKind::CCZ:
        return 5;
      default:
        throw std::logic_error(
            std::string("pulses() on non-physical gate: ") +
            gateKindName(kind));
    }
}

Matrix
u3Matrix(double theta, double phi, double lambda)
{
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    return Matrix{
        {c, -std::exp(kI * lambda) * s},
        {std::exp(kI * phi) * s, std::exp(kI * (phi + lambda)) * c},
    };
}

Matrix
Gate::matrix() const
{
    const double p0 = params_[0];
    switch (kind_) {
      case GateKind::U3:
        return u3Matrix(params_[0], params_[1], params_[2]);
      case GateKind::I:
        return Matrix::identity(2);
      case GateKind::X:
        return Matrix{{0, 1}, {1, 0}};
      case GateKind::Y:
        return Matrix{{0, -kI}, {kI, 0}};
      case GateKind::Z:
        return Matrix{{1, 0}, {0, -1}};
      case GateKind::H: {
        const double r = 1.0 / std::sqrt(2.0);
        return Matrix{{r, r}, {r, -r}};
      }
      case GateKind::S:
        return Matrix{{1, 0}, {0, kI}};
      case GateKind::SDG:
        return Matrix{{1, 0}, {0, -kI}};
      case GateKind::T:
        return Matrix{{1, 0}, {0, std::exp(kI * (kPi / 4.0))}};
      case GateKind::TDG:
        return Matrix{{1, 0}, {0, std::exp(-kI * (kPi / 4.0))}};
      case GateKind::RX: {
        const double c = std::cos(p0 / 2.0), s = std::sin(p0 / 2.0);
        return Matrix{{c, -kI * s}, {-kI * s, c}};
      }
      case GateKind::RY: {
        const double c = std::cos(p0 / 2.0), s = std::sin(p0 / 2.0);
        return Matrix{{c, -s}, {s, c}};
      }
      case GateKind::RZ:
        return Matrix{{std::exp(-kI * (p0 / 2.0)), 0},
                      {0, std::exp(kI * (p0 / 2.0))}};
      case GateKind::P:
        return Matrix{{1, 0}, {0, std::exp(kI * p0)}};
      case GateKind::CZ:
        return Matrix::diagonal({1, 1, 1, -1});
      case GateKind::CX: {
        // qubit(0) = control = local LSB; qubit(1) = target.
        // Local basis index = b_target*2 + b_control.
        Matrix m(4, 4);
        m(0, 0) = 1;  // |00> -> |00>
        m(3, 1) = 1;  // |01> (control=1) -> |11>
        m(2, 2) = 1;  // |10> -> |10>
        m(1, 3) = 1;  // |11> -> |01>
        return m;
      }
      case GateKind::CP:
        return Matrix::diagonal({1, 1, 1, std::exp(kI * p0)});
      case GateKind::RZZ: {
        const Complex em = std::exp(-kI * (p0 / 2.0));
        const Complex ep = std::exp(kI * (p0 / 2.0));
        return Matrix::diagonal({em, ep, ep, em});
      }
      case GateKind::RXX: {
        const double c = std::cos(p0 / 2.0), s = std::sin(p0 / 2.0);
        Matrix m(4, 4);
        for (int i = 0; i < 4; ++i)
            m(i, i) = c;
        m(0, 3) = m(3, 0) = m(1, 2) = m(2, 1) = -kI * s;
        return m;
      }
      case GateKind::RYY: {
        const double c = std::cos(p0 / 2.0), s = std::sin(p0 / 2.0);
        Matrix m(4, 4);
        for (int i = 0; i < 4; ++i)
            m(i, i) = c;
        m(0, 3) = m(3, 0) = kI * s;
        m(1, 2) = m(2, 1) = -kI * s;
        return m;
      }
      case GateKind::SWAP: {
        Matrix m(4, 4);
        m(0, 0) = m(3, 3) = 1;
        m(1, 2) = m(2, 1) = 1;
        return m;
      }
      case GateKind::CCZ: {
        auto m = Matrix::identity(8);
        m(7, 7) = -1;
        return m;
      }
      case GateKind::CCX: {
        // Controls = qubit(0), qubit(1) (local bits 0 and 1); target =
        // qubit(2) (local bit 2). Flip bit 2 when bits 0 and 1 are set.
        Matrix m = Matrix::identity(8);
        m(3, 3) = m(7, 7) = 0;
        m(7, 3) = m(3, 7) = 1;
        return m;
      }
    }
    throw std::logic_error("Gate::matrix: unhandled kind");
}

Gate
Gate::inverse() const
{
    Gate g = *this;
    switch (kind_) {
      case GateKind::U3:
        // U3(t, p, l)^dagger = U3(-t, -l, -p).
        g.params_[0] = -params_[0];
        g.params_[1] = -params_[2];
        g.params_[2] = -params_[1];
        return g;
      case GateKind::S:
        g.kind_ = GateKind::SDG;
        return g;
      case GateKind::SDG:
        g.kind_ = GateKind::S;
        return g;
      case GateKind::T:
        g.kind_ = GateKind::TDG;
        return g;
      case GateKind::TDG:
        g.kind_ = GateKind::T;
        return g;
      case GateKind::RX:
      case GateKind::RY:
      case GateKind::RZ:
      case GateKind::P:
      case GateKind::CP:
      case GateKind::RZZ:
      case GateKind::RXX:
      case GateKind::RYY:
        g.params_[0] = -params_[0];
        return g;
      default:
        // Remaining kinds (I, X, Y, Z, H, CZ, CX, SWAP, CCX, CCZ) are
        // self-inverse.
        return g;
    }
}

std::string
Gate::toString() const
{
    std::string out = gateKindName(kind_);
    const int np = numParams();
    if (np > 0) {
        out += "(";
        char buf[32];
        for (int i = 0; i < np; ++i) {
            std::snprintf(buf, sizeof(buf), "%.6g",
                          params_[static_cast<size_t>(i)]);
            out += buf;
            if (i + 1 < np)
                out += ", ";
        }
        out += ")";
    }
    out += " ";
    for (int i = 0; i < numQubits_; ++i) {
        out += "q" + std::to_string(qubits_[static_cast<size_t>(i)]);
        if (i + 1 < numQubits_)
            out += ", ";
    }
    return out;
}

bool
Gate::operator==(const Gate &rhs) const
{
    if (kind_ != rhs.kind_ || numQubits_ != rhs.numQubits_)
        return false;
    for (int i = 0; i < numQubits_; ++i)
        if (qubits_[static_cast<size_t>(i)] != rhs.qubits_[static_cast<size_t>(i)])
            return false;
    for (int i = 0; i < numParams(); ++i)
        if (params_[static_cast<size_t>(i)] != rhs.params_[static_cast<size_t>(i)])
            return false;
    return true;
}

}  // namespace geyser
