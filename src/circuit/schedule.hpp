/**
 * @file
 * Pulse-level schedulers used to compute the paper's "Number of Depth
 * Pulses" metric (the pulse length of the circuit's critical path).
 *
 * Two models are provided:
 *  - ASAP: each gate starts as soon as all of its qubits are free; its
 *    duration is its pulse count.
 *  - Restriction-aware: additionally, a multi-qubit gate occupies its
 *    restriction zone for its duration (paper Sec 2.2), so restricted
 *    atoms cannot start gates until it finishes, and it cannot start while
 *    a zone atom is mid-gate.
 */
#ifndef GEYSER_CIRCUIT_SCHEDULE_HPP
#define GEYSER_CIRCUIT_SCHEDULE_HPP

#include <vector>

#include "circuit/circuit.hpp"
#include "topology/topology.hpp"

namespace geyser {

/** Start time (in pulses) per gate, plus the overall makespan. */
struct Schedule
{
    std::vector<long> start;
    long makespan = 0;
};

/**
 * ASAP schedule by qubit availability. Requires a physical circuit (pulse
 * durations must be defined).
 */
Schedule scheduleAsap(const Circuit &circuit);

/**
 * ASAP schedule that additionally serializes gates against the
 * restriction zones of multi-qubit gates. Gate operands must index atoms
 * of `topo`.
 */
Schedule scheduleRestrictionAware(const Circuit &circuit,
                                  const Topology &topo);

/** Convenience: makespan of scheduleAsap. */
long depthPulses(const Circuit &circuit);

/** Convenience: makespan of scheduleRestrictionAware. */
long depthPulses(const Circuit &circuit, const Topology &topo);

}  // namespace geyser

#endif  // GEYSER_CIRCUIT_SCHEDULE_HPP
