#include "circuit/circuit.hpp"

#include <cmath>
#include <stdexcept>

#include "common/error.hpp"

namespace geyser {

void
Circuit::append(const Gate &gate)
{
    for (int i = 0; i < gate.numQubits(); ++i) {
        const Qubit q = gate.qubit(i);
        if (q < 0 || q >= numQubits_)
            throw std::out_of_range("Circuit::append: qubit " +
                                    std::to_string(q) + " out of range");
    }
    gates_.push_back(gate);
}

void
Circuit::append(const Circuit &other)
{
    for (const auto &g : other.gates())
        append(g);
}

void
Circuit::u3(Qubit q, double theta, double phi, double lambda)
{
    append(Gate(GateKind::U3, q, theta, phi, lambda));
}

void
Circuit::cx(Qubit control, Qubit target)
{
    append(Gate(GateKind::CX, control, target));
}

void
Circuit::cp(Qubit a, Qubit b, double lambda)
{
    append(Gate(GateKind::CP, a, b, lambda));
}

void
Circuit::rzz(Qubit a, Qubit b, double theta)
{
    append(Gate(GateKind::RZZ, a, b, theta));
}

void
Circuit::rxx(Qubit a, Qubit b, double theta)
{
    append(Gate(GateKind::RXX, a, b, theta));
}

void
Circuit::ryy(Qubit a, Qubit b, double theta)
{
    append(Gate(GateKind::RYY, a, b, theta));
}

void
Circuit::ccx(Qubit c0, Qubit c1, Qubit target)
{
    append(Gate(GateKind::CCX, c0, c1, target));
}

int
Circuit::countKind(GateKind kind) const
{
    int n = 0;
    for (const auto &g : gates_)
        if (g.kind() == kind)
            ++n;
    return n;
}

std::map<GateKind, int>
Circuit::gateCounts() const
{
    std::map<GateKind, int> counts;
    for (const auto &g : gates_)
        ++counts[g.kind()];
    return counts;
}

bool
Circuit::isPhysical() const
{
    for (const auto &g : gates_)
        if (!g.isPhysical())
            return false;
    return true;
}

long
Circuit::totalPulses() const
{
    long total = 0;
    for (const auto &g : gates_)
        total += g.pulses();
    return total;
}

std::vector<std::vector<int>>
Circuit::qubitOpLists() const
{
    std::vector<std::vector<int>> lists(static_cast<size_t>(numQubits_));
    for (int i = 0; i < static_cast<int>(gates_.size()); ++i) {
        const auto &g = gates_[static_cast<size_t>(i)];
        for (int k = 0; k < g.numQubits(); ++k)
            lists[static_cast<size_t>(g.qubit(k))].push_back(i);
    }
    return lists;
}

Circuit
Circuit::remapped(const std::vector<Qubit> &map, int new_num_qubits) const
{
    Circuit out(new_num_qubits);
    for (auto g : gates_) {
        for (int i = 0; i < g.numQubits(); ++i)
            g.setQubit(i, map[static_cast<size_t>(g.qubit(i))]);
        out.append(g);
    }
    return out;
}

Circuit
Circuit::inverted() const
{
    Circuit out(numQubits_);
    for (auto it = gates_.rbegin(); it != gates_.rend(); ++it)
        out.append(it->inverse());
    return out;
}

std::optional<std::string>
Circuit::validationError() const
{
    if (numQubits_ < 0)
        return "negative qubit count " + std::to_string(numQubits_);
    if (numQubits_ > kMaxCircuitQubits)
        return "qubit count " + std::to_string(numQubits_) +
               " exceeds limit " + std::to_string(kMaxCircuitQubits);
    for (size_t i = 0; i < gates_.size(); ++i) {
        const Gate &g = gates_[i];
        const auto at = [&](const std::string &why) {
            return "gate " + std::to_string(i) + " (" +
                   gateKindName(g.kind()) + "): " + why;
        };
        if (g.numQubits() != gateKindArity(g.kind()))
            return at("operand count " + std::to_string(g.numQubits()) +
                      " != arity " +
                      std::to_string(gateKindArity(g.kind())));
        for (int k = 0; k < g.numQubits(); ++k) {
            const Qubit q = g.qubit(k);
            if (q < 0 || q >= numQubits_)
                return at("operand qubit " + std::to_string(q) +
                          " out of range [0, " +
                          std::to_string(numQubits_) + ")");
            for (int j = 0; j < k; ++j)
                if (g.qubit(j) == q)
                    return at("duplicate operand qubit " +
                              std::to_string(q));
        }
        for (int p = 0; p < g.numParams(); ++p)
            if (!std::isfinite(g.param(p)))
                return at("non-finite parameter " + std::to_string(p));
    }
    return std::nullopt;
}

void
Circuit::validate(const std::string &source) const
{
    if (const auto why = validationError())
        throw ValidationError(SourceContext{source, 0, -1},
                              "invalid circuit: " + *why);
}

std::string
Circuit::toString() const
{
    std::string out = "circuit(" + std::to_string(numQubits_) + " qubits)\n";
    for (const auto &g : gates_)
        out += "  " + g.toString() + "\n";
    return out;
}

}  // namespace geyser
