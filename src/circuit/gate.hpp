/**
 * @file
 * Quantum gate representation: logical gates (as emitted by the benchmark
 * generators) and the physical gates natively supported by the neutral-atom
 * architecture ({U3, CZ, CCZ}, paper Sec 2.2).
 *
 * Pulse costs follow the paper: U3 is one Raman pulse, CZ is three Rydberg
 * pulses, CCZ is five Rydberg pulses (Fig 3).
 */
#ifndef GEYSER_CIRCUIT_GATE_HPP
#define GEYSER_CIRCUIT_GATE_HPP

#include <array>
#include <string>

#include "common/types.hpp"
#include "linalg/matrix.hpp"

namespace geyser {

/** All gate kinds known to the IR. */
enum class GateKind : uint8_t {
    // Physical basis of the neutral-atom architecture.
    U3,    ///< General one-qubit rotation U3(theta, phi, lambda); 1 pulse.
    CZ,    ///< Controlled-Z; 3 pulses.
    CCZ,   ///< Doubly-controlled Z; 5 pulses.
    // Logical one-qubit gates.
    I, X, Y, Z, H, S, SDG, T, TDG,
    RX,    ///< RX(theta)
    RY,    ///< RY(theta)
    RZ,    ///< RZ(theta)
    P,     ///< Phase gate P(lambda) = diag(1, e^{i lambda})
    // Logical multi-qubit gates.
    CX,    ///< CNOT: qubits[0] control, qubits[1] target.
    CP,    ///< Controlled phase CP(lambda).
    RZZ,   ///< exp(-i theta/2 Z(x)Z)
    RXX,   ///< exp(-i theta/2 X(x)X)
    RYY,   ///< exp(-i theta/2 Y(x)Y)
    SWAP,  ///< Exchange two qubit states.
    CCX,   ///< Toffoli: qubits[0,1] controls, qubits[2] target.
};

/** Short mnemonic for a gate kind ("u3", "cz", ...). */
const char *gateKindName(GateKind kind);

/** Parse a mnemonic back to a kind; throws on unknown names. */
GateKind gateKindFromName(const std::string &name);

/** Number of qubits a gate kind acts on (1, 2, or 3). */
int gateKindArity(GateKind kind);

/** Number of angle parameters a kind carries (0..3). */
int gateKindParamCount(GateKind kind);

/** True for members of the physical basis {U3, CZ, CCZ}. */
bool gateKindIsPhysical(GateKind kind);

/**
 * A gate instance: a kind, the qubits it acts on, and its parameters.
 * Stored compactly (fixed arrays) because circuits reach tens of
 * thousands of gates.
 */
class Gate
{
  public:
    Gate() = default;

    /** One-qubit gate. */
    Gate(GateKind kind, Qubit q, double p0 = 0.0, double p1 = 0.0,
         double p2 = 0.0);

    /** Two-qubit gate. */
    Gate(GateKind kind, Qubit a, Qubit b, double p0 = 0.0);

    /** Three-qubit gate. */
    Gate(GateKind kind, Qubit a, Qubit b, Qubit c);

    GateKind kind() const { return kind_; }
    int numQubits() const { return numQubits_; }
    int numParams() const { return gateKindParamCount(kind_); }

    /** The i-th operand qubit. qubits(0) is the local least-significant bit
     *  in matrix(); for controlled gates the controls come first. */
    Qubit qubit(int i) const { return qubits_[static_cast<size_t>(i)]; }

    /** Mutable operand access (used by layout application / remapping). */
    void setQubit(int i, Qubit q) { qubits_[static_cast<size_t>(i)] = q; }

    double param(int i) const { return params_[static_cast<size_t>(i)]; }
    void setParam(int i, double v) { params_[static_cast<size_t>(i)] = v; }

    /** True if this is a physical-basis gate. */
    bool isPhysical() const { return gateKindIsPhysical(kind_); }

    /** True if the gate entangles (acts on 2+ qubits). */
    bool isEntangling() const { return numQubits_ >= 2; }

    /** True if this gate involves qubit q. */
    bool actsOn(Qubit q) const;

    /**
     * Number of physical light pulses needed (paper Fig 3): U3 = 1,
     * CZ = 3, CCZ = 5. Only valid for physical gates; throws otherwise.
     */
    int pulses() const;

    /**
     * The 2^k x 2^k unitary of this gate over its own qubits, with
     * qubit(0) as the least-significant bit of the local basis index.
     */
    Matrix matrix() const;

    /** The inverse gate (same qubits): U3/rotations negate angles,
     *  S <-> SDG, T <-> TDG, self-inverse kinds unchanged. */
    Gate inverse() const;

    /** Mnemonic plus operands plus parameters, e.g. "cx q0, q3". */
    std::string toString() const;

    bool operator==(const Gate &rhs) const;

  private:
    GateKind kind_ = GateKind::I;
    int8_t numQubits_ = 1;
    std::array<Qubit, 3> qubits_{{0, 0, 0}};
    std::array<double, 3> params_{{0.0, 0.0, 0.0}};
};

/** The U3 unitary (paper Sec 2.1). */
Matrix u3Matrix(double theta, double phi, double lambda);

/** Pulse cost of a physical gate kind. */
int pulsesForKind(GateKind kind);

}  // namespace geyser

#endif  // GEYSER_CIRCUIT_GATE_HPP
