#include "circuit/draw.hpp"

#include <algorithm>
#include <cctype>
#include <vector>

namespace geyser {

namespace {

/** Short symbol for a gate on one of its operand rows. */
std::string
symbolFor(const Gate &gate, int operand)
{
    switch (gate.kind()) {
      case GateKind::U3:
        return "U3";
      case GateKind::CZ:
        return operand == 0 ? "*" : "Z";
      case GateKind::CCZ:
        return operand < 2 ? "*" : "Z";
      case GateKind::CX:
        return operand == 0 ? "*" : "X";
      case GateKind::CCX:
        return operand < 2 ? "*" : "X";
      case GateKind::CP:
        return operand == 0 ? "*" : "P";
      case GateKind::SWAP:
        return "x";
      case GateKind::RZZ:
      case GateKind::RXX:
      case GateKind::RYY:
        return gateKindName(gate.kind());
      default: {
        std::string s = gateKindName(gate.kind());
        for (auto &c : s)
            c = static_cast<char>(std::toupper(c));
        return s;
      }
    }
}

}  // namespace

std::string
drawCircuit(const Circuit &circuit, int max_columns)
{
    const int n = circuit.numQubits();
    // Assign each gate to the earliest column where its qubits are free.
    std::vector<int> nextCol(static_cast<size_t>(n), 0);
    std::vector<int> column(circuit.size(), 0);
    int columns = 0;
    for (size_t i = 0; i < circuit.size(); ++i) {
        const Gate &g = circuit.gates()[i];
        int lo = n, hi = -1, col = 0;
        for (int k = 0; k < g.numQubits(); ++k) {
            lo = std::min(lo, g.qubit(k));
            hi = std::max(hi, g.qubit(k));
        }
        // Multi-qubit connectors occupy every row they cross.
        for (int q = lo; q <= hi; ++q)
            col = std::max(col, nextCol[static_cast<size_t>(q)]);
        column[i] = col;
        for (int q = lo; q <= hi; ++q)
            nextCol[static_cast<size_t>(q)] = col + 1;
        columns = std::max(columns, col + 1);
    }
    if (max_columns > 0)
        columns = std::min(columns, max_columns);

    // Cell contents per (row, column); connector rows marked with '|'.
    std::vector<std::vector<std::string>> cells(
        static_cast<size_t>(2 * n - 1),
        std::vector<std::string>(static_cast<size_t>(columns)));
    for (size_t i = 0; i < circuit.size(); ++i) {
        if (column[i] >= columns)
            continue;
        const Gate &g = circuit.gates()[i];
        int lo = n, hi = -1;
        for (int k = 0; k < g.numQubits(); ++k) {
            lo = std::min(lo, g.qubit(k));
            hi = std::max(hi, g.qubit(k));
        }
        for (int k = 0; k < g.numQubits(); ++k)
            cells[static_cast<size_t>(2 * g.qubit(k))]
                 [static_cast<size_t>(column[i])] = symbolFor(g, k);
        for (int q = lo; q < hi; ++q) {
            auto &below = cells[static_cast<size_t>(2 * q + 1)]
                               [static_cast<size_t>(column[i])];
            below = "|";
            auto &mid = cells[static_cast<size_t>(2 * q)]
                             [static_cast<size_t>(column[i])];
            if (mid.empty() && !g.actsOn(q))
                mid = "|";
        }
    }

    // Column widths.
    std::vector<size_t> width(static_cast<size_t>(columns), 1);
    for (const auto &row : cells)
        for (int c = 0; c < columns; ++c)
            width[static_cast<size_t>(c)] =
                std::max(width[static_cast<size_t>(c)],
                         row[static_cast<size_t>(c)].size());

    std::string out;
    for (int r = 0; r < 2 * n - 1; ++r) {
        const bool wireRow = r % 2 == 0;
        if (wireRow)
            out += "q" + std::to_string(r / 2) + ": ";
        else
            out += std::string(std::to_string(r / 2).size() + 4, ' ');
        for (int c = 0; c < columns; ++c) {
            const std::string &cell =
                cells[static_cast<size_t>(r)][static_cast<size_t>(c)];
            const char fill = wireRow ? '-' : ' ';
            out += fill;
            out += cell;
            out += std::string(width[static_cast<size_t>(c)] - cell.size() +
                                   1,
                               fill);
        }
        out += "\n";
    }
    return out;
}

}  // namespace geyser
