#include "blocking/block.hpp"

#include <algorithm>
#include <stdexcept>

namespace geyser {

int
BlockedCircuit::blockCount() const
{
    int n = 0;
    for (const auto &r : rounds)
        n += static_cast<int>(r.blocks.size());
    return n;
}

Circuit
BlockedCircuit::localCircuit(const Block &block) const
{
    Circuit local(static_cast<int>(block.atoms.size()));
    for (const int idx : block.opIndices) {
        Gate g = source.gates()[static_cast<size_t>(idx)];
        for (int i = 0; i < g.numQubits(); ++i) {
            const auto it = std::find(block.atoms.begin(), block.atoms.end(),
                                      g.qubit(i));
            if (it == block.atoms.end())
                throw std::logic_error("localCircuit: gate leaves block");
            g.setQubit(i, static_cast<Qubit>(it - block.atoms.begin()));
        }
        local.append(g);
    }
    return local;
}

Circuit
BlockedCircuit::flatten() const
{
    Circuit out(source.numQubits());
    for (const auto &round : rounds)
        for (const auto &block : round.blocks)
            for (const int idx : block.opIndices)
                out.append(source.gates()[static_cast<size_t>(idx)]);
    return out;
}

void
BlockedCircuit::checkInvariants() const
{
    std::vector<int> owner(source.size(), -1);
    int blockId = 0;
    for (const auto &round : rounds) {
        for (const auto &block : round.blocks) {
            for (const int idx : block.opIndices) {
                if (idx < 0 || idx >= static_cast<int>(source.size()))
                    throw std::logic_error("block owns bad gate index");
                if (owner[static_cast<size_t>(idx)] != -1)
                    throw std::logic_error("gate owned by two blocks");
                owner[static_cast<size_t>(idx)] = blockId;
                const Gate &g = source.gates()[static_cast<size_t>(idx)];
                for (int i = 0; i < g.numQubits(); ++i) {
                    if (std::find(block.atoms.begin(), block.atoms.end(),
                                  g.qubit(i)) == block.atoms.end())
                        throw std::logic_error("block gate uses outside atom");
                }
            }
            ++blockId;
        }
    }
    for (size_t i = 0; i < source.size(); ++i)
        if (owner[i] == -1)
            throw std::logic_error("gate not owned by any block");

    // Per-qubit program order must be preserved by the flattened order.
    const Circuit flat = flatten();
    const auto origLists = source.qubitOpLists();
    const auto flatLists = flat.qubitOpLists();
    for (Qubit q = 0; q < source.numQubits(); ++q) {
        const auto &orig = origLists[static_cast<size_t>(q)];
        const auto &flatl = flatLists[static_cast<size_t>(q)];
        if (orig.size() != flatl.size())
            throw std::logic_error("flatten changed per-qubit gate count");
        for (size_t i = 0; i < orig.size(); ++i) {
            const Gate &a = source.gates()[static_cast<size_t>(orig[i])];
            const Gate &b = flat.gates()[static_cast<size_t>(flatl[i])];
            if (!(a == b))
                throw std::logic_error("flatten permuted per-qubit order");
        }
    }
}

}  // namespace geyser
