/**
 * @file
 * Circuit blocks (paper Sec 2.3): self-contained sets of operations over
 * at most three atoms. A blocked circuit is a sequence of rounds; blocks
 * within a round are mutually restriction-compatible and execute in
 * parallel, and the concatenation of all blocks in round/block order is
 * mathematically equivalent to the original circuit.
 */
#ifndef GEYSER_BLOCKING_BLOCK_HPP
#define GEYSER_BLOCKING_BLOCK_HPP

#include <vector>

#include "circuit/circuit.hpp"

namespace geyser {

/** One block: its atoms and the source-circuit gate indices it owns. */
struct Block
{
    /** Active atoms, in local-qubit order (local qubit i = atoms[i]). */
    std::vector<int> atoms;
    /** Indices into the source circuit's gate list, in execution order. */
    std::vector<int> opIndices;
    /** Total pulses of the owned gates. */
    long pulseCount = 0;
    /** True if any owned gate acts on 2+ atoms (creates a zone). */
    bool hasMultiQubitOps = false;
};

/** Blocks that can run concurrently. */
struct Round
{
    std::vector<Block> blocks;
};

/** A circuit partitioned into rounds of blocks. */
struct BlockedCircuit
{
    Circuit source;              ///< The mapped physical circuit.
    std::vector<Round> rounds;   ///< Every gate in exactly one block.

    /** Total number of blocks across rounds. */
    int blockCount() const;

    /**
     * The block's gates as a standalone circuit over local qubits
     * 0..atoms-1 (local qubit i = block.atoms[i]).
     */
    Circuit localCircuit(const Block &block) const;

    /**
     * Concatenate all blocks in round/block order into a circuit over
     * the source qubit numbering; unitary-equivalent to source.
     */
    Circuit flatten() const;

    /** Verify the blocking invariants; throws std::logic_error if broken:
     *  every gate owned exactly once, blocks self-contained, per-qubit
     *  gate order preserved. */
    void checkInvariants() const;
};

}  // namespace geyser

#endif  // GEYSER_BLOCKING_BLOCK_HPP
