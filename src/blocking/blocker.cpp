#include "blocking/blocker.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.hpp"

namespace geyser {

namespace {

/** A candidate block grown from the current frontier over one triangle. */
struct Candidate
{
    std::vector<int> atoms;      ///< Active atoms only.
    std::vector<int> opIndices;  ///< Consumption order.
    long score = 0;              ///< Pulses or gate count.
    bool hasMulti = false;
};

/**
 * Grow the maximal frontier-consistent block over the atom triple.
 * `frontier` maps each atom to the next unconsumed position in its
 * per-atom op list.
 */
Candidate
growCandidate(const Circuit &circuit,
              const std::vector<std::vector<int>> &opLists,
              const std::vector<int> &frontier,
              const std::array<int, 3> &triple, bool pulse_aware)
{
    Candidate cand;
    std::array<int, 3> local{};  // Local frontier offsets per triple slot.
    auto listOf = [&](int slot) -> const std::vector<int> & {
        return opLists[static_cast<size_t>(triple[static_cast<size_t>(slot)])];
    };
    auto slotOf = [&](Qubit q) {
        for (int s = 0; s < 3; ++s)
            if (triple[static_cast<size_t>(s)] == q)
                return s;
        return -1;
    };

    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (int s = 0; s < 3 && !progressed; ++s) {
            const auto &list = listOf(s);
            const int pos = frontier[static_cast<size_t>(
                                triple[static_cast<size_t>(s)])] +
                            local[static_cast<size_t>(s)];
            if (pos >= static_cast<int>(list.size()))
                continue;
            const int opIdx = list[static_cast<size_t>(pos)];
            const Gate &g = circuit.gates()[static_cast<size_t>(opIdx)];
            // The op is consumable if all of its qubits are in the triple
            // and it is the frontier op of each of them.
            bool ok = true;
            for (int i = 0; i < g.numQubits() && ok; ++i) {
                const int os = slotOf(g.qubit(i));
                if (os < 0) {
                    ok = false;
                    break;
                }
                const auto &olist = listOf(os);
                const int opos = frontier[static_cast<size_t>(
                                     triple[static_cast<size_t>(os)])] +
                                 local[static_cast<size_t>(os)];
                if (opos >= static_cast<int>(olist.size()) ||
                    olist[static_cast<size_t>(opos)] != opIdx)
                    ok = false;
            }
            if (!ok)
                continue;
            // Consume it.
            for (int i = 0; i < g.numQubits(); ++i)
                ++local[static_cast<size_t>(slotOf(g.qubit(i)))];
            cand.opIndices.push_back(opIdx);
            cand.score += pulse_aware ? g.pulses() : 1;
            if (g.numQubits() >= 2)
                cand.hasMulti = true;
            progressed = true;
        }
    }

    // Active atoms only (in triple order for a stable local mapping).
    for (int s = 0; s < 3; ++s) {
        const int atom = triple[static_cast<size_t>(s)];
        for (const int opIdx : cand.opIndices) {
            if (circuit.gates()[static_cast<size_t>(opIdx)].actsOn(atom)) {
                cand.atoms.push_back(atom);
                break;
            }
        }
    }
    return cand;
}

/** Restriction-zone compatibility between two candidate blocks. */
bool
candidatesCompatible(const Topology &topo, const Candidate &a,
                     const Candidate &b)
{
    for (const int qa : a.atoms)
        for (const int qb : b.atoms)
            if (qa == qb)
                return false;
    if (a.hasMulti || b.hasMulti)
        return topo.setsCompatible(a.atoms, b.atoms);
    return true;
}

}  // namespace

BlockedCircuit
blockCircuit(const Circuit &circuit, const Topology &topo,
             const BlockerOptions &options)
{
    if (!circuit.isPhysical())
        throw std::invalid_argument("blockCircuit: physical circuit required");
    if (topo.triangles().empty())
        throw std::invalid_argument("blockCircuit: topology has no triangles");

    BlockedCircuit blocked;
    blocked.source = circuit;

    const auto opLists = circuit.qubitOpLists();
    std::vector<int> frontier(static_cast<size_t>(circuit.numQubits()), 0);
    size_t consumed = 0;

    while (consumed < circuit.size()) {
        // Enumerate candidate blocks over every lattice triangle.
        std::vector<Candidate> candidates;
        for (const auto &tri : topo.triangles()) {
            Candidate cand = growCandidate(circuit, opLists, frontier, tri,
                                           options.pulseAware);
            if (!cand.opIndices.empty())
                candidates.push_back(std::move(cand));
        }
        if (candidates.empty())
            throw std::logic_error("blockCircuit: no progress possible");
        static obs::Counter &candidatesGrown =
            obs::counter("blocking.candidates_grown");
        candidatesGrown.add(static_cast<long>(candidates.size()));

        std::sort(candidates.begin(), candidates.end(),
                  [](const Candidate &a, const Candidate &b) {
                      if (a.score != b.score)
                          return a.score > b.score;
                      return a.opIndices[0] < b.opIndices[0];
                  });

        // Try each of the top seeds; complete greedily by score
        // (Algorithm 1's recursive family construction).
        const int seeds = std::min<int>(options.seedCandidates,
                                        static_cast<int>(candidates.size()));
        std::vector<const Candidate *> bestFamily;
        long bestScore = -1;
        for (int s = 0; s < seeds; ++s) {
            std::vector<const Candidate *> family{&candidates[static_cast<size_t>(s)]};
            long score = candidates[static_cast<size_t>(s)].score;
            for (const auto &cand : candidates) {
                bool ok = true;
                for (const auto *member : family) {
                    // Disjoint atom sets already imply disjoint op sets
                    // (every op's qubits lie inside its block's atoms).
                    if (member == &cand ||
                        !candidatesCompatible(topo, *member, cand)) {
                        ok = false;
                        break;
                    }
                }
                if (ok) {
                    family.push_back(&cand);
                    score += cand.score;
                }
            }
            if (score > bestScore) {
                bestScore = score;
                bestFamily = std::move(family);
            }
        }

        // Materialize the round and advance the frontier.
        Round round;
        for (const auto *cand : bestFamily) {
            Block block;
            block.atoms = cand->atoms;
            block.opIndices = cand->opIndices;
            block.hasMultiQubitOps = cand->hasMulti;
            for (const int idx : cand->opIndices)
                block.pulseCount +=
                    circuit.gates()[static_cast<size_t>(idx)].pulses();
            round.blocks.push_back(std::move(block));
            for (const int idx : cand->opIndices) {
                const Gate &g = circuit.gates()[static_cast<size_t>(idx)];
                for (int i = 0; i < g.numQubits(); ++i)
                    ++frontier[static_cast<size_t>(g.qubit(i))];
            }
            consumed += cand->opIndices.size();
        }
        blocked.rounds.push_back(std::move(round));
    }
    if (obs::enabled()) {
        obs::counter("blocking.rounds")
            .add(static_cast<long>(blocked.rounds.size()));
        obs::counter("blocking.blocks_formed").add(blocked.blockCount());
    }
    return blocked;
}

}  // namespace geyser
