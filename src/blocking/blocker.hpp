/**
 * @file
 * Circuit blocking (paper Sec 3.3, Algorithm 1): partition a mapped
 * physical circuit into rounds of concurrently-executable <=3-qubit
 * blocks, maximizing the operations (pulse-weighted by default) captured
 * per round while respecting restriction zones.
 */
#ifndef GEYSER_BLOCKING_BLOCKER_HPP
#define GEYSER_BLOCKING_BLOCKER_HPP

#include "blocking/block.hpp"
#include "topology/topology.hpp"

namespace geyser {

/** Tuning knobs for the blocking search. */
struct BlockerOptions
{
    /**
     * Score candidate blocks by pulse count (the paper's pulse-aware
     * blocking) instead of gate count; the gate-aware setting exists for
     * the ablation bench.
     */
    bool pulseAware = true;
    /**
     * Number of highest-scoring candidates tried as the seed of a block
     * family per round (Algorithm 1 lines 10-17). Each seed is completed
     * greedily; the best-scoring family wins.
     */
    int seedCandidates = 8;
};

/**
 * Block a routed physical circuit (gate operands are atoms of `topo`,
 * every multi-qubit gate acts on adjacent atoms). Every gate lands in
 * exactly one block; the result satisfies BlockedCircuit invariants.
 */
BlockedCircuit blockCircuit(const Circuit &circuit, const Topology &topo,
                            const BlockerOptions &options = {});

}  // namespace geyser

#endif  // GEYSER_BLOCKING_BLOCKER_HPP
