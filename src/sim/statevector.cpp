#include "sim/statevector.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "linalg/kernels/backend.hpp"

namespace geyser {

StateVector::StateVector(int num_qubits)
    : StateVector(num_qubits, 0)
{
}

StateVector::StateVector(int num_qubits, size_t basis_index)
    : numQubits_(num_qubits), amps_(size_t{1} << num_qubits)
{
    if (num_qubits < 0 || num_qubits > 28)
        throw std::invalid_argument("StateVector: unsupported qubit count");
    if (basis_index >= amps_.size())
        throw std::out_of_range("StateVector: basis index out of range");
    amps_[basis_index] = 1.0;
}

void
StateVector::apply(const Gate &gate)
{
    // Fast paths for the common physical gates.
    switch (gate.kind()) {
      case GateKind::X:
        applyX(gate.qubit(0));
        return;
      case GateKind::Z:
        applyZ(gate.qubit(0));
        return;
      case GateKind::Y:
        applyY(gate.qubit(0));
        return;
      case GateKind::CZ: {
        const size_t ma = size_t{1} << gate.qubit(0);
        const size_t mb = size_t{1} << gate.qubit(1);
        for (size_t i = 0; i < amps_.size(); ++i)
            if ((i & ma) && (i & mb))
                amps_[i] = -amps_[i];
        return;
      }
      case GateKind::CCZ: {
        const size_t m = (size_t{1} << gate.qubit(0)) |
                         (size_t{1} << gate.qubit(1)) |
                         (size_t{1} << gate.qubit(2));
        for (size_t i = 0; i < amps_.size(); ++i)
            if ((i & m) == m)
                amps_[i] = -amps_[i];
        return;
      }
      default:
        break;
    }
    std::vector<Qubit> qs;
    qs.reserve(static_cast<size_t>(gate.numQubits()));
    for (int i = 0; i < gate.numQubits(); ++i)
        qs.push_back(gate.qubit(i));
    applyMatrix(gate.matrix(), qs);
}

void
StateVector::apply(const Circuit &circuit)
{
    if (circuit.numQubits() > numQubits_)
        throw std::invalid_argument("StateVector::apply: circuit too wide");
    for (const auto &g : circuit.gates())
        apply(g);
}

void
StateVector::applyMatrix(const Matrix &m, const std::vector<Qubit> &qubits)
{
    const int k = static_cast<int>(qubits.size());
    const size_t sub = size_t{1} << k;
    if (m.rows() != static_cast<int>(sub) || m.cols() != static_cast<int>(sub))
        throw std::invalid_argument("applyMatrix: matrix/qubit mismatch");

    // Masks of the target qubits, and the mask of all of them.
    size_t qmask = 0;
    for (Qubit q : qubits) {
        assert(q >= 0 && q < numQubits_);
        qmask |= size_t{1} << q;
    }

    // One- and two-qubit gates — the overwhelmingly common cases — go
    // through the dispatched compute backend instead of the generic
    // gather/scatter loop below.
    if (k == 1) {
        Complex u[4];
        for (int r = 0; r < 2; ++r)
            for (int c = 0; c < 2; ++c)
                u[r * 2 + c] = m(r, c);
        kernels::active().svApply1q(amps_.data(), amps_.size(), qubits[0],
                                    u);
        return;
    }
    if (k == 2 && qubits[0] != qubits[1]) {
        Complex u[16];
        for (int r = 0; r < 4; ++r)
            for (int c = 0; c < 4; ++c)
                u[r * 4 + c] = m(r, c);
        kernels::active().svApply2q(amps_.data(), amps_.size(), qubits[0],
                                    qubits[1], u);
        return;
    }

    Complex local[8], out[8];
    const size_t outer = amps_.size() >> k;
    for (size_t o = 0; o < outer; ++o) {
        // Scatter the outer index bits into the non-target positions.
        size_t base = 0;
        size_t rem = o;
        for (int bit = 0; bit < numQubits_; ++bit) {
            const size_t bmask = size_t{1} << bit;
            if (qmask & bmask)
                continue;
            if (rem & 1)
                base |= bmask;
            rem >>= 1;
        }
        // Gather the 2^k amplitudes of this subspace.
        for (size_t v = 0; v < sub; ++v) {
            size_t idx = base;
            for (int b = 0; b < k; ++b)
                if (v & (size_t{1} << b))
                    idx |= size_t{1} << qubits[static_cast<size_t>(b)];
            local[v] = amps_[idx];
        }
        for (size_t r = 0; r < sub; ++r) {
            Complex acc{};
            for (size_t c = 0; c < sub; ++c)
                acc += m(static_cast<int>(r), static_cast<int>(c)) * local[c];
            out[r] = acc;
        }
        for (size_t v = 0; v < sub; ++v) {
            size_t idx = base;
            for (int b = 0; b < k; ++b)
                if (v & (size_t{1} << b))
                    idx |= size_t{1} << qubits[static_cast<size_t>(b)];
            amps_[idx] = out[v];
        }
    }
}

void
StateVector::applyX(Qubit q)
{
    const size_t mask = size_t{1} << q;
    for (size_t i = 0; i < amps_.size(); ++i)
        if (!(i & mask))
            std::swap(amps_[i], amps_[i | mask]);
}

void
StateVector::applyZ(Qubit q)
{
    const size_t mask = size_t{1} << q;
    for (size_t i = 0; i < amps_.size(); ++i)
        if (i & mask)
            amps_[i] = -amps_[i];
}

void
StateVector::applyY(Qubit q)
{
    const size_t mask = size_t{1} << q;
    for (size_t i = 0; i < amps_.size(); ++i) {
        if (!(i & mask)) {
            const Complex a0 = amps_[i];
            const Complex a1 = amps_[i | mask];
            amps_[i] = -kI * a1;
            amps_[i | mask] = kI * a0;
        }
    }
}

double
StateVector::probOne(Qubit q) const
{
    const size_t mask = size_t{1} << q;
    double p1 = 0.0;
    for (size_t i = 0; i < amps_.size(); ++i)
        if (i & mask)
            p1 += std::norm(amps_[i]);
    return p1;
}

bool
StateVector::applyAmplitudeDamping(Qubit q, double gamma, double u)
{
    const size_t mask = size_t{1} << q;
    const double p1 = probOne(q);
    const double pJump = gamma * p1;
    if (u < pJump) {
        // Jump (K1): every q=1 amplitude moves to its q=0 partner —
        // K1|psi> has no other support, so the in-place overwrite of
        // the old q=0 amplitudes is exactly the channel's action.
        const double inv = 1.0 / std::sqrt(p1);
        for (size_t i = 0; i < amps_.size(); ++i) {
            if (i & mask) {
                amps_[i & ~mask] = amps_[i] * inv;
                amps_[i] = 0.0;
            }
        }
        return true;
    }
    // No jump (K0 = diag(1, sqrt(1 - gamma))), renormalized by the
    // branch probability 1 - gamma * p1.
    const double invNorm = 1.0 / std::sqrt(1.0 - pJump);
    const double scale1 = std::sqrt(1.0 - gamma) * invNorm;
    for (size_t i = 0; i < amps_.size(); ++i)
        amps_[i] *= (i & mask) ? scale1 : invNorm;
    return false;
}

Distribution
StateVector::probabilities() const
{
    Distribution p(amps_.size());
    for (size_t i = 0; i < amps_.size(); ++i)
        p[i] = std::norm(amps_[i]);
    return p;
}

Complex
StateVector::innerProduct(const StateVector &other) const
{
    if (dim() != other.dim())
        throw std::invalid_argument("innerProduct: dimension mismatch");
    Complex acc{};
    for (size_t i = 0; i < amps_.size(); ++i)
        acc += std::conj(amps_[i]) * other.amps_[i];
    return acc;
}

double
StateVector::normSquared() const
{
    double s = 0.0;
    for (const auto &a : amps_)
        s += std::norm(a);
    return s;
}

Distribution
idealDistribution(const Circuit &circuit)
{
    StateVector sv(circuit.numQubits());
    sv.apply(circuit);
    return sv.probabilities();
}

}  // namespace geyser
