/**
 * @file
 * Composable noise channels for the trajectory simulator.
 *
 * Each channel is a `NoiseSource`: an object with hooks that the
 * trajectory engine calls at fixed points of a shot (shot start, before
 * a gate fires, after it fires, on idle time, at readout). Per-shot
 * mutable state — the lost-atom set, per-channel event tallies, the
 * legacy sequential RNG — lives in a `ShotContext` owned by the engine,
 * so one `NoiseSource` instance is shared by every trajectory across
 * every worker thread without synchronization.
 *
 * RNG discipline: every extended channel draws from a `StreamRng`
 * keyed on (shotSeed, channelId, gateIndex) — a counter-derived
 * splitmix64 stream. Consequences, relied on by tests:
 *  - toggling channel B never changes channel A's draws (streams are
 *    keyed, not sequential), so per-channel ablations at one seed are
 *    directly comparable;
 *  - the distribution is invariant under the order channels are
 *    registered in (TrajectoryConfig::reverseChannelOrder flips the
 *    order; verify asserts bit-identity);
 *  - serial and parallel runs agree bit-for-bit (no draw depends on
 *    scheduling).
 *
 * The one exception is `LegacyPauliAdapter`: the paper's Sec-4/Sec-6
 * model predates this architecture and its published numbers are pinned
 * to a *sequential* per-shot mt19937_64 (`ShotContext::legacyRng`).
 * The adapter replays exactly the pre-refactor draw order — including
 * degenerate zero-probability draws — so `NoiseModel::paperDefault()`
 * distributions are bit-identical to the pre-refactor simulator
 * (tests/golden/noise_legacy_golden.txt).
 */
#ifndef GEYSER_SIM_NOISE_CHANNEL_HPP
#define GEYSER_SIM_NOISE_CHANNEL_HPP

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "sim/noise.hpp"
#include "sim/statevector.hpp"

namespace geyser {

/**
 * Counter-derived random stream: the state is a hash of
 * (shotSeed, channelId, eventIndex) and draws advance it with the
 * splitmix64 sequence. Cheap to construct per event, statistically
 * independent across keys, and independent of how many draws any other
 * stream made.
 */
class StreamRng
{
  public:
    StreamRng(uint64_t shot_seed, NoiseChannelId channel,
              uint64_t event_index);

    /** Uniform double in [0, 1) with 53 random bits. */
    double uniform();

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p) { return uniform() < p; }

    /** Uniform integer in [0, n). Requires n > 0. */
    int uniformInt(int n);

  private:
    uint64_t next64();

    uint64_t state_;
};

/** Reserved event index for per-shot (not per-gate) draws. */
inline constexpr uint64_t kShotEventIndex = ~uint64_t{0};

/** Per-shot mutable state shared by the engine and every channel. */
struct ShotContext
{
    ShotContext(uint64_t shot_seed, int num_qubits)
        : shotSeed(shot_seed), numQubits(num_qubits), legacyRng(shot_seed)
    {
    }

    uint64_t shotSeed;
    int numQubits;
    /**
     * The pre-refactor sequential per-shot stream. Only the legacy
     * compatibility adapter may draw from it; extended channels use
     * StreamRng so they cannot perturb it.
     */
    Rng legacyRng;

    /** Lost-atom flags (lazily sized by markLost). */
    std::vector<char> lost;
    bool anyLost = false;

    /** Events applied per channel this shot (flips, jumps, losses...). */
    std::array<uint64_t, kNumNoiseChannels> events{};

    bool isLost(Qubit q) const
    {
        return anyLost && static_cast<size_t>(q) < lost.size() &&
               lost[static_cast<size_t>(q)] != 0;
    }

    void markLost(Qubit q)
    {
        if (lost.empty())
            lost.assign(static_cast<size_t>(numQubits), 0);
        lost[static_cast<size_t>(q)] = 1;
        anyLost = true;
    }

    void countEvent(NoiseChannelId id, uint64_t n = 1)
    {
        events[static_cast<size_t>(id)] += n;
    }
};

/** One gate occurrence, with the precomputed context channels need. */
struct GateEvent
{
    const Gate *gate = nullptr;
    /** Position in the circuit; keys per-gate RNG streams. */
    size_t index = 0;
    /**
     * Restriction-zone atoms of a multi-qubit gate (crosstalk), or
     * nullptr when crosstalk is off / the gate is single-qubit.
     */
    const std::vector<int> *zone = nullptr;
    /**
     * Idle pulses each operand accumulated since its previous gate
     * (ASAP schedule), or nullptr when idle dephasing is off.
     */
    const std::array<long, 3> *idlePulses = nullptr;
};

/**
 * One noise channel. Hooks default to no-ops; implementations override
 * the ones their physics needs. All hooks must be pure w.r.t. the
 * source object (const methods): per-shot state lives in ShotContext.
 */
class NoiseSource
{
  public:
    virtual ~NoiseSource() = default;

    /** Stable channel identity (keys the RNG stream and counters). */
    virtual NoiseChannelId id() const = 0;

    /** Channel name, for counters and reports. */
    const char *name() const { return noiseChannelName(id()); }

    /**
     * True for relaxation channels (amplitude damping): their onGate
     * action does not commute with Pauli injection, so the engine runs
     * them in a second, canonical phase after every injection channel.
     * With that grouping the composed per-gate map is independent of
     * the order sources are registered in — injection channels commute
     * with each other up to a global phase — which is the
     * order-invariance property the verifier asserts bit-exactly.
     */
    virtual bool isRelaxation() const { return false; }

    /** Once per shot, before any gate (pre-shot loss sampling). */
    virtual void onShotStart(ShotContext &ctx) const { (void)ctx; }

    /**
     * Before `ev.gate` fires (and before the engine decides whether it
     * fires at all): the place to sample mid-circuit atom loss.
     */
    virtual void onGateStart(const GateEvent &ev, ShotContext &ctx) const
    {
        (void)ev;
        (void)ctx;
    }

    /**
     * Idle time elapsing on the gate's operands just before it fires.
     * Only called for gates that actually fire.
     */
    virtual void onIdle(StateVector &sv, const GateEvent &ev,
                        ShotContext &ctx) const
    {
        (void)sv;
        (void)ev;
        (void)ctx;
    }

    /** After the gate's unitary was applied. */
    virtual void onGate(StateVector &sv, const GateEvent &ev,
                        ShotContext &ctx) const
    {
        (void)sv;
        (void)ev;
        (void)ctx;
    }

    /** Transform the shot's readout distribution (confusion matrices). */
    virtual void onReadout(Distribution &p, ShotContext &ctx) const
    {
        (void)p;
        (void)ctx;
    }
};

/**
 * Instantiate one NoiseSource per enabled channel of `model`, in
 * NoiseChannelId order (legacy adapter first). The returned sources
 * borrow nothing from `model`; they are safe to use across threads for
 * the lifetime of the simulation.
 */
std::vector<std::unique_ptr<NoiseSource>>
buildNoiseSources(const NoiseModel &model);

}  // namespace geyser

#endif  // GEYSER_SIM_NOISE_CHANNEL_HPP
