#include "sim/unitary_sim.hpp"

#include <stdexcept>

#include "sim/statevector.hpp"

namespace geyser {

Matrix
circuitUnitary(const Circuit &circuit)
{
    const int n = circuit.numQubits();
    if (n > 14)
        throw std::invalid_argument("circuitUnitary: circuit too wide");
    const size_t dim = size_t{1} << n;
    Matrix u(static_cast<int>(dim), static_cast<int>(dim));
    for (size_t j = 0; j < dim; ++j) {
        StateVector sv(n, j);
        sv.apply(circuit);
        for (size_t i = 0; i < dim; ++i)
            u(static_cast<int>(i), static_cast<int>(j)) = sv.amplitudes()[i];
    }
    return u;
}

double
circuitHsd(const Circuit &a, const Circuit &b)
{
    if (a.numQubits() != b.numQubits())
        throw std::invalid_argument("circuitHsd: width mismatch");
    return hilbertSchmidtDistance(circuitUnitary(a), circuitUnitary(b));
}

}  // namespace geyser
