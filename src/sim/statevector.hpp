/**
 * @file
 * Dense statevector simulator: exact ideal-output computation for the
 * TVD evaluation and the engine behind the unitary builder and the noisy
 * trajectory simulator.
 */
#ifndef GEYSER_SIM_STATEVECTOR_HPP
#define GEYSER_SIM_STATEVECTOR_HPP

#include <vector>

#include "circuit/circuit.hpp"
#include "common/types.hpp"
#include "linalg/matrix.hpp"

namespace geyser {

/**
 * State of an n-qubit register. Basis index bit k is the value of qubit
 * k (qubit 0 = least-significant bit).
 */
class StateVector
{
  public:
    /** |0...0> over n qubits. */
    explicit StateVector(int num_qubits);

    /** Basis state |index> over n qubits. */
    StateVector(int num_qubits, size_t basis_index);

    int numQubits() const { return numQubits_; }
    size_t dim() const { return amps_.size(); }

    const std::vector<Complex> &amplitudes() const { return amps_; }
    std::vector<Complex> &amplitudes() { return amps_; }

    /** Apply an arbitrary gate (logical or physical, 1-3 qubits). */
    void apply(const Gate &gate);

    /** Apply every gate of a circuit in order. */
    void apply(const Circuit &circuit);

    /**
     * Apply a k-qubit matrix to the given qubits; qubits[0] is the local
     * least-significant bit. The matrix must be 2^k x 2^k.
     */
    void applyMatrix(const Matrix &m, const std::vector<Qubit> &qubits);

    /** Fast Pauli-X on one qubit (used by the noise trajectory sim). */
    void applyX(Qubit q);

    /** Fast Pauli-Z on one qubit. */
    void applyZ(Qubit q);

    /** Fast Pauli-Y on one qubit. */
    void applyY(Qubit q);

    /** Probability that qubit q reads 1. */
    double probOne(Qubit q) const;

    /**
     * One amplitude-damping (T1) trajectory step on qubit q: with
     * probability gamma * P(q = 1) the state jumps (K1, the qubit
     * collapses to |0>); otherwise the no-jump Kraus K0 =
     * diag(1, sqrt(1 - gamma)) is applied. Either branch renormalizes.
     * `u` is the caller's uniform [0, 1) draw deciding the branch
     * (passed in so the RNG stream stays with the noise channel).
     * Returns true when the jump occurred.
     */
    bool applyAmplitudeDamping(Qubit q, double gamma, double u);

    /** |amplitude|^2 per basis state. */
    Distribution probabilities() const;

    /** Inner product <this|other>. */
    Complex innerProduct(const StateVector &other) const;

    /** Sum of |amplitude|^2 (should be 1 for a valid state). */
    double normSquared() const;

  private:
    int numQubits_ = 0;
    std::vector<Complex> amps_;
};

/** Ideal output distribution of a circuit started from |0...0>. */
Distribution idealDistribution(const Circuit &circuit);

}  // namespace geyser

#endif  // GEYSER_SIM_STATEVECTOR_HPP
