/**
 * @file
 * Exact density-matrix simulator with Kraus noise channels — the exact
 * counterpart of the Monte-Carlo trajectory engine (the paper's IBMQ
 * noisy simulation is Kraus-based). Practical for up to ~7 qubits
 * (the state is 4^n complex numbers); used to validate the trajectory
 * simulator and for exact small-system studies.
 */
#ifndef GEYSER_SIM_DENSITY_MATRIX_HPP
#define GEYSER_SIM_DENSITY_MATRIX_HPP

#include "circuit/circuit.hpp"
#include "common/types.hpp"
#include "linalg/matrix.hpp"
#include "sim/noise.hpp"

namespace geyser {

/**
 * An n-qubit density matrix rho. Basis index bit k is qubit k, matching
 * StateVector.
 */
class DensityMatrix
{
  public:
    /** |0...0><0...0| over n qubits. */
    explicit DensityMatrix(int num_qubits);

    int numQubits() const { return numQubits_; }
    size_t dim() const { return size_t{1} << numQubits_; }

    const Matrix &rho() const { return rho_; }

    /** Apply a unitary gate: rho -> U rho U^dagger. */
    void apply(const Gate &gate);

    /** Apply every gate of a circuit (no noise). */
    void apply(const Circuit &circuit);

    /**
     * Apply the bit/phase-flip channel of `noise` to one qubit:
     * rho -> (1-p) rho + p P rho P for each enabled Pauli channel.
     */
    void applyFlipChannel(Qubit qubit, double bit_flip, double phase_flip);

    /**
     * Apply a gate followed by the noise model's per-qubit channels on
     * its operands — the exact semantics the trajectory simulator
     * samples.
     */
    void applyNoisy(const Gate &gate, const NoiseModel &noise);

    /** Apply a whole circuit with noise after every gate. */
    void applyNoisy(const Circuit &circuit, const NoiseModel &noise);

    /** Measurement probabilities (the diagonal of rho). */
    Distribution probabilities() const;

    /** Tr(rho); 1 for a valid state. */
    double traceReal() const;

    /** Tr(rho^2); 1 for pure states, < 1 for mixed. */
    double purity() const;

  private:
    void applyMatrix(const Matrix &u, const std::vector<Qubit> &qubits);

    int numQubits_ = 0;
    Matrix rho_;
};

/** Exact noisy output distribution (density-matrix evolution). */
Distribution exactNoisyDistribution(const Circuit &circuit,
                                    const NoiseModel &noise);

}  // namespace geyser

#endif  // GEYSER_SIM_DENSITY_MATRIX_HPP
