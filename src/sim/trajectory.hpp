/**
 * @file
 * Monte-Carlo trajectory simulator: the stand-in for the paper's IBMQ
 * QASM noisy simulation. Each trajectory executes the circuit once with
 * every enabled noise channel (sim/noise_channel.hpp) sampling its
 * errors; the full probability vectors of the trajectories are averaged
 * (much lower variance than sampling shots), which converges to the
 * exact output of the composed channel.
 */
#ifndef GEYSER_SIM_TRAJECTORY_HPP
#define GEYSER_SIM_TRAJECTORY_HPP

#include "circuit/circuit.hpp"
#include "common/types.hpp"
#include "sim/noise.hpp"
#include "topology/topology.hpp"

namespace geyser {

/** Configuration for a noisy-output estimate. */
struct TrajectoryConfig
{
    /** Trajectory count; must be positive (validated at entry). */
    int trajectories = 200;
    uint64_t seed = 1234;
    /**
     * Use the global thread pool to run trajectories in parallel.
     * Results are bit-identical to the serial path: trajectories are
     * accumulated in fixed-size chunks whose partial sums are combined
     * in chunk order, so the floating-point reduction order never
     * depends on this flag or on the worker count.
     */
    bool parallel = true;
    /**
     * Atom arrangement, needed only when the noise model enables
     * Rydberg crosstalk (restriction zones depend on positions). Must
     * outlive the simulation call. A crosstalk-enabled model without a
     * topology is rejected with ValidationError.
     */
    const Topology *topology = nullptr;
    /**
     * Run the trajectory loop even when the noise model is noiseless
     * (normally short-circuited to the statevector output). Used by the
     * differential verifier to cross-check the trajectory engine
     * itself. A noiseless forced run is deterministic, so the engine
     * runs exactly one trajectory regardless of `trajectories`.
     */
    bool forceTrajectories = false;
    /**
     * Debug/verify knob: apply the noise channels in reverse
     * registration order. Because every extended channel draws from its
     * own counter-derived stream, the output distribution must be
     * bit-identical either way; the differential verifier asserts this.
     */
    bool reverseChannelOrder = false;
};

/**
 * Average output distribution of `circuit` under `noise`.
 *
 * Validated at entry (ValidationError):
 *  - config.trajectories must be positive;
 *  - noise.crosstalkPhase > 0 requires config.topology;
 *  - noise.perPulse and noise.idleDephasing > 0 require a physical
 *    circuit (pulse counts / the ASAP schedule are undefined
 *    otherwise); the error names the first offending gate.
 */
Distribution noisyDistribution(const Circuit &circuit,
                               const NoiseModel &noise,
                               const TrajectoryConfig &config = {});

/**
 * TVD of the noisy output of `circuit` against the ideal output of
 * `reference` (paper Fig 15-18 metric; `reference` is the original
 * logical circuit, `circuit` the compiled one).
 */
double noisyTvd(const Circuit &circuit, const Circuit &reference,
                const NoiseModel &noise, const TrajectoryConfig &config = {});

}  // namespace geyser

#endif  // GEYSER_SIM_TRAJECTORY_HPP
