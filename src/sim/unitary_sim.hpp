/**
 * @file
 * Exact unitary construction for small circuits — the engine behind the
 * Hilbert-Schmidt distance computations in block composition (the role
 * qiskit-aer's unitary simulator plays in the paper).
 */
#ifndef GEYSER_SIM_UNITARY_SIM_HPP
#define GEYSER_SIM_UNITARY_SIM_HPP

#include "circuit/circuit.hpp"
#include "linalg/matrix.hpp"

namespace geyser {

/**
 * The 2^n x 2^n unitary of a circuit (column j = circuit applied to basis
 * state |j>). Practical for n <= ~12.
 */
Matrix circuitUnitary(const Circuit &circuit);

/**
 * Hilbert-Schmidt distance between the unitaries of two same-width
 * circuits (paper Sec 2.3).
 */
double circuitHsd(const Circuit &a, const Circuit &b);

}  // namespace geyser

#endif  // GEYSER_SIM_UNITARY_SIM_HPP
