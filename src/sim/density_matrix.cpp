#include "sim/density_matrix.hpp"

#include <cassert>
#include <stdexcept>

#include "obs/obs.hpp"

namespace geyser {

DensityMatrix::DensityMatrix(int num_qubits)
    : numQubits_(num_qubits),
      rho_(1 << num_qubits, 1 << num_qubits)
{
    if (num_qubits < 0 || num_qubits > 8)
        throw std::invalid_argument(
            "DensityMatrix: too many qubits for exact simulation");
    rho_(0, 0) = 1.0;
}

void
DensityMatrix::applyMatrix(const Matrix &u, const std::vector<Qubit> &qubits)
{
    const int k = static_cast<int>(qubits.size());
    const size_t sub = size_t{1} << k;
    const size_t d = dim();
    assert(u.rows() == static_cast<int>(sub));

    size_t qmask = 0;
    for (const Qubit q : qubits)
        qmask |= size_t{1} << q;

    Complex local[8], out[8];
    const size_t outer = d >> k;

    auto expand = [&](size_t o) {
        size_t base = 0;
        size_t rem = o;
        for (int bit = 0; bit < numQubits_; ++bit) {
            const size_t bmask = size_t{1} << bit;
            if (qmask & bmask)
                continue;
            if (rem & 1)
                base |= bmask;
            rem >>= 1;
        }
        return base;
    };
    auto lift = [&](size_t base, size_t v) {
        size_t idx = base;
        for (int b = 0; b < k; ++b)
            if (v & (size_t{1} << b))
                idx |= size_t{1} << qubits[static_cast<size_t>(b)];
        return idx;
    };

    // rho -> U rho (transform the row space of every column).
    for (size_t c = 0; c < d; ++c) {
        for (size_t o = 0; o < outer; ++o) {
            const size_t base = expand(o);
            for (size_t v = 0; v < sub; ++v)
                local[v] = rho_(static_cast<int>(lift(base, v)),
                                static_cast<int>(c));
            for (size_t r = 0; r < sub; ++r) {
                Complex acc{};
                for (size_t kk = 0; kk < sub; ++kk)
                    acc += u(static_cast<int>(r), static_cast<int>(kk)) *
                           local[kk];
                out[r] = acc;
            }
            for (size_t v = 0; v < sub; ++v)
                rho_(static_cast<int>(lift(base, v)), static_cast<int>(c)) =
                    out[v];
        }
    }
    // rho -> rho U^dagger (transform the column space of every row,
    // with conj(u)).
    for (size_t r = 0; r < d; ++r) {
        for (size_t o = 0; o < outer; ++o) {
            const size_t base = expand(o);
            for (size_t v = 0; v < sub; ++v)
                local[v] = rho_(static_cast<int>(r),
                                static_cast<int>(lift(base, v)));
            for (size_t c = 0; c < sub; ++c) {
                Complex acc{};
                for (size_t kk = 0; kk < sub; ++kk)
                    acc += std::conj(u(static_cast<int>(c),
                                       static_cast<int>(kk))) *
                           local[kk];
                out[c] = acc;
            }
            for (size_t v = 0; v < sub; ++v)
                rho_(static_cast<int>(r), static_cast<int>(lift(base, v))) =
                    out[v];
        }
    }
}

void
DensityMatrix::apply(const Gate &gate)
{
    std::vector<Qubit> qs;
    qs.reserve(static_cast<size_t>(gate.numQubits()));
    for (int i = 0; i < gate.numQubits(); ++i)
        qs.push_back(gate.qubit(i));
    applyMatrix(gate.matrix(), qs);
}

void
DensityMatrix::apply(const Circuit &circuit)
{
    if (circuit.numQubits() > numQubits_)
        throw std::invalid_argument("DensityMatrix::apply: circuit too wide");
    for (const auto &g : circuit.gates())
        apply(g);
}

void
DensityMatrix::applyFlipChannel(Qubit qubit, double bit_flip,
                                double phase_flip)
{
    const size_t mask = size_t{1} << qubit;
    const size_t d = dim();
    if (bit_flip > 0.0) {
        // rho' = (1-p) rho + p X rho X.
        Matrix next(static_cast<int>(d), static_cast<int>(d));
        for (size_t r = 0; r < d; ++r)
            for (size_t c = 0; c < d; ++c)
                next(static_cast<int>(r), static_cast<int>(c)) =
                    (1.0 - bit_flip) * rho_(static_cast<int>(r),
                                            static_cast<int>(c)) +
                    bit_flip * rho_(static_cast<int>(r ^ mask),
                                    static_cast<int>(c ^ mask));
        rho_ = std::move(next);
    }
    if (phase_flip > 0.0) {
        // rho' = (1-p) rho + p Z rho Z: off-diagonal (in this qubit)
        // entries are scaled by (1 - 2p).
        for (size_t r = 0; r < d; ++r) {
            for (size_t c = 0; c < d; ++c) {
                const bool rb = r & mask, cb = c & mask;
                if (rb != cb)
                    rho_(static_cast<int>(r), static_cast<int>(c)) *=
                        1.0 - 2.0 * phase_flip;
            }
        }
    }
}

void
DensityMatrix::applyNoisy(const Gate &gate, const NoiseModel &noise)
{
    apply(gate);
    const double pb = noise.bitFlipFor(gate);
    const double pp = noise.phaseFlipFor(gate);
    for (int i = 0; i < gate.numQubits(); ++i)
        applyFlipChannel(gate.qubit(i), pb, pp);
}

void
DensityMatrix::applyNoisy(const Circuit &circuit, const NoiseModel &noise)
{
    if (circuit.numQubits() > numQubits_)
        throw std::invalid_argument("DensityMatrix: circuit too wide");
    for (const auto &g : circuit.gates())
        applyNoisy(g, noise);
}

Distribution
DensityMatrix::probabilities() const
{
    Distribution p(dim());
    for (size_t i = 0; i < dim(); ++i)
        p[i] = rho_(static_cast<int>(i), static_cast<int>(i)).real();
    return p;
}

double
DensityMatrix::traceReal() const
{
    return rho_.trace().real();
}

double
DensityMatrix::purity() const
{
    // Tr(rho^2) = sum_ij rho_ij rho_ji = sum_ij |rho_ij|^2 (Hermitian).
    double s = 0.0;
    for (const auto &v : rho_.data())
        s += std::norm(v);
    return s;
}

Distribution
exactNoisyDistribution(const Circuit &circuit, const NoiseModel &noise)
{
    obs::Span span("sim.density_matrix", "sim");
    span.arg("qubits", circuit.numQubits());
    span.arg("gates", static_cast<double>(circuit.size()));
    static obs::Counter &runs = obs::counter("sim.density_matrix_runs");
    runs.add();
    DensityMatrix dm(circuit.numQubits());
    dm.applyNoisy(circuit, noise);
    return dm.probabilities();
}

}  // namespace geyser
