#include "sim/noise.hpp"

#include <cmath>

#include "common/error.hpp"

namespace geyser {

namespace {

constexpr const char *kChannelNames[kNumNoiseChannels] = {
    "legacy-pauli",  "amp-damp",         "idle-dephasing",
    "atom-loss",     "correlated-pauli", "readout",
};

}  // namespace

const char *
noiseChannelName(NoiseChannelId id)
{
    return kChannelNames[static_cast<size_t>(id)];
}

NoiseChannelId
noiseChannelFromName(const std::string &name)
{
    for (size_t i = 0; i < kNumNoiseChannels; ++i)
        if (name == kChannelNames[i])
            return static_cast<NoiseChannelId>(i);
    std::string known;
    for (size_t i = 0; i < kNumNoiseChannels; ++i) {
        if (i)
            known += ", ";
        known += kChannelNames[i];
    }
    throw ValidationError("unknown noise channel '" + name +
                          "' (known: " + known + ")");
}

const std::vector<std::string> &
noiseChannelNames()
{
    static const std::vector<std::string> names(
        kChannelNames, kChannelNames + kNumNoiseChannels);
    return names;
}

double
NoiseModel::bitFlipFor(const Gate &gate) const
{
    return perPulse ? bitFlip * gate.pulses() : bitFlip;
}

double
NoiseModel::phaseFlipFor(const Gate &gate) const
{
    return perPulse ? phaseFlip * gate.pulses() : phaseFlip;
}

void
NoiseModel::setChannelRate(NoiseChannelId id, double rate)
{
    // Every channel parameter is a probability except idle dephasing,
    // whose rate-per-pulse feeds an exponential that saturates at 1/2
    // on its own — any finite non-negative rate is meaningful there.
    const bool probability = id != NoiseChannelId::IdleDephasing;
    if (!std::isfinite(rate) || rate < 0.0 ||
        (probability && rate > 1.0))
        throw ValidationError(std::string("noise channel '") +
                              noiseChannelName(id) +
                              (probability ? "': rate must be in [0, 1]"
                                           : "': rate must be >= 0"));
    switch (id) {
      case NoiseChannelId::LegacyPauli:
        bitFlip = rate;
        phaseFlip = rate;
        break;
      case NoiseChannelId::AmpDamping:
        ampDamping = rate;
        break;
      case NoiseChannelId::IdleDephasing:
        idleDephasing = rate;
        break;
      case NoiseChannelId::AtomLossTracking:
        lossPerGate = rate;
        break;
      case NoiseChannelId::CorrelatedPauli:
        correlatedPauli = rate;
        break;
      case NoiseChannelId::ReadoutError:
        readoutError = rate;
        break;
    }
}

NoiseModel
NoiseModel::singleChannel(NoiseChannelId id, double rate)
{
    NoiseModel nm = noiseless();
    nm.setChannelRate(id, rate);
    return nm;
}

void
applyNoisyGate(StateVector &sv, const Gate &gate, const NoiseModel &noise,
               Rng &rng)
{
    sv.apply(gate);
    if (noise.isNoiseless())
        return;
    const double pb = noise.bitFlipFor(gate);
    const double pp = noise.phaseFlipFor(gate);
    for (int i = 0; i < gate.numQubits(); ++i) {
        const Qubit q = gate.qubit(i);
        if (rng.bernoulli(pb))
            sv.applyX(q);
        if (rng.bernoulli(pp))
            sv.applyZ(q);
    }
}

}  // namespace geyser
