#include "sim/noise.hpp"

namespace geyser {

double
NoiseModel::bitFlipFor(const Gate &gate) const
{
    return perPulse ? bitFlip * gate.pulses() : bitFlip;
}

double
NoiseModel::phaseFlipFor(const Gate &gate) const
{
    return perPulse ? phaseFlip * gate.pulses() : phaseFlip;
}

void
applyNoisyGate(StateVector &sv, const Gate &gate, const NoiseModel &noise,
               Rng &rng)
{
    sv.apply(gate);
    if (noise.isNoiseless())
        return;
    const double pb = noise.bitFlipFor(gate);
    const double pp = noise.phaseFlipFor(gate);
    for (int i = 0; i < gate.numQubits(); ++i) {
        const Qubit q = gate.qubit(i);
        if (rng.bernoulli(pb))
            sv.applyX(q);
        if (rng.bernoulli(pp))
            sv.applyZ(q);
    }
}

}  // namespace geyser
