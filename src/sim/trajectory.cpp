#include "sim/trajectory.hpp"

#include <algorithm>
#include <array>
#include <memory>
#include <string>

#include "circuit/schedule.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "metrics/metrics.hpp"
#include "obs/obs.hpp"
#include "sim/noise_channel.hpp"

namespace geyser {

namespace {

/** Per-channel event tally accumulated across trajectories. */
using ChannelTally = std::array<uint64_t, kNumNoiseChannels>;

/** Precomputed per-circuit context shared by every trajectory. */
struct EngineContext
{
    /** Sources in application order (already reversed if requested). */
    std::vector<const NoiseSource *> sources;
    /** Restriction zones per gate (empty when crosstalk is off). */
    std::vector<std::vector<int>> zones;
    /** Idle pulses per gate operand (empty when idle dephasing off). */
    std::vector<std::array<long, 3>> idle;
};

void
validateRequest(const Circuit &circuit, const NoiseModel &noise,
                const TrajectoryConfig &config)
{
    if (config.trajectories <= 0)
        throw ValidationError(
            "noisyDistribution: trajectory count must be positive (got " +
            std::to_string(config.trajectories) + ")");
    if (noise.crosstalkPhase > 0.0 && config.topology == nullptr)
        throw ValidationError(
            "noisyDistribution: crosstalkPhase > 0 requires a topology "
            "(restriction zones depend on atom positions); supply "
            "TrajectoryConfig::topology or disable the channel");
    const bool needsPulses = noise.perPulse && !noise.legacyNoiseless();
    const bool needsSchedule = noise.idleDephasing > 0.0;
    if (needsPulses || needsSchedule) {
        for (size_t gi = 0; gi < circuit.size(); ++gi) {
            const Gate &g = circuit.gates()[gi];
            if (g.isPhysical())
                continue;
            throw ValidationError(
                std::string("noisyDistribution: ") +
                (needsPulses ? "perPulse noise" : "idle dephasing") +
                " requires a physical circuit, but gate #" +
                std::to_string(gi) + " (" + g.toString() +
                ") has no pulse cost");
        }
    }
}

/**
 * Idle pulses accumulated by each operand of each gate before the gate
 * starts, from the ASAP schedule: a qubit that last finished at pulse
 * r and whose next gate starts at pulse s sat idle for s - r pulses.
 */
std::vector<std::array<long, 3>>
idleDurations(const Circuit &circuit)
{
    const Schedule sched = scheduleAsap(circuit);
    std::vector<std::array<long, 3>> idle(circuit.size(),
                                          {{0, 0, 0}});
    std::vector<long> readyAt(static_cast<size_t>(circuit.numQubits()), 0);
    for (size_t gi = 0; gi < circuit.size(); ++gi) {
        const Gate &g = circuit.gates()[gi];
        const long start = sched.start[gi];
        for (int i = 0; i < g.numQubits(); ++i) {
            const auto q = static_cast<size_t>(g.qubit(i));
            idle[gi][static_cast<size_t>(i)] = start - readyAt[q];
            readyAt[q] = start + g.pulses();
        }
    }
    return idle;
}

void
accumulateTrajectory(const Circuit &circuit, const EngineContext &engine,
                     uint64_t seed, Distribution &acc, ChannelTally &tally)
{
    ShotContext ctx(seed, circuit.numQubits());
    for (const NoiseSource *s : engine.sources)
        s->onShotStart(ctx);

    StateVector sv(circuit.numQubits());
    for (size_t gi = 0; gi < circuit.size(); ++gi) {
        const Gate &g = circuit.gates()[gi];
        GateEvent ev;
        ev.gate = &g;
        ev.index = gi;
        ev.zone = engine.zones.empty() ? nullptr : &engine.zones[gi];
        ev.idlePulses = engine.idle.empty() ? nullptr : &engine.idle[gi];
        for (const NoiseSource *s : engine.sources)
            s->onGateStart(ev, ctx);
        if (ctx.anyLost) {
            bool involvesLost = false;
            for (int i = 0; i < g.numQubits(); ++i)
                if (ctx.isLost(g.qubit(i)))
                    involvesLost = true;
            if (involvesLost)
                continue;
        }
        for (const NoiseSource *s : engine.sources)
            s->onIdle(sv, ev, ctx);
        sv.apply(g);
        // Two canonical phases: Pauli-type injection (commutes up to a
        // global phase), then relaxation (damping, which does not
        // commute with injection) — so registration order cannot
        // change the composed map. See NoiseSource::isRelaxation().
        for (const NoiseSource *s : engine.sources)
            if (!s->isRelaxation())
                s->onGate(sv, ev, ctx);
        for (const NoiseSource *s : engine.sources)
            if (s->isRelaxation())
                s->onGate(sv, ev, ctx);
    }

    auto p = sv.probabilities();
    if (ctx.anyLost) {
        // Depolarized readout: average each lost qubit over both values.
        for (Qubit q = 0; q < circuit.numQubits(); ++q) {
            if (!ctx.isLost(q))
                continue;
            const size_t mask = size_t{1} << q;
            for (size_t i = 0; i < p.size(); ++i) {
                if (!(i & mask)) {
                    const double avg = 0.5 * (p[i] + p[i | mask]);
                    p[i] = p[i | mask] = avg;
                }
            }
        }
    }
    for (const NoiseSource *s : engine.sources)
        s->onReadout(p, ctx);

    for (size_t i = 0; i < p.size(); ++i)
        acc[i] += p[i];
    for (size_t c = 0; c < kNumNoiseChannels; ++c)
        tally[c] += ctx.events[c];
}

/** Per-channel obs counters ("sim.noise.<channel>_events"). */
obs::Counter &
channelCounter(size_t channel)
{
    static std::array<obs::Counter *, kNumNoiseChannels> counters = [] {
        std::array<obs::Counter *, kNumNoiseChannels> out{};
        for (size_t c = 0; c < kNumNoiseChannels; ++c) {
            std::string name =
                noiseChannelName(static_cast<NoiseChannelId>(c));
            for (auto &ch : name)
                if (ch == '-')
                    ch = '_';
            out[c] = &obs::counter("sim.noise." + name + "_events");
        }
        return out;
    }();
    return *counters[channel];
}

}  // namespace

Distribution
noisyDistribution(const Circuit &circuit, const NoiseModel &noise,
                  const TrajectoryConfig &config)
{
    validateRequest(circuit, noise, config);
    const size_t dim = size_t{1} << circuit.numQubits();
    if (noise.isNoiseless() && !config.forceTrajectories)
        return idealDistribution(circuit);

    // A forced noiseless run is deterministic: every trajectory is the
    // plain statevector evolution, so one shot is the whole average.
    const int traj =
        noise.isNoiseless() ? 1 : config.trajectories;
    obs::Span span("sim.trajectories", "sim");
    span.arg("trajectories", traj);
    span.arg("qubits", circuit.numQubits());
    span.arg("parallel", config.parallel ? 1.0 : 0.0);
    static obs::Counter &trajectoriesRun =
        obs::counter("sim.trajectories_run");
    trajectoriesRun.add(traj);

    EngineContext engine;
    const auto owned = buildNoiseSources(noise);
    for (const auto &s : owned)
        engine.sources.push_back(s.get());
    if (config.reverseChannelOrder)
        std::reverse(engine.sources.begin(), engine.sources.end());
    // Precompute restriction zones once when crosstalk is enabled.
    if (noise.crosstalkPhase > 0.0 && config.topology != nullptr) {
        engine.zones.resize(circuit.size());
        for (size_t gi = 0; gi < circuit.size(); ++gi) {
            const Gate &g = circuit.gates()[gi];
            if (g.numQubits() < 2)
                continue;
            std::vector<int> involved;
            for (int i = 0; i < g.numQubits(); ++i)
                involved.push_back(g.qubit(i));
            engine.zones[gi] = config.topology->restrictionZone(involved);
        }
    }
    // Precompute the idle-duration pass when idle dephasing is enabled.
    if (noise.idleDephasing > 0.0)
        engine.idle = idleDurations(circuit);

    // Trajectories accumulate in fixed-size chunks and the chunk sums
    // combine in chunk order, so serial and parallel runs (on any worker
    // count) produce bit-identical distributions for the same seed.
    constexpr int kChunk = 16;
    const int chunks = (traj + kChunk - 1) / kChunk;
    std::vector<Distribution> partial(static_cast<size_t>(chunks),
                                      Distribution(dim, 0.0));
    std::vector<ChannelTally> tallies(static_cast<size_t>(chunks),
                                      ChannelTally{});
    auto runChunk = [&](int c) {
        const int begin = c * kChunk;
        const int end = std::min(traj, begin + kChunk);
        for (int t = begin; t < end; ++t)
            accumulateTrajectory(circuit, engine,
                                 config.seed + static_cast<uint64_t>(t),
                                 partial[static_cast<size_t>(c)],
                                 tallies[static_cast<size_t>(c)]);
    };
    if (config.parallel && chunks > 1) {
        globalPool().parallelFor(chunks, runChunk);
    } else {
        for (int c = 0; c < chunks; ++c)
            runChunk(c);
    }
    Distribution total(dim, 0.0);
    for (const auto &p : partial)
        for (size_t i = 0; i < dim; ++i)
            total[i] += p[i];
    for (auto &v : total)
        v /= traj;

    ChannelTally events{};
    for (const auto &t : tallies)
        for (size_t c = 0; c < kNumNoiseChannels; ++c)
            events[c] += t[c];
    for (size_t c = 0; c < kNumNoiseChannels; ++c) {
        if (events[c] == 0)
            continue;
        channelCounter(c).add(static_cast<long>(events[c]));
        if (span.active())
            span.arg(noiseChannelName(static_cast<NoiseChannelId>(c)),
                     static_cast<double>(events[c]));
    }
    if (span.active()) {
        const double seconds =
            static_cast<double>(span.elapsedMicros()) * 1e-6;
        if (seconds > 0.0)
            span.arg("traj_per_sec", traj / seconds);
    }
    return total;
}

double
noisyTvd(const Circuit &circuit, const Circuit &reference,
         const NoiseModel &noise, const TrajectoryConfig &config)
{
    const auto ideal = idealDistribution(reference);
    const auto noisy = noisyDistribution(circuit, noise, config);
    return totalVariationDistance(ideal, noisy);
}

}  // namespace geyser
