#include "sim/trajectory.hpp"

#include <algorithm>

#include "common/thread_pool.hpp"
#include "metrics/metrics.hpp"
#include "obs/obs.hpp"

namespace geyser {

namespace {

void
accumulateTrajectory(const Circuit &circuit, const NoiseModel &noise,
                     const std::vector<std::vector<int>> &zones,
                     uint64_t seed, Distribution &acc)
{
    Rng rng(seed);
    // Sample which atoms are lost for this shot (paper Sec 6): gates on
    // a lost atom do not fire and its readout is depolarized.
    std::vector<bool> lost;
    bool anyLost = false;
    if (noise.atomLoss > 0.0) {
        lost.assign(static_cast<size_t>(circuit.numQubits()), false);
        for (Qubit q = 0; q < circuit.numQubits(); ++q) {
            if (rng.bernoulli(noise.atomLoss)) {
                lost[static_cast<size_t>(q)] = true;
                anyLost = true;
            }
        }
    }

    StateVector sv(circuit.numQubits());
    for (size_t gi = 0; gi < circuit.size(); ++gi) {
        const Gate &g = circuit.gates()[gi];
        if (anyLost) {
            bool involvesLost = false;
            for (int i = 0; i < g.numQubits(); ++i)
                if (lost[static_cast<size_t>(g.qubit(i))])
                    involvesLost = true;
            if (involvesLost)
                continue;
        }
        applyNoisyGate(sv, g, noise, rng);
        // Rydberg crosstalk: spectator atoms in the restriction zone
        // pick up phase errors while the multi-qubit gate runs.
        if (!zones.empty() && g.numQubits() >= 2) {
            for (const int z : zones[gi])
                if (rng.bernoulli(noise.crosstalkPhase))
                    sv.applyZ(z);
        }
    }
    auto p = sv.probabilities();
    if (anyLost) {
        // Depolarized readout: average each lost qubit over both values.
        for (Qubit q = 0; q < circuit.numQubits(); ++q) {
            if (!lost[static_cast<size_t>(q)])
                continue;
            const size_t mask = size_t{1} << q;
            for (size_t i = 0; i < p.size(); ++i) {
                if (!(i & mask)) {
                    const double avg = 0.5 * (p[i] + p[i | mask]);
                    p[i] = p[i | mask] = avg;
                }
            }
        }
    }
    for (size_t i = 0; i < p.size(); ++i)
        acc[i] += p[i];
}

}  // namespace

Distribution
noisyDistribution(const Circuit &circuit, const NoiseModel &noise,
                  const TrajectoryConfig &config)
{
    const size_t dim = size_t{1} << circuit.numQubits();
    if (noise.isNoiseless() && !config.forceTrajectories)
        return idealDistribution(circuit);

    const int traj = std::max(1, config.trajectories);
    obs::Span span("sim.trajectories", "sim");
    span.arg("trajectories", traj);
    span.arg("qubits", circuit.numQubits());
    span.arg("parallel", config.parallel ? 1.0 : 0.0);
    static obs::Counter &trajectoriesRun =
        obs::counter("sim.trajectories_run");
    trajectoriesRun.add(traj);
    // Precompute restriction zones once when crosstalk is enabled.
    std::vector<std::vector<int>> zones;
    if (noise.crosstalkPhase > 0.0 && config.topology != nullptr) {
        zones.resize(circuit.size());
        for (size_t gi = 0; gi < circuit.size(); ++gi) {
            const Gate &g = circuit.gates()[gi];
            if (g.numQubits() < 2)
                continue;
            std::vector<int> involved;
            for (int i = 0; i < g.numQubits(); ++i)
                involved.push_back(g.qubit(i));
            zones[gi] = config.topology->restrictionZone(involved);
        }
    }
    // Trajectories accumulate in fixed-size chunks and the chunk sums
    // combine in chunk order, so serial and parallel runs (on any worker
    // count) produce bit-identical distributions for the same seed.
    constexpr int kChunk = 16;
    const int chunks = (traj + kChunk - 1) / kChunk;
    std::vector<Distribution> partial(static_cast<size_t>(chunks),
                                      Distribution(dim, 0.0));
    auto runChunk = [&](int c) {
        const int begin = c * kChunk;
        const int end = std::min(traj, begin + kChunk);
        for (int t = begin; t < end; ++t)
            accumulateTrajectory(circuit, noise, zones,
                                 config.seed + static_cast<uint64_t>(t),
                                 partial[static_cast<size_t>(c)]);
    };
    if (config.parallel && chunks > 1) {
        globalPool().parallelFor(chunks, runChunk);
    } else {
        for (int c = 0; c < chunks; ++c)
            runChunk(c);
    }
    Distribution total(dim, 0.0);
    for (const auto &p : partial)
        for (size_t i = 0; i < dim; ++i)
            total[i] += p[i];
    for (auto &v : total)
        v /= traj;
    if (span.active()) {
        const double seconds =
            static_cast<double>(span.elapsedMicros()) * 1e-6;
        if (seconds > 0.0)
            span.arg("traj_per_sec", traj / seconds);
    }
    return total;
}

double
noisyTvd(const Circuit &circuit, const Circuit &reference,
         const NoiseModel &noise, const TrajectoryConfig &config)
{
    const auto ideal = idealDistribution(reference);
    const auto noisy = noisyDistribution(circuit, noise, config);
    return totalVariationDistance(ideal, noisy);
}

}  // namespace geyser
