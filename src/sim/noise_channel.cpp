#include "sim/noise_channel.hpp"

#include <cmath>

namespace geyser {

namespace {

constexpr uint64_t kSplitMixGamma = 0x9e3779b97f4a7c15ull;

/** The splitmix64 output mix (Steele/Lea/Flood). */
uint64_t
mix64(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

}  // namespace

StreamRng::StreamRng(uint64_t shot_seed, NoiseChannelId channel,
                     uint64_t event_index)
{
    // Fold the three key parts through the mixer so that nearby keys
    // (consecutive gates, adjacent channels) land in unrelated states.
    uint64_t s = mix64(shot_seed + kSplitMixGamma);
    s = mix64(s ^ (static_cast<uint64_t>(channel) + kSplitMixGamma));
    s = mix64(s ^ (event_index + kSplitMixGamma));
    state_ = s;
}

uint64_t
StreamRng::next64()
{
    state_ += kSplitMixGamma;
    return mix64(state_);
}

double
StreamRng::uniform()
{
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

int
StreamRng::uniformInt(int n)
{
    return static_cast<int>(next64() % static_cast<uint64_t>(n));
}

namespace {

/**
 * The paper's Sec-4 model plus its Sec-6 extensions, replaying the
 * pre-refactor draw order on the sequential per-shot RNG: (1) pre-shot
 * loss sampling when atomLoss > 0, (2) per fired gate, a bit-flip then
 * a phase-flip Bernoulli per operand — including zero-probability
 * draws whenever any legacy field is nonzero, exactly like the old
 * `applyNoisyGate` — then (3) a crosstalk Bernoulli per zone atom.
 */
class LegacyPauliAdapter final : public NoiseSource
{
  public:
    explicit LegacyPauliAdapter(const NoiseModel &model)
        : model_(model), drawsFlips_(!model.legacyNoiseless())
    {
    }

    NoiseChannelId id() const override
    {
        return NoiseChannelId::LegacyPauli;
    }

    void onShotStart(ShotContext &ctx) const override
    {
        if (model_.atomLoss <= 0.0)
            return;
        for (Qubit q = 0; q < ctx.numQubits; ++q) {
            if (ctx.legacyRng.bernoulli(model_.atomLoss)) {
                ctx.markLost(q);
                ctx.countEvent(id());
            }
        }
    }

    void onGate(StateVector &sv, const GateEvent &ev,
                ShotContext &ctx) const override
    {
        const Gate &g = *ev.gate;
        if (drawsFlips_) {
            const double pb = model_.bitFlipFor(g);
            const double pp = model_.phaseFlipFor(g);
            for (int i = 0; i < g.numQubits(); ++i) {
                const Qubit q = g.qubit(i);
                if (ctx.legacyRng.bernoulli(pb)) {
                    sv.applyX(q);
                    ctx.countEvent(id());
                }
                if (ctx.legacyRng.bernoulli(pp)) {
                    sv.applyZ(q);
                    ctx.countEvent(id());
                }
            }
        }
        if (ev.zone != nullptr && g.numQubits() >= 2) {
            for (const int z : *ev.zone) {
                if (ctx.legacyRng.bernoulli(model_.crosstalkPhase)) {
                    sv.applyZ(z);
                    ctx.countEvent(id());
                }
            }
        }
    }

  private:
    NoiseModel model_;
    bool drawsFlips_;
};

/** T1 decay as quantum jumps, one damping step per operand per gate. */
class AmpDampingSource final : public NoiseSource
{
  public:
    explicit AmpDampingSource(double gamma) : gamma_(gamma) {}

    NoiseChannelId id() const override { return NoiseChannelId::AmpDamping; }

    bool isRelaxation() const override { return true; }

    void onGate(StateVector &sv, const GateEvent &ev,
                ShotContext &ctx) const override
    {
        StreamRng rng(ctx.shotSeed, id(), ev.index);
        const Gate &g = *ev.gate;
        for (int i = 0; i < g.numQubits(); ++i) {
            if (sv.applyAmplitudeDamping(g.qubit(i), gamma_, rng.uniform()))
                ctx.countEvent(id());
        }
    }

  private:
    double gamma_;
};

/** Z errors with probability 0.5*(1 - exp(-rate * idlePulses)). */
class IdleDephasingSource final : public NoiseSource
{
  public:
    explicit IdleDephasingSource(double rate) : rate_(rate) {}

    NoiseChannelId id() const override
    {
        return NoiseChannelId::IdleDephasing;
    }

    void onIdle(StateVector &sv, const GateEvent &ev,
                ShotContext &ctx) const override
    {
        if (ev.idlePulses == nullptr)
            return;
        StreamRng rng(ctx.shotSeed, id(), ev.index);
        const Gate &g = *ev.gate;
        for (int i = 0; i < g.numQubits(); ++i) {
            const long t = (*ev.idlePulses)[static_cast<size_t>(i)];
            if (t <= 0)
                continue;
            const double p =
                0.5 * (1.0 - std::exp(-rate_ * static_cast<double>(t)));
            if (rng.bernoulli(p)) {
                sv.applyZ(g.qubit(i));
                ctx.countEvent(id());
            }
        }
    }

  private:
    double rate_;
};

/** Mid-circuit loss: any operand can drop out right before its gate. */
class AtomLossTrackingSource final : public NoiseSource
{
  public:
    explicit AtomLossTrackingSource(double per_gate) : perGate_(per_gate) {}

    NoiseChannelId id() const override
    {
        return NoiseChannelId::AtomLossTracking;
    }

    void onGateStart(const GateEvent &ev, ShotContext &ctx) const override
    {
        StreamRng rng(ctx.shotSeed, id(), ev.index);
        const Gate &g = *ev.gate;
        for (int i = 0; i < g.numQubits(); ++i) {
            const Qubit q = g.qubit(i);
            if (ctx.isLost(q))
                continue;
            if (rng.bernoulli(perGate_)) {
                ctx.markLost(q);
                ctx.countEvent(id());
            }
        }
    }

  private:
    double perGate_;
};

/** Joint Pauli pairs on entangling gates (Rydberg-blockade errors). */
class CorrelatedPauliSource final : public NoiseSource
{
  public:
    explicit CorrelatedPauliSource(double rate) : rate_(rate) {}

    NoiseChannelId id() const override
    {
        return NoiseChannelId::CorrelatedPauli;
    }

    void onGate(StateVector &sv, const GateEvent &ev,
                ShotContext &ctx) const override
    {
        const Gate &g = *ev.gate;
        if (!g.isEntangling())
            return;
        StreamRng rng(ctx.shotSeed, id(), ev.index);
        if (!rng.bernoulli(rate_))
            return;
        // Pick the affected pair: the operands for a two-qubit gate,
        // one of the three pairs uniformly for a CCZ/CCX.
        int ai = 0, bi = 1;
        if (g.numQubits() == 3) {
            static constexpr int kPairs[3][2] = {{0, 1}, {0, 2}, {1, 2}};
            const int pick = rng.uniformInt(3);
            ai = kPairs[pick][0];
            bi = kPairs[pick][1];
        }
        // Uniform non-identity Pauli pair: index 1..15 as (P_a, P_b)
        // base-4 digits, 0=I 1=X 2=Y 3=Z.
        const int joint = 1 + rng.uniformInt(15);
        applyPauli(sv, g.qubit(ai), joint >> 2);
        applyPauli(sv, g.qubit(bi), joint & 3);
        ctx.countEvent(id());
    }

  private:
    static void applyPauli(StateVector &sv, Qubit q, int pauli)
    {
        switch (pauli) {
          case 1:
            sv.applyX(q);
            break;
          case 2:
            sv.applyY(q);
            break;
          case 3:
            sv.applyZ(q);
            break;
          default:
            break;
        }
    }

    double rate_;
};

/** Symmetric per-qubit measurement confusion matrix, applied exactly. */
class ReadoutErrorSource final : public NoiseSource
{
  public:
    explicit ReadoutErrorSource(double flip) : flip_(flip) {}

    NoiseChannelId id() const override
    {
        return NoiseChannelId::ReadoutError;
    }

    void onReadout(Distribution &p, ShotContext &ctx) const override
    {
        for (Qubit q = 0; q < ctx.numQubits; ++q) {
            const size_t mask = size_t{1} << q;
            for (size_t i = 0; i < p.size(); ++i) {
                if (i & mask)
                    continue;
                const double p0 = p[i];
                const double p1 = p[i | mask];
                p[i] = (1.0 - flip_) * p0 + flip_ * p1;
                p[i | mask] = flip_ * p0 + (1.0 - flip_) * p1;
            }
        }
        ctx.countEvent(id());
    }

  private:
    double flip_;
};

}  // namespace

std::vector<std::unique_ptr<NoiseSource>>
buildNoiseSources(const NoiseModel &model)
{
    std::vector<std::unique_ptr<NoiseSource>> sources;
    if (!model.legacyNoiseless())
        sources.push_back(std::make_unique<LegacyPauliAdapter>(model));
    if (model.ampDamping > 0.0)
        sources.push_back(
            std::make_unique<AmpDampingSource>(model.ampDamping));
    if (model.idleDephasing > 0.0)
        sources.push_back(
            std::make_unique<IdleDephasingSource>(model.idleDephasing));
    if (model.lossPerGate > 0.0)
        sources.push_back(
            std::make_unique<AtomLossTrackingSource>(model.lossPerGate));
    if (model.correlatedPauli > 0.0)
        sources.push_back(
            std::make_unique<CorrelatedPauliSource>(model.correlatedPauli));
    if (model.readoutError > 0.0)
        sources.push_back(
            std::make_unique<ReadoutErrorSource>(model.readoutError));
    return sources;
}

}  // namespace geyser
