/**
 * @file
 * The paper's noise model (Sec 4): bit-flip and phase-flip errors at a
 * configurable rate on one-qubit operations, with the one-qubit channel
 * self-tensored to form the two- and three-qubit channels (i.e.
 * independent per-qubit errors on multi-qubit gates).
 *
 * An optional per-pulse scaling mode multiplies the error probability of
 * a gate by its pulse count — used by an ablation bench to show why
 * Geyser optimizes pulses rather than gate count.
 */
#ifndef GEYSER_SIM_NOISE_HPP
#define GEYSER_SIM_NOISE_HPP

#include "circuit/gate.hpp"
#include "common/rng.hpp"
#include "sim/statevector.hpp"

namespace geyser {

/** Stochastic Pauli channel parameters. */
struct NoiseModel
{
    /** Probability of an X error per qubit per operation. */
    double bitFlip = 0.001;
    /** Probability of a Z error per qubit per operation. */
    double phaseFlip = 0.001;
    /** Scale error probability by the gate's pulse count. */
    bool perPulse = false;
    /**
     * Per-shot probability that an atom is lost before the circuit runs
     * (paper Sec 6 "Neutral Atom Loss"). A lost atom is replaced by
     * shuttling a spare in, which arrives in |0> having missed every
     * gate so far; we model the pessimistic in-shot variant where the
     * replacement misses the whole circuit (gates on it act as
     * identity and its readout is depolarized).
     */
    double atomLoss = 0.0;
    /**
     * Rydberg crosstalk: probability of a phase flip on each atom in a
     * multi-qubit gate's restriction zone while the gate runs (spectator
     * atoms feel the Rydberg interaction tails). Requires a topology at
     * simulation time; ignored when none is supplied.
     */
    double crosstalkPhase = 0.0;

    /** The paper's default configuration (0.1% both channels). */
    static NoiseModel paperDefault() { return {0.001, 0.001, false, 0.0}; }

    /** Paper sensitivity points: 0.05% and 0.5%. */
    static NoiseModel withRate(double rate)
    {
        return {rate, rate, false, 0.0};
    }

    /** Effective per-qubit error probability for a given gate. */
    double bitFlipFor(const Gate &gate) const;
    double phaseFlipFor(const Gate &gate) const;

    bool isNoiseless() const
    {
        return bitFlip == 0.0 && phaseFlip == 0.0 && atomLoss == 0.0 &&
               crosstalkPhase == 0.0;
    }
};

/**
 * Sample one noisy execution: apply `gate`, then independently flip each
 * involved qubit with the model's probabilities.
 */
void applyNoisyGate(StateVector &sv, const Gate &gate,
                    const NoiseModel &noise, Rng &rng);

}  // namespace geyser

#endif  // GEYSER_SIM_NOISE_HPP
