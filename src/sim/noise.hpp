/**
 * @file
 * Noise-model parameters for the trajectory simulator.
 *
 * The model is a *composition of channels*. The paper's Sec-4 model —
 * bit-flip and phase-flip errors at a configurable rate, self-tensored
 * across the qubits of multi-qubit gates — is one channel (with its two
 * Sec-6 extensions, pre-shot atom loss and Rydberg crosstalk); on top
 * of it the library models the physics that dominates real
 * neutral-atom fidelity as independent channels:
 *
 *  - amplitude damping (T1 decay sampled as quantum jumps per gate),
 *  - time-aware idle dephasing (T2 phase errors scaled by how many
 *    pulses a qubit sits idle before each gate, from the ASAP
 *    schedule),
 *  - mid-circuit atom-loss tracking (an atom can be lost at any gate,
 *    not only before the shot; later gates on it do not fire and its
 *    readout is depolarized),
 *  - correlated two-qubit Pauli errors on entangling gates,
 *  - readout assignment error (a symmetric measurement confusion
 *    matrix applied to the output distribution).
 *
 * Each channel is implemented as a `NoiseSource` (sim/noise_channel.hpp)
 * with its own counter-derived RNG stream, so enabling one channel
 * never perturbs another channel's draws and per-channel ablations stay
 * seed-comparable. The paper channel keeps its original sequential
 * per-shot RNG through a compatibility adapter: `paperDefault()` (and
 * every legacy-field-only model) produces bit-identical distributions
 * to the pre-refactor simulator (pinned by
 * tests/golden/noise_legacy_golden.txt).
 *
 * An optional per-pulse scaling mode multiplies the error probability of
 * a gate by its pulse count — used by an ablation bench to show why
 * Geyser optimizes pulses rather than gate count. It requires a
 * physical circuit; `noisyDistribution` validates that at entry.
 */
#ifndef GEYSER_SIM_NOISE_HPP
#define GEYSER_SIM_NOISE_HPP

#include <string>
#include <vector>

#include "circuit/gate.hpp"
#include "common/rng.hpp"
#include "sim/statevector.hpp"

namespace geyser {

/**
 * Stable identity of one noise channel. The enum value keys the
 * channel's counter-derived RNG stream (see sim/noise_channel.hpp), so
 * the order here is part of the reproducibility contract: renumbering
 * changes every extended-channel distribution.
 */
enum class NoiseChannelId : uint8_t {
    LegacyPauli = 0,   ///< Paper Sec-4 flips + Sec-6 loss/crosstalk.
    AmpDamping,        ///< T1 quantum jumps per gate.
    IdleDephasing,     ///< Schedule-derived idle Z errors.
    AtomLossTracking,  ///< Mid-circuit atom loss.
    CorrelatedPauli,   ///< Joint Pauli pairs on entangling gates.
    ReadoutError,      ///< Measurement confusion matrix.
};

/** Number of channel kinds (array sizing). */
inline constexpr size_t kNumNoiseChannels = 6;

/** Stable kebab-case channel name ("legacy-pauli", "amp-damp", ...). */
const char *noiseChannelName(NoiseChannelId id);

/** Parse a channel name back to an id; throws ValidationError. */
NoiseChannelId noiseChannelFromName(const std::string &name);

/** All channel names, in NoiseChannelId order (CLI/bench enumeration). */
const std::vector<std::string> &noiseChannelNames();

/** Composable noise-channel parameters (all probabilities per event). */
struct NoiseModel
{
    /** Probability of an X error per qubit per operation. */
    double bitFlip = 0.001;
    /** Probability of a Z error per qubit per operation. */
    double phaseFlip = 0.001;
    /** Scale error probability by the gate's pulse count. */
    bool perPulse = false;
    /**
     * Per-shot probability that an atom is lost before the circuit runs
     * (paper Sec 6 "Neutral Atom Loss"). A lost atom is replaced by
     * shuttling a spare in, which arrives in |0> having missed every
     * gate so far; we model the pessimistic in-shot variant where the
     * replacement misses the whole circuit (gates on it act as
     * identity and its readout is depolarized).
     */
    double atomLoss = 0.0;
    /**
     * Rydberg crosstalk: probability of a phase flip on each atom in a
     * multi-qubit gate's restriction zone while the gate runs (spectator
     * atoms feel the Rydberg interaction tails). Requires a topology at
     * simulation time; `noisyDistribution` rejects a crosstalk-enabled
     * model without one.
     */
    double crosstalkPhase = 0.0;

    // ---- Extended channels (each one an independent NoiseSource) ----

    /**
     * Amplitude-damping (T1) jump probability per qubit per gate it
     * participates in. Sampled as a quantum jump: with probability
     * gamma * P(q = 1) the qubit collapses to |0>; otherwise the
     * no-jump Kraus operator is applied and the state renormalized.
     */
    double ampDamping = 0.0;
    /**
     * Idle-dephasing rate per pulse of idle time: a qubit that sits
     * idle for t pulses before a gate suffers a Z error with
     * probability 0.5 * (1 - exp(-idleDephasing * t)) (the T2
     * exponential, saturating at the fully-dephased 1/2). Idle
     * durations come from the ASAP schedule, so this channel requires
     * a physical circuit.
     */
    double idleDephasing = 0.0;
    /**
     * Mid-circuit atom-loss probability per qubit per gate: each atom
     * a gate is about to act on can be lost (heating, background-gas
     * collision, failed transfer) just before the gate fires; the gate
     * and all later gates on that atom do not fire, and its readout is
     * depolarized. Unlike `atomLoss`, loss can strike anywhere in the
     * circuit, so early gates still count.
     */
    double lossPerGate = 0.0;
    /**
     * Correlated two-qubit Pauli error probability per entangling
     * gate: with this probability one of the 15 non-identity two-qubit
     * Pauli pairs (uniformly chosen) is applied to two of the gate's
     * operands — the Rydberg-blockade error mechanism that independent
     * per-qubit flips cannot represent.
     */
    double correlatedPauli = 0.0;
    /**
     * Symmetric readout assignment error: each qubit's measured value
     * flips with this probability, applied exactly as a per-qubit
     * confusion matrix on the output distribution.
     */
    double readoutError = 0.0;

    /** The paper's default configuration (0.1% both channels). */
    static NoiseModel paperDefault() { return {0.001, 0.001, false, 0.0}; }

    /** Paper sensitivity points: 0.05% and 0.5%. */
    static NoiseModel withRate(double rate)
    {
        return {rate, rate, false, 0.0};
    }

    /** A model with every channel off (useful as an ablation base). */
    static NoiseModel noiseless()
    {
        return {0.0, 0.0, false, 0.0};
    }

    /** Effective per-qubit error probability for a given gate. */
    double bitFlipFor(const Gate &gate) const;
    double phaseFlipFor(const Gate &gate) const;

    /** True when the paper channel (flips/loss/crosstalk) is inert. */
    bool legacyNoiseless() const
    {
        return bitFlip == 0.0 && phaseFlip == 0.0 && atomLoss == 0.0 &&
               crosstalkPhase == 0.0;
    }

    /** True when any extended channel is enabled. */
    bool hasExtendedChannels() const
    {
        return ampDamping > 0.0 || idleDephasing > 0.0 ||
               lossPerGate > 0.0 || correlatedPauli > 0.0 ||
               readoutError > 0.0;
    }

    bool isNoiseless() const
    {
        return legacyNoiseless() && !hasExtendedChannels();
    }

    /**
     * Set one channel's rate by id: the legacy channel sets bitFlip and
     * phaseFlip together (the paper couples them); extended channels
     * set their single field. Throws ValidationError for rates outside
     * [0, 1].
     */
    void setChannelRate(NoiseChannelId id, double rate);

    /** A model with only `id` enabled at `rate` (per-channel ablations). */
    static NoiseModel singleChannel(NoiseChannelId id, double rate);
};

/**
 * Sample one noisy execution: apply `gate`, then independently flip each
 * involved qubit with the model's probabilities. (Legacy helper; the
 * trajectory engine routes through NoiseSource hooks, and the
 * compatibility adapter reproduces exactly this draw order.)
 */
void applyNoisyGate(StateVector &sv, const Gate &gate,
                    const NoiseModel &noise, Rng &rng);

}  // namespace geyser

#endif  // GEYSER_SIM_NOISE_HPP
