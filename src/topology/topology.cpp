#include "topology/topology.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace geyser {

namespace {

double
dist(const Position &a, const Position &b)
{
    const double dx = a.x - b.x, dy = a.y - b.y;
    return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

Topology
Topology::makeTriangular(int rows, int cols)
{
    Topology t;
    t.name_ = "triangular(" + std::to_string(rows) + "x" +
              std::to_string(cols) + ")";
    const double row_height = std::sqrt(3.0) / 2.0;
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            t.positions_.push_back(
                {static_cast<double>(c) + 0.5 * (r % 2), r * row_height});
    t.radius_ = 1.0 + 1e-9;
    t.finalize();
    return t;
}

Topology
Topology::makeSquare(int rows, int cols, bool include_diagonals)
{
    Topology t;
    t.name_ = std::string(include_diagonals ? "square-diag(" : "square(") +
              std::to_string(rows) + "x" + std::to_string(cols) + ")";
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            t.positions_.push_back(
                {static_cast<double>(c), static_cast<double>(r)});
    t.radius_ = (include_diagonals ? std::sqrt(2.0) : 1.0) + 1e-9;
    t.finalize();
    return t;
}

Topology
Topology::forQubits(int n)
{
    if (n <= 0)
        throw std::invalid_argument("Topology::forQubits: n must be > 0");
    const int cols = std::max(2, static_cast<int>(
        std::ceil(std::sqrt(static_cast<double>(n)))));
    const int rows = std::max(2, (n + cols - 1) / cols);
    return makeTriangular(rows, cols);
}

Topology
Topology::squareForQubits(int n)
{
    if (n <= 0)
        throw std::invalid_argument("Topology::squareForQubits: n must be > 0");
    const int cols = std::max(2, static_cast<int>(
        std::ceil(std::sqrt(static_cast<double>(n)))));
    const int rows = std::max(2, (n + cols - 1) / cols);
    return makeSquare(rows, cols, false);
}

void
Topology::finalize()
{
    const int n = numAtoms();
    neighbors_.assign(static_cast<size_t>(n), {});
    edges_.clear();
    triangles_.clear();
    for (int a = 0; a < n; ++a) {
        for (int b = a + 1; b < n; ++b) {
            if (dist(positions_[static_cast<size_t>(a)],
                     positions_[static_cast<size_t>(b)]) <= radius_) {
                neighbors_[static_cast<size_t>(a)].push_back(b);
                neighbors_[static_cast<size_t>(b)].push_back(a);
                edges_.push_back({a, b});
            }
        }
    }
    for (const auto &e : edges_) {
        for (int c = e[1] + 1; c < n; ++c) {
            if (areAdjacent(e[0], c) && areAdjacent(e[1], c))
                triangles_.push_back({e[0], e[1], c});
        }
    }
}

bool
Topology::areAdjacent(int a, int b) const
{
    if (a == b)
        return false;
    return dist(positions_[static_cast<size_t>(a)],
                positions_[static_cast<size_t>(b)]) <= radius_;
}

std::vector<int>
Topology::restrictionZone(const std::vector<int> &involved) const
{
    std::vector<bool> in(static_cast<size_t>(numAtoms()), false);
    for (int q : involved)
        in[static_cast<size_t>(q)] = true;
    std::vector<int> zone;
    std::vector<bool> seen(static_cast<size_t>(numAtoms()), false);
    for (int q : involved) {
        for (int nb : neighbors(q)) {
            if (!in[static_cast<size_t>(nb)] && !seen[static_cast<size_t>(nb)]) {
                seen[static_cast<size_t>(nb)] = true;
                zone.push_back(nb);
            }
        }
    }
    std::sort(zone.begin(), zone.end());
    return zone;
}

bool
Topology::setsCompatible(const std::vector<int> &a,
                         const std::vector<int> &b) const
{
    for (int qa : a)
        for (int qb : b)
            if (qa == qb || areAdjacent(qa, qb))
                return false;
    return true;
}

void
Topology::computeDistances() const
{
    const int n = numAtoms();
    dist_.assign(static_cast<size_t>(n), std::vector<int>(
        static_cast<size_t>(n), -1));
    for (int s = 0; s < n; ++s) {
        auto &row = dist_[static_cast<size_t>(s)];
        std::queue<int> queue;
        row[static_cast<size_t>(s)] = 0;
        queue.push(s);
        while (!queue.empty()) {
            const int u = queue.front();
            queue.pop();
            for (int v : neighbors(u)) {
                if (row[static_cast<size_t>(v)] < 0) {
                    row[static_cast<size_t>(v)] = row[static_cast<size_t>(u)] + 1;
                    queue.push(v);
                }
            }
        }
    }
}

int
Topology::hopDistance(int a, int b) const
{
    if (dist_.empty())
        computeDistances();
    return dist_[static_cast<size_t>(a)][static_cast<size_t>(b)];
}

std::vector<int>
Topology::shortestPath(int a, int b) const
{
    if (dist_.empty())
        computeDistances();
    std::vector<int> path{a};
    int cur = a;
    while (cur != b) {
        int next = -1;
        for (int nb : neighbors(cur)) {
            if (hopDistance(nb, b) == hopDistance(cur, b) - 1) {
                next = nb;
                break;
            }
        }
        if (next < 0)
            throw std::logic_error("shortestPath: disconnected topology");
        path.push_back(next);
        cur = next;
    }
    return path;
}

int
Topology::maxEdgeRestriction() const
{
    int best = 0;
    for (const auto &e : edges_)
        best = std::max(best, static_cast<int>(
            restrictionZone({e[0], e[1]}).size()));
    return best;
}

int
Topology::maxTriangleRestriction() const
{
    int best = 0;
    for (const auto &t : triangles_)
        best = std::max(best, static_cast<int>(
            restrictionZone({t[0], t[1], t[2]}).size()));
    return best;
}

}  // namespace geyser
