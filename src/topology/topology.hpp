/**
 * @file
 * Physical arrangement of neutral atoms: lattice positions, Rydberg
 * interaction edges, triangles (the 3-qubit block sites), and restriction
 * zones (paper Sec 2.2, Fig 4).
 *
 * Atoms interact when their Euclidean distance is within the interaction
 * radius. While a multi-qubit gate runs on a set of atoms, every
 * non-involved atom within the interaction radius of any involved atom is
 * "restricted" and cannot run gates.
 */
#ifndef GEYSER_TOPOLOGY_TOPOLOGY_HPP
#define GEYSER_TOPOLOGY_TOPOLOGY_HPP

#include <array>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace geyser {

/** A 2-D atom position (lattice spacing = 1). */
struct Position
{
    double x = 0.0;
    double y = 0.0;
};

/**
 * An atom arrangement with its interaction structure. Construct via
 * makeTriangular() / makeSquare().
 */
class Topology
{
  public:
    Topology() = default;

    /**
     * Triangular lattice of rows x cols atoms (paper Fig 7(a), the
     * arrangement Geyser selects). Every atom has up to six equidistant
     * neighbours; the interaction radius covers exactly the nearest
     * neighbours.
     */
    static Topology makeTriangular(int rows, int cols);

    /**
     * Square lattice of rows x cols atoms. With include_diagonals the
     * interaction radius covers diagonal neighbours too (paper Fig 7(b),
     * the rejected neutral-atom arrangement); without, it is the
     * 4-neighbour grid used for the superconducting comparison.
     */
    static Topology makeSquare(int rows, int cols, bool include_diagonals);

    /** Smallest triangular lattice with at least n atoms (roughly square). */
    static Topology forQubits(int n);

    /** Smallest 4-neighbour square lattice with at least n atoms. */
    static Topology squareForQubits(int n);

    int numAtoms() const { return static_cast<int>(positions_.size()); }
    const Position &position(int atom) const
    {
        return positions_[static_cast<size_t>(atom)];
    }
    double interactionRadius() const { return radius_; }
    const std::string &name() const { return name_; }

    /** Atoms within the interaction radius of `atom` (excluding itself). */
    const std::vector<int> &neighbors(int atom) const
    {
        return neighbors_[static_cast<size_t>(atom)];
    }

    /** True if a and b can directly interact (Rydberg radius). */
    bool areAdjacent(int a, int b) const;

    /** All interaction edges, each as an (a < b) pair. */
    const std::vector<std::array<int, 2>> &edges() const { return edges_; }

    /** All mutually-adjacent atom triples (candidate 3-qubit block sites). */
    const std::vector<std::array<int, 3>> &triangles() const
    {
        return triangles_;
    }

    /**
     * Restriction zone of a multi-qubit operation on `involved`: every
     * atom not in `involved` that lies within the interaction radius of
     * any involved atom.
     */
    std::vector<int> restrictionZone(const std::vector<int> &involved) const;

    /**
     * True if two atom sets can host concurrent multi-qubit operations:
     * disjoint, and no atom of one lies in the restriction zone of the
     * other (i.e. no cross-set pair is within the interaction radius).
     */
    bool setsCompatible(const std::vector<int> &a,
                        const std::vector<int> &b) const;

    /** BFS hop distance between atoms over the interaction graph. */
    int hopDistance(int a, int b) const;

    /** Consecutive atoms of a shortest interaction path from a to b. */
    std::vector<int> shortestPath(int a, int b) const;

    /**
     * Maximum restriction-zone size over all single edges / triangles;
     * reproduces the Fig 4 / Fig 7 counts in tests and the topology
     * ablation bench.
     */
    int maxEdgeRestriction() const;
    int maxTriangleRestriction() const;

  private:
    void finalize();
    void computeDistances() const;

    std::string name_;
    std::vector<Position> positions_;
    double radius_ = 1.0;
    std::vector<std::vector<int>> neighbors_;
    std::vector<std::array<int, 2>> edges_;
    std::vector<std::array<int, 3>> triangles_;
    // All-pairs hop distances, computed lazily.
    mutable std::vector<std::vector<int>> dist_;
};

}  // namespace geyser

#endif  // GEYSER_TOPOLOGY_TOPOLOGY_HPP
