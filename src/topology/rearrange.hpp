/**
 * @file
 * Optical-tweezer rearrangement planning (paper Sec 6): lost atoms are
 * replaced between shots by shuttling spare atoms into the vacated
 * sites with a take -> transfer -> release cycle. This module plans the
 * moves: which spare goes to which vacancy, in what order, and what the
 * cycle costs in tweezer time.
 *
 * The planner works on any Topology: `computational` marks the sites
 * that must be occupied (the register); every other site of the lattice
 * may hold a spare atom.
 */
#ifndef GEYSER_TOPOLOGY_REARRANGE_HPP
#define GEYSER_TOPOLOGY_REARRANGE_HPP

#include <vector>

#include "topology/topology.hpp"

namespace geyser {

/** One tweezer move: pick an atom up at `from`, release it at `to`. */
struct TweezerMove
{
    int from = 0;
    int to = 0;
    double distance = 0.0;  ///< Euclidean travel distance (lattice units).
};

/** A full refill plan. */
struct RearrangementPlan
{
    std::vector<TweezerMove> moves;
    double totalDistance = 0.0;
    /**
     * Cycle time in take/transfer/release units: each move costs
     * 2 (take + release) plus its travel distance.
     */
    double cycleTime = 0.0;
    /** True if every vacancy could be refilled from the spares. */
    bool complete = true;
};

/**
 * Plan the refill of `vacancies` (computational sites that lost their
 * atom) from `spares` (occupied non-computational sites). Assignment is
 * greedy nearest-spare-first (optimal for the small vacancy counts that
 * realistic loss rates produce); each spare is used at most once.
 */
RearrangementPlan planRearrangement(const Topology &topo,
                                    const std::vector<int> &vacancies,
                                    const std::vector<int> &spares);

/**
 * Convenience for the common setup: an (rows+spare_rows) x cols lattice
 * whose first `computational` sites form the register and whose
 * remaining sites all hold spares. Returns the plan for the given lost
 * register sites.
 */
RearrangementPlan planRefill(const Topology &topo, int computational,
                             const std::vector<int> &lost);

}  // namespace geyser

#endif  // GEYSER_TOPOLOGY_REARRANGE_HPP
