#include "topology/rearrange.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace geyser {

namespace {

double
euclid(const Position &a, const Position &b)
{
    const double dx = a.x - b.x, dy = a.y - b.y;
    return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

RearrangementPlan
planRearrangement(const Topology &topo, const std::vector<int> &vacancies,
                  const std::vector<int> &spares)
{
    for (const int v : vacancies)
        if (v < 0 || v >= topo.numAtoms())
            throw std::invalid_argument("planRearrangement: bad vacancy");
    for (const int s : spares)
        if (s < 0 || s >= topo.numAtoms())
            throw std::invalid_argument("planRearrangement: bad spare");

    RearrangementPlan plan;
    std::vector<bool> used(spares.size(), false);

    // Greedy globally-nearest pairing: repeatedly take the closest
    // (vacancy, free spare) pair. Deterministic (ties by index).
    std::vector<bool> filled(vacancies.size(), false);
    for (size_t round = 0; round < vacancies.size(); ++round) {
        double bestDist = 0.0;
        int bestVacancy = -1;
        int bestSpare = -1;
        for (size_t vi = 0; vi < vacancies.size(); ++vi) {
            if (filled[vi])
                continue;
            for (size_t si = 0; si < spares.size(); ++si) {
                if (used[si])
                    continue;
                const double d =
                    euclid(topo.position(vacancies[vi]),
                           topo.position(spares[si]));
                if (bestVacancy < 0 || d < bestDist) {
                    bestDist = d;
                    bestVacancy = static_cast<int>(vi);
                    bestSpare = static_cast<int>(si);
                }
            }
        }
        if (bestVacancy < 0) {
            plan.complete = false;  // Ran out of spares.
            break;
        }
        filled[static_cast<size_t>(bestVacancy)] = true;
        used[static_cast<size_t>(bestSpare)] = true;
        plan.moves.push_back(
            {spares[static_cast<size_t>(bestSpare)],
             vacancies[static_cast<size_t>(bestVacancy)], bestDist});
        plan.totalDistance += bestDist;
        plan.cycleTime += 2.0 + bestDist;  // take + travel + release.
    }
    return plan;
}

RearrangementPlan
planRefill(const Topology &topo, int computational,
           const std::vector<int> &lost)
{
    if (computational > topo.numAtoms())
        throw std::invalid_argument("planRefill: register exceeds lattice");
    std::vector<int> spares;
    for (int a = computational; a < topo.numAtoms(); ++a)
        spares.push_back(a);
    return planRearrangement(topo, lost, spares);
}

}  // namespace geyser
