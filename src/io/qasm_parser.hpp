/**
 * @file
 * OpenQASM 2.0 importer (the subset emitted by common frontends and by
 * this library's own exporter): one quantum register, the qelib1 gates
 * this IR supports, and constant-expression parameters (numbers, pi,
 * + - * /, unary minus, parentheses).
 *
 * Together with circuitToQasm() this closes the interop loop: external
 * circuits can be compiled by the `geyserc` tool and results re-exported.
 */
#ifndef GEYSER_IO_QASM_PARSER_HPP
#define GEYSER_IO_QASM_PARSER_HPP

#include <string>

#include "circuit/circuit.hpp"

namespace geyser {

/**
 * Parse an OpenQASM 2.0 program into a Circuit. Throws
 * std::invalid_argument with a line-numbered message on unsupported or
 * malformed input. `creg` declarations, `measure`, and `barrier` are
 * accepted and ignored (this IR measures everything at the end).
 */
Circuit circuitFromQasm(const std::string &text);

}  // namespace geyser

#endif  // GEYSER_IO_QASM_PARSER_HPP
