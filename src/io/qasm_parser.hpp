/**
 * @file
 * OpenQASM 2.0 importer (the subset emitted by common frontends and by
 * this library's own exporter): one quantum register, the qelib1 gates
 * this IR supports, and constant-expression parameters (numbers, pi,
 * + - * /, unary minus, parentheses).
 *
 * This is an untrusted-input boundary: every diagnostic is a
 * ParseError carrying `qasm:<line>:` context, operand indices are
 * bounds-checked against the declared register at parse time, angle
 * expressions must evaluate to finite values, and the returned circuit
 * satisfies Circuit::validate() by construction.
 *
 * Together with circuitToQasm() this closes the interop loop: external
 * circuits can be compiled by the `geyserc` tool and results re-exported.
 */
#ifndef GEYSER_IO_QASM_PARSER_HPP
#define GEYSER_IO_QASM_PARSER_HPP

#include <string>

#include "circuit/circuit.hpp"

namespace geyser {

/**
 * Parse an OpenQASM 2.0 program into a Circuit. Throws ParseError
 * (with a `qasm:<line>:` prefixed message) on unsupported or malformed
 * input. `creg` declarations, `measure`, and `barrier` are accepted
 * and ignored (this IR measures everything at the end).
 */
Circuit circuitFromQasm(const std::string &text);

/**
 * Evaluate a constant angle expression (numbers, pi, + - * /, unary
 * signs, parentheses). Throws ParseError with an `expr@<offset>:`
 * byte-offset context on malformed input, division by zero, numeric
 * literals out of double range, nesting deeper than 64 levels, or any
 * non-finite result. A normal return is always finite.
 */
double evalAngleExpr(const std::string &text);

}  // namespace geyser

#endif  // GEYSER_IO_QASM_PARSER_HPP
