#include "io/qasm_parser.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <map>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace geyser {

namespace {

/**
 * Recursive-descent evaluator for constant angle expressions. All
 * diagnostics are ParseErrors carrying the byte offset of the problem;
 * results are guaranteed finite (division by zero and overflow are
 * rejected, not propagated as inf/NaN into gate angles).
 */
class ExprParser
{
  public:
    explicit ExprParser(const std::string &text) : text_(text) {}

    double parse()
    {
        const double v = parseSum();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing characters in expression");
        if (!std::isfinite(v))
            fail("non-finite value in expression");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &message) const
    {
        throw ParseError(
            SourceContext{"expr", 0, static_cast<long long>(pos_)}, message);
    }

    void skipSpace()
    {
        while (pos_ < text_.size() && std::isspace(
                   static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool eat(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    /**
     * Bounded recursion: parenthesis groups and unary signs both
     * recurse, so a hostile "((((..." or "----..." would otherwise
     * walk the machine stack into a crash.
     */
    struct DepthGuard
    {
        explicit DepthGuard(const ExprParser &p_) : p(p_)
        {
            if (++p.depth_ > kMaxDepth)
                p.fail("expression nested deeper than " +
                       std::to_string(kMaxDepth) + " levels");
        }
        ~DepthGuard() { --p.depth_; }
        const ExprParser &p;
    };

    double parseSum()
    {
        const DepthGuard guard(*this);
        double v = parseProduct();
        for (;;) {
            if (eat('+'))
                v += parseProduct();
            else if (eat('-'))
                v -= parseProduct();
            else
                return v;
        }
    }

    double parseProduct()
    {
        double v = parseUnary();
        for (;;) {
            if (eat('*')) {
                v *= parseUnary();
            } else if (eat('/')) {
                const double divisor = parseUnary();
                if (divisor == 0.0)
                    fail("division by zero in expression");
                v /= divisor;
            } else {
                return v;
            }
        }
    }

    double parseUnary()
    {
        const DepthGuard guard(*this);
        if (eat('-'))
            return -parseUnary();
        if (eat('+'))
            return parseUnary();
        return parseAtom();
    }

    double parseAtom()
    {
        skipSpace();
        if (eat('(')) {
            const double v = parseSum();
            if (!eat(')'))
                fail("missing ')' in expression");
            return v;
        }
        if (pos_ + 1 < text_.size() && text_.compare(pos_, 2, "pi") == 0) {
            pos_ += 2;
            return kPi;
        }
        const size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' ||
                ((text_[pos_] == '+' || text_[pos_] == '-') && pos_ > start &&
                 (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E'))))
            ++pos_;
        if (pos_ == start)
            fail("expected number in expression");
        try {
            return std::stod(text_.substr(start, pos_ - start));
        } catch (const std::out_of_range &) {
            fail("number literal out of double range");
        } catch (const std::invalid_argument &) {
            fail("malformed number literal");
        }
    }

    static constexpr int kMaxDepth = 64;

    const std::string &text_;
    size_t pos_ = 0;
    mutable int depth_ = 0;
};

/** Strip comments and split a QASM program into ';'-terminated statements. */
std::vector<std::pair<int, std::string>>
splitStatements(const std::string &text)
{
    std::string cleaned;
    cleaned.reserve(text.size());
    int line = 1;
    std::vector<int> lineOf;
    for (size_t i = 0; i < text.size(); ++i) {
        if (text[i] == '/' && i + 1 < text.size() && text[i + 1] == '/') {
            while (i < text.size() && text[i] != '\n')
                ++i;
        }
        if (i < text.size()) {
            if (text[i] == '\n')
                ++line;
            cleaned.push_back(text[i]);
            lineOf.push_back(line);
        }
    }
    std::vector<std::pair<int, std::string>> statements;
    std::string current;
    int startLine = 1;
    for (size_t i = 0; i < cleaned.size(); ++i) {
        const char c = cleaned[i];
        if (current.empty())
            startLine = lineOf[i];
        if (c == ';' || c == '{' || c == '}') {
            // Gate-definition bodies are not supported; '{'/'}' would
            // only appear there or in `gate` declarations.
            std::string trimmed;
            for (const char ch : current)
                if (!std::isspace(static_cast<unsigned char>(ch)) ||
                    !(trimmed.empty() || trimmed.back() == ' '))
                    trimmed.push_back(
                        std::isspace(static_cast<unsigned char>(ch)) ? ' '
                                                                     : ch);
            while (!trimmed.empty() && trimmed.back() == ' ')
                trimmed.pop_back();
            if (!trimmed.empty())
                statements.emplace_back(startLine, trimmed);
            current.clear();
        } else {
            current += c;
        }
    }
    return statements;
}

[[noreturn]] void
fail(int line, const std::string &message)
{
    throw ParseError(SourceContext{"qasm", line, -1}, message);
}

std::string
trimmed(const std::string &text)
{
    size_t b = 0, e = text.size();
    while (b < e && std::isspace(static_cast<unsigned char>(text[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1])))
        --e;
    return text.substr(b, e - b);
}

/**
 * Parse a bracketed integer (register size / operand index) strictly:
 * the whole token must be consumed, and std::from_chars never throws,
 * so a malformed "q[xyz]" or an overflowing "q[99999999999]" becomes a
 * line-numbered diagnostic instead of a raw std::stoi exception.
 */
long long
parseQasmInt(int line, const std::string &text, const std::string &what)
{
    const std::string t = trimmed(text);
    long long value = 0;
    const char *first = t.data();
    const char *last = t.data() + t.size();
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec == std::errc::result_out_of_range)
        fail(line, what + " out of range: '" + t + "'");
    if (ec != std::errc() || ptr != last || t.empty())
        fail(line, "malformed " + what + ": '" + t + "'");
    return value;
}

}  // namespace

double
evalAngleExpr(const std::string &text)
{
    return ExprParser(text).parse();
}

Circuit
circuitFromQasm(const std::string &text)
{
    const auto statements = splitStatements(text);
    Circuit circuit;
    std::string qreg;
    bool sawHeader = false;

    for (const auto &[line, stmt] : statements) {
        std::istringstream in(stmt);
        std::string head;
        in >> head;
        if (head == "OPENQASM") {
            sawHeader = true;
            continue;
        }
        if (head == "include" || head == "creg" || head == "barrier" ||
            head == "measure")
            continue;
        if (head == "gate" || head == "opaque" || head == "if" ||
            head == "reset")
            fail(line, "unsupported statement: " + head);
        if (head == "qreg") {
            std::string decl;
            std::getline(in, decl);
            const size_t lb = decl.find('[');
            const size_t rb = decl.find(']');
            if (lb == std::string::npos || rb == std::string::npos ||
                rb < lb)
                fail(line, "malformed qreg");
            if (!trimmed(decl.substr(rb + 1)).empty())
                fail(line, "trailing characters after qreg declaration");
            const std::string name = trimmed(decl.substr(0, lb));
            if (name.empty())
                fail(line, "malformed qreg: missing register name");
            if (!qreg.empty())
                fail(line, "multiple quantum registers are not supported");
            const long long size = parseQasmInt(
                line, decl.substr(lb + 1, rb - lb - 1), "register size");
            if (size < 1 || size > kMaxCircuitQubits)
                fail(line, "register size " + std::to_string(size) +
                               " out of range [1, " +
                               std::to_string(kMaxCircuitQubits) + "]");
            qreg = name;
            circuit.setNumQubits(static_cast<int>(size));
            continue;
        }

        // A gate application: name[(params)] operand[, operand...]
        if (qreg.empty())
            fail(line, "gate application before qreg declaration");
        std::string name = head;
        std::string params;
        const size_t paren = name.find('(');
        std::string rest;
        std::getline(in, rest);
        if (paren != std::string::npos) {
            // Parameters may continue into `rest` until the *matching*
            // closing ')' (expressions can contain parentheses).
            std::string whole = name.substr(paren + 1) + rest;
            size_t close = std::string::npos;
            int depth = 1;
            for (size_t i = 0; i < whole.size(); ++i) {
                if (whole[i] == '(')
                    ++depth;
                else if (whole[i] == ')' && --depth == 0) {
                    close = i;
                    break;
                }
            }
            if (close == std::string::npos)
                fail(line, "missing ')' in gate parameters");
            params = whole.substr(0, close);
            rest = whole.substr(close + 1);
            name = name.substr(0, paren);
        }

        // Map QASM mnemonics to IR names.
        if (name == "u1")
            name = "p";
        else if (name == "cu1")
            name = "cp";
        else if (name == "cnot")
            name = "cx";
        else if (name == "u" || name == "U")
            name = "u3";

        GateKind kind;
        try {
            kind = gateKindFromName(name);
        } catch (const std::exception &) {
            fail(line, "unsupported gate: " + name);
        }

        // Parse parameters; every value must be finite (evalAngleExpr
        // rejects division by zero and overflow, so no inf/NaN angle
        // can poison ZYZ resynthesis downstream).
        std::vector<double> values;
        if (!params.empty()) {
            std::string token;
            std::istringstream ps(params);
            while (std::getline(ps, token, ',')) {
                try {
                    values.push_back(evalAngleExpr(token));
                } catch (const ParseError &e) {
                    fail(line, std::string("bad parameter expression: ") +
                                   e.what());
                }
            }
        }
        if (static_cast<int>(values.size()) != gateKindParamCount(kind))
            fail(line, "wrong parameter count for " + name);

        // Parse operands name[i]: the register must be the declared
        // one, indices must be in range, and operands must be
        // pairwise distinct.
        std::vector<Qubit> qubits;
        std::string token;
        std::istringstream qs(rest);
        while (std::getline(qs, token, ',')) {
            const size_t lb = token.find('[');
            const size_t rb = token.find(']');
            if (lb == std::string::npos || rb == std::string::npos ||
                rb < lb)
                fail(line, "malformed operand: " + trimmed(token));
            if (!trimmed(token.substr(rb + 1)).empty())
                fail(line, "trailing characters after operand: " +
                               trimmed(token));
            const std::string reg = trimmed(token.substr(0, lb));
            if (reg != qreg)
                fail(line, "unknown register '" + reg + "' (declared: '" +
                               qreg + "')");
            const long long index = parseQasmInt(
                line, token.substr(lb + 1, rb - lb - 1), "operand index");
            if (index < 0 || index >= circuit.numQubits())
                fail(line, "operand index " + std::to_string(index) +
                               " out of range for qreg " + qreg + "[" +
                               std::to_string(circuit.numQubits()) + "]");
            const Qubit q = static_cast<Qubit>(index);
            for (const Qubit seen : qubits)
                if (seen == q)
                    fail(line, "duplicate operand " + qreg + "[" +
                                   std::to_string(index) + "]");
            qubits.push_back(q);
        }
        if (static_cast<int>(qubits.size()) != gateKindArity(kind))
            fail(line, "wrong operand count for " + name);

        switch (qubits.size()) {
          case 1:
            circuit.append(Gate(kind, qubits[0],
                                values.size() > 0 ? values[0] : 0.0,
                                values.size() > 1 ? values[1] : 0.0,
                                values.size() > 2 ? values[2] : 0.0));
            break;
          case 2:
            circuit.append(Gate(kind, qubits[0], qubits[1],
                                values.empty() ? 0.0 : values[0]));
            break;
          default:
            circuit.append(Gate(kind, qubits[0], qubits[1], qubits[2]));
            break;
        }
    }
    if (!sawHeader)
        throw ParseError(SourceContext{"qasm", 0, -1},
                         "missing OPENQASM header");
    if (qreg.empty())
        throw ParseError(SourceContext{"qasm", 0, -1},
                         "missing qreg declaration");
    // Boundary contract: a successful parse always yields a valid
    // circuit (the checks above make this unreachable; validate()
    // keeps the guarantee honest if the parser grows).
    circuit.validate("qasm");
    return circuit;
}

}  // namespace geyser
