#include "io/qasm_parser.hpp"

#include <cctype>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/types.hpp"

namespace geyser {

namespace {

/** Recursive-descent evaluator for constant angle expressions. */
class ExprParser
{
  public:
    explicit ExprParser(const std::string &text) : text_(text) {}

    double parse()
    {
        const double v = parseSum();
        skipSpace();
        if (pos_ != text_.size())
            throw std::invalid_argument("trailing characters in expression");
        return v;
    }

  private:
    void skipSpace()
    {
        while (pos_ < text_.size() && std::isspace(
                   static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool eat(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    double parseSum()
    {
        double v = parseProduct();
        for (;;) {
            if (eat('+'))
                v += parseProduct();
            else if (eat('-'))
                v -= parseProduct();
            else
                return v;
        }
    }

    double parseProduct()
    {
        double v = parseUnary();
        for (;;) {
            if (eat('*'))
                v *= parseUnary();
            else if (eat('/'))
                v /= parseUnary();
            else
                return v;
        }
    }

    double parseUnary()
    {
        if (eat('-'))
            return -parseUnary();
        if (eat('+'))
            return parseUnary();
        return parseAtom();
    }

    double parseAtom()
    {
        skipSpace();
        if (eat('(')) {
            const double v = parseSum();
            if (!eat(')'))
                throw std::invalid_argument("missing ')' in expression");
            return v;
        }
        if (pos_ + 1 < text_.size() && text_.compare(pos_, 2, "pi") == 0) {
            pos_ += 2;
            return kPi;
        }
        const size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' ||
                ((text_[pos_] == '+' || text_[pos_] == '-') && pos_ > start &&
                 (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E'))))
            ++pos_;
        if (pos_ == start)
            throw std::invalid_argument("expected number in expression");
        return std::stod(text_.substr(start, pos_ - start));
    }

    const std::string &text_;
    size_t pos_ = 0;
};

double
evalExpr(const std::string &text)
{
    return ExprParser(text).parse();
}

/** Strip comments and split a QASM program into ';'-terminated statements. */
std::vector<std::pair<int, std::string>>
splitStatements(const std::string &text)
{
    std::string cleaned;
    cleaned.reserve(text.size());
    int line = 1;
    std::vector<int> lineOf;
    for (size_t i = 0; i < text.size(); ++i) {
        if (text[i] == '/' && i + 1 < text.size() && text[i + 1] == '/') {
            while (i < text.size() && text[i] != '\n')
                ++i;
        }
        if (i < text.size()) {
            if (text[i] == '\n')
                ++line;
            cleaned.push_back(text[i]);
            lineOf.push_back(line);
        }
    }
    std::vector<std::pair<int, std::string>> statements;
    std::string current;
    int startLine = 1;
    for (size_t i = 0; i < cleaned.size(); ++i) {
        const char c = cleaned[i];
        if (current.empty())
            startLine = lineOf[i];
        if (c == ';' || c == '{' || c == '}') {
            // Gate-definition bodies are not supported; '{'/'}' would
            // only appear there or in `gate` declarations.
            std::string trimmed;
            for (const char ch : current)
                if (!std::isspace(static_cast<unsigned char>(ch)) ||
                    !(trimmed.empty() || trimmed.back() == ' '))
                    trimmed.push_back(
                        std::isspace(static_cast<unsigned char>(ch)) ? ' '
                                                                     : ch);
            while (!trimmed.empty() && trimmed.back() == ' ')
                trimmed.pop_back();
            if (!trimmed.empty())
                statements.emplace_back(startLine, trimmed);
            current.clear();
        } else {
            current += c;
        }
    }
    return statements;
}

[[noreturn]] void
fail(int line, const std::string &message)
{
    std::ostringstream out;
    out << "qasm:" << line << ": " << message;
    throw std::invalid_argument(out.str());
}

}  // namespace

Circuit
circuitFromQasm(const std::string &text)
{
    const auto statements = splitStatements(text);
    Circuit circuit;
    std::string qreg;
    bool sawHeader = false;

    for (const auto &[line, stmt] : statements) {
        std::istringstream in(stmt);
        std::string head;
        in >> head;
        if (head == "OPENQASM") {
            sawHeader = true;
            continue;
        }
        if (head == "include" || head == "creg" || head == "barrier" ||
            head == "measure")
            continue;
        if (head == "gate" || head == "opaque" || head == "if" ||
            head == "reset")
            fail(line, "unsupported statement: " + head);
        if (head == "qreg") {
            std::string decl;
            std::getline(in, decl);
            const size_t lb = decl.find('[');
            const size_t rb = decl.find(']');
            if (lb == std::string::npos || rb == std::string::npos)
                fail(line, "malformed qreg");
            std::string name = decl.substr(0, lb);
            while (!name.empty() && name.front() == ' ')
                name.erase(name.begin());
            if (!qreg.empty())
                fail(line, "multiple quantum registers are not supported");
            qreg = name;
            circuit.setNumQubits(
                std::stoi(decl.substr(lb + 1, rb - lb - 1)));
            continue;
        }

        // A gate application: name[(params)] operand[, operand...]
        if (qreg.empty())
            fail(line, "gate application before qreg declaration");
        std::string name = head;
        std::string params;
        const size_t paren = name.find('(');
        std::string rest;
        std::getline(in, rest);
        if (paren != std::string::npos) {
            // Parameters may continue into `rest` until the *matching*
            // closing ')' (expressions can contain parentheses).
            std::string whole = name.substr(paren + 1) + rest;
            size_t close = std::string::npos;
            int depth = 1;
            for (size_t i = 0; i < whole.size(); ++i) {
                if (whole[i] == '(')
                    ++depth;
                else if (whole[i] == ')' && --depth == 0) {
                    close = i;
                    break;
                }
            }
            if (close == std::string::npos)
                fail(line, "missing ')' in gate parameters");
            params = whole.substr(0, close);
            rest = whole.substr(close + 1);
            name = name.substr(0, paren);
        }

        // Map QASM mnemonics to IR names.
        if (name == "u1")
            name = "p";
        else if (name == "cu1")
            name = "cp";
        else if (name == "cnot")
            name = "cx";
        else if (name == "u" || name == "U")
            name = "u3";

        GateKind kind;
        try {
            kind = gateKindFromName(name);
        } catch (const std::exception &) {
            fail(line, "unsupported gate: " + name);
        }

        // Parse parameters.
        std::vector<double> values;
        if (!params.empty()) {
            std::string token;
            std::istringstream ps(params);
            while (std::getline(ps, token, ','))
                values.push_back(evalExpr(token));
        }
        if (static_cast<int>(values.size()) != gateKindParamCount(kind))
            fail(line, "wrong parameter count for " + name);

        // Parse operands q[i].
        std::vector<Qubit> qubits;
        std::string token;
        std::istringstream qs(rest);
        while (std::getline(qs, token, ',')) {
            const size_t lb = token.find('[');
            const size_t rb = token.find(']');
            if (lb == std::string::npos || rb == std::string::npos)
                fail(line, "malformed operand: " + token);
            qubits.push_back(
                std::stoi(token.substr(lb + 1, rb - lb - 1)));
        }
        if (static_cast<int>(qubits.size()) != gateKindArity(kind))
            fail(line, "wrong operand count for " + name);

        switch (qubits.size()) {
          case 1:
            circuit.append(Gate(kind, qubits[0],
                                values.size() > 0 ? values[0] : 0.0,
                                values.size() > 1 ? values[1] : 0.0,
                                values.size() > 2 ? values[2] : 0.0));
            break;
          case 2:
            circuit.append(Gate(kind, qubits[0], qubits[1],
                                values.empty() ? 0.0 : values[0]));
            break;
          default:
            circuit.append(Gate(kind, qubits[0], qubits[1], qubits[2]));
            break;
        }
    }
    if (!sawHeader)
        throw std::invalid_argument("qasm: missing OPENQASM header");
    if (qreg.empty())
        throw std::invalid_argument("qasm: missing qreg declaration");
    return circuit;
}

}  // namespace geyser
