/**
 * @file
 * Checksummed on-disk framing and crash-safe file primitives shared by
 * the persistent result cache (src/cache) and anything else that must
 * survive torn writes:
 *
 *  - FNV-1a hashing (64- and 128-bit) over raw bytes, used both for the
 *    frame checksum and for content-addressed cache keys.
 *  - A self-describing frame: header with format version and payload
 *    length, payload bytes, footer with the payload's FNV-1a 64
 *    checksum. Truncation, bit rot, and format-version skew all fail
 *    closed (unframe returns nullopt, never throws, never reads OOB).
 *  - Atomic whole-file writes: contents land in a same-directory temp
 *    file first and are published with rename(2), so concurrent readers
 *    see either the old file or the complete new one, never a torn mix.
 */
#ifndef GEYSER_IO_FRAMING_HPP
#define GEYSER_IO_FRAMING_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <type_traits>

namespace geyser {
namespace io {

/** FNV-1a 64-bit over a byte range. */
uint64_t fnv1a64(const void *data, size_t len);

/**
 * Incremental 128-bit FNV-1a (offset basis / prime per the spec).
 * Large enough that accidental key collisions over a process or cache
 * lifetime are vanishingly unlikely.
 */
struct Fnv128
{
    uint64_t hi = 0x6c62272e07bb0142ull;
    uint64_t lo = 0x62b821756295c58dull;

    void feed(const void *data, size_t len)
    {
        constexpr uint64_t kPrimeLo = 0x000000000000013bull;
        constexpr uint64_t kPrimeHi = 0x0000000001000000ull;
        const auto *bytes = static_cast<const unsigned char *>(data);
        for (size_t i = 0; i < len; ++i) {
            lo ^= bytes[i];
            // (hi, lo) *= prime, keeping the low 128 bits.
            const unsigned __int128 p =
                static_cast<unsigned __int128>(lo) * kPrimeLo;
            const uint64_t carry = static_cast<uint64_t>(p >> 64);
            hi = hi * kPrimeLo + lo * kPrimeHi + carry;
            lo = static_cast<uint64_t>(p);
        }
    }

    template <typename T> void feedValue(const T &v)
    {
        static_assert(std::is_trivially_copyable<T>::value,
                      "feedValue: raw-byte hashing needs a POD");
        feed(&v, sizeof(v));
    }

    void feedString(const std::string &s) { feed(s.data(), s.size()); }

    /** 32 lowercase hex digits (hi then lo). */
    std::string hex() const;
};

/**
 * Wrap a payload in the checksummed frame:
 *
 *   geyser-frame v1 <payload-bytes>\n
 *   <payload>\n
 *   fnv64 <16 hex digits>\n
 *
 * The header carries the exact payload length so truncation is detected
 * even when the cut happens to land on a line boundary, and the footer
 * checksum catches in-place corruption.
 */
std::string frameWithChecksum(const std::string &payload);

/**
 * Validate and strip a frame. Returns the payload, or nullopt when the
 * magic/version is wrong, the payload is shorter than the header
 * promises (truncation), the footer is missing, or the checksum does
 * not match. Never throws.
 */
std::optional<std::string> unframeWithChecksum(const std::string &framed);

/**
 * Write `contents` to `path` crash-safely: a unique temp file in the
 * same directory, then an atomic rename over the target. Returns false
 * (without throwing) if any step fails; a failed write never leaves a
 * partial file at `path`.
 */
bool writeFileAtomic(const std::string &path, const std::string &contents);

/** Whole-file read; nullopt if the file cannot be opened. */
std::optional<std::string> readFileBytes(const std::string &path);

/**
 * mkdir -p: create `path` and any missing parents. Returns true if the
 * directory exists on return (a pre-existing directory is success).
 */
bool createDirectories(const std::string &path);

}  // namespace io
}  // namespace geyser

#endif  // GEYSER_IO_FRAMING_HPP
