#include "io/serialize.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "circuit/schedule.hpp"
#include "common/error.hpp"

namespace geyser {

namespace {

std::string
formatDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

Technique
techniqueFromName(const std::string &name)
{
    for (const Technique t :
         {Technique::Baseline, Technique::OptiMap, Technique::Geyser,
          Technique::Superconducting}) {
        if (name == techniqueName(t))
            return t;
    }
    throw ParseError(SourceContext{"cache-entry", 0, -1},
                     "unknown technique: " + name);
}

/** Byte offset of the last successfully consumed stream position. */
long long
offsetOf(std::istream &in)
{
    // tellg() refuses to answer on a failed/eof stream, but diagnostics
    // are raised exactly when extraction has just failed — clear the
    // state so the failure point's offset is still reported.
    in.clear();
    const auto pos = in.tellg();
    return pos < 0 ? -1 : static_cast<long long>(pos);
}

[[noreturn]] void
failText(std::istream &in, const std::string &message)
{
    throw ParseError(SourceContext{"circuit-text", 0, offsetOf(in)}, message);
}

/**
 * Layouts loaded from a cache entry are untrusted: a corrupt or
 * hand-edited entry with an out-of-range atom index would otherwise
 * flow into projectToLogical's bit shifts as undefined behavior.
 * Returns false unless `layout` is an injective map of every logical
 * qubit onto the physical atoms.
 */
bool
layoutIsValid(const std::vector<Qubit> &layout, int num_logical,
              int num_atoms)
{
    if (layout.size() != static_cast<size_t>(num_logical))
        return false;
    std::vector<bool> used(static_cast<size_t>(num_atoms), false);
    for (const Qubit atom : layout) {
        if (atom < 0 || atom >= num_atoms ||
            used[static_cast<size_t>(atom)])
            return false;
        used[static_cast<size_t>(atom)] = true;
    }
    return true;
}

}  // namespace

std::string
circuitToText(const Circuit &circuit)
{
    std::ostringstream out;
    out << "qubits " << circuit.numQubits() << "\n";
    for (const auto &g : circuit.gates()) {
        out << gateKindName(g.kind());
        for (int i = 0; i < g.numParams(); ++i)
            out << " " << formatDouble(g.param(i));
        for (int i = 0; i < g.numQubits(); ++i)
            out << " " << g.qubit(i);
        out << "\n";
    }
    return out.str();
}

Circuit
circuitFromText(const std::string &text)
{
    std::istringstream in(text);
    std::string tok;
    int n = 0;
    if (!(in >> tok) || tok != "qubits" || !(in >> n))
        throw ParseError(SourceContext{"circuit-text", 0, 0},
                         "missing qubits header");
    if (n < 0 || n > kMaxCircuitQubits)
        failText(in, "qubit count " + std::to_string(n) +
                         " out of range [0, " +
                         std::to_string(kMaxCircuitQubits) + "]");
    Circuit c(n);
    while (in >> tok) {
        GateKind kind;
        try {
            kind = gateKindFromName(tok);
        } catch (const std::exception &) {
            failText(in, "unknown gate mnemonic: " + tok);
        }
        const int np = gateKindParamCount(kind);
        const int nq = gateKindArity(kind);
        double params[3] = {0, 0, 0};
        Qubit qubits[3] = {0, 0, 0};
        for (int i = 0; i < np; ++i) {
            if (!(in >> params[i]))
                failText(in, "bad parameter value for " + tok);
            if (!std::isfinite(params[i]))
                failText(in, "non-finite parameter for " + tok);
        }
        for (int i = 0; i < nq; ++i) {
            if (!(in >> qubits[i]))
                failText(in, "bad qubit operand for " + tok);
            if (qubits[i] < 0 || qubits[i] >= n)
                failText(in, "operand qubit " + std::to_string(qubits[i]) +
                                 " out of range [0, " + std::to_string(n) +
                                 ") for " + tok);
            for (int j = 0; j < i; ++j)
                if (qubits[j] == qubits[i])
                    failText(in, "duplicate operand qubit " +
                                     std::to_string(qubits[i]) + " for " +
                                     tok);
        }
        switch (nq) {
          case 1:
            c.append(Gate(kind, qubits[0], params[0], params[1], params[2]));
            break;
          case 2:
            c.append(Gate(kind, qubits[0], qubits[1], params[0]));
            break;
          default:
            c.append(Gate(kind, qubits[0], qubits[1], qubits[2]));
            break;
        }
    }
    // Boundary contract: deserialized circuits are always valid.
    c.validate("circuit-text");
    return c;
}

std::string
circuitToQasm(const Circuit &circuit)
{
    std::ostringstream out;
    out << "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
    out << "qreg q[" << circuit.numQubits() << "];\n";
    for (const auto &g : circuit.gates()) {
        std::string name = gateKindName(g.kind());
        // QASM 2 has no native ccz; emit via h-conjugated Toffoli.
        if (g.kind() == GateKind::CCZ) {
            out << "h q[" << g.qubit(2) << "];\n";
            out << "ccx q[" << g.qubit(0) << "],q[" << g.qubit(1) << "],q["
                << g.qubit(2) << "];\n";
            out << "h q[" << g.qubit(2) << "];\n";
            continue;
        }
        if (g.kind() == GateKind::P)
            name = "u1";
        if (g.kind() == GateKind::CP)
            name = "cu1";
        out << name;
        if (g.numParams() > 0) {
            out << "(";
            for (int i = 0; i < g.numParams(); ++i) {
                out << formatDouble(g.param(i));
                if (i + 1 < g.numParams())
                    out << ",";
            }
            out << ")";
        }
        out << " ";
        for (int i = 0; i < g.numQubits(); ++i) {
            out << "q[" << g.qubit(i) << "]";
            if (i + 1 < g.numQubits())
                out << ",";
        }
        out << ";\n";
    }
    return out.str();
}

std::string
compileResultToText(const CompileResult &result)
{
    std::ostringstream out;
    out << "geyser-cache-v1\n";
    out << "technique " << techniqueName(result.technique) << "\n";
    out << "swaps " << result.swapsInserted << "\n";
    out << "blocks " << result.blockCount << " " << result.composedBlockCount
        << "\n";
    out << "evals " << result.compositionEvaluations << "\n";
    out << "maxhsd " << formatDouble(result.maxBlockHsd) << "\n";
    out << "times " << formatDouble(result.transpileMs) << " "
        << formatDouble(result.blockingMs) << " "
        << formatDouble(result.composeMs) << " "
        << formatDouble(result.totalMs) << "\n";
    out << "layout";
    for (const Qubit q : result.finalLayout)
        out << " " << q;
    out << "\n";
    out << "ilayout";
    for (const Qubit q : result.initialLayout)
        out << " " << q;
    out << "\n";
    out << "endheader\n";
    out << circuitToText(result.physical);
    return out.str();
}

void
saveCompileResult(const std::string &path, const CompileResult &result)
{
    std::ofstream out(path);
    if (!out)
        throw IoError(SourceContext{path, 0, -1},
                      "saveCompileResult: cannot open for writing");
    out << compileResultToText(result);
}

std::optional<CompileResult>
compileResultFromText(const std::string &text, const Circuit &logical)
{
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) || line != "geyser-cache-v1")
        return std::nullopt;

    CompileResult result;
    result.logical = logical;
    try {
        std::string key;
        while (in >> key && key != "endheader") {
            if (key == "technique") {
                std::string name;
                in >> name;
                result.technique = techniqueFromName(name);
            } else if (key == "swaps") {
                in >> result.swapsInserted;
            } else if (key == "blocks") {
                in >> result.blockCount >> result.composedBlockCount;
            } else if (key == "evals") {
                in >> result.compositionEvaluations;
            } else if (key == "maxhsd") {
                in >> result.maxBlockHsd;
            } else if (key == "times") {
                in >> result.transpileMs >> result.blockingMs >>
                    result.composeMs >> result.totalMs;
            } else if (key == "layout") {
                std::getline(in, line);
                std::istringstream ls(line);
                Qubit q;
                while (ls >> q)
                    result.finalLayout.push_back(q);
            } else if (key == "ilayout") {
                std::getline(in, line);
                std::istringstream ls(line);
                Qubit q;
                while (ls >> q)
                    result.initialLayout.push_back(q);
            } else {
                return std::nullopt;
            }
            if (!in)
                return std::nullopt;  // Malformed value for this key.
        }
        if (key != "endheader")
            return std::nullopt;  // Truncated before the circuit body.
        std::ostringstream rest;
        rest << in.rdbuf();
        result.physical = circuitFromText(rest.str());
    } catch (const std::exception &) {
        return std::nullopt;
    }

    // Semantic validation: the entry passed the frame checksum, but the
    // payload is still untrusted (version skew, hand edits, serializer
    // bugs). Anything inconsistent is a miss, never a crash.
    if (result.swapsInserted < 0 || result.blockCount < 0 ||
        result.composedBlockCount < 0 || result.compositionEvaluations < 0)
        return std::nullopt;
    if (result.physical.numQubits() < logical.numQubits())
        return std::nullopt;
    if (!layoutIsValid(result.finalLayout, logical.numQubits(),
                       result.physical.numQubits()) ||
        !layoutIsValid(result.initialLayout, logical.numQubits(),
                       result.physical.numQubits()))
        return std::nullopt;

    // Derived fields can still reject the payload: a 0-qubit logical
    // circuit has no topology, and a body holding gates outside the
    // native set (e.g. a stray `cx`) throws from depthPulses. Found by
    // fuzz_serialize (regressions/serialize/nonnative_gate_in_body);
    // both were escapes from the nullopt contract.
    try {
        result.topology =
            result.technique == Technique::Superconducting
                ? Topology::squareForQubits(logical.numQubits())
                : Topology::forQubits(logical.numQubits());
        if (result.physical.numQubits() > result.topology.numAtoms())
            return std::nullopt;  // Circuit does not fit the topology.
        result.stats = circuitStats(result.physical);
        if (result.technique == Technique::Superconducting)
            result.stats.depthPulses = depthPulses(result.physical);
        else
            result.stats.depthPulses =
                depthPulses(result.physical, result.topology);
    } catch (const std::exception &) {
        return std::nullopt;
    }
    return result;
}

std::optional<CompileResult>
loadCompileResult(const std::string &path, const Circuit &logical)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();
    return compileResultFromText(buf.str(), logical);
}

std::string
composeResultToText(const ComposeResult &result)
{
    std::ostringstream out;
    out << "geyser-compose-v1\n";
    out << "composed " << (result.composed ? 1 : 0) << "\n";
    out << "layers " << result.layersUsed << "\n";
    out << "hsd " << formatDouble(result.hsd) << "\n";
    out << "evals " << result.evaluations << "\n";
    out << "saved " << result.pulsesSaved << "\n";
    out << "endheader\n";
    out << circuitToText(result.circuit);
    return out.str();
}

std::optional<ComposeResult>
composeResultFromText(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) || line != "geyser-compose-v1")
        return std::nullopt;
    ComposeResult result;
    try {
        std::string key;
        while (in >> key && key != "endheader") {
            if (key == "composed") {
                int v = 0;
                in >> v;
                result.composed = v != 0;
            } else if (key == "layers") {
                in >> result.layersUsed;
            } else if (key == "hsd") {
                in >> result.hsd;
            } else if (key == "evals") {
                in >> result.evaluations;
            } else if (key == "saved") {
                in >> result.pulsesSaved;
            } else {
                return std::nullopt;
            }
            if (!in)
                return std::nullopt;
        }
        if (key != "endheader" || !in)
            return std::nullopt;
        std::ostringstream rest;
        rest << in.rdbuf();
        result.circuit = circuitFromText(rest.str());
    } catch (const std::exception &) {
        return std::nullopt;
    }
    if (result.layersUsed < 0 || result.evaluations < 0)
        return std::nullopt;
    return result;
}

}  // namespace geyser
