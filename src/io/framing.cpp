#include "io/framing.hpp"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace geyser {
namespace io {

namespace fs = std::filesystem;

uint64_t
fnv1a64(const void *data, size_t len)
{
    constexpr uint64_t kOffset = 0xcbf29ce484222325ull;
    constexpr uint64_t kPrime = 0x100000001b3ull;
    uint64_t h = kOffset;
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < len; ++i) {
        h ^= bytes[i];
        h *= kPrime;
    }
    return h;
}

std::string
Fnv128::hex() const
{
    char buf[33];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
    return buf;
}

namespace {

constexpr const char *kFrameHeader = "geyser-frame v1 ";

}  // namespace

std::string
frameWithChecksum(const std::string &payload)
{
    std::ostringstream out;
    out << kFrameHeader << payload.size() << "\n";
    out << payload << "\n";
    char sum[17];
    std::snprintf(sum, sizeof(sum), "%016llx",
                  static_cast<unsigned long long>(
                      fnv1a64(payload.data(), payload.size())));
    out << "fnv64 " << sum << "\n";
    return out.str();
}

std::optional<std::string>
unframeWithChecksum(const std::string &framed)
{
    const size_t headerLen = std::char_traits<char>::length(kFrameHeader);
    if (framed.compare(0, headerLen, kFrameHeader) != 0)
        return std::nullopt;  // Wrong magic or format-version skew.
    const size_t eol = framed.find('\n', headerLen);
    if (eol == std::string::npos)
        return std::nullopt;
    size_t payloadLen = 0;
    try {
        size_t consumed = 0;
        const std::string lenText = framed.substr(headerLen, eol - headerLen);
        payloadLen = std::stoull(lenText, &consumed);
        if (consumed != lenText.size())
            return std::nullopt;
    } catch (const std::exception &) {
        return std::nullopt;
    }
    const size_t payloadStart = eol + 1;
    // Frame = header line + payload + "\n" + "fnv64 " + 16 hex + "\n".
    const size_t footerLen = 1 + 6 + 16 + 1;
    if (framed.size() < payloadStart + payloadLen + footerLen)
        return std::nullopt;  // Truncated.
    const std::string payload = framed.substr(payloadStart, payloadLen);
    const size_t footerStart = payloadStart + payloadLen;
    if (framed.compare(footerStart, 7, "\nfnv64 ") != 0)
        return std::nullopt;
    const std::string sumHex = framed.substr(footerStart + 7, 16);
    uint64_t expected = 0;
    try {
        size_t consumed = 0;
        expected = std::stoull(sumHex, &consumed, 16);
        if (consumed != sumHex.size())
            return std::nullopt;
    } catch (const std::exception &) {
        return std::nullopt;
    }
    if (fnv1a64(payload.data(), payload.size()) != expected)
        return std::nullopt;  // Bit rot.
    return payload;
}

bool
writeFileAtomic(const std::string &path, const std::string &contents)
{
    // Same-directory temp file so the final rename cannot cross a
    // filesystem boundary (rename is only atomic within one).
    std::string tmp = path + ".tmp" + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out.write(contents.data(),
                  static_cast<std::streamsize>(contents.size()));
        out.flush();
        if (!out) {
            out.close();
            std::error_code ec;
            fs::remove(tmp, ec);
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return false;
    }
    return true;
}

std::optional<std::string>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad())
        return std::nullopt;
    return buf.str();
}

bool
createDirectories(const std::string &path)
{
    std::error_code ec;
    fs::create_directories(path, ec);
    std::error_code checkEc;
    return !ec && fs::is_directory(path, checkEc);
}

}  // namespace io
}  // namespace geyser
