/**
 * @file
 * Circuit serialization: a compact text format (round-trippable), an
 * OpenQASM 2.0 exporter for interoperability, and a small cache for
 * compiled results so the per-figure bench binaries don't recompile the
 * same benchmark repeatedly.
 */
#ifndef GEYSER_IO_SERIALIZE_HPP
#define GEYSER_IO_SERIALIZE_HPP

#include <optional>
#include <string>

#include "geyser/pipeline.hpp"

namespace geyser {

/** Serialize a circuit to the native text format. */
std::string circuitToText(const Circuit &circuit);

/** Parse the native text format; throws on malformed input. */
Circuit circuitFromText(const std::string &text);

/** Export to OpenQASM 2.0 (logical gates use their standard mnemonics). */
std::string circuitToQasm(const Circuit &circuit);

/**
 * Persist the replayable parts of a CompileResult (physical circuit,
 * layout, counters). The logical circuit and topology are rebuilt by the
 * loader from the benchmark spec, so they are not stored.
 */
void saveCompileResult(const std::string &path, const CompileResult &result);

/**
 * Load a cached result; returns std::nullopt if the file is missing or
 * malformed. `logical` and the topology are filled in from the caller.
 */
std::optional<CompileResult> loadCompileResult(const std::string &path,
                                               const Circuit &logical);

}  // namespace geyser

#endif  // GEYSER_IO_SERIALIZE_HPP
