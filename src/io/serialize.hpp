/**
 * @file
 * Circuit serialization: a compact text format (round-trippable), an
 * OpenQASM 2.0 exporter for interoperability, and a small cache for
 * compiled results so the per-figure bench binaries don't recompile the
 * same benchmark repeatedly.
 */
#ifndef GEYSER_IO_SERIALIZE_HPP
#define GEYSER_IO_SERIALIZE_HPP

#include <optional>
#include <string>

#include "geyser/pipeline.hpp"

namespace geyser {

/** Serialize a circuit to the native text format. */
std::string circuitToText(const Circuit &circuit);

/** Parse the native text format; throws on malformed input. */
Circuit circuitFromText(const std::string &text);

/** Export to OpenQASM 2.0 (logical gates use their standard mnemonics). */
std::string circuitToQasm(const Circuit &circuit);

/**
 * Serialize the replayable parts of a CompileResult (physical circuit,
 * layout, counters) to text. The logical circuit and topology are
 * rebuilt by the loader from the caller, so they are not stored. This is
 * the payload format of the persistent result cache (src/cache).
 */
std::string compileResultToText(const CompileResult &result);

/**
 * Parse compileResultToText() output; returns std::nullopt on any
 * malformed input. `logical` and the topology are filled in from the
 * caller, and derived statistics are recomputed.
 */
std::optional<CompileResult> compileResultFromText(const std::string &text,
                                                   const Circuit &logical);

/** compileResultToText() to a file; throws if the file cannot open. */
void saveCompileResult(const std::string &path, const CompileResult &result);

/**
 * Load a saved result; returns std::nullopt if the file is missing or
 * malformed. `logical` and the topology are filled in from the caller.
 */
std::optional<CompileResult> loadCompileResult(const std::string &path,
                                               const Circuit &logical);

/**
 * Serialize one block-composition outcome (src/compose) — the adopted
 * circuit plus the search summary — for the composed-block spill of the
 * persistent cache.
 */
std::string composeResultToText(const ComposeResult &result);

/** Parse composeResultToText() output; nullopt on malformed input. */
std::optional<ComposeResult> composeResultFromText(const std::string &text);

}  // namespace geyser

#endif  // GEYSER_IO_SERIALIZE_HPP
