/**
 * @file
 * Incremental environment-contraction kernel for the composition
 * objective Tr(T^dagger U(angles)) — the rotosolve hot path.
 *
 * The ansatz unitary factorizes as U = C_L E_{L-1} C_{L-1} ... E_0 C_0
 * (U3 columns C interleaved with diagonal entanglers E). For a sweep
 * position (column `col`, qubit `q`) write U = L . C(col) . R with
 * L = C_L ... E_col the product *after* the column and
 * R = E_{col-1} ... C_0 the product *before* it. By trace cyclicity
 *
 *     Tr(T^dagger U) = Tr(T^dagger L C R) = Tr((R T^dagger L) C)
 *                    = Tr(E . C)            with E = R . T^dagger . L,
 *
 * and because C is a Kronecker product of per-qubit U3s, the trace is
 * *bilinear in the 4 entries of qubit q's U3*:
 *
 *     Tr(E C) = sum_{a,b in {0,1}} u3_q[a,b] . W_q[a,b],
 *     W_q[a,b] = sum_{k_q=a, r_q=b} E(r,k) . prod_{p!=q} u3_p[k_p,r_p].
 *
 * So after one O(d^2) environment build per column and one O(d^2 n)
 * fold per qubit, every rotosolve probe (angle -> trace) costs a
 * constant-size 4-entry contraction plus one U3 rebuild — versus the
 * dense path's O(layers d^3) product with fresh std::exp calls per
 * probe. Environments are updated with rank-local multiplies as the
 * sweep advances, never rebuilt from scratch mid-sweep.
 *
 * All buffers are fixed-size split-complex (SoA) arrays owned by the
 * evaluator; no heap allocation happens after construction. The dense
 * Ansatz::overlapTrace stays as the reference oracle; the verify layer
 * cross-checks the two to 1e-12 (verify/kernel_check).
 */
#ifndef GEYSER_COMPOSE_EVALUATOR_HPP
#define GEYSER_COMPOSE_EVALUATOR_HPP

#include <vector>

#include "compose/ansatz.hpp"
#include "linalg/kernels/backend.hpp"
#include "linalg/matrix.hpp"

namespace geyser {

/**
 * Incremental trace evaluator bound to one (ansatz shape, target)
 * pair. Reusable across restarts/basin hops: call setAngles() to load
 * a new start point, then drive the sweep protocol
 *
 *   beginSweep();
 *   for col in 0..layers: beginColumn(col);
 *     for q in 0..n-1: beginQubit(q);
 *       probe(role, value) ... commitAngle(role, value);
 *
 * Columns must be visited in order (environments advance forward);
 * probes never mutate state, commits update the evaluator's current
 * angle vector and the cached U3 of the selected qubit. A sweep may be
 * abandoned at any point (e.g. on early convergence) and restarted
 * with beginSweep().
 */
class AnsatzEvaluator
{
  public:
    static constexpr int kMaxQubits = 4;
    static constexpr int kMaxDim = 1 << kMaxQubits;
    static constexpr int kMaxColumns = 16;

    /** `target` must be dim x dim for the ansatz's qubit count. */
    AnsatzEvaluator(const Ansatz &ansatz, const Matrix &target);

    int numQubits() const { return numQubits_; }
    int layers() const { return layers_; }
    int columns() const { return layers_ + 1; }
    int dim() const { return dim_; }
    int numAngles() const { return static_cast<int>(angles_.size()); }

    /** Load a fresh angle vector (rebuilds the U3 cache). */
    void setAngles(const std::vector<double> &angles);
    const std::vector<double> &angles() const { return angles_; }
    double angle(int col, int qubit, int role) const
    {
        return angles_[static_cast<size_t>(angleIndex(col, qubit, role))];
    }

    /**
     * Tr(target^dagger U(current angles)) via the factored product —
     * O(layers d^2 n), no std::exp (U3s come from the cache). Matches
     * Ansatz::overlapTrace to floating-point rounding.
     */
    Complex trace() const;

    /** setAngles(angles) + trace(): the global-optimizer objective. */
    Complex traceAt(const std::vector<double> &angles)
    {
        setAngles(angles);
        return trace();
    }

    /** Start a sweep: build suffix environments from current angles. */
    void beginSweep();

    /**
     * Enter a column (must be beginSweep order: 0, 1, ..., layers).
     * Folds the previous column into the prefix environment and
     * contracts E = R . T^dagger . L for this column.
     */
    void beginColumn(int col);

    /** Select a qubit of the current column: folds W_q. */
    void beginQubit(int qubit);

    /**
     * Trace with the selected qubit's `role` angle (0 = theta, 1 = phi,
     * 2 = lambda) replaced by `value`, other angles current. O(1):
     * one U3 rebuild (two trig calls — the fixed roles' trig is cached
     * by beginQubit/commitAngle) plus the 4-entry contraction. Does
     * not mutate.
     */
    Complex probe(int role, double value) const;

    /**
     * Two probes of the same role batched through one contiguous SoA
     * contraction — the rotosolve (0, pi) probe pair. Equivalent to
     * two probe() calls, cheaper: the candidate U3s are packed 2x4
     * split and contracted in one backend sweep.
     */
    void probePair(int role, double v0, double v1, Complex &t0,
                   Complex &t1) const;

    /** Accept an update for the selected qubit's `role` angle. */
    void commitAngle(int role, double value);

    /** Name of the compute backend this evaluator dispatched to. */
    const char *backendName() const { return backend_->name; }

  private:
    int angleIndex(int col, int qubit, int role) const
    {
        return (col * numQubits_ + qubit) * 3 + role;
    }
    void loadU3(int col, int qubit);
    void applyColumnLeft(double *re, double *im, int col) const;
    void applyColumnRight(double *re, double *im, int col) const;
    void buildU3(int role, double value, int way, double *ure,
                 double *uim) const;

    int numQubits_ = 0;
    int layers_ = 0;
    int dim_ = 0;
    std::vector<double> angles_;
    int flipMask_[kMaxColumns] = {};  ///< Per-layer entangler masks.

    /** Dispatched kernel table (resolved once at construction). */
    const kernels::ComputeBackend *backend_ = nullptr;

    // target^dagger, split row-major.
    alignas(64) double tdRe_[kMaxDim * kMaxDim] = {};
    alignas(64) double tdIm_[kMaxDim * kMaxDim] = {};

    // Cached per-column, per-qubit U3 entries (row-major 2x2).
    alignas(64) double u3Re_[kMaxColumns][kMaxQubits][4] = {};
    alignas(64) double u3Im_[kMaxColumns][kMaxQubits][4] = {};

    // Suffix environments L(col) = C_L ... E_col, built per sweep.
    alignas(64) double lenvRe_[kMaxColumns][kMaxDim * kMaxDim] = {};
    alignas(64) double lenvIm_[kMaxColumns][kMaxDim * kMaxDim] = {};
    // Prefix environment R(col), advanced as the sweep moves forward.
    alignas(64) double renvRe_[kMaxDim * kMaxDim] = {};
    alignas(64) double renvIm_[kMaxDim * kMaxDim] = {};
    // E = R . T^dagger . L for the current column.
    alignas(64) double envRe_[kMaxDim * kMaxDim] = {};
    alignas(64) double envIm_[kMaxDim * kMaxDim] = {};
    // W_q fold of the current (column, qubit).
    alignas(64) double wRe_[4] = {};
    alignas(64) double wIm_[4] = {};

    // cos/sin of (theta/2, phi, lambda) per (column, qubit), kept in
    // lockstep with the U3 cache: loadU3 fills it, commitAngle updates
    // one pair, beginQubit just points probes at it — so selecting a
    // qubit costs no trig at all.
    double trigCache_[kMaxColumns][kMaxQubits][6] = {};

    // cos/sin of (theta/2, phi, lambda) for the selected qubit's
    // current angles; probes only recompute the varied role's pair.
    double probeTrig_[6] = {};

    // Memoized probe-argument trig, keyed by the exact argument:
    // [role][way] -> {arg, cos, sin}. Rotosolve probes every coordinate
    // at the same two values (0, pi), so after the first coordinate the
    // varied role's trig is a cache hit too. way 0/1 = first/second
    // value of a probe pair. Pure memoization — hits return exactly
    // what std::cos/std::sin returned for the identical argument.
    mutable double probeArgTrig_[3][2][3] = {};

    int curCol_ = -1;
    int curQubit_ = -1;
    bool sweeping_ = false;
};

}  // namespace geyser

#endif  // GEYSER_COMPOSE_EVALUATOR_HPP
