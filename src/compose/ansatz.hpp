/**
 * @file
 * The parameterized block-composition ansatz of paper Fig 10: a column of
 * U3 gates, followed per layer by an entangler (CCZ for 3-qubit blocks,
 * CZ for 2-qubit blocks) and another U3 column. One layer of the 3-qubit
 * ansatz carries 18 angles + 1 categorical entangler configuration
 * (19 parameters); each extra layer adds 9 angles + 1 categorical
 * (29 for two layers), exactly as in the paper.
 *
 * CCZ is permutation-invariant, so in the default (paper) entangler mode
 * the categorical parameter selects the pulse-schedule orientation (which
 * atom receives the 2-pi pulse) and cannot change the unitary; the
 * Extended mode instead lets each layer choose among {CZ on one of the
 * three pairs, CCZ}, which does change both the unitary and the pulse
 * cost (an ablation of this repo).
 */
#ifndef GEYSER_COMPOSE_ANSATZ_HPP
#define GEYSER_COMPOSE_ANSATZ_HPP

#include <vector>

#include "circuit/circuit.hpp"
#include "linalg/matrix.hpp"

namespace geyser {

/** How the per-layer categorical parameter is interpreted. */
enum class EntanglerMode {
    PaperCcz,  ///< Every layer uses CCZ; categorical = pulse orientation.
    Extended,  ///< Layers choose among CZ(0,1), CZ(0,2), CZ(1,2), CCZ.
};

/** The discrete entangler choice of one layer (Extended mode). */
enum class Entangler : uint8_t { Cz01, Cz02, Cz12, Ccz, Cccz };

/**
 * Every supported entangler is a diagonal sign matrix that flips the
 * amplitude of exactly the basis states whose local bits cover `mask`:
 * row r is negated iff (r & mask) == mask. This is the representation
 * both the dense trace path and the incremental AnsatzEvaluator use.
 */
int entanglerFlipMask(Entangler e, int num_qubits);

/**
 * A fixed-depth ansatz over 2 or 3 qubits. The angle vector layout is
 * column-major: (layers+1) columns of numQubits U3 gates, each gate
 * contributing (theta, phi, lambda) in order.
 */
class Ansatz
{
  public:
    /**
     * @param num_qubits 2, 3, or 4. The 4-qubit form (CCCZ entanglers,
     *        the paper's rejected square-lattice alternative, Sec 3.2)
     *        supports unitary()/overlapTrace() for composability
     *        studies; toCircuit() requires CCCZ hardware support and
     *        throws.
     * @param layers Number of entangler layers (>= 1).
     * @param entanglers Per-layer choice; for 2-qubit ansatze and
     *        PaperCcz mode this is ignored (CZ / CCZ respectively).
     */
    Ansatz(int num_qubits, int layers,
           std::vector<Entangler> entanglers = {});

    int numQubits() const { return numQubits_; }
    int layers() const { return layers_; }

    /** Per-layer entangler choices (after constructor normalization). */
    const std::vector<Entangler> &entanglers() const { return entanglers_; }

    /**
     * Flat angle index of (column, qubit, role) in the column-major
     * layout documented above; role is 0 = theta, 1 = phi, 2 = lambda.
     */
    int angleIndex(int col, int qubit, int role) const
    {
        return (col * numQubits_ + qubit) * 3 + role;
    }

    /** Number of angle parameters: numQubits * 3 * (layers + 1). */
    int numAngles() const { return numQubits_ * 3 * (layers_ + 1); }

    /**
     * Total parameter count as the paper reports it (angles plus one
     * categorical per layer): 19 for one 3-qubit layer, 29 for two.
     */
    int numParameters() const { return numAngles() + layers_; }

    /** Physical pulse cost: one per U3 plus 3 (CZ) or 5 (CCZ) per layer. */
    long pulses() const;

    /** The ansatz unitary for the given angles (2^n x 2^n). */
    Matrix unitary(const std::vector<double> &angles) const;

    /**
     * Tr(target^dagger U(angles)) computed with fixed stack buffers —
     * the optimizer hot path (millions of calls per composition), so no
     * heap allocation. Equivalent to tracing against unitary(angles).
     */
    Complex overlapTrace(const Matrix &target,
                         const std::vector<double> &angles) const;

    /** Materialize the ansatz as a physical circuit over local qubits. */
    Circuit toCircuit(const std::vector<double> &angles) const;

    /**
     * Kind of angle at a given index: 0 = theta, 1 = phi, 2 = lambda.
     * Used by the rotosolve coordinate optimizer to pick the closed-form
     * update rule.
     */
    int angleRole(int index) const { return index % 3; }

  private:
    Matrix entanglerMatrix(int layer) const;

    int numQubits_;
    int layers_;
    std::vector<Entangler> entanglers_;
};

}  // namespace geyser

#endif  // GEYSER_COMPOSE_ANSATZ_HPP
