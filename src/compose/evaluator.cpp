#include "compose/evaluator.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "obs/obs.hpp"

namespace geyser {

AnsatzEvaluator::AnsatzEvaluator(const Ansatz &ansatz, const Matrix &target)
    : numQubits_(ansatz.numQubits()), layers_(ansatz.layers()),
      dim_(1 << ansatz.numQubits()), backend_(&kernels::active())
{
    if (layers_ + 1 > kMaxColumns)
        throw std::invalid_argument(
            "AnsatzEvaluator: too many layers for the fixed buffers");
    if (target.rows() != dim_ || target.cols() != dim_)
        throw std::invalid_argument("AnsatzEvaluator: target dimension");

    for (int l = 0; l < layers_; ++l)
        flipMask_[l] = entanglerFlipMask(
            ansatz.entanglers()[static_cast<size_t>(l)], numQubits_);

    // Store target^dagger once, split.
    for (int r = 0; r < dim_; ++r) {
        for (int c = 0; c < dim_; ++c) {
            const Complex v = std::conj(target(c, r));
            tdRe_[r * dim_ + c] = v.real();
            tdIm_[r * dim_ + c] = v.imag();
        }
    }
    angles_.assign(static_cast<size_t>(ansatz.numAngles()), 0.0);
    for (auto &role : probeArgTrig_)
        for (auto &way : role)
            way[0] = std::numeric_limits<double>::quiet_NaN();
    setAngles(angles_);
}

void
AnsatzEvaluator::loadU3(int col, int qubit)
{
    // Trig lands in the persistent cache first; the U3 entries are
    // derived from it so the two never drift apart.
    double *t = trigCache_[col][qubit];
    t[0] = std::cos(angle(col, qubit, 0) / 2.0);
    t[1] = std::sin(angle(col, qubit, 0) / 2.0);
    t[2] = std::cos(angle(col, qubit, 1));
    t[3] = std::sin(angle(col, qubit, 1));
    t[4] = std::cos(angle(col, qubit, 2));
    t[5] = std::sin(angle(col, qubit, 2));
    kernels::u3EntriesFromTrig(t[0], t[1], t[2], t[3], t[4], t[5],
                               u3Re_[col][qubit], u3Im_[col][qubit]);
}

void
AnsatzEvaluator::setAngles(const std::vector<double> &angles)
{
    if (angles.size() != angles_.size())
        throw std::invalid_argument("AnsatzEvaluator: wrong angle count");
    angles_ = angles;
    for (int col = 0; col <= layers_; ++col)
        for (int q = 0; q < numQubits_; ++q)
            loadU3(col, q);
    sweeping_ = false;
    curCol_ = -1;
    curQubit_ = -1;
}

void
AnsatzEvaluator::applyColumnLeft(double *re, double *im, int col) const
{
    // M := C_col . M, one 2x2 per qubit applied to row pairs.
    for (int q = 0; q < numQubits_; ++q)
        backend_->apply2x2Rows(re, im, u3Re_[col][q], u3Im_[col][q], 1 << q,
                               dim_);
}

void
AnsatzEvaluator::applyColumnRight(double *re, double *im, int col) const
{
    // M := M . C_col: (M C)(r,c) = sum_k M(r,k) C(k,c); the qubit-q
    // factor of C(k,c) is u3[k_q, c_q], so pair columns instead of rows.
    for (int q = 0; q < numQubits_; ++q)
        backend_->apply2x2Cols(re, im, u3Re_[col][q], u3Im_[col][q], 1 << q,
                               dim_);
}

Complex
AnsatzEvaluator::trace() const
{
    static obs::Counter &fullTraces =
        obs::counter("compose.kernel_full_traces");
    fullTraces.add();

    const int d = dim_;
    alignas(64) double mre[kMaxDim * kMaxDim], mim[kMaxDim * kMaxDim];
    std::memset(mre, 0, sizeof(double) * static_cast<size_t>(d * d));
    std::memset(mim, 0, sizeof(double) * static_cast<size_t>(d * d));
    for (int r = 0; r < d; ++r)
        mre[r * d + r] = 1.0;
    applyColumnLeft(mre, mim, 0);
    for (int l = 0; l < layers_; ++l) {
        backend_->flipRows(mre, mim, flipMask_[l], d);
        applyColumnLeft(mre, mim, l + 1);
    }
    // Tr(T^dagger U) = sum_{r,k} Td(r,k) U(k,r).
    double tre = 0.0, tim = 0.0;
    backend_->traceProduct(tdRe_, tdIm_, mre, mim, d, &tre, &tim);
    return {tre, tim};
}

void
AnsatzEvaluator::beginSweep()
{
    static obs::Counter &sweeps = obs::counter("compose.kernel_sweeps");
    sweeps.add();

    const int d = dim_;
    const size_t bytes = sizeof(double) * static_cast<size_t>(d * d);
    // Suffix pass: L(layers) = I; L(col) = L(col+1) . C_{col+1} . E_col.
    std::memset(lenvRe_[layers_], 0, bytes);
    std::memset(lenvIm_[layers_], 0, bytes);
    for (int r = 0; r < d; ++r)
        lenvRe_[layers_][r * d + r] = 1.0;
    for (int col = layers_ - 1; col >= 0; --col) {
        std::memcpy(lenvRe_[col], lenvRe_[col + 1], bytes);
        std::memcpy(lenvIm_[col], lenvIm_[col + 1], bytes);
        applyColumnRight(lenvRe_[col], lenvIm_[col], col + 1);
        backend_->flipCols(lenvRe_[col], lenvIm_[col], flipMask_[col], d);
    }
    // Prefix starts empty: R(0) = I.
    std::memset(renvRe_, 0, bytes);
    std::memset(renvIm_, 0, bytes);
    for (int r = 0; r < d; ++r)
        renvRe_[r * d + r] = 1.0;
    sweeping_ = true;
    curCol_ = -1;
    curQubit_ = -1;
}

void
AnsatzEvaluator::beginColumn(int col)
{
    static obs::Counter &envBuilds =
        obs::counter("compose.kernel_env_builds");
    envBuilds.add();

    if (!sweeping_ || col != curCol_ + 1)
        throw std::logic_error(
            "AnsatzEvaluator::beginColumn: columns must be swept in order");
    const int d = dim_;
    if (col > 0) {
        // Fold the previous (now committed) column into the prefix:
        // R(col) = E_{col-1} . C_{col-1} . R(col-1).
        applyColumnLeft(renvRe_, renvIm_, col - 1);
        backend_->flipRows(renvRe_, renvIm_, flipMask_[col - 1], d);
    }
    // E = R . T^dagger . L(col); the edge columns skip one identity.
    alignas(64) double tre[kMaxDim * kMaxDim], tim[kMaxDim * kMaxDim];
    const double *leftRe = tdRe_, *leftIm = tdIm_;
    if (col > 0) {
        backend_->matmul(renvRe_, renvIm_, tdRe_, tdIm_, tre, tim, d);
        leftRe = tre;
        leftIm = tim;
    }
    if (col < layers_) {
        backend_->matmul(leftRe, leftIm, lenvRe_[col], lenvIm_[col], envRe_,
                         envIm_, d);
    } else {
        const size_t bytes = sizeof(double) * static_cast<size_t>(d * d);
        std::memcpy(envRe_, leftRe, bytes);
        std::memcpy(envIm_, leftIm, bytes);
    }
    curCol_ = col;
    curQubit_ = -1;
}

void
AnsatzEvaluator::beginQubit(int qubit)
{
    static obs::Counter &folds = obs::counter("compose.kernel_folds");
    folds.add();

    if (curCol_ < 0)
        throw std::logic_error("AnsatzEvaluator::beginQubit: no column");
    backend_->foldW(envRe_, envIm_, u3Re_[curCol_], u3Im_[curCol_],
                    numQubits_, qubit, wRe_, wIm_);
    curQubit_ = qubit;
    std::memcpy(probeTrig_, trigCache_[curCol_][qubit],
                sizeof(probeTrig_));
}

void
AnsatzEvaluator::buildU3(int role, double value, int way, double *ure,
                         double *uim) const
{
    // Fixed roles come from the trig cache; the varied role costs at
    // most a cos/sin pair — usually none, because rotosolve probes
    // every coordinate at the same two values and the memo hits.
    double t[6];
    std::memcpy(t, probeTrig_, sizeof(t));
    const double arg = role == 0 ? value / 2.0 : value;
    double *memo = probeArgTrig_[role][way];
    if (memo[0] != arg) {
        memo[0] = arg;
        memo[1] = std::cos(arg);
        memo[2] = std::sin(arg);
    }
    t[role * 2] = memo[1];
    t[role * 2 + 1] = memo[2];
    kernels::u3EntriesFromTrig(t[0], t[1], t[2], t[3], t[4], t[5], ure,
                               uim);
}

Complex
AnsatzEvaluator::probe(int role, double value) const
{
    static obs::Counter &probes = obs::counter("compose.kernel_probes");
    probes.add();

    if (curQubit_ < 0)
        throw std::logic_error("AnsatzEvaluator::probe: no qubit selected");
    alignas(64) double ure[4], uim[4];
    buildU3(role, value, 0, ure, uim);
    double tre = 0.0, tim = 0.0;
    backend_->probeBatch(wRe_, wIm_, ure, uim, 1, &tre, &tim);
    return {tre, tim};
}

void
AnsatzEvaluator::probePair(int role, double v0, double v1, Complex &t0,
                           Complex &t1) const
{
    static obs::Counter &probes = obs::counter("compose.kernel_probes");
    probes.add(2);

    if (curQubit_ < 0)
        throw std::logic_error(
            "AnsatzEvaluator::probePair: no qubit selected");
    alignas(64) double ure[8], uim[8];
    buildU3(role, v0, 0, ure, uim);
    buildU3(role, v1, 1, ure + 4, uim + 4);
    double tre[2], tim[2];
    backend_->probeBatch(wRe_, wIm_, ure, uim, 2, tre, tim);
    t0 = {tre[0], tim[0]};
    t1 = {tre[1], tim[1]};
}

void
AnsatzEvaluator::commitAngle(int role, double value)
{
    if (curQubit_ < 0)
        throw std::logic_error(
            "AnsatzEvaluator::commitAngle: no qubit selected");
    angles_[static_cast<size_t>(angleIndex(curCol_, curQubit_, role))] =
        value;
    // Refresh the trig caches (subsequent probes of the other roles see
    // the committed angle), then rebuild the committed U3 straight from
    // them — the caches already hold the other two roles' trig, so
    // commit costs one cos/sin pair instead of loadU3's three. Not
    // routed through the probe-arg memo: commits land on optimizer-
    // chosen angles and would evict the stable (0, pi) probe entries.
    const double arg = role == 0 ? value / 2.0 : value;
    const double c = std::cos(arg), s = std::sin(arg);
    probeTrig_[role * 2] = c;
    probeTrig_[role * 2 + 1] = s;
    trigCache_[curCol_][curQubit_][role * 2] = c;
    trigCache_[curCol_][curQubit_][role * 2 + 1] = s;
    kernels::u3EntriesFromTrig(probeTrig_[0], probeTrig_[1], probeTrig_[2],
                               probeTrig_[3], probeTrig_[4], probeTrig_[5],
                               u3Re_[curCol_][curQubit_],
                               u3Im_[curCol_][curQubit_]);
}

}  // namespace geyser
