#include "compose/evaluator.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "obs/obs.hpp"

namespace geyser {

namespace {

/** Split-complex d x d product: out = a * b (row-major). */
void
matmul(const double *are, const double *aim, const double *bre,
       const double *bim, double *outRe, double *outIm, int d)
{
    for (int r = 0; r < d; ++r) {
        for (int c = 0; c < d; ++c) {
            double sre = 0.0, sim = 0.0;
            for (int k = 0; k < d; ++k) {
                const double xre = are[r * d + k], xim = aim[r * d + k];
                const double yre = bre[k * d + c], yim = bim[k * d + c];
                sre += xre * yre - xim * yim;
                sim += xre * yim + xim * yre;
            }
            outRe[r * d + c] = sre;
            outIm[r * d + c] = sim;
        }
    }
}

}  // namespace

AnsatzEvaluator::AnsatzEvaluator(const Ansatz &ansatz, const Matrix &target)
    : numQubits_(ansatz.numQubits()), layers_(ansatz.layers()),
      dim_(1 << ansatz.numQubits())
{
    if (layers_ + 1 > kMaxColumns)
        throw std::invalid_argument(
            "AnsatzEvaluator: too many layers for the fixed buffers");
    if (target.rows() != dim_ || target.cols() != dim_)
        throw std::invalid_argument("AnsatzEvaluator: target dimension");

    for (int l = 0; l < layers_; ++l)
        flipMask_[l] = entanglerFlipMask(
            ansatz.entanglers()[static_cast<size_t>(l)], numQubits_);

    // Store target^dagger once, split.
    for (int r = 0; r < dim_; ++r) {
        for (int c = 0; c < dim_; ++c) {
            const Complex v = std::conj(target(c, r));
            tdRe_[r * dim_ + c] = v.real();
            tdIm_[r * dim_ + c] = v.imag();
        }
    }
    angles_.assign(static_cast<size_t>(ansatz.numAngles()), 0.0);
    setAngles(angles_);
}

void
AnsatzEvaluator::loadU3(int col, int qubit)
{
    const double th = angle(col, qubit, 0);
    const double ph = angle(col, qubit, 1);
    const double la = angle(col, qubit, 2);
    const double c = std::cos(th / 2.0), s = std::sin(th / 2.0);
    const double cp = std::cos(ph), sp = std::sin(ph);
    const double cl = std::cos(la), sl = std::sin(la);
    double *re = u3Re_[col][qubit], *im = u3Im_[col][qubit];
    re[0] = c;
    im[0] = 0.0;
    re[1] = -cl * s;  // -e^{i la} s
    im[1] = -sl * s;
    re[2] = cp * s;  // e^{i ph} s
    im[2] = sp * s;
    re[3] = (cp * cl - sp * sl) * c;  // e^{i (ph + la)} c
    im[3] = (cp * sl + sp * cl) * c;
}

void
AnsatzEvaluator::setAngles(const std::vector<double> &angles)
{
    if (angles.size() != angles_.size())
        throw std::invalid_argument("AnsatzEvaluator: wrong angle count");
    angles_ = angles;
    for (int col = 0; col <= layers_; ++col)
        for (int q = 0; q < numQubits_; ++q)
            loadU3(col, q);
    sweeping_ = false;
    curCol_ = -1;
    curQubit_ = -1;
}

void
AnsatzEvaluator::applyColumnLeft(double *re, double *im, int col) const
{
    // M := C_col . M, one 2x2 per qubit applied to row pairs.
    const int d = dim_;
    for (int q = 0; q < numQubits_; ++q) {
        const double *ure = u3Re_[col][q], *uim = u3Im_[col][q];
        const int bit = 1 << q;
        for (int r0 = 0; r0 < d; ++r0) {
            if (r0 & bit)
                continue;
            const int r1 = r0 | bit;
            for (int c = 0; c < d; ++c) {
                const double are = re[r0 * d + c], aim = im[r0 * d + c];
                const double bre = re[r1 * d + c], bim = im[r1 * d + c];
                re[r0 * d + c] = ure[0] * are - uim[0] * aim +
                                 ure[1] * bre - uim[1] * bim;
                im[r0 * d + c] = ure[0] * aim + uim[0] * are +
                                 ure[1] * bim + uim[1] * bre;
                re[r1 * d + c] = ure[2] * are - uim[2] * aim +
                                 ure[3] * bre - uim[3] * bim;
                im[r1 * d + c] = ure[2] * aim + uim[2] * are +
                                 ure[3] * bim + uim[3] * bre;
            }
        }
    }
}

void
AnsatzEvaluator::applyColumnRight(double *re, double *im, int col) const
{
    // M := M . C_col: (M C)(r,c) = sum_k M(r,k) C(k,c); the qubit-q
    // factor of C(k,c) is u3[k_q, c_q], so pair columns instead of rows.
    const int d = dim_;
    for (int q = 0; q < numQubits_; ++q) {
        const double *ure = u3Re_[col][q], *uim = u3Im_[col][q];
        const int bit = 1 << q;
        for (int c0 = 0; c0 < d; ++c0) {
            if (c0 & bit)
                continue;
            const int c1 = c0 | bit;
            for (int r = 0; r < d; ++r) {
                const double are = re[r * d + c0], aim = im[r * d + c0];
                const double bre = re[r * d + c1], bim = im[r * d + c1];
                re[r * d + c0] = are * ure[0] - aim * uim[0] +
                                 bre * ure[2] - bim * uim[2];
                im[r * d + c0] = are * uim[0] + aim * ure[0] +
                                 bre * uim[2] + bim * ure[2];
                re[r * d + c1] = are * ure[1] - aim * uim[1] +
                                 bre * ure[3] - bim * uim[3];
                im[r * d + c1] = are * uim[1] + aim * ure[1] +
                                 bre * uim[3] + bim * ure[3];
            }
        }
    }
}

Complex
AnsatzEvaluator::trace() const
{
    static obs::Counter &fullTraces =
        obs::counter("compose.kernel_full_traces");
    fullTraces.add();

    const int d = dim_;
    double mre[kMaxDim * kMaxDim], mim[kMaxDim * kMaxDim];
    std::memset(mre, 0, sizeof(double) * static_cast<size_t>(d * d));
    std::memset(mim, 0, sizeof(double) * static_cast<size_t>(d * d));
    for (int r = 0; r < d; ++r)
        mre[r * d + r] = 1.0;
    applyColumnLeft(mre, mim, 0);
    for (int l = 0; l < layers_; ++l) {
        const int mask = flipMask_[l];
        for (int r = 0; r < d; ++r) {
            if ((r & mask) != mask)
                continue;
            for (int c = 0; c < d; ++c) {
                mre[r * d + c] = -mre[r * d + c];
                mim[r * d + c] = -mim[r * d + c];
            }
        }
        applyColumnLeft(mre, mim, l + 1);
    }
    // Tr(T^dagger U) = sum_{r,k} Td(r,k) U(k,r).
    double tre = 0.0, tim = 0.0;
    for (int r = 0; r < d; ++r) {
        for (int k = 0; k < d; ++k) {
            const double are = tdRe_[r * d + k], aim = tdIm_[r * d + k];
            const double bre = mre[k * d + r], bim = mim[k * d + r];
            tre += are * bre - aim * bim;
            tim += are * bim + aim * bre;
        }
    }
    return {tre, tim};
}

void
AnsatzEvaluator::beginSweep()
{
    static obs::Counter &sweeps = obs::counter("compose.kernel_sweeps");
    sweeps.add();

    const int d = dim_;
    const size_t bytes = sizeof(double) * static_cast<size_t>(d * d);
    // Suffix pass: L(layers) = I; L(col) = L(col+1) . C_{col+1} . E_col.
    std::memset(lenvRe_[layers_], 0, bytes);
    std::memset(lenvIm_[layers_], 0, bytes);
    for (int r = 0; r < d; ++r)
        lenvRe_[layers_][r * d + r] = 1.0;
    for (int col = layers_ - 1; col >= 0; --col) {
        std::memcpy(lenvRe_[col], lenvRe_[col + 1], bytes);
        std::memcpy(lenvIm_[col], lenvIm_[col + 1], bytes);
        applyColumnRight(lenvRe_[col], lenvIm_[col], col + 1);
        const int mask = flipMask_[col];
        for (int c = 0; c < d; ++c) {
            if ((c & mask) != mask)
                continue;
            for (int r = 0; r < d; ++r) {
                lenvRe_[col][r * d + c] = -lenvRe_[col][r * d + c];
                lenvIm_[col][r * d + c] = -lenvIm_[col][r * d + c];
            }
        }
    }
    // Prefix starts empty: R(0) = I.
    std::memset(renvRe_, 0, bytes);
    std::memset(renvIm_, 0, bytes);
    for (int r = 0; r < d; ++r)
        renvRe_[r * d + r] = 1.0;
    sweeping_ = true;
    curCol_ = -1;
    curQubit_ = -1;
}

void
AnsatzEvaluator::beginColumn(int col)
{
    static obs::Counter &envBuilds =
        obs::counter("compose.kernel_env_builds");
    envBuilds.add();

    if (!sweeping_ || col != curCol_ + 1)
        throw std::logic_error(
            "AnsatzEvaluator::beginColumn: columns must be swept in order");
    const int d = dim_;
    if (col > 0) {
        // Fold the previous (now committed) column into the prefix:
        // R(col) = E_{col-1} . C_{col-1} . R(col-1).
        applyColumnLeft(renvRe_, renvIm_, col - 1);
        const int mask = flipMask_[col - 1];
        for (int r = 0; r < d; ++r) {
            if ((r & mask) != mask)
                continue;
            for (int c = 0; c < d; ++c) {
                renvRe_[r * d + c] = -renvRe_[r * d + c];
                renvIm_[r * d + c] = -renvIm_[r * d + c];
            }
        }
    }
    // E = R . T^dagger . L(col); the edge columns skip one identity.
    double tre[kMaxDim * kMaxDim], tim[kMaxDim * kMaxDim];
    const double *leftRe = tdRe_, *leftIm = tdIm_;
    if (col > 0) {
        matmul(renvRe_, renvIm_, tdRe_, tdIm_, tre, tim, d);
        leftRe = tre;
        leftIm = tim;
    }
    if (col < layers_) {
        matmul(leftRe, leftIm, lenvRe_[col], lenvIm_[col], envRe_, envIm_,
               d);
    } else {
        const size_t bytes = sizeof(double) * static_cast<size_t>(d * d);
        std::memcpy(envRe_, leftRe, bytes);
        std::memcpy(envIm_, leftIm, bytes);
    }
    curCol_ = col;
    curQubit_ = -1;
}

void
AnsatzEvaluator::beginQubit(int qubit)
{
    static obs::Counter &folds = obs::counter("compose.kernel_folds");
    folds.add();

    if (curCol_ < 0)
        throw std::logic_error("AnsatzEvaluator::beginQubit: no column");
    const int d = dim_;
    const int n = numQubits_;
    for (int i = 0; i < 4; ++i) {
        wRe_[i] = 0.0;
        wIm_[i] = 0.0;
    }
    // W[a,b] = sum over E(r,k) entries with k_q = a, r_q = b, weighted
    // by the other qubits' U3 factors prod_{p!=q} u3_p[k_p, r_p].
    for (int k = 0; k < d; ++k) {
        for (int r = 0; r < d; ++r) {
            double fre = 1.0, fim = 0.0;
            for (int p = 0; p < n; ++p) {
                if (p == qubit)
                    continue;
                const int e = ((k >> p) & 1) * 2 + ((r >> p) & 1);
                const double ure = u3Re_[curCol_][p][e];
                const double uim = u3Im_[curCol_][p][e];
                const double nre = fre * ure - fim * uim;
                fim = fre * uim + fim * ure;
                fre = nre;
            }
            const double ere = envRe_[r * d + k], eim = envIm_[r * d + k];
            const int idx = ((k >> qubit) & 1) * 2 + ((r >> qubit) & 1);
            wRe_[idx] += fre * ere - fim * eim;
            wIm_[idx] += fre * eim + fim * ere;
        }
    }
    curQubit_ = qubit;
}

void
AnsatzEvaluator::buildU3(int role, double value, double *ure,
                         double *uim) const
{
    const double th = role == 0 ? value : angle(curCol_, curQubit_, 0);
    const double ph = role == 1 ? value : angle(curCol_, curQubit_, 1);
    const double la = role == 2 ? value : angle(curCol_, curQubit_, 2);
    const double c = std::cos(th / 2.0), s = std::sin(th / 2.0);
    const double cp = std::cos(ph), sp = std::sin(ph);
    const double cl = std::cos(la), sl = std::sin(la);
    ure[0] = c;
    uim[0] = 0.0;
    ure[1] = -cl * s;
    uim[1] = -sl * s;
    ure[2] = cp * s;
    uim[2] = sp * s;
    ure[3] = (cp * cl - sp * sl) * c;
    uim[3] = (cp * sl + sp * cl) * c;
}

Complex
AnsatzEvaluator::probe(int role, double value) const
{
    static obs::Counter &probes = obs::counter("compose.kernel_probes");
    probes.add();

    if (curQubit_ < 0)
        throw std::logic_error("AnsatzEvaluator::probe: no qubit selected");
    double ure[4], uim[4];
    buildU3(role, value, ure, uim);
    double tre = 0.0, tim = 0.0;
    for (int i = 0; i < 4; ++i) {
        tre += ure[i] * wRe_[i] - uim[i] * wIm_[i];
        tim += ure[i] * wIm_[i] + uim[i] * wRe_[i];
    }
    return {tre, tim};
}

void
AnsatzEvaluator::commitAngle(int role, double value)
{
    if (curQubit_ < 0)
        throw std::logic_error(
            "AnsatzEvaluator::commitAngle: no qubit selected");
    angles_[static_cast<size_t>(angleIndex(curCol_, curQubit_, role))] =
        value;
    loadU3(curCol_, curQubit_);
}

}  // namespace geyser
