#include "compose/composer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <type_traits>
#include <unordered_map>

#include "cache/result_cache.hpp"
#include "common/cancel.hpp"
#include "common/rng.hpp"
#include "io/framing.hpp"
#include "io/serialize.hpp"
#include "obs/obs.hpp"
#include "opt/dual_annealing.hpp"
#include "sim/unitary_sim.hpp"
#include "transpile/zyz.hpp"
#include "verify/equivalence.hpp"

namespace geyser {

// The HSD objective helpers live in the verification layer now, shared
// with the equivalence checkers.
using verify::hsdFromTrace;
using verify::overlapTrace;

namespace {

/** Exact resynthesis of a block with no entangling gates. */
ComposeResult
composeWithoutEntanglers(const Circuit &block)
{
    ComposeResult result;
    result.composed = true;
    result.hsd = 0.0;

    Circuit out(block.numQubits());
    for (Qubit q = 0; q < block.numQubits(); ++q) {
        Matrix m = Matrix::identity(2);
        bool any = false;
        for (const auto &g : block.gates()) {
            if (g.numQubits() == 1 && g.qubit(0) == q) {
                m = g.matrix() * m;
                any = true;
            }
        }
        if (any && !isIdentityUpToPhase(m)) {
            const U3Params p = u3FromMatrix(m);
            out.u3(q, p.theta, p.phi, p.lambda);
        }
    }
    result.pulsesSaved = block.totalPulses() - out.totalPulses();
    result.circuit = std::move(out);
    return result;
}

}  // namespace

double
rotosolve(AnsatzEvaluator &evaluator, int max_sweeps, double stop_at,
          long &evaluations, const CancelToken *cancel)
{
    const int dim = evaluator.dim();

    ++evaluations;
    double best = hsdFromTrace(evaluator.trace(), dim);
    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        if (cancel != nullptr)
            cancel->checkpoint("compose");
        const double sweepStart = best;
        evaluator.beginSweep();
        for (int col = 0; col < evaluator.columns(); ++col) {
            evaluator.beginColumn(col);
            for (int q = 0; q < evaluator.numQubits(); ++q) {
                evaluator.beginQubit(q);
                for (int role = 0; role < 3; ++role) {
                    evaluations += 2;
                    Complex t0, t1;
                    evaluator.probePair(role, 0.0, kPi, t0, t1);

                    double vstar;
                    double amp;
                    if (role == 0) {
                        // theta: t(v) = t0 cos(v/2) + t1 sin(v/2).
                        const double a2 = std::norm(t0);
                        const double b2 = std::norm(t1);
                        const double c = (std::conj(t0) * t1).real();
                        vstar = std::atan2(2.0 * c, a2 - b2);
                        const double half = vstar / 2.0;
                        amp = std::abs(t0 * std::cos(half) +
                                       t1 * std::sin(half));
                    } else {
                        // phi / lambda: t(v) = a + b e^{iv} with
                        // a = (t0+t1)/2, b = (t0-t1)/2; the optimum
                        // aligns b e^{iv} with a.
                        const Complex a = 0.5 * (t0 + t1);
                        const Complex b = 0.5 * (t0 - t1);
                        vstar = std::arg(a) - std::arg(b);
                        amp = std::abs(a) + std::abs(b);
                    }
                    const double candidate =
                        1.0 - amp / static_cast<double>(dim);
                    if (candidate <= best + 1e-15) {
                        // Re-evaluate with an actual probe: `best` must
                        // track the true trace, not the closed-form
                        // model, or per-coordinate rounding accumulates
                        // into an HSD lower than the real one (it is
                        // returned as result.hsd and trusted by
                        // acceptance).
                        ++evaluations;
                        const double actual =
                            hsdFromTrace(evaluator.probe(role, vstar), dim);
                        if (actual <= best + 1e-15) {
                            evaluator.commitAngle(role, vstar);
                            best = actual;
                        }
                    }
                    if (best <= stop_at)
                        return best;
                }
            }
        }
        // Early-abandon by convergence projection: coordinate descent
        // shrinks the gap to the target roughly geometrically. If the
        // observed per-sweep ratio cannot close the gap within the
        // remaining sweep budget, stop now (basin hops will try a
        // different start instead).
        const double gapBefore = sweepStart - stop_at;
        const double gapAfter = best - stop_at;
        if (gapAfter <= 0.0)
            break;
        const double ratio = gapAfter / std::max(gapBefore, 1e-300);
        if (ratio >= 1.0 - 1e-12)
            break;  // No measurable progress.
        // Early convergence is often slower than the asymptotic rate, so
        // only project after a few sweeps and keep a 2x safety factor.
        if (sweep < 8)
            continue;
        const double margin = std::max(0.5 * stop_at, 1e-12);
        const double needed =
            std::log(gapAfter / margin) / -std::log(ratio);
        if (needed > 2.0 * static_cast<double>(max_sweeps - sweep - 1))
            break;
    }
    return best;
}

double
rotosolve(const Ansatz &ansatz, const Matrix &target,
          std::vector<double> &angles, int max_sweeps, double stop_at,
          long &evaluations)
{
    AnsatzEvaluator evaluator(ansatz, target);
    evaluator.setAngles(angles);
    const double best = rotosolve(evaluator, max_sweeps, stop_at, evaluations);
    angles = evaluator.angles();
    return best;
}

ComposeResult
composeBlock(const Circuit &block, const ComposeOptions &options)
{
    if (block.numQubits() < 1 || block.numQubits() > 3)
        throw std::invalid_argument("composeBlock: block must be 1-3 qubits");

    bool hasEntangler = false;
    for (const auto &g : block.gates())
        if (g.isEntangling())
            hasEntangler = true;
    if (!hasEntangler)
        return composeWithoutEntanglers(block);

    ComposeResult result;
    result.circuit = block;
    const long origPulses = block.totalPulses();
    const Matrix target = circuitUnitary(block);
    const int dim = target.rows();

    Rng rng(options.seed);
    const bool useRoto = options.optimizer == ComposeOptimizer::Rotosolve ||
                         options.optimizer == ComposeOptimizer::Hybrid;
    const bool useAnneal =
        options.optimizer == ComposeOptimizer::DualAnnealing ||
        options.optimizer == ComposeOptimizer::Hybrid;

    std::vector<Entangler> entanglers;
    for (int layers = 1; layers <= options.maxLayers; ++layers) {
        if (options.cancel != nullptr)
            options.cancel->checkpoint("compose");
        Entangler depthBestEntangler = Entangler::Ccz;
        double depthBestHsd = 2.0;
        // Candidate per-layer entangler choices to try at this depth.
        std::vector<Entangler> tries{Entangler::Ccz};
        if (options.entanglerMode == EntanglerMode::Extended &&
            block.numQubits() == 3)
            tries = {Entangler::Ccz, Entangler::Cz01, Entangler::Cz02,
                     Entangler::Cz12};

        for (const Entangler e : tries) {
            auto chosen = entanglers;
            chosen.push_back(e);
            const Ansatz ansatz(block.numQubits(), layers, chosen);
            if (ansatz.pulses() >= origPulses)
                continue;
            // One incremental evaluator per (depth, entangler) try,
            // shared across every restart, polish, basin hop, and the
            // annealing objective below.
            AnsatzEvaluator evaluator(ansatz, target);

            const long depthStart = result.evaluations;
            // Budget scales with the search dimensionality: deeper
            // ansatze get proportionally more evaluations.
            const long depthBudget =
                options.maxEvaluationsPerBlock *
                std::max(1, ansatz.numAngles() / 18);
            auto depthBudgetLeft = [&] {
                return result.evaluations - depthStart < depthBudget;
            };
            double bestHsd = 1.0;
            std::vector<double> bestAngles;

            // A depth whose best HSD stays far from the threshold after
            // several restarts almost certainly cannot represent the
            // block; spend the remaining budget on deeper ansatze
            // instead.
            const double hopeless = std::max(0.25, 500.0 * options.threshold);
            if (useRoto) {
                // Explore-then-exploit: good basins can be narrow, so
                // basin *discovery* (many short runs) matters more than
                // deep polishing of a few starts. Triage with short
                // sweeps, keep the most promising starts, then polish.
                struct Start
                {
                    double hsd;
                    std::vector<double> angles;
                };
                std::vector<Start> shortlist;
                auto consider = [&](double h, std::vector<double> angles) {
                    shortlist.push_back({h, std::move(angles)});
                    std::sort(shortlist.begin(), shortlist.end(),
                              [](const Start &x, const Start &y) {
                                  return x.hsd < y.hsd;
                              });
                    if (shortlist.size() > 3)
                        shortlist.pop_back();
                };
                const int triage = 4 * options.restarts;
                const int triageSweeps = std::max(10, options.maxSweeps / 10);
                for (int r = 0; r < triage; ++r) {
                    // Reserve ~40% of the budget for polish and hops.
                    if (result.evaluations - depthStart >
                        depthBudget * 6 / 10)
                        break;
                    // Start schedule: zeros (structured blocks are often
                    // near sparse-angle solutions), a small perturbation
                    // of zeros, then fully random points.
                    std::vector<double> angles;
                    if (r == 0) {
                        angles.assign(
                            static_cast<size_t>(ansatz.numAngles()), 0.0);
                    } else if (r == 1) {
                        angles = rng.uniformVector(ansatz.numAngles(),
                                                   -0.3, 0.3);
                    } else {
                        angles = rng.uniformVector(ansatz.numAngles(), 0.0,
                                                   2.0 * kPi);
                    }
                    evaluator.setAngles(angles);
                    const double h =
                        rotosolve(evaluator, triageSweeps,
                                  options.threshold, result.evaluations,
                                  options.cancel);
                    if (h <= options.threshold) {
                        bestHsd = h;
                        bestAngles = evaluator.angles();
                        break;
                    }
                    consider(h, evaluator.angles());
                }
                for (auto &start : shortlist) {
                    if (bestHsd <= options.threshold || !depthBudgetLeft())
                        break;
                    evaluator.setAngles(start.angles);
                    const double h =
                        rotosolve(evaluator, options.maxSweeps,
                                  options.threshold, result.evaluations,
                                  options.cancel);
                    if (h < bestHsd) {
                        bestHsd = h;
                        bestAngles = evaluator.angles();
                    }
                }
                // Basin hopping: perturb the best point and re-sweep
                // with shrinking step sizes. Escapes the shallow local
                // minima coordinate descent can stall in.
                for (int hop = 0;
                     hop < 2 * options.restarts &&
                     bestHsd > options.threshold && bestHsd < hopeless &&
                     depthBudgetLeft();
                     ++hop) {
                    const double sigma = hop % 3 == 0 ? 0.5
                                        : hop % 3 == 1 ? 0.2 : 0.05;
                    std::vector<double> angles = bestAngles;
                    for (auto &a : angles)
                        a += sigma * rng.normal();
                    evaluator.setAngles(angles);
                    const double h =
                        rotosolve(evaluator, options.maxSweeps,
                                  options.threshold, result.evaluations,
                                  options.cancel);
                    if (h < bestHsd) {
                        bestHsd = h;
                        bestAngles = evaluator.angles();
                    }
                }
            }
            if (useAnneal && bestHsd > options.threshold &&
                (bestHsd < hopeless || !useRoto) && depthBudgetLeft()) {
                const int n = ansatz.numAngles();
                const std::vector<double> lo(static_cast<size_t>(n), 0.0);
                const std::vector<double> hi(static_cast<size_t>(n),
                                             2.0 * kPi);
                DualAnnealingOptions da;
                da.maxEvaluations = options.annealingEvaluations;
                da.targetValue = options.threshold;
                da.seed = options.seed + static_cast<uint64_t>(layers);
                // The annealing objective closes over the incremental
                // evaluator's full-trace path (cached U3 phases, split
                // buffers) instead of the dense overlapTrace.
                long annealProbes = 0;
                const auto out = dualAnnealing(
                    countedObjective(
                        [&](const std::vector<double> &a) {
                            // Checkpoint per probe: negligible next to
                            // the trace contraction, and annealing runs
                            // can otherwise monopolise tens of seconds.
                            if (options.cancel != nullptr)
                                options.cancel->checkpoint("compose");
                            return hsdFromTrace(evaluator.traceAt(a), dim);
                        },
                        annealProbes),
                    lo, hi, da);
                result.evaluations += annealProbes;
                static obs::Counter &annealEvals =
                    obs::counter("compose.annealing_evaluations");
                annealEvals.add(annealProbes);
                evaluator.setAngles(out.x);
                const double h =
                    rotosolve(evaluator, 30, options.threshold,
                              result.evaluations, options.cancel);
                if (h < bestHsd) {
                    bestHsd = h;
                    bestAngles = evaluator.angles();
                }
            }

            if (bestHsd <= options.threshold) {
                result.circuit = ansatz.toCircuit(bestAngles);
                result.composed = true;
                result.layersUsed = layers;
                result.hsd = bestHsd;
                result.pulsesSaved = origPulses - ansatz.pulses();
                return result;
            }
            if (bestHsd < depthBestHsd) {
                depthBestHsd = bestHsd;
                depthBestEntangler = e;
            }
        }
        // Greedy layer-wise structure search (Extended mode): extend
        // with the entangler whose depth came closest to the target.
        entanglers.push_back(depthBestEntangler);
    }
    // No composed circuit beat the original: keep the original block.
    result.composed = false;
    result.hsd = 0.0;
    result.pulsesSaved = 0;
    return result;
}

namespace {

/**
 * Composition with fallback splitting: when the whole block cannot be
 * composed, try composing its halves (prefix/suffix over the same
 * qubits -- their concatenation is trivially the same circuit).
 */
ComposeResult
composeRecursive(const Circuit &block, const ComposeOptions &options,
                 int depth)
{
    ComposeResult direct = composeBlock(block, options);
    if (direct.composed || depth >= options.maxSplitDepth ||
        block.size() < 6)
        return direct;
    static obs::Counter &splits = obs::counter("compose.splits");
    splits.add();

    const size_t mid = block.size() / 2;
    Circuit first(block.numQubits()), second(block.numQubits());
    for (size_t i = 0; i < block.size(); ++i)
        (i < mid ? first : second).append(block.gates()[i]);

    ComposeOptions sub = options;
    sub.seed = options.seed + 0x9e3779b9u * static_cast<uint64_t>(depth + 1);
    ComposeResult ra = composeRecursive(first, sub, depth + 1);
    ComposeResult rb = composeRecursive(second, sub, depth + 1);
    direct.evaluations += ra.evaluations + rb.evaluations;
    if (!ra.composed && !rb.composed)
        return direct;

    Circuit combined = ra.circuit;
    combined.append(rb.circuit);
    if (combined.totalPulses() >= block.totalPulses())
        return direct;

    ComposeResult result;
    result.circuit = std::move(combined);
    result.composed = true;
    result.layersUsed = std::max(ra.layersUsed, rb.layersUsed);
    // Unitary errors of concatenated halves add at most linearly.
    result.hsd = ra.hsd + rb.hsd;
    result.evaluations = direct.evaluations;
    result.pulsesSaved = block.totalPulses() - result.circuit.totalPulses();
    return result;
}

/**
 * Memo key: a 128-bit FNV-1a hash over the exact gate content plus the
 * search-relevant options (seed excluded, as documented). Hashing the
 * raw bytes replaces the old string key — no per-lookup heap
 * allocation — and 128 bits make accidental collisions across a
 * process lifetime vanishingly unlikely.
 */
struct MemoKey
{
    uint64_t hi = 0;
    uint64_t lo = 0;
    bool operator==(const MemoKey &o) const
    {
        return hi == o.hi && lo == o.lo;
    }
};

struct MemoKeyHash
{
    size_t operator()(const MemoKey &k) const
    {
        return static_cast<size_t>(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ull));
    }
};

MemoKey
memoKey(const Circuit &block, const ComposeOptions &options)
{
    // io::Fnv128 is the same incremental hash the persistent cache keys
    // use, so the memo key doubles as the block's disk-spill identity.
    io::Fnv128 h;
    h.feedValue(block.numQubits());
    h.feedValue(options.threshold);
    h.feedValue(options.maxLayers);
    h.feedValue(static_cast<int>(options.optimizer));
    h.feedValue(static_cast<int>(options.entanglerMode));
    h.feedValue(options.restarts);
    h.feedValue(options.maxSweeps);
    h.feedValue(options.maxSplitDepth);
    for (const auto &g : block.gates()) {
        h.feedValue(static_cast<int>(g.kind()));
        h.feedValue(g.qubit(0));
        h.feedValue(g.numQubits() > 1 ? g.qubit(1) : -1);
        h.feedValue(g.numQubits() > 2 ? g.qubit(2) : -1);
        h.feedValue(g.param(0));
        h.feedValue(g.param(1));
        h.feedValue(g.param(2));
    }
    return {h.hi, h.lo};
}

/**
 * The memo is sharded behind 16 striped mutexes so parallelCompose
 * workers hashing different blocks stop contending on one global lock.
 */
constexpr int kMemoShards = 16;

struct MemoShard
{
    std::mutex mutex;
    std::unordered_map<MemoKey, ComposeResult, MemoKeyHash> map;
};

MemoShard &
memoShard(const MemoKey &key)
{
    static MemoShard shards[kMemoShards];
    return shards[key.lo & (kMemoShards - 1)];
}

}  // namespace

ComposeResult
composeBlockCached(const Circuit &block, const ComposeOptions &options)
{
    static obs::Counter &memoHits = obs::counter("compose.memo_hits");
    static obs::Counter &memoMisses = obs::counter("compose.memo_misses");
    static obs::Counter &evaluations = obs::counter("compose.evaluations");
    static obs::Counter &composedBlocks = obs::counter("compose.blocks_composed");

    const MemoKey key = memoKey(block, options);
    MemoShard &shard = memoShard(key);
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        const auto it = shard.map.find(key);
        if (it != shard.map.end()) {
            memoHits.add();
            return it->second;
        }
    }
    memoMisses.add();

    // In-memory miss: before searching, consult the persistent spill —
    // a previous process may already have composed this exact block.
    cache::ResultCache *spill =
        options.spill != nullptr && options.spill->enabled() ? options.spill
                                                             : nullptr;
    const std::string spillKey =
        spill != nullptr ? cache::blockCacheKey(key.hi, key.lo)
                         : std::string();
    if (spill != nullptr) {
        if (auto payload = spill->load(spillKey)) {
            if (auto replayed = composeResultFromText(*payload)) {
                obs::counter("compose.spill_hits").add();
                std::lock_guard<std::mutex> lock(shard.mutex);
                return shard.map.emplace(key, std::move(*replayed))
                    .first->second;
            }
        }
    }

    const ComposeResult result = composeRecursive(block, options, 0);
    evaluations.add(result.evaluations);
    if (result.composed)
        composedBlocks.add();
    if (obs::enabled())
        obs::histogram("compose.evaluations_per_block")
            .record(static_cast<double>(result.evaluations));
    if (spill != nullptr)
        spill->store(spillKey, composeResultToText(result));
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.map.emplace(key, result);
    }
    return result;
}

}  // namespace geyser
