#include "compose/ansatz.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "linalg/kernels/backend.hpp"

namespace geyser {

Ansatz::Ansatz(int num_qubits, int layers, std::vector<Entangler> entanglers)
    : numQubits_(num_qubits), layers_(layers),
      entanglers_(std::move(entanglers))
{
    if (num_qubits < 2 || num_qubits > 4)
        throw std::invalid_argument("Ansatz: 2, 3, or 4 qubits only");
    if (layers < 1)
        throw std::invalid_argument("Ansatz: need at least one layer");
    if (entanglers_.empty())
        entanglers_.assign(static_cast<size_t>(layers),
                           num_qubits == 4   ? Entangler::Cccz
                           : num_qubits == 3 ? Entangler::Ccz
                                             : Entangler::Cz01);
    if (static_cast<int>(entanglers_.size()) != layers)
        throw std::invalid_argument("Ansatz: entangler count != layers");
    // Two-qubit ansatze always entangle with CZ, whatever the caller
    // tagged the layers with (keeps pulse accounting correct).
    if (numQubits_ == 2)
        entanglers_.assign(static_cast<size_t>(layers), Entangler::Cz01);
}

int
entanglerFlipMask(Entangler e, int num_qubits)
{
    if (num_qubits == 2)
        return 3;  // CZ regardless of the tag.
    if (num_qubits == 4)
        return 15;  // CCCZ.
    switch (e) {
      case Entangler::Ccz:
        return 7;
      case Entangler::Cz01:
        return 3;
      case Entangler::Cz02:
        return 5;
      case Entangler::Cz12:
        return 6;
      default:
        break;
    }
    throw std::logic_error("entanglerFlipMask: unhandled entangler");
}

long
Ansatz::pulses() const
{
    long total = static_cast<long>(numQubits_) * (layers_ + 1);  // U3 columns
    for (const auto e : entanglers_) {
        // Pulse pattern generalizes Fig 3: 2 pi pulses per control plus
        // one 2*pi pulse: CZ = 3, CCZ = 5, CCCZ = 7.
        total += e == Entangler::Cccz ? 7 : e == Entangler::Ccz ? 5 : 3;
    }
    return total;
}

Matrix
Ansatz::entanglerMatrix(int layer) const
{
    const Entangler e = entanglers_[static_cast<size_t>(layer)];
    if (numQubits_ == 2)
        return Matrix::diagonal({1, 1, 1, -1});
    if (numQubits_ == 4) {
        auto m = Matrix::identity(16);
        m(15, 15) = -1;  // CCCZ.
        return m;
    }
    switch (e) {
      case Entangler::Ccz: {
        auto m = Matrix::identity(8);
        m(7, 7) = -1;
        return m;
      }
      case Entangler::Cz01: {
        // -1 whenever local bits 0 and 1 are both set.
        auto m = Matrix::identity(8);
        m(3, 3) = m(7, 7) = -1;
        return m;
      }
      case Entangler::Cz02: {
        auto m = Matrix::identity(8);
        m(5, 5) = m(7, 7) = -1;
        return m;
      }
      case Entangler::Cz12: {
        auto m = Matrix::identity(8);
        m(6, 6) = m(7, 7) = -1;
        return m;
      }
      default:
        break;
    }
    throw std::logic_error("Ansatz: unhandled entangler");
}

Matrix
Ansatz::unitary(const std::vector<double> &angles) const
{
    if (static_cast<int>(angles.size()) != numAngles())
        throw std::invalid_argument("Ansatz::unitary: wrong angle count");

    auto column = [&](int col) {
        // Build kron over qubits with qubit 0 as least-significant:
        // U = u3(q_{n-1}) (x) ... (x) u3(q_0).
        const int base = col * numQubits_ * 3;
        Matrix u = u3Matrix(angles[static_cast<size_t>(base + (numQubits_ - 1) * 3)],
                            angles[static_cast<size_t>(base + (numQubits_ - 1) * 3 + 1)],
                            angles[static_cast<size_t>(base + (numQubits_ - 1) * 3 + 2)]);
        for (int q = numQubits_ - 2; q >= 0; --q) {
            const int o = base + q * 3;
            u = u.kron(u3Matrix(angles[static_cast<size_t>(o)],
                                angles[static_cast<size_t>(o + 1)],
                                angles[static_cast<size_t>(o + 2)]));
        }
        return u;
    };

    Matrix u = column(0);
    for (int l = 0; l < layers_; ++l)
        u = column(l + 1) * (entanglerMatrix(l) * u);
    return u;
}

Complex
Ansatz::overlapTrace(const Matrix &target,
                     const std::vector<double> &angles) const
{
    const int dim = 1 << numQubits_;
    if (target.rows() != dim || target.cols() != dim)
        throw std::invalid_argument("overlapTrace: target dimension");
    if (static_cast<int>(angles.size()) != numAngles())
        throw std::invalid_argument("overlapTrace: wrong angle count");

    // cur = running product, built column by column. All buffers are
    // 16x16 max, split row-major, on the stack. The matrix algebra is
    // PINNED to the scalar reference backend: this path is the 1e-12
    // oracle every SIMD backend is property-tested against, so its
    // arithmetic must not move when dispatch selects a different ISA.
    const kernels::ComputeBackend &kernel = kernels::reference();
    double curRe[256], curIm[256], tmpRe[256], tmpIm[256];
    double colRe[256], colIm[256];
    double u3sRe[4][4], u3sIm[4][4];

    auto loadColumn = [&](int col) {
        const int base = col * numQubits_ * 3;
        for (int q = 0; q < numQubits_; ++q)
            kernels::u3Entries(
                angles[static_cast<size_t>(base + q * 3)],
                angles[static_cast<size_t>(base + q * 3 + 1)],
                angles[static_cast<size_t>(base + q * 3 + 2)], u3sRe[q],
                u3sIm[q]);
    };
    // Kronecker entry C(r,c) = prod_q u3_q[r_q, c_q].
    auto buildColumn = [&](double *re, double *im) {
        for (int r = 0; r < dim; ++r) {
            for (int c = 0; c < dim; ++c) {
                double vre = 1.0, vim = 0.0;
                for (int q = 0; q < numQubits_; ++q) {
                    const int e = ((r >> q) & 1) * 2 + ((c >> q) & 1);
                    const double ure = u3sRe[q][e], uim = u3sIm[q][e];
                    const double nre = vre * ure - vim * uim;
                    vim = vre * uim + vim * ure;
                    vre = nre;
                }
                re[r * dim + c] = vre;
                im[r * dim + c] = vim;
            }
        }
    };

    loadColumn(0);
    buildColumn(curRe, curIm);

    for (int l = 0; l < layers_; ++l) {
        // Diagonal entangler: flip the sign of the affected rows.
        kernel.flipRows(
            curRe, curIm,
            entanglerFlipMask(entanglers_[static_cast<size_t>(l)],
                              numQubits_),
            dim);
        // cur = column(l+1) * cur.
        loadColumn(l + 1);
        buildColumn(colRe, colIm);
        kernel.matmul(colRe, colIm, curRe, curIm, tmpRe, tmpIm, dim);
        std::memcpy(curRe, tmpRe,
                    sizeof(double) * static_cast<size_t>(dim * dim));
        std::memcpy(curIm, tmpIm,
                    sizeof(double) * static_cast<size_t>(dim * dim));
    }

    // sum conj(target) . cur, elementwise over the full matrices.
    double tgtRe[256], tgtIm[256];
    for (int r = 0; r < dim; ++r) {
        for (int c = 0; c < dim; ++c) {
            const Complex v = target(r, c);
            tgtRe[r * dim + c] = v.real();
            tgtIm[r * dim + c] = v.imag();
        }
    }
    double tre = 0.0, tim = 0.0;
    kernel.traceConjDot(tgtRe, tgtIm, curRe, curIm,
                        static_cast<size_t>(dim) * static_cast<size_t>(dim),
                        &tre, &tim);
    return {tre, tim};
}

Circuit
Ansatz::toCircuit(const std::vector<double> &angles) const
{
    if (numQubits_ == 4)
        throw std::logic_error(
            "Ansatz::toCircuit: 4-qubit ansatze are for composability "
            "studies only (no CCCZ gate kind in the IR)");
    if (static_cast<int>(angles.size()) != numAngles())
        throw std::invalid_argument("Ansatz::toCircuit: wrong angle count");
    Circuit out(numQubits_);
    auto emitColumn = [&](int col) {
        const int base = col * numQubits_ * 3;
        for (int q = 0; q < numQubits_; ++q) {
            const int o = base + q * 3;
            out.u3(q, angles[static_cast<size_t>(o)],
                   angles[static_cast<size_t>(o + 1)],
                   angles[static_cast<size_t>(o + 2)]);
        }
    };
    emitColumn(0);
    for (int l = 0; l < layers_; ++l) {
        if (numQubits_ == 2) {
            out.cz(0, 1);
        } else {
            switch (entanglers_[static_cast<size_t>(l)]) {
              case Entangler::Ccz:
                out.ccz(0, 1, 2);
                break;
              case Entangler::Cz01:
                out.cz(0, 1);
                break;
              case Entangler::Cz02:
                out.cz(0, 2);
                break;
              case Entangler::Cz12:
                out.cz(1, 2);
                break;
            }
        }
        emitColumn(l + 1);
    }
    return out;
}

}  // namespace geyser
