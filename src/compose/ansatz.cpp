#include "compose/ansatz.hpp"

#include <cmath>
#include <stdexcept>

namespace geyser {

Ansatz::Ansatz(int num_qubits, int layers, std::vector<Entangler> entanglers)
    : numQubits_(num_qubits), layers_(layers),
      entanglers_(std::move(entanglers))
{
    if (num_qubits < 2 || num_qubits > 4)
        throw std::invalid_argument("Ansatz: 2, 3, or 4 qubits only");
    if (layers < 1)
        throw std::invalid_argument("Ansatz: need at least one layer");
    if (entanglers_.empty())
        entanglers_.assign(static_cast<size_t>(layers),
                           num_qubits == 4   ? Entangler::Cccz
                           : num_qubits == 3 ? Entangler::Ccz
                                             : Entangler::Cz01);
    if (static_cast<int>(entanglers_.size()) != layers)
        throw std::invalid_argument("Ansatz: entangler count != layers");
    // Two-qubit ansatze always entangle with CZ, whatever the caller
    // tagged the layers with (keeps pulse accounting correct).
    if (numQubits_ == 2)
        entanglers_.assign(static_cast<size_t>(layers), Entangler::Cz01);
}

int
entanglerFlipMask(Entangler e, int num_qubits)
{
    if (num_qubits == 2)
        return 3;  // CZ regardless of the tag.
    if (num_qubits == 4)
        return 15;  // CCCZ.
    switch (e) {
      case Entangler::Ccz:
        return 7;
      case Entangler::Cz01:
        return 3;
      case Entangler::Cz02:
        return 5;
      case Entangler::Cz12:
        return 6;
      default:
        break;
    }
    throw std::logic_error("entanglerFlipMask: unhandled entangler");
}

long
Ansatz::pulses() const
{
    long total = static_cast<long>(numQubits_) * (layers_ + 1);  // U3 columns
    for (const auto e : entanglers_) {
        // Pulse pattern generalizes Fig 3: 2 pi pulses per control plus
        // one 2*pi pulse: CZ = 3, CCZ = 5, CCCZ = 7.
        total += e == Entangler::Cccz ? 7 : e == Entangler::Ccz ? 5 : 3;
    }
    return total;
}

Matrix
Ansatz::entanglerMatrix(int layer) const
{
    const Entangler e = entanglers_[static_cast<size_t>(layer)];
    if (numQubits_ == 2)
        return Matrix::diagonal({1, 1, 1, -1});
    if (numQubits_ == 4) {
        auto m = Matrix::identity(16);
        m(15, 15) = -1;  // CCCZ.
        return m;
    }
    switch (e) {
      case Entangler::Ccz: {
        auto m = Matrix::identity(8);
        m(7, 7) = -1;
        return m;
      }
      case Entangler::Cz01: {
        // -1 whenever local bits 0 and 1 are both set.
        auto m = Matrix::identity(8);
        m(3, 3) = m(7, 7) = -1;
        return m;
      }
      case Entangler::Cz02: {
        auto m = Matrix::identity(8);
        m(5, 5) = m(7, 7) = -1;
        return m;
      }
      case Entangler::Cz12: {
        auto m = Matrix::identity(8);
        m(6, 6) = m(7, 7) = -1;
        return m;
      }
      default:
        break;
    }
    throw std::logic_error("Ansatz: unhandled entangler");
}

Matrix
Ansatz::unitary(const std::vector<double> &angles) const
{
    if (static_cast<int>(angles.size()) != numAngles())
        throw std::invalid_argument("Ansatz::unitary: wrong angle count");

    auto column = [&](int col) {
        // Build kron over qubits with qubit 0 as least-significant:
        // U = u3(q_{n-1}) (x) ... (x) u3(q_0).
        const int base = col * numQubits_ * 3;
        Matrix u = u3Matrix(angles[static_cast<size_t>(base + (numQubits_ - 1) * 3)],
                            angles[static_cast<size_t>(base + (numQubits_ - 1) * 3 + 1)],
                            angles[static_cast<size_t>(base + (numQubits_ - 1) * 3 + 2)]);
        for (int q = numQubits_ - 2; q >= 0; --q) {
            const int o = base + q * 3;
            u = u.kron(u3Matrix(angles[static_cast<size_t>(o)],
                                angles[static_cast<size_t>(o + 1)],
                                angles[static_cast<size_t>(o + 2)]));
        }
        return u;
    };

    Matrix u = column(0);
    for (int l = 0; l < layers_; ++l)
        u = column(l + 1) * (entanglerMatrix(l) * u);
    return u;
}

Complex
Ansatz::overlapTrace(const Matrix &target,
                     const std::vector<double> &angles) const
{
    const int dim = 1 << numQubits_;
    if (target.rows() != dim || target.cols() != dim)
        throw std::invalid_argument("overlapTrace: target dimension");
    if (static_cast<int>(angles.size()) != numAngles())
        throw std::invalid_argument("overlapTrace: wrong angle count");

    // cur = running product, built column by column. All buffers are
    // 8x8 max, row-major, on the stack.
    Complex cur[256], tmp[256], u3s[4][4];

    auto loadColumn = [&](int col) {
        const int base = col * numQubits_ * 3;
        for (int q = 0; q < numQubits_; ++q) {
            const double th = angles[static_cast<size_t>(base + q * 3)];
            const double ph = angles[static_cast<size_t>(base + q * 3 + 1)];
            const double la = angles[static_cast<size_t>(base + q * 3 + 2)];
            const double c = std::cos(th / 2.0), s = std::sin(th / 2.0);
            u3s[q][0] = c;
            u3s[q][1] = -std::exp(kI * la) * s;
            u3s[q][2] = std::exp(kI * ph) * s;
            u3s[q][3] = std::exp(kI * (ph + la)) * c;
        }
    };
    auto columnEntry = [&](int r, int c) {
        Complex v = 1.0;
        for (int q = 0; q < numQubits_; ++q) {
            const int rb = (r >> q) & 1, cb = (c >> q) & 1;
            v *= u3s[q][rb * 2 + cb];
            if (v == Complex{})
                return v;
        }
        return v;
    };

    loadColumn(0);
    for (int r = 0; r < dim; ++r)
        for (int c = 0; c < dim; ++c)
            cur[r * dim + c] = columnEntry(r, c);

    for (int l = 0; l < layers_; ++l) {
        // Diagonal entangler: flip the sign of the affected rows.
        const int mask =
            entanglerFlipMask(entanglers_[static_cast<size_t>(l)], numQubits_);
        for (int r = 0; r < dim; ++r) {
            if ((r & mask) == mask)
                for (int c = 0; c < dim; ++c)
                    cur[r * dim + c] = -cur[r * dim + c];
        }
        // cur = column(l+1) * cur.
        loadColumn(l + 1);
        Complex colBuf[256];
        for (int r = 0; r < dim; ++r)
            for (int k = 0; k < dim; ++k)
                colBuf[r * dim + k] = columnEntry(r, k);
        for (int r = 0; r < dim; ++r) {
            for (int c = 0; c < dim; ++c) {
                Complex acc{};
                for (int k = 0; k < dim; ++k)
                    acc += colBuf[r * dim + k] * cur[k * dim + c];
                tmp[r * dim + c] = acc;
            }
        }
        for (int i = 0; i < dim * dim; ++i)
            cur[i] = tmp[i];
    }

    Complex t{};
    for (int r = 0; r < dim; ++r)
        for (int c = 0; c < dim; ++c)
            t += std::conj(target(r, c)) * cur[r * dim + c];
    return t;
}

Circuit
Ansatz::toCircuit(const std::vector<double> &angles) const
{
    if (numQubits_ == 4)
        throw std::logic_error(
            "Ansatz::toCircuit: 4-qubit ansatze are for composability "
            "studies only (no CCCZ gate kind in the IR)");
    if (static_cast<int>(angles.size()) != numAngles())
        throw std::invalid_argument("Ansatz::toCircuit: wrong angle count");
    Circuit out(numQubits_);
    auto emitColumn = [&](int col) {
        const int base = col * numQubits_ * 3;
        for (int q = 0; q < numQubits_; ++q) {
            const int o = base + q * 3;
            out.u3(q, angles[static_cast<size_t>(o)],
                   angles[static_cast<size_t>(o + 1)],
                   angles[static_cast<size_t>(o + 2)]);
        }
    };
    emitColumn(0);
    for (int l = 0; l < layers_; ++l) {
        if (numQubits_ == 2) {
            out.cz(0, 1);
        } else {
            switch (entanglers_[static_cast<size_t>(l)]) {
              case Entangler::Ccz:
                out.ccz(0, 1, 2);
                break;
              case Entangler::Cz01:
                out.cz(0, 1);
                break;
              case Entangler::Cz02:
                out.cz(0, 2);
                break;
              case Entangler::Cz12:
                out.cz(1, 2);
                break;
            }
        }
        emitColumn(l + 1);
    }
    return out;
}

}  // namespace geyser
