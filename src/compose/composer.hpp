/**
 * @file
 * Block composition (paper Sec 3.4, Algorithm 2): replace a block's gate
 * sequence by an equivalent ansatz circuit with native CCZ gates and
 * fewer pulses. Layers are added one at a time; at each depth the ansatz
 * angles are optimized to minimize the Hilbert-Schmidt distance to the
 * block's unitary, stopping when the distance drops below the threshold
 * or the composed pulse count would exceed the original's.
 *
 * Two optimizers are available:
 *  - DualAnnealing: the paper's choice (global annealing + local polish).
 *  - Rotosolve: exact coordinate descent — every U3 angle enters the
 *    trace Tr(O^dagger C) sinusoidally, so its optimum given the other
 *    angles has a closed form; sweeps converge monotonically.
 * The default Hybrid strategy runs cheap rotosolve restarts first and
 * falls back to dual annealing.
 */
#ifndef GEYSER_COMPOSE_COMPOSER_HPP
#define GEYSER_COMPOSE_COMPOSER_HPP

#include "compose/ansatz.hpp"
#include "compose/evaluator.hpp"
#include "linalg/matrix.hpp"

namespace geyser {

class CancelToken;

namespace cache {
class ResultCache;
}  // namespace cache

/** Optimization strategy for the angle search. */
enum class ComposeOptimizer { Rotosolve, DualAnnealing, Hybrid };

/** Options for composing one block. */
struct ComposeOptions
{
    /** HSD acceptance threshold (paper uses 1e-5). */
    double threshold = 1e-5;
    /** Hard cap on ansatz layers tried. */
    int maxLayers = 6;
    ComposeOptimizer optimizer = ComposeOptimizer::Hybrid;
    EntanglerMode entanglerMode = EntanglerMode::PaperCcz;
    /** Rotosolve restarts per layer depth (zeros, near-zeros, random). */
    int restarts = 8;
    /** Rotosolve sweep budget per restart. */
    int maxSweeps = 400;
    /**
     * Objective-evaluation budget per ansatz depth tried for one block
     * (each depth gets a fresh slice, so deeper — often easier —
     * ansatze are never starved by failed shallow searches). Blocks
     * that cannot compose keep their original circuit, as always.
     */
    long maxEvaluationsPerBlock = 60000;
    /** Dual-annealing evaluation budget per layer depth (Hybrid/DA). */
    int annealingEvaluations = 60000;
    /**
     * When a whole block fails to compose, split it at the midpoint and
     * compose the halves independently (recursively, up to this depth).
     * Over-greedy blocks often contain recomposable sub-patterns (e.g.
     * a full Toffoli inside a long MAJ/UMA chain) even when the whole
     * block exceeds the expressible ansatz depth. 0 disables splitting.
     */
    int maxSplitDepth = 2;
    uint64_t seed = 7;
    /**
     * Optional persistent cache (not owned) that composeBlockCached()
     * spills its memo through: an in-memory miss consults the disk
     * entry for the block's content hash before searching, and every
     * fresh composition is stored back. Excluded from the memo key.
     * Normally plumbed from PipelineOptions::cache by compileGeyser.
     */
    cache::ResultCache *spill = nullptr;
    /**
     * Optional cancellation/deadline token (not owned), polled between
     * optimizer restarts and rotosolve sweeps so a cancel or an expired
     * deadline unwinds mid-block — a single block's angle search can
     * run for seconds. Excluded from the memo key, like `spill`.
     * Normally plumbed from PipelineOptions::cancel by compileGeyser.
     */
    const CancelToken *cancel = nullptr;
};

/** Outcome of composing one block. */
struct ComposeResult
{
    Circuit circuit;      ///< Adopted circuit (composed or the original).
    bool composed = false;///< True if the ansatz replaced the original.
    int layersUsed = 0;   ///< Ansatz depth when composed.
    double hsd = 0.0;     ///< Distance achieved by the adopted circuit.
    long evaluations = 0; ///< Objective evaluations spent.
    long pulsesSaved = 0; ///< originalPulses - adoptedPulses (>= 0).
};

/**
 * Compose a block circuit over 1-3 local qubits. Entangler-free blocks
 * are resynthesized exactly (one U3 per active qubit) without any
 * search. Otherwise Algorithm 2 runs. The returned circuit is always
 * mathematically equivalent to the input within options.threshold.
 */
ComposeResult composeBlock(const Circuit &block,
                           const ComposeOptions &options = {});

/**
 * composeBlock() through a process-wide memo keyed on the block's exact
 * gate content and the options. Trotterized and arithmetic circuits
 * produce the same local block many times (every Trotter step repeats
 * the bond pattern), so memoization removes most of the composition
 * cost. Thread-safe. The memo ignores options.seed (results for a given
 * block/option set are reused across seeds).
 */
ComposeResult composeBlockCached(const Circuit &block,
                                 const ComposeOptions &options = {});

/**
 * Rotosolve: minimize 1 - |Tr(target^dagger U(angles))| / dim over the
 * ansatz angles by exact coordinate descent from the given start point.
 * Returns the best angles found through `angles` and the achieved HSD.
 * Convenience wrapper over the evaluator form below.
 */
double rotosolve(const Ansatz &ansatz, const Matrix &target,
                 std::vector<double> &angles, int max_sweeps,
                 double stop_at, long &evaluations);

/**
 * Rotosolve against an incremental AnsatzEvaluator (the hot path: each
 * coordinate probe is an O(1) environment contraction instead of a
 * full O(layers d^3) ansatz product). Starts from the evaluator's
 * current angles; the best angles found remain loaded in the evaluator
 * on return. The returned HSD always comes from an actual trace probe
 * at the accepted angle, never from the closed-form model alone, so
 * accumulated per-coordinate rounding cannot under-report the
 * distance. `evaluations` counts trace probes, directly comparable to
 * the dense path's objective-evaluation counts. A non-null `cancel`
 * token is checkpointed once per sweep.
 */
double rotosolve(AnsatzEvaluator &evaluator, int max_sweeps, double stop_at,
                 long &evaluations, const CancelToken *cancel = nullptr);

}  // namespace geyser

#endif  // GEYSER_COMPOSE_COMPOSER_HPP
