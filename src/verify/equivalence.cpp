#include "verify/equivalence.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "sim/statevector.hpp"
#include "sim/unitary_sim.hpp"

namespace geyser {
namespace verify {

namespace {

std::string
fmt(const char *format, double a, double b = 0.0)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), format, a, b);
    return buf;
}

EquivalenceReport
distributionReport(const Distribution &reference,
                   const Distribution &candidate,
                   const EquivalenceOptions &options)
{
    EquivalenceReport report;
    report.method = "distribution";
    const DistributionReport d =
        compareDistributions(reference, candidate, options.tvdTolerance);
    report.tvd = d.tvd;
    report.equivalent = d.pass;
    report.detail = fmt("tvd=%.3e fidelity=%.6f", d.tvd, d.fidelity);
    return report;
}

}  // namespace

Complex
overlapTrace(const Matrix &target, const Matrix &candidate)
{
    Complex t{};
    for (int i = 0; i < target.rows(); ++i)
        for (int j = 0; j < target.cols(); ++j)
            t += std::conj(target(i, j)) * candidate(i, j);
    return t;
}

double
hsdFromTrace(Complex t, int dim)
{
    return 1.0 - std::abs(t) / static_cast<double>(dim);
}

EquivalenceReport
checkUnitary(const Circuit &reference, const Circuit &candidate,
             const EquivalenceOptions &options)
{
    EquivalenceReport report;
    if (reference.numQubits() != candidate.numQubits()) {
        report.method = "unitary";
        report.detail = "width mismatch: " +
                        std::to_string(reference.numQubits()) + " vs " +
                        std::to_string(candidate.numQubits());
        return report;
    }
    if (reference.numQubits() > options.maxUnitaryQubits)
        return distributionReport(idealDistribution(reference),
                                  idealDistribution(candidate), options);

    report.method = "unitary";
    report.hsd = circuitHsd(reference, candidate);
    report.equivalent = report.hsd < options.unitaryTolerance;
    report.detail = fmt("hsd=%.3e", report.hsd);
    return report;
}

Matrix
routedLogicalUnitary(const Circuit &physical,
                     const std::vector<Qubit> &initial_layout,
                     const std::vector<Qubit> &final_layout, int num_logical,
                     double *leakage)
{
    const int atoms = physical.numQubits();
    if (initial_layout.size() != static_cast<size_t>(num_logical) ||
        final_layout.size() != static_cast<size_t>(num_logical))
        throw std::invalid_argument("routedLogicalUnitary: bad layout size");
    if (atoms > 14)
        throw std::invalid_argument("routedLogicalUnitary: circuit too wide");

    const size_t dimLogical = size_t{1} << num_logical;
    // Atoms that hold logical data at the end; everything else must
    // come back to |0>.
    size_t dataMask = 0;
    for (const Qubit atom : final_layout)
        dataMask |= size_t{1} << atom;

    if (leakage != nullptr)
        *leakage = 0.0;
    Matrix effective(static_cast<int>(dimLogical),
                     static_cast<int>(dimLogical));
    for (size_t j = 0; j < dimLogical; ++j) {
        size_t atomIndex = 0;
        for (int q = 0; q < num_logical; ++q)
            if (j & (size_t{1} << q))
                atomIndex |= size_t{1}
                             << initial_layout[static_cast<size_t>(q)];
        StateVector sv(atoms, atomIndex);
        sv.apply(physical);
        const auto &amps = sv.amplitudes();
        for (size_t y = 0; y < amps.size(); ++y) {
            if (amps[y] == Complex{})
                continue;
            if ((y & ~dataMask) != 0) {
                if (leakage != nullptr)
                    *leakage += std::norm(amps[y]);
                continue;
            }
            size_t x = 0;
            for (int q = 0; q < num_logical; ++q)
                if (y & (size_t{1} << final_layout[static_cast<size_t>(q)]))
                    x |= size_t{1} << q;
            effective(static_cast<int>(x), static_cast<int>(j)) = amps[y];
        }
    }
    return effective;
}

EquivalenceReport
checkRouted(const Circuit &reference, const Circuit &physical,
            const std::vector<Qubit> &initial_layout,
            const std::vector<Qubit> &final_layout,
            const EquivalenceOptions &options)
{
    EquivalenceReport report;
    report.method = "routed-unitary";
    if (reference.numQubits() > options.maxUnitaryQubits ||
        physical.numQubits() > options.maxUnitaryQubits + 4) {
        // Wide fallback: exact distributions through the layout
        // projection ( |0...0> input needs no initial-layout embedding).
        const Distribution projected = projectToLogical(
            idealDistribution(physical), final_layout, reference.numQubits(),
            physical.numQubits());
        return distributionReport(idealDistribution(reference), projected,
                                  options);
    }

    double leakage = 0.0;
    const Matrix effective =
        routedLogicalUnitary(physical, initial_layout, final_layout,
                             reference.numQubits(), &leakage);
    const Matrix target = circuitUnitary(reference);
    report.leakage = leakage;
    report.hsd = hsdFromTrace(overlapTrace(target, effective),
                              static_cast<int>(target.rows()));
    report.equivalent = leakage < options.leakageTolerance &&
                        report.hsd < options.unitaryTolerance;
    report.detail = fmt("hsd=%.3e leakage=%.3e", report.hsd, leakage);
    return report;
}

DistributionReport
compareDistributions(const Distribution &p, const Distribution &q,
                     double tvd_tolerance)
{
    if (p.size() != q.size())
        throw std::invalid_argument("compareDistributions: size mismatch");
    DistributionReport report;
    double half = 0.0, bc = 0.0;
    for (size_t k = 0; k < p.size(); ++k) {
        half += std::abs(p[k] - q[k]);
        bc += std::sqrt(p[k] * q[k]);
    }
    report.tvd = 0.5 * half;
    report.fidelity = bc * bc;
    report.pass = report.tvd < tvd_tolerance;
    return report;
}

EquivalenceReport
checkCompileResult(const CompileResult &result,
                   const EquivalenceOptions &options)
{
    const bool exactTechnique = result.technique != Technique::Geyser;
    if (exactTechnique && !result.initialLayout.empty() &&
        result.logical.numQubits() <= options.maxUnitaryQubits &&
        result.physical.numQubits() <= 14) {
        return checkRouted(result.logical, result.physical,
                           result.initialLayout, result.finalLayout, options);
    }
    // Geyser composition is approximate (and reorders gates round-by-
    // round), so the paper's Sec 6 distribution bound is the contract.
    const Distribution projected = projectToLogical(
        idealDistribution(result.physical), result.finalLayout,
        result.logical.numQubits(), result.physical.numQubits());
    return distributionReport(idealDistribution(result.logical), projected,
                              options);
}

}  // namespace verify
}  // namespace geyser
