/**
 * @file
 * Differential-verification primitives: circuit equivalence up to global
 * phase, layout/permutation-aware equivalence for routed circuits, and
 * distribution comparison. This is the reusable layer the ISCA paper's
 * whole claim rests on — the compiled circuit must be functionally
 * equivalent to the logical one — shared by tests, benches, the pipeline's
 * opt-in self-check (PipelineOptions::verifyEquivalence) and
 * `geyserc --verify`.
 *
 * Tolerances: exact transpiler passes (basis translation, fusion,
 * cancellation, routing) preserve the unitary to floating-point error, so
 * they are checked against `unitaryTolerance` (1e-8 HSD by default).
 * Geyser's block composition is approximate by design (per-block HSD
 * threshold 1e-5, paper Sec 3.4), so composed circuits are checked
 * against the distribution threshold `tvdTolerance` (1e-2, the paper's
 * Sec 6 bound).
 */
#ifndef GEYSER_VERIFY_EQUIVALENCE_HPP
#define GEYSER_VERIFY_EQUIVALENCE_HPP

#include <stdexcept>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/types.hpp"
#include "geyser/pipeline.hpp"
#include "linalg/matrix.hpp"

namespace geyser {
namespace verify {

/** Thrown by the pipeline when an enabled equivalence check fails. */
class VerificationError : public std::runtime_error
{
  public:
    explicit VerificationError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Tolerances and limits for the equivalence checks. */
struct EquivalenceOptions
{
    /** HSD bound for exact (pass-preserving) transformations. */
    double unitaryTolerance = 1e-8;
    /** TVD bound for approximate (composed) circuits. */
    double tvdTolerance = 1e-2;
    /** Probability mass allowed outside the layout subspace. */
    double leakageTolerance = 1e-9;
    /**
     * Widest circuit checked at the unitary level; wider circuits fall
     * back to the (weaker, but still 2^n-sized) distribution check.
     */
    int maxUnitaryQubits = 10;
};

/** Outcome of one equivalence check. */
struct EquivalenceReport
{
    bool equivalent = false;
    /** "unitary", "routed-unitary" or "distribution". */
    std::string method;
    double hsd = -1.0;      ///< Set by the unitary methods.
    double tvd = -1.0;      ///< Set by the distribution method.
    double leakage = -1.0;  ///< Set by the routed-unitary method.
    /** One-line human-readable summary (always filled). */
    std::string detail;
};

/**
 * Tr(target^dagger candidate) — the overlap driving the HSD. Shared with
 * the composer's objective.
 */
Complex overlapTrace(const Matrix &target, const Matrix &candidate);

/** HSD from an overlap trace: 1 - |t| / dim. */
double hsdFromTrace(Complex t, int dim);

/**
 * Unitary equivalence up to global phase between two same-width
 * circuits. Falls back to the distribution check above
 * options.maxUnitaryQubits.
 */
EquivalenceReport checkUnitary(const Circuit &reference,
                               const Circuit &candidate,
                               const EquivalenceOptions &options = {});

/**
 * The effective logical-space unitary of a routed circuit over
 * `num_logical` qubits: basis state |j> enters through `initial_layout`
 * (logical qubit q on atom initial_layout[q], every other atom in |0>)
 * and exits through `final_layout`. Probability mass on states where a
 * non-layout atom ended outside |0> is accumulated into *leakage (a
 * correctly routed circuit has none: SWAP chains return vacated atoms
 * to |0>).
 */
Matrix routedLogicalUnitary(const Circuit &physical,
                            const std::vector<Qubit> &initial_layout,
                            const std::vector<Qubit> &final_layout,
                            int num_logical, double *leakage = nullptr);

/**
 * Layout-aware equivalence: does `physical` (over atoms, SWAPs inserted)
 * implement `reference` (over logical qubits) through the given layouts,
 * up to global phase?
 */
EquivalenceReport checkRouted(const Circuit &reference,
                              const Circuit &physical,
                              const std::vector<Qubit> &initial_layout,
                              const std::vector<Qubit> &final_layout,
                              const EquivalenceOptions &options = {});

/** Distribution comparison: TVD plus Bhattacharyya fidelity. */
struct DistributionReport
{
    bool pass = false;
    double tvd = 1.0;
    double fidelity = 0.0;  ///< (sum_k sqrt(p_k q_k))^2, 1 when identical.
};

DistributionReport compareDistributions(const Distribution &p,
                                        const Distribution &q,
                                        double tvd_tolerance = 1e-2);

/**
 * Check a full compilation result against its logical source. Exact
 * techniques (Baseline/OptiMap/Superconducting) are verified at the
 * routed-unitary level when narrow enough and the initial layout is
 * known; Geyser (approximate composition) and wide circuits are verified
 * at the distribution level through the final layout projection.
 */
EquivalenceReport checkCompileResult(const CompileResult &result,
                                     const EquivalenceOptions &options = {});

}  // namespace verify
}  // namespace geyser

#endif  // GEYSER_VERIFY_EQUIVALENCE_HPP
