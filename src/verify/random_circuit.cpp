#include "verify/random_circuit.hpp"

#include <stdexcept>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace geyser {
namespace verify {

const std::vector<GateKind> &
defaultLogicalGateSet()
{
    static const std::vector<GateKind> kinds = {
        GateKind::X,   GateKind::Y,   GateKind::Z,    GateKind::H,
        GateKind::S,   GateKind::SDG, GateKind::T,    GateKind::TDG,
        GateKind::RX,  GateKind::RY,  GateKind::RZ,   GateKind::P,
        GateKind::U3,  GateKind::CX,  GateKind::CZ,   GateKind::CP,
        GateKind::RZZ, GateKind::RXX, GateKind::RYY,  GateKind::SWAP,
        GateKind::CCX, GateKind::CCZ,
    };
    return kinds;
}

const std::vector<GateKind> &
physicalGateSet()
{
    static const std::vector<GateKind> kinds = {GateKind::U3, GateKind::CZ,
                                                GateKind::CCZ};
    return kinds;
}

Circuit
randomCircuit(const RandomCircuitOptions &options)
{
    if (options.numQubits < 1)
        throw std::invalid_argument("randomCircuit: need at least 1 qubit");
    const std::vector<GateKind> &pool =
        options.gateSet.empty() ? defaultLogicalGateSet() : options.gateSet;
    std::vector<GateKind> kinds;
    for (const GateKind kind : pool)
        if (gateKindArity(kind) <= options.numQubits)
            kinds.push_back(kind);
    if (kinds.empty())
        throw std::invalid_argument("randomCircuit: gate set too wide");

    Rng rng(options.seed);
    Circuit circuit(options.numQubits);
    for (int i = 0; i < options.numGates; ++i) {
        const GateKind kind =
            kinds[static_cast<size_t>(rng.uniformInt(
                static_cast<int>(kinds.size())))];
        const int arity = gateKindArity(kind);
        // Distinct operand qubits.
        Qubit q[3] = {0, 0, 0};
        for (int k = 0; k < arity; ++k) {
            bool fresh = false;
            while (!fresh) {
                q[k] = rng.uniformInt(options.numQubits);
                fresh = true;
                for (int j = 0; j < k; ++j)
                    if (q[j] == q[k])
                        fresh = false;
            }
        }
        double p[3] = {0.0, 0.0, 0.0};
        for (int k = 0; k < gateKindParamCount(kind); ++k)
            p[k] = rng.uniform(0.0, 2.0 * kPi);
        switch (arity) {
          case 1:
            circuit.append(Gate(kind, q[0], p[0], p[1], p[2]));
            break;
          case 2:
            circuit.append(Gate(kind, q[0], q[1], p[0]));
            break;
          default:
            circuit.append(Gate(kind, q[0], q[1], q[2]));
            break;
        }
    }
    return circuit;
}

Circuit
randomLogicalCircuit(int num_qubits, int num_gates, uint64_t seed)
{
    RandomCircuitOptions options;
    options.numQubits = num_qubits;
    options.numGates = num_gates;
    options.seed = seed;
    return randomCircuit(options);
}

Circuit
randomPhysicalCircuit(int num_qubits, int num_gates, uint64_t seed)
{
    RandomCircuitOptions options;
    options.numQubits = num_qubits;
    options.numGates = num_gates;
    options.seed = seed;
    options.gateSet = physicalGateSet();
    return randomCircuit(options);
}

}  // namespace verify
}  // namespace geyser
