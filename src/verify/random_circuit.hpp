/**
 * @file
 * Seeded random-circuit generators shared by every fuzz/property test
 * (and usable from benches) instead of per-test ad-hoc generators. The
 * same seed always produces the same circuit, so failures quoted by a
 * test name + seed are reproducible anywhere.
 */
#ifndef GEYSER_VERIFY_RANDOM_CIRCUIT_HPP
#define GEYSER_VERIFY_RANDOM_CIRCUIT_HPP

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"

namespace geyser {
namespace verify {

/** Parameters of one random circuit draw. */
struct RandomCircuitOptions
{
    int numQubits = 4;
    int numGates = 25;
    uint64_t seed = 1;
    /**
     * Gate kinds to draw from; empty means the full logical set
     * (defaultLogicalGateSet()). Kinds wider than numQubits are skipped.
     */
    std::vector<GateKind> gateSet;
};

/**
 * Every logical gate kind the IR, the QASM exporter/importer, and the
 * basis-translation pass all support — the gate set a round-trip or
 * pass-preservation fuzz test should cover.
 */
const std::vector<GateKind> &defaultLogicalGateSet();

/** The neutral-atom physical basis {U3, CZ, CCZ}. */
const std::vector<GateKind> &physicalGateSet();

/** Draw a random circuit. Angles are uniform in [0, 2*pi). */
Circuit randomCircuit(const RandomCircuitOptions &options);

/** Shorthand: full logical gate set over n qubits. */
Circuit randomLogicalCircuit(int num_qubits, int num_gates, uint64_t seed);

/** Shorthand: physical-basis {U3, CZ, CCZ} circuit over n qubits. */
Circuit randomPhysicalCircuit(int num_qubits, int num_gates, uint64_t seed);

}  // namespace verify
}  // namespace geyser

#endif  // GEYSER_VERIFY_RANDOM_CIRCUIT_HPP
