#include "verify/kernel_check.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "compose/ansatz.hpp"
#include "compose/evaluator.hpp"

namespace geyser {
namespace verify {

namespace {

/** Random entangler pattern valid for the qubit count. */
std::vector<Entangler>
randomEntanglers(Rng &rng, int num_qubits, int layers)
{
    std::vector<Entangler> out;
    for (int l = 0; l < layers; ++l) {
        if (num_qubits == 3) {
            constexpr Entangler kChoices[] = {Entangler::Ccz, Entangler::Cz01,
                                              Entangler::Cz02,
                                              Entangler::Cz12};
            out.push_back(kChoices[rng.uniformInt(4)]);
        } else {
            out.push_back(num_qubits == 4 ? Entangler::Cccz
                                          : Entangler::Cz01);
        }
    }
    return out;
}

}  // namespace

KernelCheckReport
checkComposeKernel(const KernelCheckOptions &options)
{
    Rng rng(options.seed);
    KernelCheckReport report;

    for (int trial = 0; trial < options.trials; ++trial) {
        const int numQubits = 2 + rng.uniformInt(3);
        const int layers = 1 + rng.uniformInt(5);
        const Ansatz ansatz(numQubits, layers,
                            randomEntanglers(rng, numQubits, layers));

        // Random unitary target: another ansatz instance at random
        // angles (guaranteed unitary and in-distribution for the
        // composer's search).
        const int targetLayers = 1 + rng.uniformInt(4);
        const Ansatz targetGen(numQubits, targetLayers,
                               randomEntanglers(rng, numQubits,
                                                targetLayers));
        const Matrix target = targetGen.unitary(
            rng.uniformVector(targetGen.numAngles(), 0.0, 2.0 * kPi));

        AnsatzEvaluator evaluator(ansatz, target);
        std::vector<double> angles =
            rng.uniformVector(ansatz.numAngles(), 0.0, 2.0 * kPi);
        evaluator.setAngles(angles);

        auto check = [&](Complex incremental, const char *where) {
            const Complex dense = ansatz.overlapTrace(target, angles);
            const double dev = std::abs(incremental - dense);
            report.maxDeviation = std::max(report.maxDeviation, dev);
            ++report.probesChecked;
            if (dev > options.tolerance && report.detail.empty()) {
                char buf[160];
                std::snprintf(buf, sizeof(buf),
                              "%s deviated by %.3e (tol %.1e) at trial %d "
                              "(n=%d layers=%d seed=%llu)",
                              where, dev, options.tolerance, trial,
                              numQubits, layers,
                              static_cast<unsigned long long>(options.seed));
                report.detail = buf;
            }
        };

        check(evaluator.trace(), "full trace");

        // Several interleaved sweeps with random probes and commits —
        // the stale-environment hazard the incremental path must
        // survive. `angles` mirrors every commit so the dense oracle
        // always sees the evaluator's exact state.
        const int sweeps = 2 + rng.uniformInt(3);
        for (int sweep = 0; sweep < sweeps; ++sweep) {
            evaluator.beginSweep();
            for (int col = 0; col < evaluator.columns(); ++col) {
                evaluator.beginColumn(col);
                for (int q = 0; q < numQubits; ++q) {
                    evaluator.beginQubit(q);
                    for (int role = 0; role < 3; ++role) {
                        const double value = rng.uniform(0.0, 2.0 * kPi);
                        const size_t idx = static_cast<size_t>(
                            ansatz.angleIndex(col, q, role));
                        const double saved = angles[idx];
                        angles[idx] = value;
                        check(evaluator.probe(role, value), "probe");
                        if (rng.bernoulli(0.5)) {
                            evaluator.commitAngle(role, value);
                        } else {
                            angles[idx] = saved;
                        }
                    }
                }
            }
            check(evaluator.trace(), "post-sweep trace");
        }
        // The single-coordinate update path after many interleaved
        // sweeps: one more sweep that only touches one angle.
        evaluator.beginSweep();
        const int lastCol = rng.uniformInt(evaluator.columns());
        for (int col = 0; col <= lastCol; ++col)
            evaluator.beginColumn(col);
        const int q = rng.uniformInt(numQubits);
        const int role = rng.uniformInt(3);
        evaluator.beginQubit(q);
        const double value = rng.uniform(0.0, 2.0 * kPi);
        angles[static_cast<size_t>(ansatz.angleIndex(lastCol, q, role))] =
            value;
        check(evaluator.probe(role, value), "single-coordinate probe");
        evaluator.commitAngle(role, value);
        check(evaluator.trace(), "post-update trace");
    }

    report.pass = report.detail.empty();
    if (report.pass) {
        char buf[120];
        std::snprintf(buf, sizeof(buf),
                      "%ld probes matched dense oracle, max deviation %.3e",
                      report.probesChecked, report.maxDeviation);
        report.detail = buf;
    }
    return report;
}

}  // namespace verify
}  // namespace geyser
