/**
 * @file
 * Differential cross-check of the incremental environment-contraction
 * kernel (compose/evaluator) against the dense reference oracle
 * (Ansatz::overlapTrace / Ansatz::unitary). The composer's correctness
 * now rests on the incremental trace being *numerically identical* to
 * the dense one, so this check drives randomized ansatze (qubit
 * counts, layer counts, entangler patterns, angle perturbations)
 * through the full sweep protocol — probes, commits, and repeated
 * interleaved sweeps that would expose stale environments — and
 * compares every probe against a freshly built dense trace.
 */
#ifndef GEYSER_VERIFY_KERNEL_CHECK_HPP
#define GEYSER_VERIFY_KERNEL_CHECK_HPP

#include <cstdint>
#include <string>

namespace geyser {
namespace verify {

/** Parameters of one randomized kernel cross-check run. */
struct KernelCheckOptions
{
    /** Random (ansatz, target, sweep) scenarios to drive. */
    int trials = 20;
    /** Absolute |incremental - dense| trace tolerance. */
    double tolerance = 1e-12;
    uint64_t seed = 1;
};

/** Outcome of a kernel cross-check. */
struct KernelCheckReport
{
    bool pass = false;
    long probesChecked = 0;
    double maxDeviation = 0.0;  ///< Worst |incremental - dense| seen.
    /** One-line summary (filled on pass and fail). */
    std::string detail;
};

/**
 * Drive randomized scenarios over 2-4 qubit ansatze, 1-5 layers, mixed
 * entangler patterns, random targets and angle perturbations.
 * Deterministic for a given seed.
 */
KernelCheckReport checkComposeKernel(const KernelCheckOptions &options = {});

}  // namespace verify
}  // namespace geyser

#endif  // GEYSER_VERIFY_KERNEL_CHECK_HPP
