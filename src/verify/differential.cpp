#include "verify/differential.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "metrics/metrics.hpp"
#include "sim/density_matrix.hpp"
#include "sim/statevector.hpp"
#include "sim/trajectory.hpp"

namespace geyser {
namespace verify {

namespace {

/** Worst per-outcome probability gap. */
double
maxAbsGap(const Distribution &p, const Distribution &q)
{
    double gap = 0.0;
    for (size_t k = 0; k < p.size(); ++k)
        gap = std::max(gap, std::abs(p[k] - q[k]));
    return gap;
}

Distribution
noiselessTrajectoryOutput(const Circuit &circuit, uint64_t seed)
{
    TrajectoryConfig cfg;
    cfg.trajectories = 1;
    cfg.seed = seed;
    cfg.parallel = false;
    cfg.forceTrajectories = true;  // Exercise the trajectory loop itself.
    return noisyDistribution(circuit, NoiseModel::noiseless(), cfg);
}

double
idealStageGap(const Circuit &circuit, const DifferentialOptions &options)
{
    return maxAbsGap(idealDistribution(circuit),
                     noiselessTrajectoryOutput(circuit, options.seed));
}

double
channelStageTvd(const Circuit &circuit, const NoiseModel &pauli,
                const DifferentialOptions &options)
{
    TrajectoryConfig cfg;
    cfg.trajectories = options.trajectories;
    cfg.seed = options.seed;
    const Distribution traj = noisyDistribution(circuit, pauli, cfg);
    const Distribution exact = exactNoisyDistribution(circuit, pauli);
    return totalVariationDistance(exact, traj);
}

void
fillFailure(DifferentialReport &report, const Circuit &circuit,
            const char *stage, double divergence, double bound,
            const DifferentialOptions &options,
            const std::function<bool(const Circuit &)> &stillFails)
{
    report.passed = false;
    report.stage = stage;
    report.divergence = divergence;
    report.reproducer = options.minimizeOnFailure
                            ? minimizeFailingCircuit(circuit, stillFails)
                            : circuit;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s diverged: %.3e (bound %.3e); minimized reproducer "
                  "has %zu gates over %d qubits",
                  stage, divergence, bound, report.reproducer.size(),
                  report.reproducer.numQubits());
    report.detail = std::string(buf) + "\n" + report.reproducer.toString();
}

}  // namespace

DifferentialReport
runDifferential(const Circuit &circuit, const NoiseModel &noise,
                const DifferentialOptions &options)
{
    DifferentialReport report;

    // Stage 1: the trajectory engine with the channel forced off must
    // reproduce the statevector output exactly.
    const double gap = idealStageGap(circuit, options);
    if (gap > options.idealTolerance) {
        fillFailure(report, circuit, "statevector-vs-trajectory", gap,
                    options.idealTolerance, options, [&](const Circuit &c) {
                        return idealStageGap(c, options) >
                               options.idealTolerance;
                    });
        return report;
    }

    // Stage 2: trajectory-averaged Pauli channel vs the exact Kraus
    // evolution. Atom loss / crosstalk / the extended channels are
    // trajectory-only concepts — the density-matrix engine models the
    // per-gate Pauli flips only.
    NoiseModel pauli = noise;
    pauli.atomLoss = 0.0;
    pauli.crosstalkPhase = 0.0;
    pauli.ampDamping = 0.0;
    pauli.idleDephasing = 0.0;
    pauli.lossPerGate = 0.0;
    pauli.correlatedPauli = 0.0;
    pauli.readoutError = 0.0;
    double channelTvd = -1.0;
    if (!pauli.isNoiseless() &&
        circuit.numQubits() <= options.maxDensityMatrixQubits) {
        channelTvd = channelStageTvd(circuit, pauli, options);
        if (channelTvd > options.channelTolerance) {
            fillFailure(report, circuit, "density-matrix-vs-trajectory",
                        channelTvd, options.channelTolerance, options,
                        [&](const Circuit &c) {
                            return channelStageTvd(c, pauli, options) >
                                   options.channelTolerance;
                        });
            return report;
        }
    }

    // Stage 3: the composed extended-channel model must not care in
    // which order the channels are applied (per-channel RNG streams).
    if (options.checkChannelOrder) {
        const NoiseModel probe = allChannelProbeModel(circuit, noise);
        const int orderShots = std::min(options.trajectories, 16);
        const double orderGap =
            channelOrderGap(circuit, probe, orderShots, options.seed);
        if (orderGap > 0.0) {
            fillFailure(report, circuit, "channel-order-invariance",
                        orderGap, 0.0, options, [&](const Circuit &c) {
                            return channelOrderGap(c, probe, orderShots,
                                                   options.seed) > 0.0;
                        });
            return report;
        }
    }

    report.divergence = channelTvd >= 0.0 ? channelTvd : gap;
    char buf[128];
    if (channelTvd >= 0.0)
        std::snprintf(buf, sizeof(buf),
                      "ideal gap %.3e, channel tvd %.3e: all engines agree",
                      gap, channelTvd);
    else
        std::snprintf(
            buf, sizeof(buf),
            "ideal gap %.3e: statevector and trajectory agree", gap);
    report.detail = buf;
    return report;
}

double
channelsOffGap(const Circuit &circuit, uint64_t seed)
{
    return maxAbsGap(idealDistribution(circuit),
                     noiselessTrajectoryOutput(circuit, seed));
}

double
channelOrderGap(const Circuit &circuit, const NoiseModel &noise,
                int trajectories, uint64_t seed)
{
    TrajectoryConfig cfg;
    cfg.trajectories = trajectories;
    cfg.seed = seed;
    cfg.parallel = false;
    TrajectoryConfig reversed = cfg;
    reversed.reverseChannelOrder = true;
    return maxAbsGap(noisyDistribution(circuit, noise, cfg),
                     noisyDistribution(circuit, noise, reversed));
}

NoiseModel
allChannelProbeModel(const Circuit &circuit, const NoiseModel &noise)
{
    NoiseModel probe = noise;
    // The order-invariance run has no topology, so crosstalk (which
    // would fail validation without one) stays out of the probe.
    probe.crosstalkPhase = 0.0;
    probe.ampDamping = std::max(probe.ampDamping, 0.01);
    probe.lossPerGate = std::max(probe.lossPerGate, 0.005);
    probe.correlatedPauli = std::max(probe.correlatedPauli, 0.01);
    probe.readoutError = std::max(probe.readoutError, 0.02);
    bool physical = true;
    for (const Gate &g : circuit.gates())
        if (!g.isPhysical())
            physical = false;
    if (physical)
        probe.idleDephasing = std::max(probe.idleDephasing, 0.002);
    else
        probe.perPulse = false;  // Pulse costs undefined on logical gates.
    return probe;
}

Circuit
minimizeFailingCircuit(const Circuit &circuit,
                       const std::function<bool(const Circuit &)> &stillFails)
{
    auto prefix = [&](size_t n) {
        Circuit c(circuit.numQubits());
        for (size_t i = 0; i < n && i < circuit.size(); ++i)
            c.append(circuit.gates()[i]);
        return c;
    };

    // Shortest failing prefix (binary search; verified afterwards since
    // failure need not be monotone in prefix length).
    size_t lo = 0, hi = circuit.size();
    while (lo < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        if (stillFails(prefix(mid)))
            hi = mid;
        else
            lo = mid + 1;
    }
    Circuit best = prefix(hi);
    if (!stillFails(best))
        best = circuit;

    // Greedy single-gate removal to a local minimum.
    bool shrunk = true;
    while (shrunk) {
        shrunk = false;
        for (size_t skip = 0; skip < best.size(); ++skip) {
            Circuit candidate(best.numQubits());
            for (size_t i = 0; i < best.size(); ++i)
                if (i != skip)
                    candidate.append(best.gates()[i]);
            if (stillFails(candidate)) {
                best = std::move(candidate);
                shrunk = true;
                break;
            }
        }
    }
    return best;
}

}  // namespace verify
}  // namespace geyser
