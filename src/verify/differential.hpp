/**
 * @file
 * Differential simulator testing: run the same circuit through the three
 * independent simulation engines and cross-check them against each other.
 *
 *  - statevector vs the trajectory engine with noise forced off: the
 *    trajectory loop applies exactly the same gate operations, so the
 *    outputs must agree to floating-point identity;
 *  - exact density-matrix (Kraus) evolution vs the trajectory average of
 *    the same stochastic Pauli channel: must agree within a Monte-Carlo
 *    tolerance.
 *
 * On divergence the report carries a *minimized* reproducer circuit (a
 * greedy delta-debugging shrink of the failing input), so a fuzz failure
 * is immediately actionable.
 */
#ifndef GEYSER_VERIFY_DIFFERENTIAL_HPP
#define GEYSER_VERIFY_DIFFERENTIAL_HPP

#include <functional>
#include <string>

#include "circuit/circuit.hpp"
#include "sim/noise.hpp"

namespace geyser {
namespace verify {

/** Knobs for one differential run. */
struct DifferentialOptions
{
    /** Trajectories for the channel comparison. */
    int trajectories = 400;
    uint64_t seed = 99;
    /** Bound on |p_sv - p_traj| per outcome in the noiseless stage. */
    double idealTolerance = 1e-12;
    /** TVD bound for density-matrix vs trajectory-averaged output. */
    double channelTolerance = 0.05;
    /** Density-matrix cost is 4^n; skip the channel stage above this. */
    int maxDensityMatrixQubits = 6;
    /** Shrink the failing circuit before reporting. */
    bool minimizeOnFailure = true;
    /**
     * Also assert that composing every extended noise channel is
     * invariant under the channel application order (bit-identical
     * distributions with TrajectoryConfig::reverseChannelOrder set) —
     * the property the per-channel counter-derived RNG streams exist
     * to guarantee.
     */
    bool checkChannelOrder = true;
};

/** Outcome of a differential run. */
struct DifferentialReport
{
    bool passed = true;
    /** Stage that diverged: "statevector-vs-trajectory" or
     *  "density-matrix-vs-trajectory"; empty when passed. */
    std::string stage;
    /** Worst per-outcome gap (ideal stage) or TVD (channel stage). */
    double divergence = 0.0;
    std::string detail;
    /** Minimized failing circuit; empty when passed. */
    Circuit reproducer;
};

/**
 * Cross-check all simulators on `circuit`. The channel stage strips
 * atom-loss and crosstalk from `noise` (the density-matrix engine models
 * the per-gate Pauli channel only) and is skipped entirely when the
 * remaining channel is noiseless or the circuit is too wide.
 */
DifferentialReport runDifferential(const Circuit &circuit,
                                   const NoiseModel &noise,
                                   const DifferentialOptions &options = {});

/**
 * Channel-off cross-check: the trajectory engine forced through its
 * loop with every noise channel disabled must reproduce the exact
 * statevector distribution. Returns the worst per-outcome gap
 * (0 up to floating-point identity when the engine is healthy).
 */
double channelsOffGap(const Circuit &circuit, uint64_t seed);

/**
 * Channel-order invariance: run `noise` over `circuit` twice, with the
 * channels applied in registration order and in reverse, and return
 * the worst per-outcome gap. Counter-derived per-channel RNG streams
 * make the two runs bit-identical, so any nonzero gap is a bug.
 */
double channelOrderGap(const Circuit &circuit, const NoiseModel &noise,
                       int trajectories, uint64_t seed);

/**
 * `noise` extended with every composable channel enabled at small
 * probe rates (idle dephasing only when `circuit` is physical — the
 * schedule is undefined otherwise): the model the order-invariance
 * stage exercises.
 */
NoiseModel allChannelProbeModel(const Circuit &circuit,
                                const NoiseModel &noise);

/**
 * Greedy shrink: the shortest prefix of `circuit` on which `stillFails`
 * holds, then single-gate removals to a local minimum. `stillFails` must
 * hold on the full circuit.
 */
Circuit minimizeFailingCircuit(
    const Circuit &circuit,
    const std::function<bool(const Circuit &)> &stillFails);

}  // namespace verify
}  // namespace geyser

#endif  // GEYSER_VERIFY_DIFFERENTIAL_HPP
