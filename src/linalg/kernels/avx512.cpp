/**
 * @file
 * AVX-512F/DQ/VL backend: 512-bit kernels (8 doubles per vector).
 * Compiled with -mavx512f -mavx512dq -mavx512vl -mfma and only entered
 * through the dispatch table after the CPUID check in backend.cpp.
 *
 * Tail dimensions never drop to scalar here: every column loop is
 * masked, so d = 2/4/8/16 all run the same code path (d = 8 is one
 * full vector per row — the paper's 3-qubit block size). VL allows the
 * 256-bit idioms for the 4-wide probe contraction and the interleaved
 * statevector kernels on short runs.
 */
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include "linalg/kernels/backend.hpp"
#include "linalg/kernels/detail.hpp"

namespace geyser {
namespace kernels {
namespace {

inline __mmask8
colMask(int remaining)
{
    return remaining >= 8
               ? static_cast<__mmask8>(0xFF)
               : static_cast<__mmask8>((1u << remaining) - 1u);
}

/** sum_i a_i . b_i (plain complex product) over split arrays. */
inline void
dotSplitAvx512(const double *aRe, const double *aIm, const double *bRe,
               const double *bIm, size_t n, double *outRe, double *outIm)
{
    __m512d tre = _mm512_setzero_pd(), tim = _mm512_setzero_pd();
    for (size_t i = 0; i < n; i += 8) {
        const __mmask8 mk = colMask(static_cast<int>(n - i));
        const __m512d ar = _mm512_maskz_loadu_pd(mk, aRe + i);
        const __m512d ai = _mm512_maskz_loadu_pd(mk, aIm + i);
        const __m512d br = _mm512_maskz_loadu_pd(mk, bRe + i);
        const __m512d bi = _mm512_maskz_loadu_pd(mk, bIm + i);
        tre = _mm512_fmadd_pd(ar, br, tre);
        tre = _mm512_fnmadd_pd(ai, bi, tre);
        tim = _mm512_fmadd_pd(ar, bi, tim);
        tim = _mm512_fmadd_pd(ai, br, tim);
    }
    *outRe = _mm512_reduce_add_pd(tre);
    *outIm = _mm512_reduce_add_pd(tim);
}

void
matmulAvx512(const double *aRe, const double *aIm, const double *bRe,
             const double *bIm, double *outRe, double *outIm, int d)
{
    for (int r = 0; r < d; ++r) {
        for (int c = 0; c < d; c += 8) {
            const __mmask8 mk = colMask(d - c);
            __m512d sre = _mm512_setzero_pd(), sim = _mm512_setzero_pd();
            for (int k = 0; k < d; ++k) {
                const __m512d ar = _mm512_set1_pd(aRe[r * d + k]);
                const __m512d ai = _mm512_set1_pd(aIm[r * d + k]);
                const __m512d br =
                    _mm512_maskz_loadu_pd(mk, bRe + k * d + c);
                const __m512d bi =
                    _mm512_maskz_loadu_pd(mk, bIm + k * d + c);
                sre = _mm512_fmadd_pd(ar, br, sre);
                sre = _mm512_fnmadd_pd(ai, bi, sre);
                sim = _mm512_fmadd_pd(ar, bi, sim);
                sim = _mm512_fmadd_pd(ai, br, sim);
            }
            _mm512_mask_storeu_pd(outRe + r * d + c, mk, sre);
            _mm512_mask_storeu_pd(outIm + r * d + c, mk, sim);
        }
    }
}

void
matmulDaggerAvx512(const double *aRe, const double *aIm, const double *bRe,
                   const double *bIm, double *outRe, double *outIm, int d)
{
    for (int r = 0; r < d; ++r) {
        for (int c = 0; c < d; c += 8) {
            const __mmask8 mk = colMask(d - c);
            __m512d sre = _mm512_setzero_pd(), sim = _mm512_setzero_pd();
            for (int k = 0; k < d; ++k) {
                const __m512d ar = _mm512_set1_pd(aRe[k * d + r]);
                const __m512d ai = _mm512_set1_pd(-aIm[k * d + r]);
                const __m512d br =
                    _mm512_maskz_loadu_pd(mk, bRe + k * d + c);
                const __m512d bi =
                    _mm512_maskz_loadu_pd(mk, bIm + k * d + c);
                sre = _mm512_fmadd_pd(ar, br, sre);
                sre = _mm512_fnmadd_pd(ai, bi, sre);
                sim = _mm512_fmadd_pd(ar, bi, sim);
                sim = _mm512_fmadd_pd(ai, br, sim);
            }
            _mm512_mask_storeu_pd(outRe + r * d + c, mk, sre);
            _mm512_mask_storeu_pd(outIm + r * d + c, mk, sim);
        }
    }
}

void
traceProductAvx512(const double *aRe, const double *aIm, const double *bRe,
                   const double *bIm, int d, double *outRe, double *outIm)
{
    double btRe[kMaxTraceDim * kMaxTraceDim];
    double btIm[kMaxTraceDim * kMaxTraceDim];
    for (int r = 0; r < d; ++r) {
        for (int k = 0; k < d; ++k) {
            btRe[r * d + k] = bRe[k * d + r];
            btIm[r * d + k] = bIm[k * d + r];
        }
    }
    dotSplitAvx512(aRe, aIm, btRe, btIm,
                   static_cast<size_t>(d) * static_cast<size_t>(d), outRe,
                   outIm);
}

void
traceConjDotAvx512(const double *tRe, const double *tIm, const double *uRe,
                   const double *uIm, size_t n, double *outRe,
                   double *outIm)
{
    __m512d tre = _mm512_setzero_pd(), tim = _mm512_setzero_pd();
    for (size_t i = 0; i < n; i += 8) {
        const __mmask8 mk = colMask(static_cast<int>(n - i));
        const __m512d tr = _mm512_maskz_loadu_pd(mk, tRe + i);
        const __m512d ti = _mm512_maskz_loadu_pd(mk, tIm + i);
        const __m512d ur = _mm512_maskz_loadu_pd(mk, uRe + i);
        const __m512d ui = _mm512_maskz_loadu_pd(mk, uIm + i);
        tre = _mm512_fmadd_pd(tr, ur, tre);
        tre = _mm512_fmadd_pd(ti, ui, tre);
        tim = _mm512_fmadd_pd(tr, ui, tim);
        tim = _mm512_fnmadd_pd(ti, ur, tim);
    }
    *outRe = _mm512_reduce_add_pd(tre);
    *outIm = _mm512_reduce_add_pd(tim);
}

void
apply2x2RowsAvx512(double *re, double *im, const double *uRe,
                   const double *uIm, int bit, int d)
{
    const __m512d u0r = _mm512_set1_pd(uRe[0]), u0i = _mm512_set1_pd(uIm[0]);
    const __m512d u1r = _mm512_set1_pd(uRe[1]), u1i = _mm512_set1_pd(uIm[1]);
    const __m512d u2r = _mm512_set1_pd(uRe[2]), u2i = _mm512_set1_pd(uIm[2]);
    const __m512d u3r = _mm512_set1_pd(uRe[3]), u3i = _mm512_set1_pd(uIm[3]);
    for (int r0 = 0; r0 < d; ++r0) {
        if (r0 & bit)
            continue;
        const int r1 = r0 | bit;
        double *re0 = re + r0 * d, *im0 = im + r0 * d;
        double *re1 = re + r1 * d, *im1 = im + r1 * d;
        for (int c = 0; c < d; c += 8) {
            const __mmask8 mk = colMask(d - c);
            const __m512d ar = _mm512_maskz_loadu_pd(mk, re0 + c);
            const __m512d ai = _mm512_maskz_loadu_pd(mk, im0 + c);
            const __m512d br = _mm512_maskz_loadu_pd(mk, re1 + c);
            const __m512d bi = _mm512_maskz_loadu_pd(mk, im1 + c);
            __m512d nr = _mm512_mul_pd(u0r, ar);
            nr = _mm512_fnmadd_pd(u0i, ai, nr);
            nr = _mm512_fmadd_pd(u1r, br, nr);
            nr = _mm512_fnmadd_pd(u1i, bi, nr);
            __m512d ni = _mm512_mul_pd(u0r, ai);
            ni = _mm512_fmadd_pd(u0i, ar, ni);
            ni = _mm512_fmadd_pd(u1r, bi, ni);
            ni = _mm512_fmadd_pd(u1i, br, ni);
            __m512d mr = _mm512_mul_pd(u2r, ar);
            mr = _mm512_fnmadd_pd(u2i, ai, mr);
            mr = _mm512_fmadd_pd(u3r, br, mr);
            mr = _mm512_fnmadd_pd(u3i, bi, mr);
            __m512d mi = _mm512_mul_pd(u2r, ai);
            mi = _mm512_fmadd_pd(u2i, ar, mi);
            mi = _mm512_fmadd_pd(u3r, bi, mi);
            mi = _mm512_fmadd_pd(u3i, br, mi);
            _mm512_mask_storeu_pd(re0 + c, mk, nr);
            _mm512_mask_storeu_pd(im0 + c, mk, ni);
            _mm512_mask_storeu_pd(re1 + c, mk, mr);
            _mm512_mask_storeu_pd(im1 + c, mk, mi);
        }
    }
}

void
apply2x2ColsAvx512(double *re, double *im, const double *uRe,
                   const double *uIm, int bit, int d)
{
    if (bit < 4) {
        // The partner column sits `bit` lanes away inside one 8-wide
        // row vector: swap the blocks in register and blend the pair's
        // coefficients per lane (a-lanes take u0/u2, b-lanes u3/u1).
        const __mmask8 bLanes = bit == 1 ? 0xAA : 0xCC;
        const __m512d uAr = _mm512_mask_blend_pd(
            bLanes, _mm512_set1_pd(uRe[0]), _mm512_set1_pd(uRe[3]));
        const __m512d uAi = _mm512_mask_blend_pd(
            bLanes, _mm512_set1_pd(uIm[0]), _mm512_set1_pd(uIm[3]));
        const __m512d uBr = _mm512_mask_blend_pd(
            bLanes, _mm512_set1_pd(uRe[2]), _mm512_set1_pd(uRe[1]));
        const __m512d uBi = _mm512_mask_blend_pd(
            bLanes, _mm512_set1_pd(uIm[2]), _mm512_set1_pd(uIm[1]));
        for (int r = 0; r < d; ++r) {
            double *rowRe = re + r * d, *rowIm = im + r * d;
            for (int c = 0; c < d; c += 8) {
                const __mmask8 mk = colMask(d - c);
                const __m512d xr = _mm512_maskz_loadu_pd(mk, rowRe + c);
                const __m512d xi = _mm512_maskz_loadu_pd(mk, rowIm + c);
                const __m512d yr = bit == 1
                                       ? _mm512_permute_pd(xr, 0x55)
                                       : _mm512_permutex_pd(xr, 0x4E);
                const __m512d yi = bit == 1
                                       ? _mm512_permute_pd(xi, 0x55)
                                       : _mm512_permutex_pd(xi, 0x4E);
                __m512d nr = _mm512_mul_pd(xr, uAr);
                nr = _mm512_fnmadd_pd(xi, uAi, nr);
                nr = _mm512_fmadd_pd(yr, uBr, nr);
                nr = _mm512_fnmadd_pd(yi, uBi, nr);
                __m512d ni = _mm512_mul_pd(xr, uAi);
                ni = _mm512_fmadd_pd(xi, uAr, ni);
                ni = _mm512_fmadd_pd(yr, uBi, ni);
                ni = _mm512_fmadd_pd(yi, uBr, ni);
                _mm512_mask_storeu_pd(rowRe + c, mk, nr);
                _mm512_mask_storeu_pd(rowIm + c, mk, ni);
            }
        }
        return;
    }
    // Runs of >= 4 contiguous columns: unmasked 4-wide (VL) pairs.
    const __m256d u0r = _mm256_set1_pd(uRe[0]), u0i = _mm256_set1_pd(uIm[0]);
    const __m256d u1r = _mm256_set1_pd(uRe[1]), u1i = _mm256_set1_pd(uIm[1]);
    const __m256d u2r = _mm256_set1_pd(uRe[2]), u2i = _mm256_set1_pd(uIm[2]);
    const __m256d u3r = _mm256_set1_pd(uRe[3]), u3i = _mm256_set1_pd(uIm[3]);
    for (int r = 0; r < d; ++r) {
        double *rowRe = re + r * d, *rowIm = im + r * d;
        for (int base = 0; base < d; base += 2 * bit) {
            for (int c0 = base; c0 < base + bit; c0 += 4) {
                const __m256d ar = _mm256_loadu_pd(rowRe + c0);
                const __m256d ai = _mm256_loadu_pd(rowIm + c0);
                const __m256d br = _mm256_loadu_pd(rowRe + c0 + bit);
                const __m256d bi = _mm256_loadu_pd(rowIm + c0 + bit);
                __m256d nr = _mm256_mul_pd(ar, u0r);
                nr = _mm256_fnmadd_pd(ai, u0i, nr);
                nr = _mm256_fmadd_pd(br, u2r, nr);
                nr = _mm256_fnmadd_pd(bi, u2i, nr);
                __m256d ni = _mm256_mul_pd(ar, u0i);
                ni = _mm256_fmadd_pd(ai, u0r, ni);
                ni = _mm256_fmadd_pd(br, u2i, ni);
                ni = _mm256_fmadd_pd(bi, u2r, ni);
                __m256d mr = _mm256_mul_pd(ar, u1r);
                mr = _mm256_fnmadd_pd(ai, u1i, mr);
                mr = _mm256_fmadd_pd(br, u3r, mr);
                mr = _mm256_fnmadd_pd(bi, u3i, mr);
                __m256d mi = _mm256_mul_pd(ar, u1i);
                mi = _mm256_fmadd_pd(ai, u1r, mi);
                mi = _mm256_fmadd_pd(br, u3i, mi);
                mi = _mm256_fmadd_pd(bi, u3r, mi);
                _mm256_storeu_pd(rowRe + c0, nr);
                _mm256_storeu_pd(rowIm + c0, ni);
                _mm256_storeu_pd(rowRe + c0 + bit, mr);
                _mm256_storeu_pd(rowIm + c0 + bit, mi);
            }
        }
    }
}

void
foldWAvx512(const double *envRe, const double *envIm,
            const double (*u3Re)[4], const double (*u3Im)[4], int numQubits,
            int qubit, double *wRe, double *wIm)
{
    if (numQubits <= 1) {
        foldWRef(envRe, envIm, u3Re, u3Im, numQubits, qubit, wRe, wIm);
        return;
    }
    constexpr int kQuad = (kDetailMaxDim / 2) * (kDetailMaxDim / 2);
    double gRe[kQuad], gIm[kQuad];
    int dq = 0;
    buildKronColumn(u3Re, u3Im, numQubits, qubit, gRe, gIm, &dq);
    const size_t n = static_cast<size_t>(dq) * static_cast<size_t>(dq);
    const int dim = 1 << numQubits;
    double binRe[kQuad], binIm[kQuad];
    for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
            gatherEnvBin(envRe, envIm, dim, qubit, a, b, binRe, binIm);
            dotSplitAvx512(gRe, gIm, binRe, binIm, n, &wRe[a * 2 + b],
                           &wIm[a * 2 + b]);
        }
    }
}

inline double
hsum256(__m256d v)
{
    __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    lo = _mm_add_pd(lo, hi);
    return _mm_cvtsd_f64(_mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)));
}

void
probeBatchAvx512(const double *wRe, const double *wIm, const double *u3Re,
                 const double *u3Im, int count, double *outRe,
                 double *outIm)
{
    const __m256d wr = _mm256_loadu_pd(wRe);
    const __m256d wi = _mm256_loadu_pd(wIm);
    for (int i = 0; i < count; ++i) {
        const __m256d ur = _mm256_loadu_pd(u3Re + i * 4);
        const __m256d ui = _mm256_loadu_pd(u3Im + i * 4);
        const __m256d tre =
            _mm256_fnmadd_pd(ui, wi, _mm256_mul_pd(ur, wr));
        const __m256d tim = _mm256_fmadd_pd(ui, wr, _mm256_mul_pd(ur, wi));
        outRe[i] = hsum256(tre);
        outIm[i] = hsum256(tim);
    }
}

/**
 * (ur + i ui) . v for interleaved v, vs = re/im-swapped v. AVX-512 has
 * no addsub; fmaddsub (sub on even lanes, add on odd) does the job.
 */
inline __m512d
cmulAvx512(double ur, double ui, __m512d v, __m512d vs)
{
    return _mm512_fmaddsub_pd(_mm512_set1_pd(ur), v,
                              _mm512_mul_pd(_mm512_set1_pd(ui), vs));
}

inline __m256d
cmul256(double ur, double ui, __m256d v, __m256d vs)
{
    return _mm256_addsub_pd(_mm256_mul_pd(_mm256_set1_pd(ur), v),
                            _mm256_mul_pd(_mm256_set1_pd(ui), vs));
}

void
svApply1qAvx512(Complex *amps, size_t dim, int qubit, const Complex *u)
{
    const size_t mask = size_t{1} << qubit;
    double *p = reinterpret_cast<double *>(amps);
    if (qubit >= 2) {
        // Runs of >= 4 complexes: full 512-bit vectors.
        for (size_t base = 0; base < dim; base += 2 * mask) {
            for (size_t off = 0; off < mask; off += 4) {
                const size_t i0 = base + off, i1 = i0 | mask;
                const __m512d a = _mm512_loadu_pd(p + 2 * i0);
                const __m512d b = _mm512_loadu_pd(p + 2 * i1);
                const __m512d as = _mm512_permute_pd(a, 0x55);
                const __m512d bs = _mm512_permute_pd(b, 0x55);
                const __m512d n0 = _mm512_add_pd(
                    cmulAvx512(u[0].real(), u[0].imag(), a, as),
                    cmulAvx512(u[1].real(), u[1].imag(), b, bs));
                const __m512d n1 = _mm512_add_pd(
                    cmulAvx512(u[2].real(), u[2].imag(), a, as),
                    cmulAvx512(u[3].real(), u[3].imag(), b, bs));
                _mm512_storeu_pd(p + 2 * i0, n0);
                _mm512_storeu_pd(p + 2 * i1, n1);
            }
        }
        return;
    }
    if (qubit == 1 && dim >= 4) {
        for (size_t base = 0; base < dim; base += 2 * mask) {
            const size_t i0 = base, i1 = base | mask;
            const __m256d a = _mm256_loadu_pd(p + 2 * i0);
            const __m256d b = _mm256_loadu_pd(p + 2 * i1);
            const __m256d as = _mm256_permute_pd(a, 0x5);
            const __m256d bs = _mm256_permute_pd(b, 0x5);
            const __m256d n0 =
                _mm256_add_pd(cmul256(u[0].real(), u[0].imag(), a, as),
                              cmul256(u[1].real(), u[1].imag(), b, bs));
            const __m256d n1 =
                _mm256_add_pd(cmul256(u[2].real(), u[2].imag(), a, as),
                              cmul256(u[3].real(), u[3].imag(), b, bs));
            _mm256_storeu_pd(p + 2 * i0, n0);
            _mm256_storeu_pd(p + 2 * i1, n1);
        }
        return;
    }
    svApply1qRef(amps, dim, qubit, u);
}

void
svApply2qAvx512(Complex *amps, size_t dim, int q0, int q1, const Complex *u)
{
    const size_t m0 = size_t{1} << q0, m1 = size_t{1} << q1;
    const size_t lo = m0 < m1 ? m0 : m1;
    const size_t hi = m0 < m1 ? m1 : m0;
    if (lo < 4) {
        svApply2qRef(amps, dim, q0, q1, u);
        return;
    }
    double *p = reinterpret_cast<double *>(amps);
    for (size_t h = 0; h < dim; h += 2 * hi) {
        for (size_t m = h; m < h + hi; m += 2 * lo) {
            for (size_t base = m; base < m + lo; base += 4) {
                const __m512d x0 = _mm512_loadu_pd(p + 2 * base);
                const __m512d x1 = _mm512_loadu_pd(p + 2 * (base + m0));
                const __m512d x2 = _mm512_loadu_pd(p + 2 * (base + m1));
                const __m512d x3 =
                    _mm512_loadu_pd(p + 2 * (base + m0 + m1));
                const __m512d s0 = _mm512_permute_pd(x0, 0x55);
                const __m512d s1 = _mm512_permute_pd(x1, 0x55);
                const __m512d s2 = _mm512_permute_pd(x2, 0x55);
                const __m512d s3 = _mm512_permute_pd(x3, 0x55);
                const size_t offs[4] = {base, base + m0, base + m1,
                                        base + m0 + m1};
                for (int row = 0; row < 4; ++row) {
                    const Complex *ur = u + row * 4;
                    __m512d acc = cmulAvx512(ur[0].real(), ur[0].imag(),
                                             x0, s0);
                    acc = _mm512_add_pd(acc,
                                        cmulAvx512(ur[1].real(),
                                                   ur[1].imag(), x1, s1));
                    acc = _mm512_add_pd(acc,
                                        cmulAvx512(ur[2].real(),
                                                   ur[2].imag(), x2, s2));
                    acc = _mm512_add_pd(acc,
                                        cmulAvx512(ur[3].real(),
                                                   ur[3].imag(), x3, s3));
                    _mm512_storeu_pd(p + 2 * offs[row], acc);
                }
            }
        }
    }
}

}  // namespace

const ComputeBackend &
avx512Backend()
{
    static const ComputeBackend backend = {
        "avx512",           matmulAvx512,       matmulDaggerAvx512,
        traceProductAvx512, traceConjDotAvx512, apply2x2RowsAvx512,
        apply2x2ColsAvx512, flipRowsRef,        flipColsRef,
        foldWAvx512,        probeBatchAvx512,   svApply1qAvx512,
        svApply2qAvx512,
    };
    return backend;
}

}  // namespace kernels
}  // namespace geyser

#endif  // x86
