/**
 * @file
 * AVX2+FMA backend: 256-bit kernels (4 doubles per vector) for the
 * compose/sim hot loops. This TU is compiled with -mavx2 -mfma and is
 * only ever entered through the dispatch table after the CPUID check
 * in backend.cpp, so the binary stays runnable on non-AVX hosts.
 *
 * Split-complex matrix kernels vectorize across contiguous columns
 * with broadcast-FMA; interleaved statevector kernels use the
 * permute/addsub idiom for scalar-complex x vector products. Tail
 * columns and sub-vector dimensions fall back to the per-TU reference
 * loops from detail.hpp (which the compiler auto-vectorizes under
 * this TU's flags — still AVX2-only code, still dispatch-gated).
 */
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include "linalg/kernels/backend.hpp"
#include "linalg/kernels/detail.hpp"

namespace geyser {
namespace kernels {
namespace {

inline double
hsum(__m256d v)
{
    __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    lo = _mm_add_pd(lo, hi);
    return _mm_cvtsd_f64(_mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)));
}

/** sum_i a_i . b_i (plain complex product) over split arrays. */
inline void
dotSplitAvx2(const double *aRe, const double *aIm, const double *bRe,
             const double *bIm, size_t n, double *outRe, double *outIm)
{
    __m256d tre = _mm256_setzero_pd(), tim = _mm256_setzero_pd();
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d ar = _mm256_loadu_pd(aRe + i);
        const __m256d ai = _mm256_loadu_pd(aIm + i);
        const __m256d br = _mm256_loadu_pd(bRe + i);
        const __m256d bi = _mm256_loadu_pd(bIm + i);
        tre = _mm256_fmadd_pd(ar, br, tre);
        tre = _mm256_fnmadd_pd(ai, bi, tre);
        tim = _mm256_fmadd_pd(ar, bi, tim);
        tim = _mm256_fmadd_pd(ai, br, tim);
    }
    double sre = hsum(tre), sim = hsum(tim);
    for (; i < n; ++i) {
        sre += aRe[i] * bRe[i] - aIm[i] * bIm[i];
        sim += aRe[i] * bIm[i] + aIm[i] * bRe[i];
    }
    *outRe = sre;
    *outIm = sim;
}

void
matmulAvx2(const double *aRe, const double *aIm, const double *bRe,
           const double *bIm, double *outRe, double *outIm, int d)
{
    for (int r = 0; r < d; ++r) {
        int c = 0;
        for (; c + 4 <= d; c += 4) {
            __m256d sre = _mm256_setzero_pd(), sim = _mm256_setzero_pd();
            for (int k = 0; k < d; ++k) {
                const __m256d ar = _mm256_set1_pd(aRe[r * d + k]);
                const __m256d ai = _mm256_set1_pd(aIm[r * d + k]);
                const __m256d br = _mm256_loadu_pd(bRe + k * d + c);
                const __m256d bi = _mm256_loadu_pd(bIm + k * d + c);
                sre = _mm256_fmadd_pd(ar, br, sre);
                sre = _mm256_fnmadd_pd(ai, bi, sre);
                sim = _mm256_fmadd_pd(ar, bi, sim);
                sim = _mm256_fmadd_pd(ai, br, sim);
            }
            _mm256_storeu_pd(outRe + r * d + c, sre);
            _mm256_storeu_pd(outIm + r * d + c, sim);
        }
        for (; c < d; ++c) {
            double sre = 0.0, sim = 0.0;
            for (int k = 0; k < d; ++k) {
                const double xre = aRe[r * d + k], xim = aIm[r * d + k];
                const double yre = bRe[k * d + c], yim = bIm[k * d + c];
                sre += xre * yre - xim * yim;
                sim += xre * yim + xim * yre;
            }
            outRe[r * d + c] = sre;
            outIm[r * d + c] = sim;
        }
    }
}

void
matmulDaggerAvx2(const double *aRe, const double *aIm, const double *bRe,
                 const double *bIm, double *outRe, double *outIm, int d)
{
    for (int r = 0; r < d; ++r) {
        int c = 0;
        for (; c + 4 <= d; c += 4) {
            __m256d sre = _mm256_setzero_pd(), sim = _mm256_setzero_pd();
            for (int k = 0; k < d; ++k) {
                const __m256d ar = _mm256_set1_pd(aRe[k * d + r]);
                const __m256d ai = _mm256_set1_pd(-aIm[k * d + r]);
                const __m256d br = _mm256_loadu_pd(bRe + k * d + c);
                const __m256d bi = _mm256_loadu_pd(bIm + k * d + c);
                sre = _mm256_fmadd_pd(ar, br, sre);
                sre = _mm256_fnmadd_pd(ai, bi, sre);
                sim = _mm256_fmadd_pd(ar, bi, sim);
                sim = _mm256_fmadd_pd(ai, br, sim);
            }
            _mm256_storeu_pd(outRe + r * d + c, sre);
            _mm256_storeu_pd(outIm + r * d + c, sim);
        }
        for (; c < d; ++c) {
            double sre = 0.0, sim = 0.0;
            for (int k = 0; k < d; ++k) {
                const double xre = aRe[k * d + r], xim = -aIm[k * d + r];
                const double yre = bRe[k * d + c], yim = bIm[k * d + c];
                sre += xre * yre - xim * yim;
                sim += xre * yim + xim * yre;
            }
            outRe[r * d + c] = sre;
            outIm[r * d + c] = sim;
        }
    }
}

void
traceProductAvx2(const double *aRe, const double *aIm, const double *bRe,
                 const double *bIm, int d, double *outRe, double *outIm)
{
    // Transpose b so the contraction becomes one contiguous dot.
    double btRe[kMaxTraceDim * kMaxTraceDim];
    double btIm[kMaxTraceDim * kMaxTraceDim];
    for (int r = 0; r < d; ++r) {
        for (int k = 0; k < d; ++k) {
            btRe[r * d + k] = bRe[k * d + r];
            btIm[r * d + k] = bIm[k * d + r];
        }
    }
    dotSplitAvx2(aRe, aIm, btRe, btIm,
                 static_cast<size_t>(d) * static_cast<size_t>(d), outRe,
                 outIm);
}

void
traceConjDotAvx2(const double *tRe, const double *tIm, const double *uRe,
                 const double *uIm, size_t n, double *outRe, double *outIm)
{
    __m256d tre = _mm256_setzero_pd(), tim = _mm256_setzero_pd();
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d tr = _mm256_loadu_pd(tRe + i);
        const __m256d ti = _mm256_loadu_pd(tIm + i);
        const __m256d ur = _mm256_loadu_pd(uRe + i);
        const __m256d ui = _mm256_loadu_pd(uIm + i);
        tre = _mm256_fmadd_pd(tr, ur, tre);
        tre = _mm256_fmadd_pd(ti, ui, tre);
        tim = _mm256_fmadd_pd(tr, ui, tim);
        tim = _mm256_fnmadd_pd(ti, ur, tim);
    }
    double sre = hsum(tre), sim = hsum(tim);
    for (; i < n; ++i) {
        sre += tRe[i] * uRe[i] + tIm[i] * uIm[i];
        sim += tRe[i] * uIm[i] - tIm[i] * uRe[i];
    }
    *outRe = sre;
    *outIm = sim;
}

void
apply2x2RowsAvx2(double *re, double *im, const double *uRe,
                 const double *uIm, int bit, int d)
{
    if (d < 4) {
        apply2x2RowsRef(re, im, uRe, uIm, bit, d);
        return;
    }
    const __m256d u0r = _mm256_set1_pd(uRe[0]), u0i = _mm256_set1_pd(uIm[0]);
    const __m256d u1r = _mm256_set1_pd(uRe[1]), u1i = _mm256_set1_pd(uIm[1]);
    const __m256d u2r = _mm256_set1_pd(uRe[2]), u2i = _mm256_set1_pd(uIm[2]);
    const __m256d u3r = _mm256_set1_pd(uRe[3]), u3i = _mm256_set1_pd(uIm[3]);
    for (int r0 = 0; r0 < d; ++r0) {
        if (r0 & bit)
            continue;
        const int r1 = r0 | bit;
        double *re0 = re + r0 * d, *im0 = im + r0 * d;
        double *re1 = re + r1 * d, *im1 = im + r1 * d;
        int c = 0;
        for (; c + 4 <= d; c += 4) {
            const __m256d ar = _mm256_loadu_pd(re0 + c);
            const __m256d ai = _mm256_loadu_pd(im0 + c);
            const __m256d br = _mm256_loadu_pd(re1 + c);
            const __m256d bi = _mm256_loadu_pd(im1 + c);
            __m256d nr = _mm256_mul_pd(u0r, ar);
            nr = _mm256_fnmadd_pd(u0i, ai, nr);
            nr = _mm256_fmadd_pd(u1r, br, nr);
            nr = _mm256_fnmadd_pd(u1i, bi, nr);
            __m256d ni = _mm256_mul_pd(u0r, ai);
            ni = _mm256_fmadd_pd(u0i, ar, ni);
            ni = _mm256_fmadd_pd(u1r, bi, ni);
            ni = _mm256_fmadd_pd(u1i, br, ni);
            __m256d mr = _mm256_mul_pd(u2r, ar);
            mr = _mm256_fnmadd_pd(u2i, ai, mr);
            mr = _mm256_fmadd_pd(u3r, br, mr);
            mr = _mm256_fnmadd_pd(u3i, bi, mr);
            __m256d mi = _mm256_mul_pd(u2r, ai);
            mi = _mm256_fmadd_pd(u2i, ar, mi);
            mi = _mm256_fmadd_pd(u3r, bi, mi);
            mi = _mm256_fmadd_pd(u3i, br, mi);
            _mm256_storeu_pd(re0 + c, nr);
            _mm256_storeu_pd(im0 + c, ni);
            _mm256_storeu_pd(re1 + c, mr);
            _mm256_storeu_pd(im1 + c, mi);
        }
        for (; c < d; ++c) {
            const double are = re0[c], aim = im0[c];
            const double bre = re1[c], bim = im1[c];
            re0[c] = uRe[0] * are - uIm[0] * aim + uRe[1] * bre -
                     uIm[1] * bim;
            im0[c] = uRe[0] * aim + uIm[0] * are + uRe[1] * bim +
                     uIm[1] * bre;
            re1[c] = uRe[2] * are - uIm[2] * aim + uRe[3] * bre -
                     uIm[3] * bim;
            im1[c] = uRe[2] * aim + uIm[2] * are + uRe[3] * bim +
                     uIm[3] * bre;
        }
    }
}

void
apply2x2ColsAvx2(double *re, double *im, const double *uRe,
                 const double *uIm, int bit, int d)
{
    if (bit < 4) {
        // Below a run of 4 the pairs interleave inside one vector:
        // swap the blocks in register and blend the pair coefficients
        // per lane (a-lanes take u0/u2, b-lanes u3/u1). Rows shorter
        // than one vector stay scalar.
        if (d < 4) {
            apply2x2ColsRef(re, im, uRe, uIm, bit, d);
            return;
        }
        __m256d uAr, uAi, uBr, uBi;
        if (bit == 1) {  // b-lanes = odd lanes; blend imm is compile-time.
            uAr = _mm256_blend_pd(_mm256_set1_pd(uRe[0]),
                                  _mm256_set1_pd(uRe[3]), 0xA);
            uAi = _mm256_blend_pd(_mm256_set1_pd(uIm[0]),
                                  _mm256_set1_pd(uIm[3]), 0xA);
            uBr = _mm256_blend_pd(_mm256_set1_pd(uRe[2]),
                                  _mm256_set1_pd(uRe[1]), 0xA);
            uBi = _mm256_blend_pd(_mm256_set1_pd(uIm[2]),
                                  _mm256_set1_pd(uIm[1]), 0xA);
        } else {  // bit == 2: b-lanes = upper half.
            uAr = _mm256_blend_pd(_mm256_set1_pd(uRe[0]),
                                  _mm256_set1_pd(uRe[3]), 0xC);
            uAi = _mm256_blend_pd(_mm256_set1_pd(uIm[0]),
                                  _mm256_set1_pd(uIm[3]), 0xC);
            uBr = _mm256_blend_pd(_mm256_set1_pd(uRe[2]),
                                  _mm256_set1_pd(uRe[1]), 0xC);
            uBi = _mm256_blend_pd(_mm256_set1_pd(uIm[2]),
                                  _mm256_set1_pd(uIm[1]), 0xC);
        }
        for (int r = 0; r < d; ++r) {
            double *rowRe = re + r * d, *rowIm = im + r * d;
            for (int c = 0; c < d; c += 4) {
                const __m256d xr = _mm256_loadu_pd(rowRe + c);
                const __m256d xi = _mm256_loadu_pd(rowIm + c);
                const __m256d yr =
                    bit == 1 ? _mm256_permute_pd(xr, 0x5)
                             : _mm256_permute2f128_pd(xr, xr, 1);
                const __m256d yi =
                    bit == 1 ? _mm256_permute_pd(xi, 0x5)
                             : _mm256_permute2f128_pd(xi, xi, 1);
                __m256d nr = _mm256_mul_pd(xr, uAr);
                nr = _mm256_fnmadd_pd(xi, uAi, nr);
                nr = _mm256_fmadd_pd(yr, uBr, nr);
                nr = _mm256_fnmadd_pd(yi, uBi, nr);
                __m256d ni = _mm256_mul_pd(xr, uAi);
                ni = _mm256_fmadd_pd(xi, uAr, ni);
                ni = _mm256_fmadd_pd(yr, uBi, ni);
                ni = _mm256_fmadd_pd(yi, uBr, ni);
                _mm256_storeu_pd(rowRe + c, nr);
                _mm256_storeu_pd(rowIm + c, ni);
            }
        }
        return;
    }
    const __m256d u0r = _mm256_set1_pd(uRe[0]), u0i = _mm256_set1_pd(uIm[0]);
    const __m256d u1r = _mm256_set1_pd(uRe[1]), u1i = _mm256_set1_pd(uIm[1]);
    const __m256d u2r = _mm256_set1_pd(uRe[2]), u2i = _mm256_set1_pd(uIm[2]);
    const __m256d u3r = _mm256_set1_pd(uRe[3]), u3i = _mm256_set1_pd(uIm[3]);
    for (int r = 0; r < d; ++r) {
        double *rowRe = re + r * d, *rowIm = im + r * d;
        for (int base = 0; base < d; base += 2 * bit) {
            for (int c0 = base; c0 < base + bit; c0 += 4) {
                const __m256d ar = _mm256_loadu_pd(rowRe + c0);
                const __m256d ai = _mm256_loadu_pd(rowIm + c0);
                const __m256d br = _mm256_loadu_pd(rowRe + c0 + bit);
                const __m256d bi = _mm256_loadu_pd(rowIm + c0 + bit);
                __m256d nr = _mm256_mul_pd(ar, u0r);
                nr = _mm256_fnmadd_pd(ai, u0i, nr);
                nr = _mm256_fmadd_pd(br, u2r, nr);
                nr = _mm256_fnmadd_pd(bi, u2i, nr);
                __m256d ni = _mm256_mul_pd(ar, u0i);
                ni = _mm256_fmadd_pd(ai, u0r, ni);
                ni = _mm256_fmadd_pd(br, u2i, ni);
                ni = _mm256_fmadd_pd(bi, u2r, ni);
                __m256d mr = _mm256_mul_pd(ar, u1r);
                mr = _mm256_fnmadd_pd(ai, u1i, mr);
                mr = _mm256_fmadd_pd(br, u3r, mr);
                mr = _mm256_fnmadd_pd(bi, u3i, mr);
                __m256d mi = _mm256_mul_pd(ar, u1i);
                mi = _mm256_fmadd_pd(ai, u1r, mi);
                mi = _mm256_fmadd_pd(br, u3i, mi);
                mi = _mm256_fmadd_pd(bi, u3r, mi);
                _mm256_storeu_pd(rowRe + c0, nr);
                _mm256_storeu_pd(rowIm + c0, ni);
                _mm256_storeu_pd(rowRe + c0 + bit, mr);
                _mm256_storeu_pd(rowIm + c0 + bit, mi);
            }
        }
    }
}

void
foldWAvx2(const double *envRe, const double *envIm, const double (*u3Re)[4],
          const double (*u3Im)[4], int numQubits, int qubit, double *wRe,
          double *wIm)
{
    if (numQubits <= 1) {
        foldWRef(envRe, envIm, u3Re, u3Im, numQubits, qubit, wRe, wIm);
        return;
    }
    // Reduced Kronecker column over the spectator qubits, then four
    // contiguous bins of the environment, then four vector dots —
    // algebraically different from the reference triple loop, matched
    // to 1e-12 by the parity suite.
    constexpr int kQuad = (kDetailMaxDim / 2) * (kDetailMaxDim / 2);
    double gRe[kQuad], gIm[kQuad];
    int dq = 0;
    buildKronColumn(u3Re, u3Im, numQubits, qubit, gRe, gIm, &dq);
    const size_t n = static_cast<size_t>(dq) * static_cast<size_t>(dq);
    const int dim = 1 << numQubits;
    double binRe[kQuad], binIm[kQuad];
    for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
            gatherEnvBin(envRe, envIm, dim, qubit, a, b, binRe, binIm);
            dotSplitAvx2(gRe, gIm, binRe, binIm, n, &wRe[a * 2 + b],
                         &wIm[a * 2 + b]);
        }
    }
}

void
probeBatchAvx2(const double *wRe, const double *wIm, const double *u3Re,
               const double *u3Im, int count, double *outRe, double *outIm)
{
    const __m256d wr = _mm256_loadu_pd(wRe);
    const __m256d wi = _mm256_loadu_pd(wIm);
    for (int i = 0; i < count; ++i) {
        const __m256d ur = _mm256_loadu_pd(u3Re + i * 4);
        const __m256d ui = _mm256_loadu_pd(u3Im + i * 4);
        const __m256d tre =
            _mm256_fnmadd_pd(ui, wi, _mm256_mul_pd(ur, wr));
        const __m256d tim = _mm256_fmadd_pd(ui, wr, _mm256_mul_pd(ur, wi));
        outRe[i] = hsum(tre);
        outIm[i] = hsum(tim);
    }
}

/** (ur + i ui) . v for interleaved v, vs = re/im-swapped v. */
inline __m256d
cmulAvx2(double ur, double ui, __m256d v, __m256d vs)
{
    return _mm256_addsub_pd(_mm256_mul_pd(_mm256_set1_pd(ur), v),
                            _mm256_mul_pd(_mm256_set1_pd(ui), vs));
}

void
svApply1qAvx2(Complex *amps, size_t dim, int qubit, const Complex *u)
{
    const size_t mask = size_t{1} << qubit;
    if (qubit == 0 || dim < 4) {
        svApply1qRef(amps, dim, qubit, u);
        return;
    }
    double *p = reinterpret_cast<double *>(amps);
    for (size_t base = 0; base < dim; base += 2 * mask) {
        for (size_t off = 0; off < mask; off += 2) {
            const size_t i0 = base + off, i1 = i0 | mask;
            const __m256d a = _mm256_loadu_pd(p + 2 * i0);
            const __m256d b = _mm256_loadu_pd(p + 2 * i1);
            const __m256d as = _mm256_permute_pd(a, 0x5);
            const __m256d bs = _mm256_permute_pd(b, 0x5);
            const __m256d n0 = _mm256_add_pd(
                cmulAvx2(u[0].real(), u[0].imag(), a, as),
                cmulAvx2(u[1].real(), u[1].imag(), b, bs));
            const __m256d n1 = _mm256_add_pd(
                cmulAvx2(u[2].real(), u[2].imag(), a, as),
                cmulAvx2(u[3].real(), u[3].imag(), b, bs));
            _mm256_storeu_pd(p + 2 * i0, n0);
            _mm256_storeu_pd(p + 2 * i1, n1);
        }
    }
}

void
svApply2qAvx2(Complex *amps, size_t dim, int q0, int q1, const Complex *u)
{
    const size_t m0 = size_t{1} << q0, m1 = size_t{1} << q1;
    const size_t lo = m0 < m1 ? m0 : m1;
    const size_t hi = m0 < m1 ? m1 : m0;
    if (lo < 2) {
        svApply2qRef(amps, dim, q0, q1, u);
        return;
    }
    double *p = reinterpret_cast<double *>(amps);
    for (size_t h = 0; h < dim; h += 2 * hi) {
        for (size_t m = h; m < h + hi; m += 2 * lo) {
            for (size_t base = m; base < m + lo; base += 2) {
                const __m256d x0 = _mm256_loadu_pd(p + 2 * base);
                const __m256d x1 = _mm256_loadu_pd(p + 2 * (base + m0));
                const __m256d x2 = _mm256_loadu_pd(p + 2 * (base + m1));
                const __m256d x3 =
                    _mm256_loadu_pd(p + 2 * (base + m0 + m1));
                const __m256d s0 = _mm256_permute_pd(x0, 0x5);
                const __m256d s1 = _mm256_permute_pd(x1, 0x5);
                const __m256d s2 = _mm256_permute_pd(x2, 0x5);
                const __m256d s3 = _mm256_permute_pd(x3, 0x5);
                const size_t offs[4] = {base, base + m0, base + m1,
                                        base + m0 + m1};
                for (int row = 0; row < 4; ++row) {
                    const Complex *ur = u + row * 4;
                    __m256d acc = cmulAvx2(ur[0].real(), ur[0].imag(), x0,
                                           s0);
                    acc = _mm256_add_pd(
                        acc, cmulAvx2(ur[1].real(), ur[1].imag(), x1, s1));
                    acc = _mm256_add_pd(
                        acc, cmulAvx2(ur[2].real(), ur[2].imag(), x2, s2));
                    acc = _mm256_add_pd(
                        acc, cmulAvx2(ur[3].real(), ur[3].imag(), x3, s3));
                    _mm256_storeu_pd(p + 2 * offs[row], acc);
                }
            }
        }
    }
}

}  // namespace

const ComputeBackend &
avx2Backend()
{
    static const ComputeBackend backend = {
        "avx2",           matmulAvx2,       matmulDaggerAvx2,
        traceProductAvx2, traceConjDotAvx2, apply2x2RowsAvx2,
        apply2x2ColsAvx2, flipRowsRef,      flipColsRef,
        foldWAvx2,        probeBatchAvx2,   svApply1qAvx2,
        svApply2qAvx2,
    };
    return backend;
}

}  // namespace kernels
}  // namespace geyser

#endif  // x86
