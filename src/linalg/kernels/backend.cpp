/**
 * @file
 * Backend dispatch: picks the best compiled-in backend the host CPU
 * supports, once, at first use — overridable with GEYSER_BACKEND and,
 * for tests, ScopedBackend. Compiled with the default (portable)
 * flags; the only ISA-specific code it touches is behind the CPUID
 * checks below.
 *
 * GEYSER_HAVE_AVX2 / GEYSER_HAVE_AVX512 are defined by the build when
 * the corresponding TU is compiled in (x86-64 and the compiler accepts
 * the flags); on other architectures only the scalar backend exists.
 */
#include "linalg/kernels/backend.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>

namespace geyser {
namespace kernels {

#if defined(GEYSER_HAVE_AVX2)
const ComputeBackend &avx2Backend();
#endif
#if defined(GEYSER_HAVE_AVX512)
const ComputeBackend &avx512Backend();
#endif

namespace {

bool
hostSupportsAvx2()
{
#if defined(GEYSER_HAVE_AVX2)
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

bool
hostSupportsAvx512()
{
#if defined(GEYSER_HAVE_AVX512)
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512dq") &&
           __builtin_cpu_supports("avx512vl");
#else
    return false;
#endif
}

const ComputeBackend *
avx2OrNull()
{
#if defined(GEYSER_HAVE_AVX2)
    if (hostSupportsAvx2())
        return &avx2Backend();
#endif
    return nullptr;
}

const ComputeBackend *
avx512OrNull()
{
#if defined(GEYSER_HAVE_AVX512)
    if (hostSupportsAvx512())
        return &avx512Backend();
#endif
    return nullptr;
}

/** Best usable backend on this host (the "auto" resolution). */
const ComputeBackend *
bestBackend()
{
    if (const ComputeBackend *b = avx512OrNull())
        return b;
    if (const ComputeBackend *b = avx2OrNull())
        return b;
    return &scalarBackend();
}

/**
 * Resolve a name down the fallback chain. `honoured` reports whether
 * the exact request could be served ("auto"/unknown count as honoured
 * by the dispatch default).
 */
const ComputeBackend *
resolveOrFallback(const std::string &name, bool *honoured)
{
    bool exact = true;
    const ComputeBackend *backend = nullptr;
    if (name == "avx512") {
        backend = avx512OrNull();
        if (!backend) {
            exact = false;
            backend = avx2OrNull();
        }
    } else if (name == "avx2") {
        backend = avx2OrNull();
        if (!backend)
            exact = false;
    } else if (name == "scalar") {
        backend = &scalarBackend();
    }
    if (!backend)
        backend = name == "avx512" || name == "avx2" ? &scalarBackend()
                                                     : bestBackend();
    if (honoured)
        *honoured = exact;
    return backend;
}

std::atomic<const ComputeBackend *> &
activeSlot()
{
    static std::atomic<const ComputeBackend *> slot{nullptr};
    return slot;
}

std::string &
requestedSlot()
{
    static std::string requested;
    return requested;
}

std::once_flag &
initFlag()
{
    static std::once_flag flag;
    return flag;
}

void
initDispatch()
{
    const char *env = std::getenv("GEYSER_BACKEND");
    const std::string name = env && *env ? env : "auto";
    requestedSlot() = name;
    activeSlot().store(resolveOrFallback(name, nullptr),
                       std::memory_order_release);
}

void
ensureInit()
{
    std::call_once(initFlag(), initDispatch);
}

}  // namespace

const ComputeBackend &
active()
{
    ensureInit();
    return *activeSlot().load(std::memory_order_acquire);
}

const char *
activeName()
{
    return active().name;
}

const std::string &
requestedName()
{
    ensureInit();
    return requestedSlot();
}

const ComputeBackend &
resolveBackend(const std::string &name)
{
    return *resolveOrFallback(name, nullptr);
}

bool
setActive(const std::string &name)
{
    ensureInit();
    bool honoured = false;
    const ComputeBackend *backend = resolveOrFallback(name, &honoured);
    activeSlot().store(backend, std::memory_order_release);
    return honoured;
}

std::vector<BackendInfo>
availableBackends()
{
    std::vector<BackendInfo> out;
    {
        BackendInfo info;
        info.name = "avx512";
#if defined(GEYSER_HAVE_AVX512)
        info.compiled = true;
#endif
        info.supported = hostSupportsAvx512();
        info.backend = avx512OrNull();
        out.push_back(info);
    }
    {
        BackendInfo info;
        info.name = "avx2";
#if defined(GEYSER_HAVE_AVX2)
        info.compiled = true;
#endif
        info.supported = hostSupportsAvx2();
        info.backend = avx2OrNull();
        out.push_back(info);
    }
    {
        BackendInfo info;
        info.name = "scalar";
        info.compiled = true;
        info.supported = true;
        info.backend = &scalarBackend();
        out.push_back(info);
    }
    return out;
}

ScopedBackend::ScopedBackend(const std::string &name)
    : previous_(&active()), honoured_(setActive(name))
{
}

ScopedBackend::~ScopedBackend()
{
    activeSlot().store(previous_, std::memory_order_release);
}

}  // namespace kernels
}  // namespace geyser
