/**
 * @file
 * Portable reference implementations of every ComputeBackend kernel,
 * shared by the scalar backend and used as tail/small-dim fallbacks by
 * the SIMD translation units.
 *
 * Everything here lives in an ANONYMOUS namespace on purpose: each
 * backend TU is compiled with different -m flags, and a plain `inline`
 * function in a header would be emitted as one mergeable COMDAT — the
 * linker could keep the copy compiled with AVX-512 flags and hand it
 * to the scalar backend, crashing non-AVX hosts. Internal linkage
 * forces a private, correctly-flagged copy per TU. The functions are
 * still marked `inline` so unused copies don't warn.
 */
#ifndef GEYSER_LINALG_KERNELS_DETAIL_HPP
#define GEYSER_LINALG_KERNELS_DETAIL_HPP

#include <cstddef>

#include "common/types.hpp"

namespace geyser {
namespace kernels {
namespace {

/** Largest sub-dimension buildKronColumn/foldW stack buffers support. */
inline constexpr int kDetailMaxDim = 16;

/** out = a . b, d x d split-complex row-major. */
inline void
matmulRef(const double *aRe, const double *aIm, const double *bRe,
          const double *bIm, double *outRe, double *outIm, int d)
{
    for (int r = 0; r < d; ++r) {
        for (int c = 0; c < d; ++c) {
            double sre = 0.0, sim = 0.0;
            for (int k = 0; k < d; ++k) {
                const double xre = aRe[r * d + k], xim = aIm[r * d + k];
                const double yre = bRe[k * d + c], yim = bIm[k * d + c];
                sre += xre * yre - xim * yim;
                sim += xre * yim + xim * yre;
            }
            outRe[r * d + c] = sre;
            outIm[r * d + c] = sim;
        }
    }
}

/** out = a^dagger . b. */
inline void
matmulDaggerRef(const double *aRe, const double *aIm, const double *bRe,
                const double *bIm, double *outRe, double *outIm, int d)
{
    for (int r = 0; r < d; ++r) {
        for (int c = 0; c < d; ++c) {
            double sre = 0.0, sim = 0.0;
            for (int k = 0; k < d; ++k) {
                // conj(a(k, r)) * b(k, c).
                const double xre = aRe[k * d + r], xim = -aIm[k * d + r];
                const double yre = bRe[k * d + c], yim = bIm[k * d + c];
                sre += xre * yre - xim * yim;
                sim += xre * yim + xim * yre;
            }
            outRe[r * d + c] = sre;
            outIm[r * d + c] = sim;
        }
    }
}

/** Tr(a . b) = sum_{r,k} a(r,k) b(k,r). */
inline void
traceProductRef(const double *aRe, const double *aIm, const double *bRe,
                const double *bIm, int d, double *outRe, double *outIm)
{
    double tre = 0.0, tim = 0.0;
    for (int r = 0; r < d; ++r) {
        for (int k = 0; k < d; ++k) {
            const double xre = aRe[r * d + k], xim = aIm[r * d + k];
            const double yre = bRe[k * d + r], yim = bIm[k * d + r];
            tre += xre * yre - xim * yim;
            tim += xre * yim + xim * yre;
        }
    }
    *outRe = tre;
    *outIm = tim;
}

/** sum_i conj(t_i) u_i over n contiguous elements. */
inline void
traceConjDotRef(const double *tRe, const double *tIm, const double *uRe,
                const double *uIm, size_t n, double *outRe, double *outIm)
{
    double tre = 0.0, tim = 0.0;
    for (size_t i = 0; i < n; ++i) {
        tre += tRe[i] * uRe[i] + tIm[i] * uIm[i];
        tim += tRe[i] * uIm[i] - tIm[i] * uRe[i];
    }
    *outRe = tre;
    *outIm = tim;
}

/** M := (u on qubit bit) . M — row-pair 2x2 update. */
inline void
apply2x2RowsRef(double *re, double *im, const double *uRe,
                const double *uIm, int bit, int d)
{
    for (int r0 = 0; r0 < d; ++r0) {
        if (r0 & bit)
            continue;
        const int r1 = r0 | bit;
        for (int c = 0; c < d; ++c) {
            const double are = re[r0 * d + c], aim = im[r0 * d + c];
            const double bre = re[r1 * d + c], bim = im[r1 * d + c];
            re[r0 * d + c] =
                uRe[0] * are - uIm[0] * aim + uRe[1] * bre - uIm[1] * bim;
            im[r0 * d + c] =
                uRe[0] * aim + uIm[0] * are + uRe[1] * bim + uIm[1] * bre;
            re[r1 * d + c] =
                uRe[2] * are - uIm[2] * aim + uRe[3] * bre - uIm[3] * bim;
            im[r1 * d + c] =
                uRe[2] * aim + uIm[2] * are + uRe[3] * bim + uIm[3] * bre;
        }
    }
}

/** M := M . (u on qubit bit) — column-pair 2x2 update. */
inline void
apply2x2ColsRef(double *re, double *im, const double *uRe,
                const double *uIm, int bit, int d)
{
    for (int c0 = 0; c0 < d; ++c0) {
        if (c0 & bit)
            continue;
        const int c1 = c0 | bit;
        for (int r = 0; r < d; ++r) {
            const double are = re[r * d + c0], aim = im[r * d + c0];
            const double bre = re[r * d + c1], bim = im[r * d + c1];
            re[r * d + c0] =
                are * uRe[0] - aim * uIm[0] + bre * uRe[2] - bim * uIm[2];
            im[r * d + c0] =
                are * uIm[0] + aim * uRe[0] + bre * uIm[2] + bim * uRe[2];
            re[r * d + c1] =
                are * uRe[1] - aim * uIm[1] + bre * uRe[3] - bim * uIm[3];
            im[r * d + c1] =
                are * uIm[1] + aim * uRe[1] + bre * uIm[3] + bim * uRe[3];
        }
    }
}

inline void
flipRowsRef(double *re, double *im, int mask, int d)
{
    for (int r = 0; r < d; ++r) {
        if ((r & mask) != mask)
            continue;
        for (int c = 0; c < d; ++c) {
            re[r * d + c] = -re[r * d + c];
            im[r * d + c] = -im[r * d + c];
        }
    }
}

inline void
flipColsRef(double *re, double *im, int mask, int d)
{
    for (int c = 0; c < d; ++c) {
        if ((c & mask) != mask)
            continue;
        for (int r = 0; r < d; ++r) {
            re[r * d + c] = -re[r * d + c];
            im[r * d + c] = -im[r * d + c];
        }
    }
}

/**
 * Direct O(dim^2 n) environment fold — the readable reference. SIMD
 * backends use the algebraically different reduced-Kronecker route
 * below; the cross-backend parity suite pins the two to 1e-12.
 */
inline void
foldWRef(const double *envRe, const double *envIm, const double (*u3Re)[4],
         const double (*u3Im)[4], int numQubits, int qubit, double *wRe,
         double *wIm)
{
    const int d = 1 << numQubits;
    for (int i = 0; i < 4; ++i) {
        wRe[i] = 0.0;
        wIm[i] = 0.0;
    }
    for (int k = 0; k < d; ++k) {
        for (int r = 0; r < d; ++r) {
            double fre = 1.0, fim = 0.0;
            for (int p = 0; p < numQubits; ++p) {
                if (p == qubit)
                    continue;
                const int e = ((k >> p) & 1) * 2 + ((r >> p) & 1);
                const double ure = u3Re[p][e];
                const double uim = u3Im[p][e];
                const double nre = fre * ure - fim * uim;
                fim = fre * uim + fim * ure;
                fre = nre;
            }
            const double ere = envRe[r * d + k], eim = envIm[r * d + k];
            const int idx = ((k >> qubit) & 1) * 2 + ((r >> qubit) & 1);
            wRe[idx] += fre * ere - fim * eim;
            wIm[idx] += fre * eim + fim * ere;
        }
    }
}

/** out[i] = sum_j u3[i*4+j] . w[j]. */
inline void
probeBatchRef(const double *wRe, const double *wIm, const double *u3Re,
              const double *u3Im, int count, double *outRe, double *outIm)
{
    for (int i = 0; i < count; ++i) {
        double tre = 0.0, tim = 0.0;
        for (int j = 0; j < 4; ++j) {
            const double ure = u3Re[i * 4 + j], uim = u3Im[i * 4 + j];
            tre += ure * wRe[j] - uim * wIm[j];
            tim += ure * wIm[j] + uim * wRe[j];
        }
        outRe[i] = tre;
        outIm[i] = tim;
    }
}

/** Statevector 1-qubit gate, interleaved complex. */
inline void
svApply1qRef(Complex *amps, size_t dim, int qubit, const Complex *u)
{
    const size_t mask = size_t{1} << qubit;
    for (size_t base = 0; base < dim; base += 2 * mask) {
        for (size_t off = 0; off < mask; ++off) {
            const size_t i0 = base + off, i1 = i0 | mask;
            const Complex a0 = amps[i0], a1 = amps[i1];
            amps[i0] = u[0] * a0 + u[1] * a1;
            amps[i1] = u[2] * a0 + u[3] * a1;
        }
    }
}

/** Statevector 2-qubit gate; matrix bit 0 = q0, bit 1 = q1. */
inline void
svApply2qRef(Complex *amps, size_t dim, int q0, int q1, const Complex *u)
{
    const size_t m0 = size_t{1} << q0, m1 = size_t{1} << q1;
    const size_t lo = m0 < m1 ? m0 : m1;
    const size_t hi = m0 < m1 ? m1 : m0;
    for (size_t h = 0; h < dim; h += 2 * hi) {
        for (size_t m = h; m < h + hi; m += 2 * lo) {
            for (size_t base = m; base < m + lo; ++base) {
                const Complex x0 = amps[base];
                const Complex x1 = amps[base + m0];
                const Complex x2 = amps[base + m1];
                const Complex x3 = amps[base + m0 + m1];
                amps[base] = u[0] * x0 + u[1] * x1 + u[2] * x2 + u[3] * x3;
                amps[base + m0] =
                    u[4] * x0 + u[5] * x1 + u[6] * x2 + u[7] * x3;
                amps[base + m1] =
                    u[8] * x0 + u[9] * x1 + u[10] * x2 + u[11] * x3;
                amps[base + m0 + m1] =
                    u[12] * x0 + u[13] * x1 + u[14] * x2 + u[15] * x3;
            }
        }
    }
}

/**
 * Kronecker column build (see backend.hpp docs for the convention):
 * out(r, k) = prod_{p != skipQubit} u3_p[r_p * 2 + k_p], built by
 * in-place progressive doubling. Descending destination order is
 * alias-safe: every source cell (rr*d + kk) is <= the smallest
 * destination that reads it (rr*2d + kk).
 */
inline void
buildKronColumn(const double (*u3Re)[4], const double (*u3Im)[4],
                int numQubits, int skipQubit, double *outRe, double *outIm,
                int *outDim)
{
    outRe[0] = 1.0;
    outIm[0] = 0.0;
    int d = 1;
    for (int p = 0; p < numQubits; ++p) {
        if (p == skipQubit)
            continue;
        const double *ure = u3Re[p], *uim = u3Im[p];
        const int d2 = 2 * d;
        for (int row = d2 - 1; row >= 0; --row) {
            const int rb = row >= d ? 1 : 0;
            const int rr = row - rb * d;
            for (int col = d2 - 1; col >= 0; --col) {
                const int kb = col >= d ? 1 : 0;
                const int kk = col - kb * d;
                const double fre = ure[rb * 2 + kb];
                const double fim = uim[rb * 2 + kb];
                const double gre = outRe[rr * d + kk];
                const double gim = outIm[rr * d + kk];
                outRe[row * d2 + col] = fre * gre - fim * gim;
                outIm[row * d2 + col] = fre * gim + fim * gre;
            }
        }
        d = d2;
    }
    *outDim = d;
}

/**
 * Gather one (a = k_q, b = r_q) bin of the environment into a
 * contiguous dq x dq buffer transposed to align with buildKronColumn:
 * out(kk, rr) = env(expand(rr, b), expand(kk, a)), so that
 * W[a*2+b] = sum out .* G elementwise (complex, no conjugation).
 */
inline void
gatherEnvBin(const double *envRe, const double *envIm, int dim, int qubit,
             int a, int b, double *outRe, double *outIm)
{
    const int qbit = 1 << qubit;
    const int low = qbit - 1;
    const int dq = dim / 2;
    for (int kk = 0; kk < dq; ++kk) {
        const int k = ((kk & ~low) << 1) | (kk & low) | (a != 0 ? qbit : 0);
        for (int rr = 0; rr < dq; ++rr) {
            const int r =
                ((rr & ~low) << 1) | (rr & low) | (b != 0 ? qbit : 0);
            outRe[kk * dq + rr] = envRe[r * dim + k];
            outIm[kk * dq + rr] = envIm[r * dim + k];
        }
    }
}

}  // namespace
}  // namespace kernels
}  // namespace geyser

#endif  // GEYSER_LINALG_KERNELS_DETAIL_HPP
