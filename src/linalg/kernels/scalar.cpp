/**
 * @file
 * The portable scalar backend: wires the reference implementations
 * from detail.hpp into a ComputeBackend table. Always compiled, on
 * every architecture, with no ISA-specific flags — this TU's copies of
 * the detail kernels are the 1e-12 oracle every SIMD backend is
 * property-tested against.
 */
#include "linalg/kernels/backend.hpp"
#include "linalg/kernels/detail.hpp"

namespace geyser {
namespace kernels {

const ComputeBackend &
scalarBackend()
{
    static const ComputeBackend backend = {
        "scalar",        matmulRef,       matmulDaggerRef, traceProductRef,
        traceConjDotRef, apply2x2RowsRef, apply2x2ColsRef, flipRowsRef,
        flipColsRef,     foldWRef,        probeBatchRef,   svApply1qRef,
        svApply2qRef,
    };
    return backend;
}

}  // namespace kernels
}  // namespace geyser
