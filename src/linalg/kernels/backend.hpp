/**
 * @file
 * Pluggable SIMD compute backends for the composition and simulation
 * hot paths.
 *
 * Every split-complex inner loop that used to be hand-rolled in
 * compose/evaluator.cpp, compose/ansatz.cpp, and sim/statevector.cpp
 * now routes through one `ComputeBackend` — a table of free functions
 * over split-complex (SoA: separate re/im arrays) row-major buffers.
 * Three implementations are compiled in (host permitting):
 *
 *   scalar   portable reference loops, always available. This backend
 *            doubles as the correctness oracle: every other backend is
 *            property-tested against it to 1e-12, and the dense
 *            Ansatz::overlapTrace path is pinned to it so the oracle
 *            never moves when dispatch changes.
 *   avx2     256-bit AVX2+FMA kernels (4 doubles / lane group).
 *   avx512   512-bit AVX-512F/DQ/VL kernels (8 doubles / lane group).
 *
 * The active backend is chosen once, at first use, by CPUID runtime
 * dispatch (best compiled-in ISA the host supports), overridable with
 *
 *   GEYSER_BACKEND=scalar|avx2|avx512
 *
 * for debugging and CI. Requesting an ISA the host or build lacks
 * falls back down the chain (avx512 -> avx2 -> scalar); the requested
 * and resolved names are both observable (run reports, Prometheus
 * `geyser_backend_info`, geyserd `stats`). SIMD translation units are
 * compiled with per-file -m flags and are only ever entered through
 * the dispatch table after the CPUID check, so the default build runs
 * on any x86-64 host (and non-x86 builds compile the scalar backend
 * only).
 *
 * All kernels accept unaligned pointers (unaligned loads/stores
 * throughout), so callers may pass arbitrarily offset buffers; aligned
 * buffers are simply faster.
 */
#ifndef GEYSER_LINALG_KERNELS_BACKEND_HPP
#define GEYSER_LINALG_KERNELS_BACKEND_HPP

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace geyser {
namespace kernels {

/**
 * One compute backend: free functions over split-complex row-major
 * d x d buffers (plus two interleaved-complex statevector kernels).
 * Out buffers never alias inputs unless a function documents
 * otherwise. All functions tolerate unaligned pointers.
 */
struct ComputeBackend
{
    const char *name;

    /** out = a . b (d x d complex multiply; 8x8/16x16 are the hot dims). */
    void (*matmul)(const double *aRe, const double *aIm, const double *bRe,
                   const double *bIm, double *outRe, double *outIm, int d);

    /** out = a^dagger . b (conjugate-transposed left operand). */
    void (*matmulDagger)(const double *aRe, const double *aIm,
                         const double *bRe, const double *bIm,
                         double *outRe, double *outIm, int d);

    /** Tr(a . b) = sum_{r,k} a(r,k) b(k,r). Requires d <= kMaxTraceDim. */
    void (*traceProduct)(const double *aRe, const double *aIm,
                         const double *bRe, const double *bIm, int d,
                         double *outRe, double *outIm);

    /**
     * sum_i conj(t_i) u_i over n contiguous elements — the dagger-trace
     * contraction Tr(T^dagger U) for same-layout matrices (n = d*d).
     */
    void (*traceConjDot)(const double *tRe, const double *tIm,
                         const double *uRe, const double *uIm, size_t n,
                         double *outRe, double *outIm);

    /**
     * M := (u on qubit `bit`) . M — the row-pair 2x2 update used to
     * apply one qubit of a U3 column from the left. `u` is a row-major
     * 2x2 (4 split entries); rows r0 / r0|bit are combined in place.
     */
    void (*apply2x2Rows)(double *re, double *im, const double *uRe,
                         const double *uIm, int bit, int d);

    /** M := M . (u on qubit `bit`) — the column-pair mirror. */
    void (*apply2x2Cols)(double *re, double *im, const double *uRe,
                         const double *uIm, int bit, int d);

    /** Negate rows r with (r & mask) == mask (diagonal entangler fold). */
    void (*flipRows)(double *re, double *im, int mask, int d);

    /** Negate columns c with (c & mask) == mask. */
    void (*flipCols)(double *re, double *im, int mask, int d);

    /**
     * Environment fold of the incremental evaluator:
     *
     *   W[a*2+b] = sum_{k_q=a, r_q=b} env(r,k) . prod_{p!=q} u3_p[k_p,r_p]
     *
     * over a dim x dim row-major env with dim = 1 << numQubits.
     * `u3Re`/`u3Im` index as [qubit][entry] (row-major 2x2 per qubit).
     * Writes the 4 split accumulators to wRe/wIm.
     */
    void (*foldW)(const double *envRe, const double *envIm,
                  const double (*u3Re)[4], const double (*u3Im)[4],
                  int numQubits, int qubit, double *wRe, double *wIm);

    /**
     * Batched probe contraction: out[i] = sum_j u3[i*4+j] . w[j] for
     * i in [0, count) — a contiguous SoA sweep over a rotosolve probe
     * group (the candidate U3s are packed count x 4, split).
     */
    void (*probeBatch)(const double *wRe, const double *wIm,
                       const double *u3Re, const double *u3Im, int count,
                       double *outRe, double *outIm);

    /**
     * Statevector one-qubit gate: amps (interleaved complex, length
     * dim) updated in place with the row-major 2x2 `u` on `qubit`.
     */
    void (*svApply1q)(Complex *amps, size_t dim, int qubit,
                      const Complex *u);

    /**
     * Statevector two-qubit gate: row-major 4x4 `u` applied on qubits
     * (q0, q1), q0 = matrix bit 0, q1 = matrix bit 1, q0 != q1 (any
     * order, unsorted).
     */
    void (*svApply2q)(Complex *amps, size_t dim, int q0, int q1,
                      const Complex *u);
};

/** traceProduct transposes its right operand on the stack; cap it. */
inline constexpr int kMaxTraceDim = 64;

/** One row of the availableBackends() listing. */
struct BackendInfo
{
    std::string name;
    bool compiled = false;   ///< TU built into this binary.
    bool supported = false;  ///< Host CPU can execute it.
    const ComputeBackend *backend = nullptr;  ///< Null unless usable.
};

/** The always-available portable reference backend. */
const ComputeBackend &scalarBackend();

/**
 * The reference oracle alias: fixed scalar implementations that dense
 * cross-check paths (Ansatz::overlapTrace) are pinned to, so the
 * oracle's arithmetic never changes when dispatch selects a SIMD
 * backend.
 */
inline const ComputeBackend &reference() { return scalarBackend(); }

/** Every known backend name, best first: avx512, avx2, scalar. */
std::vector<BackendInfo> availableBackends();

/**
 * The dispatched backend: resolved once at first use from
 * GEYSER_BACKEND or CPUID, then read lock-free. Thread-safe.
 */
const ComputeBackend &active();

/** Name of the active backend ("scalar", "avx2", "avx512"). */
const char *activeName();

/**
 * What was asked for: the GEYSER_BACKEND value at first resolution, or
 * "auto" when unset. May differ from activeName() after a fallback.
 */
const std::string &requestedName();

/**
 * Resolve a backend by name with the documented fallback chain
 * (avx512 -> avx2 -> scalar; unknown names resolve to the dispatch
 * default). Returns the backend that would actually run.
 */
const ComputeBackend &resolveBackend(const std::string &name);

/**
 * Force the active backend (tests / debugging). Returns false — and
 * activates the fallback — when the exact request cannot be honoured.
 * Not safe concurrently with in-flight compiles; intended for
 * single-threaded test sections via ScopedBackend.
 */
bool setActive(const std::string &name);

/** RAII backend override for tests; restores the previous backend. */
class ScopedBackend
{
  public:
    explicit ScopedBackend(const std::string &name);
    ~ScopedBackend();
    ScopedBackend(const ScopedBackend &) = delete;
    ScopedBackend &operator=(const ScopedBackend &) = delete;

    /** True if the exact named backend was activated (no fallback). */
    bool honoured() const { return honoured_; }

  private:
    const ComputeBackend *previous_;
    bool honoured_;
};

/**
 * Shared U3 entry builder (row-major 2x2, split):
 *
 *   [ cos(th/2)            , -e^{i la} sin(th/2)      ]
 *   [ e^{i ph} sin(th/2)   ,  e^{i (ph+la)} cos(th/2) ]
 *
 * The one definition the evaluator, the dense oracle, and the
 * transpile layer's matrix builder agree on.
 */
inline void
u3Entries(double theta, double phi, double lambda, double *re, double *im)
{
    const double c = std::cos(theta / 2.0), s = std::sin(theta / 2.0);
    const double cp = std::cos(phi), sp = std::sin(phi);
    const double cl = std::cos(lambda), sl = std::sin(lambda);
    re[0] = c;
    im[0] = 0.0;
    re[1] = -cl * s;
    im[1] = -sl * s;
    re[2] = cp * s;
    im[2] = sp * s;
    re[3] = (cp * cl - sp * sl) * c;
    im[3] = (cp * sl + sp * cl) * c;
}

/**
 * Same U3 entries from precomputed trig values (cos/sin of th/2, ph,
 * la) — the evaluator's probe path caches the two fixed roles' trig
 * and only recomputes the varied role's.
 */
inline void
u3EntriesFromTrig(double c, double s, double cp, double sp, double cl,
                  double sl, double *re, double *im)
{
    re[0] = c;
    im[0] = 0.0;
    re[1] = -cl * s;
    im[1] = -sl * s;
    re[2] = cp * s;
    im[2] = sp * s;
    re[3] = (cp * cl - sp * sl) * c;
    im[3] = (cp * sl + sp * cl) * c;
}

}  // namespace kernels
}  // namespace geyser

#endif  // GEYSER_LINALG_KERNELS_BACKEND_HPP
