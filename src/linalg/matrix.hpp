/**
 * @file
 * Dense complex matrix used for gate unitaries and small-circuit unitaries.
 *
 * Dimensions in this library are small (2x2 for one-qubit gates up to a
 * few thousand for whole-circuit unitaries of <= ~10 qubits), so a plain
 * row-major dense representation is the right tool.
 */
#ifndef GEYSER_LINALG_MATRIX_HPP
#define GEYSER_LINALG_MATRIX_HPP

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace geyser {

/**
 * Row-major dense complex matrix with the operations needed for quantum
 * circuit manipulation: multiplication, Kronecker product, conjugate
 * transpose, trace, and unitarity / equivalence checks.
 */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** Zero-initialized rows x cols matrix. */
    Matrix(int rows, int cols);

    /** Construct from nested initializer lists (row by row). */
    Matrix(std::initializer_list<std::initializer_list<Complex>> rows);

    /** n x n identity. */
    static Matrix identity(int n);

    /** Diagonal matrix from the given entries. */
    static Matrix diagonal(const std::vector<Complex> &entries);

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    /** Element access (no bounds check in release builds). */
    Complex &operator()(int r, int c) { return data_[index(r, c)]; }
    const Complex &operator()(int r, int c) const { return data_[index(r, c)]; }

    /** Raw storage (row-major). */
    const std::vector<Complex> &data() const { return data_; }
    std::vector<Complex> &data() { return data_; }

    Matrix operator*(const Matrix &rhs) const;
    Matrix operator*(Complex scalar) const;
    Matrix operator+(const Matrix &rhs) const;
    Matrix operator-(const Matrix &rhs) const;

    /** Conjugate transpose. */
    Matrix dagger() const;

    /** Kronecker (tensor) product: this (x) rhs. */
    Matrix kron(const Matrix &rhs) const;

    /** Sum of diagonal entries. Requires a square matrix. */
    Complex trace() const;

    /** Frobenius norm. */
    double frobeniusNorm() const;

    /** Max |a_ij - b_ij| between two same-shape matrices. */
    double maxAbsDiff(const Matrix &rhs) const;

    /** True if U U^dagger = I within tol (entrywise). */
    bool isUnitary(double tol = 1e-9) const;

    /**
     * True if the two matrices are equal up to a global phase, i.e.
     * |Tr(A^dagger B)| = dim within tol. Both must be unitary for this
     * test to be meaningful.
     */
    bool equalsUpToPhase(const Matrix &rhs, double tol = 1e-9) const;

    /** Human-readable form for debugging and test failure messages. */
    std::string toString(int precision = 3) const;

  private:
    size_t index(int r, int c) const
    {
        return static_cast<size_t>(r) * static_cast<size_t>(cols_) +
               static_cast<size_t>(c);
    }

    int rows_ = 0;
    int cols_ = 0;
    std::vector<Complex> data_;
};

/**
 * Hilbert-Schmidt distance between two same-dimension unitaries:
 * 1 - |Tr(U1^dagger U2)| / dim. In [0, 1]; 0 means equal up to global
 * phase. This is the composition metric of the paper (Sec 2.3).
 */
double hilbertSchmidtDistance(const Matrix &u1, const Matrix &u2);

}  // namespace geyser

#endif  // GEYSER_LINALG_MATRIX_HPP
