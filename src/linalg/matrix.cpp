#include "linalg/matrix.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "linalg/kernels/backend.hpp"

namespace geyser {

Matrix::Matrix(int rows, int cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows) * static_cast<size_t>(cols))
{
    assert(rows >= 0 && cols >= 0);
}

Matrix::Matrix(std::initializer_list<std::initializer_list<Complex>> rows)
{
    rows_ = static_cast<int>(rows.size());
    cols_ = rows_ > 0 ? static_cast<int>(rows.begin()->size()) : 0;
    data_.reserve(static_cast<size_t>(rows_) * static_cast<size_t>(cols_));
    for (const auto &row : rows) {
        if (static_cast<int>(row.size()) != cols_)
            throw std::invalid_argument("Matrix: ragged initializer list");
        for (const auto &v : row)
            data_.push_back(v);
    }
}

Matrix
Matrix::identity(int n)
{
    Matrix m(n, n);
    for (int i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

Matrix
Matrix::diagonal(const std::vector<Complex> &entries)
{
    int n = static_cast<int>(entries.size());
    Matrix m(n, n);
    for (int i = 0; i < n; ++i)
        m(i, i) = entries[static_cast<size_t>(i)];
    return m;
}

Matrix
Matrix::operator*(const Matrix &rhs) const
{
    if (cols_ != rhs.rows_)
        throw std::invalid_argument("Matrix multiply: shape mismatch");

    // Dense square products route through the dispatched SIMD backend.
    // The zero-skip loop below stays: circuit-unitary expansion
    // multiplies mostly-zero gate embeddings, where skipping beats
    // vectorizing. 25% non-zero is the crossover gate.
    if (rows_ == cols_ && rhs.rows_ == rhs.cols_ && rows_ >= 8) {
        size_t nonZero = 0;
        for (const auto &v : data_)
            if (v != Complex{})
                ++nonZero;
        if (nonZero * 4 > data_.size()) {
            const size_t n = data_.size();
            std::vector<double> split(6 * n);
            double *aRe = split.data(), *aIm = aRe + n;
            double *bRe = aIm + n, *bIm = bRe + n;
            double *oRe = bIm + n, *oIm = oRe + n;
            for (size_t i = 0; i < n; ++i) {
                aRe[i] = data_[i].real();
                aIm[i] = data_[i].imag();
                bRe[i] = rhs.data_[i].real();
                bIm[i] = rhs.data_[i].imag();
            }
            kernels::active().matmul(aRe, aIm, bRe, bIm, oRe, oIm, rows_);
            Matrix out(rows_, cols_);
            for (size_t i = 0; i < n; ++i)
                out.data_[i] = {oRe[i], oIm[i]};
            return out;
        }
    }

    Matrix out(rows_, rhs.cols_);
    for (int i = 0; i < rows_; ++i) {
        for (int k = 0; k < cols_; ++k) {
            const Complex a = (*this)(i, k);
            if (a == Complex{})
                continue;
            for (int j = 0; j < rhs.cols_; ++j)
                out(i, j) += a * rhs(k, j);
        }
    }
    return out;
}

Matrix
Matrix::operator*(Complex scalar) const
{
    Matrix out = *this;
    for (auto &v : out.data_)
        v *= scalar;
    return out;
}

Matrix
Matrix::operator+(const Matrix &rhs) const
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        throw std::invalid_argument("Matrix add: shape mismatch");
    Matrix out = *this;
    for (size_t i = 0; i < data_.size(); ++i)
        out.data_[i] += rhs.data_[i];
    return out;
}

Matrix
Matrix::operator-(const Matrix &rhs) const
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        throw std::invalid_argument("Matrix subtract: shape mismatch");
    Matrix out = *this;
    for (size_t i = 0; i < data_.size(); ++i)
        out.data_[i] -= rhs.data_[i];
    return out;
}

Matrix
Matrix::dagger() const
{
    Matrix out(cols_, rows_);
    for (int i = 0; i < rows_; ++i)
        for (int j = 0; j < cols_; ++j)
            out(j, i) = std::conj((*this)(i, j));
    return out;
}

Matrix
Matrix::kron(const Matrix &rhs) const
{
    Matrix out(rows_ * rhs.rows_, cols_ * rhs.cols_);
    for (int i = 0; i < rows_; ++i) {
        for (int j = 0; j < cols_; ++j) {
            const Complex a = (*this)(i, j);
            if (a == Complex{})
                continue;
            for (int p = 0; p < rhs.rows_; ++p)
                for (int q = 0; q < rhs.cols_; ++q)
                    out(i * rhs.rows_ + p, j * rhs.cols_ + q) = a * rhs(p, q);
        }
    }
    return out;
}

Complex
Matrix::trace() const
{
    if (rows_ != cols_)
        throw std::invalid_argument("Matrix trace: not square");
    Complex t{};
    for (int i = 0; i < rows_; ++i)
        t += (*this)(i, i);
    return t;
}

double
Matrix::frobeniusNorm() const
{
    double s = 0.0;
    for (const auto &v : data_)
        s += std::norm(v);
    return std::sqrt(s);
}

double
Matrix::maxAbsDiff(const Matrix &rhs) const
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        throw std::invalid_argument("maxAbsDiff: shape mismatch");
    double m = 0.0;
    for (size_t i = 0; i < data_.size(); ++i)
        m = std::max(m, std::abs(data_[i] - rhs.data_[i]));
    return m;
}

bool
Matrix::isUnitary(double tol) const
{
    if (rows_ != cols_)
        return false;
    const Matrix prod = (*this) * dagger();
    return prod.maxAbsDiff(identity(rows_)) <= tol;
}

bool
Matrix::equalsUpToPhase(const Matrix &rhs, double tol) const
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_ || rows_ != cols_)
        return false;
    return hilbertSchmidtDistance(*this, rhs) <= tol;
}

std::string
Matrix::toString(int precision) const
{
    std::string out;
    char buf[64];
    for (int i = 0; i < rows_; ++i) {
        out += "[ ";
        for (int j = 0; j < cols_; ++j) {
            const Complex v = (*this)(i, j);
            std::snprintf(buf, sizeof(buf), "%.*f%+.*fi ", precision,
                          v.real(), precision, v.imag());
            out += buf;
        }
        out += "]\n";
    }
    return out;
}

double
hilbertSchmidtDistance(const Matrix &u1, const Matrix &u2)
{
    if (u1.rows() != u2.rows() || u1.cols() != u2.cols())
        throw std::invalid_argument("HSD: shape mismatch");
    // Tr(U1^dagger U2) without forming the product matrix.
    Complex t{};
    for (int i = 0; i < u1.rows(); ++i)
        for (int j = 0; j < u1.cols(); ++j)
            t += std::conj(u1(i, j)) * u2(i, j);
    return 1.0 - std::abs(t) / static_cast<double>(u1.rows());
}

}  // namespace geyser
