#include "service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>

#include "cache/result_cache.hpp"
#include "linalg/kernels/backend.hpp"
#include "obs/obs.hpp"
#include "obs/prometheus.hpp"
#include "service/service.hpp"

namespace geyser {
namespace service {

namespace {

std::string
fixed3(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

/** "tcp:<ip>:<port>" / "unix" identity of the connected client, for
 *  the access log. Best effort; empty on getpeername failure. */
std::string
peerName(int fd)
{
    sockaddr_storage addr{};
    socklen_t len = sizeof(addr);
    if (::getpeername(fd, reinterpret_cast<sockaddr *>(&addr), &len) != 0)
        return "";
    char host[INET6_ADDRSTRLEN] = {0};
    if (addr.ss_family == AF_INET) {
        const auto *in = reinterpret_cast<const sockaddr_in *>(&addr);
        ::inet_ntop(AF_INET, &in->sin_addr, host, sizeof(host));
        return std::string("tcp:") + host + ":" +
               std::to_string(ntohs(in->sin_port));
    }
    if (addr.ss_family == AF_INET6) {
        const auto *in6 = reinterpret_cast<const sockaddr_in6 *>(&addr);
        ::inet_ntop(AF_INET6, &in6->sin6_addr, host, sizeof(host));
        return std::string("tcp:") + host + ":" +
               std::to_string(ntohs(in6->sin6_port));
    }
    return "unix";
}

Response
errorResponse(const std::exception &e)
{
    if (dynamic_cast<const UnavailableError *>(&e) != nullptr)
        return Response::error(kErrUnavailable, 503, e.what());
    if (const auto *err = dynamic_cast<const Error *>(&e))
        return Response::error(wireErrorKind(err->kind()),
                               wireErrorCode(err->kind()), e.what());
    return Response::error("internal", 500, e.what());
}

}  // namespace

SocketServer::SocketServer(CompileService &service, ServerConfig config)
    : service_(service), config_(std::move(config))
{
}

SocketServer::~SocketServer()
{
    stop();
}

void
SocketServer::start()
{
    if (!config_.unixPath.empty())
        listener_ = listenUnix(config_.unixPath, config_.backlog);
    else
        listener_ = listenTcp(config_.tcpPort, config_.backlog, &port_);
    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
SocketServer::stop()
{
    if (stopping_.exchange(true))
        return;
    // shutdown() wakes the thread blocked in accept() (close() alone
    // does not on Linux); shutting the connection fds likewise fails
    // their blocking recv()s.
    if (listener_.valid())
        ::shutdown(listener_.get(), SHUT_RDWR);
    listener_.close();
    if (!config_.unixPath.empty())
        ::unlink(config_.unixPath.c_str());
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (const int fd : connFds_)
            ::shutdown(fd, SHUT_RDWR);
        threads.swap(connThreads_);
    }
    if (acceptThread_.joinable())
        acceptThread_.join();
    for (auto &t : threads)
        if (t.joinable())
            t.join();
}

void
SocketServer::acceptLoop()
{
    obs::setThreadName("geyserd-accept");
    while (!stopping_.load()) {
        const int fd = ::accept(listener_.get(), nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load())
                break;
            continue;  // EINTR / transient accept failure.
        }
        std::lock_guard<std::mutex> lock(connMutex_);
        if (stopping_.load()) {
            ::close(fd);
            break;
        }
        connFds_.push_back(fd);
        connThreads_.emplace_back([this, fd] { serveConnection(fd); });
    }
}

void
SocketServer::serveConnection(int fd)
{
    static obs::Counter &requests = obs::serviceCounter("service.requests");
    static obs::Counter &connErrors =
        obs::serviceCounter("service.conn_error");
    obs::setThreadName("geyserd-conn");
    Fd owned(fd);
    const std::string peer = peerName(fd);

    try {
        SocketReader reader(fd);
        for (;;) {
            const auto line = reader.readLine(kMaxHeaderBytes);
            if (!line)
                break;  // Client closed between frames.
            requests.add();
            Response response;
            bool closeAfter = false;
            try {
                Frame<Request> frame = parseRequestHeader(*line);
                if (frame.hasPayload) {
                    std::string payload =
                        reader.readExact(frame.payloadBytes + 1);
                    if (payload.back() != '\n') {
                        SourceContext ctx;
                        ctx.source = "protocol";
                        throw ParseError(ctx,
                                         "missing payload terminator");
                    }
                    payload.pop_back();
                    frame.message.qasm = std::move(payload);
                }
                response = handle(frame.message, &closeAfter, peer);
            } catch (const ParseError &e) {
                // The stream cannot be resynchronised after a framing
                // error — reply, then drop the connection.
                response = errorResponse(e);
                closeAfter = true;
            } catch (const std::exception &e) {
                response = errorResponse(e);
            }
            writeAll(fd, encodeResponse(response));
            if (shutdownPending_.load() &&
                !shutdownSignalled_.exchange(true) &&
                config_.onShutdownRequest != nullptr)
                config_.onShutdownRequest();
            if (closeAfter)
                break;
        }
    } catch (const std::exception &) {
        // Torn connection (IoError) or an encode bug: drop the client,
        // never the daemon.
        connErrors.add();
    }

    std::lock_guard<std::mutex> lock(connMutex_);
    for (auto it = connFds_.begin(); it != connFds_.end(); ++it) {
        if (*it == fd) {
            connFds_.erase(it);
            break;
        }
    }
}

Response
SocketServer::handle(const Request &request, bool *closeConnection,
                     const std::string &peer)
{
    Response response;
    switch (request.verb) {
      case Verb::Submit: {
        JobSpec spec;
        spec.qasm = request.qasm;
        spec.technique = request.technique;
        spec.format = request.format;
        spec.priority = request.priority;
        spec.deadlineMs = request.deadlineMs;
        spec.useCache = request.useCache;
        spec.peer = peer;
        try {
            const uint64_t id = service_.submit(spec);
            response.set("id", std::to_string(id));
            response.set("state", jobStateName(JobState::Queued));
        } catch (const std::exception &e) {
            return errorResponse(e);
        }
        return response;
      }
      case Verb::Status: {
        const auto info = service_.status(request.id);
        if (!info)
            return Response::error(kErrNotFound, 404,
                                   "unknown job id " +
                                       std::to_string(request.id));
        response.set("id", std::to_string(info->id));
        response.set("state", jobStateName(info->state));
        response.set("stage", info->stage.empty() ? "start" : info->stage);
        response.set("priority", std::to_string(info->priority));
        response.set("queue_ms", fixed3(info->queueMs));
        return response;
      }
      case Verb::Result: {
        const FetchResult fetch = service_.result(request.id);
        const JobInfo &info = fetch.info;
        switch (fetch.status) {
          case FetchStatus::NotFound:
            return Response::error(kErrNotFound, 404,
                                   "unknown job id " +
                                       std::to_string(request.id));
          case FetchStatus::NotReady:
            return Response::error(
                kErrNotReady, 409,
                "job " + std::to_string(request.id) + " not finished (" +
                    jobStateName(info.state) + ")");
          case FetchStatus::Failed: {
            Response err = Response::error(wireErrorKind(info.errorKind),
                                           wireErrorCode(info.errorKind),
                                           info.errorMessage);
            // Splice the terminal state in before kind/code's payload.
            err.fields.insert(err.fields.begin(),
                              {"state", jobStateName(info.state)});
            return err;
          }
          case FetchStatus::Ready:
            response.set("id", std::to_string(info.id));
            response.set("state", jobStateName(info.state));
            response.set("technique", wireTechniqueName(info.technique));
            response.set("cache_hit", info.cacheHit ? "1" : "0");
            response.set("u3", std::to_string(info.u3Count));
            response.set("cz", std::to_string(info.czCount));
            response.set("ccz", std::to_string(info.cczCount));
            response.set("swaps", std::to_string(info.swaps));
            response.set("total_pulses", std::to_string(info.totalPulses));
            response.set("depth_pulses", std::to_string(info.depthPulses));
            response.set("queue_ms", fixed3(info.queueMs));
            response.set("total_ms", fixed3(info.totalMs));
            response.set("transpile_ms", fixed3(info.transpileMs));
            response.set("blocking_ms", fixed3(info.blockingMs));
            response.set("compose_ms", fixed3(info.composeMs));
            response.hasPayload = true;
            response.payload = fetch.payload;
            return response;
        }
        return Response::error("internal", 500, "unreachable");
      }
      case Verb::Cancel: {
        const CancelOutcome outcome = service_.cancel(request.id);
        if (outcome == CancelOutcome::NotFound)
            return Response::error(kErrNotFound, 404,
                                   "unknown job id " +
                                       std::to_string(request.id));
        response.set("id", std::to_string(request.id));
        response.set("delivered",
                     outcome == CancelOutcome::Cancelled ? "1" : "0");
        if (const auto info = service_.status(request.id))
            response.set("state", jobStateName(info->state));
        return response;
      }
      case Verb::Ping:
        response.set("protocol", std::to_string(kProtocolVersion));
        response.set("pipeline", std::to_string(kPipelineVersion));
        response.set("workers", std::to_string(service_.workerCount()));
        return response;
      case Verb::Stats: {
        const ServiceStats s = service_.stats();
        response.set("submitted", std::to_string(s.submitted));
        response.set("done", std::to_string(s.done));
        response.set("failed", std::to_string(s.failed));
        response.set("cancelled", std::to_string(s.cancelled));
        response.set("expired", std::to_string(s.expired));
        response.set("rejected", std::to_string(s.rejected));
        response.set("cache_hits", std::to_string(s.cacheHits));
        response.set("queued", std::to_string(s.queued));
        response.set("running", std::to_string(s.running));
        const PoolStats pool = service_.poolStats();
        response.set("pool_exceptions", std::to_string(pool.exceptions));
        response.set("backend", kernels::activeName());
        return response;
      }
      case Verb::Metrics:
        // Live, lock-consistent snapshot of the whole obs registry in
        // Prometheus text format. Works with tracing off: the service
        // domain is always counted.
        response.set("format", "prometheus");
        response.hasPayload = true;
        response.payload = obs::prometheusText();
        return response;
      case Verb::Trace: {
        if (!obs::hasTrace(request.id))
            return Response::error(kErrNotFound, 404,
                                   "no trace for job id " +
                                       std::to_string(request.id) +
                                       " (evicted or never run)");
        const auto events = obs::traceEvents(request.id);
        response.set("id", std::to_string(request.id));
        response.set("events", std::to_string(events.size()));
        response.set("dropped",
                     std::to_string(obs::traceDropped(request.id)));
        response.hasPayload = true;
        response.payload =
            obs::chromeTraceJson(events, obs::threadNames());
        return response;
      }
      case Verb::Batch: {
        try {
            BatchSpec spec;
            spec.payload = request.qasm;
            spec.technique = request.technique;
            spec.useCache = request.useCache;
            spec.verifySample = request.verifySample;
            const fleet::FleetReport report = service_.compileBatch(spec);
            response.set("members", std::to_string(report.members));
            response.set("jobs", std::to_string(report.jobs));
            response.set("groups", std::to_string(report.groups));
            response.set("rebound", std::to_string(report.rebound));
            response.set("fallback", std::to_string(report.fallback));
            response.set("verify_failures",
                         std::to_string(report.verifyFailures));
            response.set("wall_ms", fixed3(report.wallMs));
            response.hasPayload = true;
            response.payload = report.toJson();
        } catch (const std::exception &e) {
            return errorResponse(e);
        }
        return response;
      }
      case Verb::Shutdown:
        response.set("stopping", "1");
        if (closeConnection != nullptr)
            *closeConnection = true;
        // The owner is notified by serveConnection() only after the
        // acknowledgement has been written, so the reply cannot race
        // the teardown it requests.
        shutdownPending_.store(true);
        return response;
    }
    return Response::error("internal", 500, "unknown verb");
}

}  // namespace service
}  // namespace geyser
