/**
 * @file
 * The geyserd socket front end: accepts connections on loopback TCP or
 * a Unix-domain socket, reads line-framed protocol requests, dispatches
 * them to a CompileService, and writes structured replies.
 *
 * Error policy at the wire: a malformed header or payload framing is a
 * ParseError → `err kind=parse code=400` reply, after which the
 * connection is closed (the stream cannot be resynchronised once a
 * length prefix is untrusted). Semantic failures (bad QASM, unknown
 * job, queue full) are structured error replies on a connection that
 * stays open. InternalError — a bug in this daemon — is a 500-class
 * reply, never a crash: every connection thread is exception-proof.
 *
 * Threading: one accept thread plus one thread per connection — a
 * deliberate simplicity trade-off for a compile service whose jobs run
 * for seconds-to-hours (DESIGN.md §11 discusses the epoll follow-up).
 */
#ifndef GEYSER_SERVICE_SERVER_HPP
#define GEYSER_SERVICE_SERVER_HPP

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.hpp"
#include "service/socket_io.hpp"

namespace geyser {
namespace service {

class CompileService;

struct ServerConfig
{
    /** Nonempty: serve on this Unix-domain socket path. */
    std::string unixPath;
    /** Else loopback TCP on this port (0 picks an ephemeral one). */
    int tcpPort = 0;
    int backlog = 64;
    /**
     * Invoked (once) after a `shutdown` request has been acknowledged.
     * Called from a connection thread — it must signal the owner to
     * call stop() rather than call stop() itself (stop() joins that
     * very thread).
     */
    std::function<void()> onShutdownRequest;
};

class SocketServer
{
  public:
    SocketServer(CompileService &service, ServerConfig config);
    ~SocketServer();

    SocketServer(const SocketServer &) = delete;
    SocketServer &operator=(const SocketServer &) = delete;

    /** Bind and start accepting; throws IoError if the bind fails. */
    void start();

    /** Close the listener and every connection; joins all threads. */
    void stop();

    /** Bound TCP port (0 when serving a Unix socket). */
    int port() const { return port_; }

    /** One-request dispatch, exposed for in-process tests. `peer` is
     *  the client identity threaded into submits for the access log. */
    Response handle(const Request &request, bool *closeConnection,
                    const std::string &peer = std::string());

  private:
    void acceptLoop();
    void serveConnection(int fd);

    CompileService &service_;
    ServerConfig config_;
    Fd listener_;
    int port_ = 0;
    std::atomic<bool> stopping_{false};
    std::atomic<bool> shutdownPending_{false};
    std::atomic<bool> shutdownSignalled_{false};
    std::thread acceptThread_;
    std::mutex connMutex_;
    std::vector<std::thread> connThreads_;
    std::vector<int> connFds_;
};

}  // namespace service
}  // namespace geyser

#endif  // GEYSER_SERVICE_SERVER_HPP
