/**
 * @file
 * CompileService — the long-running heart of geyserd, usable fully
 * in-process (the test harness embeds it; the socket server is a thin
 * shell around it).
 *
 * submit() is an untrusted-input boundary in the PR-5 sense: the QASM
 * program is parsed and Circuit::validate()d on the caller's thread, so
 * malformed input is rejected synchronously with a taxonomy error and
 * never enters the queue. Accepted jobs carry a priority, an optional
 * deadline, and a CancelToken; workers drain the JobQueue in priority
 * order on a dedicated ThreadPool (the exception-safe PR-4 pool — its
 * per-task catch means a service bug can never std::terminate the
 * daemon), calling geyser::compile() with the token so a cancel or an
 * expired deadline unwinds at the next stage/block checkpoint.
 * Duplicate jobs are deduplicated through the persistent ResultCache's
 * single-flight path when a cache is attached; per-job stage progress
 * is readable live from the token, and per-job spans/counters flow
 * through src/obs into the daemon's run report.
 *
 * Memory: finished job records are retained for polling but bounded —
 * beyond ServiceConfig::maxRetainedJobs the oldest terminal records
 * are dropped, and fetching them again reports not_found (clients are
 * expected to fetch a result once).
 */
#ifndef GEYSER_SERVICE_SERVICE_HPP
#define GEYSER_SERVICE_SERVICE_HPP

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "fleet/fleet.hpp"
#include "geyser/pipeline.hpp"
#include "service/job_queue.hpp"
#include "service/protocol.hpp"

namespace geyser {
namespace cache {
class ResultCache;
}  // namespace cache

namespace service {

class AccessLog;

/**
 * The service cannot take the job right now: the queue is at its
 * backpressure cap or the daemon is shutting down. Maps to a 503-class
 * `unavailable` wire reply; clients should retry elsewhere/later.
 */
class UnavailableError : public std::runtime_error, public Error
{
  public:
    explicit UnavailableError(const std::string &message)
        : std::runtime_error(message) {}

    ErrorKind kind() const noexcept override { return ErrorKind::Io; }
    const char *what() const noexcept override
    {
        return std::runtime_error::what();
    }
};

/** Construction-time service configuration. */
struct ServiceConfig
{
    /**
     * Compile worker threads (<= 0 selects hardware concurrency). 0 is
     * honoured literally in tests to freeze jobs in the queue.
     */
    int workers = -1;
    /** Optional persistent result cache (not owned, may be nullptr). */
    cache::ResultCache *cache = nullptr;
    /** submit() beyond this many pending jobs throws UnavailableError. */
    int maxQueuedJobs = 4096;
    /** Terminal records retained for polling before being dropped. */
    int maxRetainedJobs = 10000;
    /** Cap on a submitted QASM program (the protocol also caps frames). */
    size_t maxQasmBytes = kMaxPayloadBytes;
    /** Applied when a submit carries no deadline; 0 = none. */
    long defaultDeadlineMs = 0;
    /**
     * Optional JSONL access log (not owned): one line per job reaching
     * a terminal state. The write happens with the job table locked —
     * AccessLog is lock-leaf so this cannot deadlock, and a line write
     * is trivial next to a compile.
     */
    AccessLog *accessLog = nullptr;
    /**
     * Per-job trace capture (obs trace contexts): every executed job
     * records its pipeline spans into a bounded per-job buffer, served
     * by the `trace <job-id>` wire verb — independent of the global
     * tracing flag. The caps below feed obs::setTraceLimits at
     * construction (a process-wide knob; the last service built wins).
     */
    bool perJobTrace = true;
    size_t perJobTraceEvents = 2048;
    size_t retainedJobTraces = 64;
    /** Pipeline knobs shared by every job (cache/cancel are per-job). */
    PipelineOptions pipeline;
    /** Cap on members in one `batch` request (each is one circuit). */
    int maxBatchMembers = 4096;
};

/** What a client may ask for per batch (the batch verb's fields). */
struct BatchSpec
{
    std::string payload;  ///< QASM programs separated by "%%" lines.
    Technique technique = Technique::Geyser;
    bool useCache = true;
    int verifySample = 1;
};

/** What a client may ask for per job (the submit verb's fields). */
struct JobSpec
{
    std::string qasm;
    Technique technique = Technique::Geyser;
    ResultFormat format = ResultFormat::Qasm;
    int priority = 0;
    long deadlineMs = 0;  ///< 0 = ServiceConfig::defaultDeadlineMs.
    bool useCache = true;
    std::string peer;     ///< Client identity for the access log.
};

/** Point-in-time public view of one job (status/result replies). */
struct JobInfo
{
    uint64_t id = 0;
    JobState state = JobState::Queued;
    Technique technique = Technique::Geyser;
    int priority = 0;
    std::string stage;        ///< Live pipeline stage while running.
    bool cacheHit = false;
    std::string peer;         ///< From the submitting connection.
    double queueMs = 0.0;     ///< Submit → worker pickup.
    double wallMs = 0.0;      ///< Worker pickup → terminal (measured
                              ///< by the service; 0 if never run).
    double totalMs = 0.0;     ///< compile() wall time (a cache hit
                              ///< replays the original compute's).
    double transpileMs = 0.0;
    double blockingMs = 0.0;
    double composeMs = 0.0;
    // Compiled-circuit stats (valid when state == Done).
    int u3Count = 0, czCount = 0, cczCount = 0, swaps = 0;
    long totalPulses = 0, depthPulses = 0;
    // Failure detail (valid in Failed/Cancelled/Expired).
    ErrorKind errorKind = ErrorKind::Internal;
    std::string errorMessage;
};

/** Lifetime activity counters (monotonic; mirrors obs service.*). */
struct ServiceStats
{
    long submitted = 0;
    long done = 0;
    long failed = 0;
    long cancelled = 0;
    long expired = 0;
    long rejected = 0;   ///< submit() calls refused at the boundary.
    long cacheHits = 0;  ///< Done jobs served from the persistent cache.
    int queued = 0;      ///< Snapshot: jobs waiting for a worker.
    int running = 0;     ///< Snapshot: jobs inside compile().
};

/** Outcome classification of result(). */
enum class FetchStatus { Ready, NotReady, NotFound, Failed };

/** result() reply: the payload when Ready, the error detail when not. */
struct FetchResult
{
    FetchStatus status = FetchStatus::NotFound;
    JobInfo info;
    std::string payload;  ///< Compiled circuit (Ready only).
};

/** Outcome of cancel(). */
enum class CancelOutcome { Cancelled, AlreadyTerminal, NotFound };

class CompileService
{
  public:
    explicit CompileService(ServiceConfig config);
    /** Aborts in-flight jobs (cancel + drain) before returning. */
    ~CompileService();

    CompileService(const CompileService &) = delete;
    CompileService &operator=(const CompileService &) = delete;

    /**
     * Validate and enqueue one job; returns its id. Throws ParseError /
     * ValidationError for bad QASM (the job never enters the queue) and
     * UnavailableError when the queue is full or the service stopped.
     */
    uint64_t submit(const JobSpec &spec);

    /**
     * Compile a fleet synchronously on the caller's thread (the fleet
     * engine fans out internally on the global pool — batch wall time
     * is dominated by compiles, not queueing, so it bypasses the job
     * queue). Validation mirrors submit(): malformed members throw
     * ParseError/ValidationError, oversize payloads and member counts
     * ValidationError, a stopped service UnavailableError.
     */
    fleet::FleetReport compileBatch(const BatchSpec &spec);

    /**
     * Snapshot of one job; nullopt for an unknown/expired-out id.
     * Non-const: polling lazily expires queued jobs past their
     * deadline, so a dead job reads as Expired without waiting for a
     * worker to pick it up.
     */
    std::optional<JobInfo> status(uint64_t id);

    /** Fetch a finished job's compiled circuit (or why there is none). */
    FetchResult result(uint64_t id);

    /**
     * Request cancellation. A queued job flips to Cancelled immediately;
     * a running job trips its token and unwinds at the next checkpoint.
     * (For a running job the returned outcome is Cancelled — meaning
     * "cancel delivered" — though the compile may still complete if it
     * was past its last checkpoint.)
     */
    CancelOutcome cancel(uint64_t id);

    ServiceStats stats() const;

    /**
     * Stop the service. drain=true finishes every queued job first;
     * drain=false cancels queued and running jobs and returns when the
     * workers are quiet. Idempotent; submit() rejects afterwards.
     */
    void shutdown(bool drain);

    int workerCount() const { return pool_.size(); }

    /** The pool's counters (the CI smoke asserts exceptions == 0). */
    PoolStats poolStats() const { return pool_.snapshot(); }

  private:
    struct JobRecord
    {
        uint64_t id = 0;
        JobSpec spec;
        Circuit logical;
        JobState state = JobState::Queued;
        CancelToken token;
        std::chrono::steady_clock::time_point submitted;
        JobInfo info;          ///< Stats mirror, updated on transitions.
        std::string payload;   ///< Rendered result (Done only).
    };

    void runOne();
    void execute(JobRecord &record);
    void finish(JobRecord &record, JobState state, const CompileResult *r,
                std::string payload, ErrorKind kind,
                const std::string &message, double wallMs);
    /** Lazily expire a queued job whose deadline passed (mutex held). */
    void expireIfOverdue(JobRecord &record);
    void trimRetained();
    JobInfo infoSnapshot(const JobRecord &record) const;

    ServiceConfig config_;
    mutable std::mutex mutex_;
    std::unordered_map<uint64_t, std::unique_ptr<JobRecord>> jobs_;
    std::deque<uint64_t> retired_;  ///< Terminal ids, oldest first.
    JobQueue queue_;
    uint64_t nextId_ = 1;
    bool stopped_ = false;
    ServiceStats stats_;
    ThreadPool pool_;  ///< Last member: workers die before the state.
};

}  // namespace service
}  // namespace geyser

#endif  // GEYSER_SERVICE_SERVICE_HPP
