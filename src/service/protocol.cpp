#include "service/protocol.hpp"

#include <charconv>
#include <cstring>

namespace geyser {
namespace service {

namespace {

const char kMagic[] = "geyser/";

std::string
magicToken()
{
    return std::string(kMagic) + std::to_string(kProtocolVersion);
}

[[noreturn]] void
bad(const std::string &message)
{
    SourceContext ctx;
    ctx.source = "protocol";
    throw ParseError(ctx, message);
}

/** Strict unsigned decimal parse (no sign, no junk, no overflow). */
uint64_t
parseUnsigned(const std::string &key, const std::string &text,
              uint64_t maxValue)
{
    uint64_t v = 0;
    const char *first = text.data();
    const char *last = first + text.size();
    const auto r = std::from_chars(first, last, v);
    if (text.empty() || r.ec != std::errc() || r.ptr != last || v > maxValue)
        bad(key + ": bad number '" + text + "'");
    return v;
}

/** Strict signed decimal parse within [minValue, maxValue]. */
long long
parseSigned(const std::string &key, const std::string &text,
            long long minValue, long long maxValue)
{
    long long v = 0;
    const char *first = text.data();
    const char *last = first + text.size();
    const auto r = std::from_chars(first, last, v);
    if (text.empty() || r.ec != std::errc() || r.ptr != last ||
        v < minValue || v > maxValue)
        bad(key + ": bad number '" + text + "'");
    return v;
}

Technique
techniqueFromWire(const std::string &token)
{
    if (token == "baseline")
        return Technique::Baseline;
    if (token == "optimap")
        return Technique::OptiMap;
    if (token == "geyser")
        return Technique::Geyser;
    if (token == "superconducting")
        return Technique::Superconducting;
    bad("technique: unknown value '" + token + "'");
}

/** Header tokens: nonempty, printable ASCII, no spaces. */
bool
validToken(const std::string &token)
{
    if (token.empty())
        return false;
    for (const char c : token)
        if (c <= 0x20 || c >= 0x7f)
            return false;
    return true;
}

bool
validKey(const std::string &key)
{
    if (key.empty())
        return false;
    for (const char c : key)
        if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_'))
            return false;
    return true;
}

/** Split a header line into space-separated tokens; empty tokens fail. */
std::vector<std::string>
tokenize(const std::string &line)
{
    if (line.size() > kMaxHeaderBytes)
        bad("header too long (" + std::to_string(line.size()) + " bytes)");
    if (line.find('\n') != std::string::npos ||
        line.find('\r') != std::string::npos)
        bad("header contains a line break");
    std::vector<std::string> tokens;
    size_t start = 0;
    while (start <= line.size()) {
        size_t end = line.find(' ', start);
        if (end == std::string::npos)
            end = line.size();
        if (end == start)
            bad("empty token (doubled or trailing space)");
        tokens.push_back(line.substr(start, end - start));
        start = end + 1;
    }
    return tokens;
}

/**
 * Parse the `key=value ...` tail of a header into ordered pairs,
 * rejecting malformed and duplicate keys.
 */
std::vector<std::pair<std::string, std::string>>
parseFields(const std::vector<std::string> &tokens, size_t first)
{
    std::vector<std::pair<std::string, std::string>> fields;
    for (size_t i = first; i < tokens.size(); ++i) {
        const std::string &token = tokens[i];
        const size_t eq = token.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size())
            bad("malformed field '" + token + "' (want key=value)");
        std::string key = token.substr(0, eq);
        std::string value = token.substr(eq + 1);
        if (!validKey(key))
            bad("bad field key '" + key + "'");
        for (const auto &f : fields)
            if (f.first == key)
                bad("duplicate field '" + key + "'");
        fields.emplace_back(std::move(key), std::move(value));
    }
    return fields;
}

size_t
parsePayloadBytes(const std::string &value)
{
    const uint64_t n = parseUnsigned("payload", value, kMaxPayloadBytes);
    return static_cast<size_t>(n);
}

void
checkMagic(const std::vector<std::string> &tokens)
{
    if (tokens.empty())
        bad("empty header");
    const std::string &m = tokens[0];
    if (m.rfind(kMagic, 0) != 0)
        bad("bad magic '" + m + "' (want " + magicToken() + ")");
    if (m != magicToken())
        bad("unsupported protocol version '" + m + "' (this daemon speaks " +
            magicToken() + ")");
}

}  // namespace

const char *
wireTechniqueName(Technique technique)
{
    switch (technique) {
      case Technique::Baseline:
        return "baseline";
      case Technique::OptiMap:
        return "optimap";
      case Technique::Geyser:
        return "geyser";
      case Technique::Superconducting:
        return "superconducting";
    }
    return "geyser";
}

const char *
verbName(Verb verb)
{
    switch (verb) {
      case Verb::Submit:
        return "submit";
      case Verb::Status:
        return "status";
      case Verb::Result:
        return "result";
      case Verb::Cancel:
        return "cancel";
      case Verb::Ping:
        return "ping";
      case Verb::Stats:
        return "stats";
      case Verb::Shutdown:
        return "shutdown";
      case Verb::Metrics:
        return "metrics";
      case Verb::Trace:
        return "trace";
      case Verb::Batch:
        return "batch";
    }
    return "?";
}

void
Response::set(const std::string &key, const std::string &value)
{
    fields.emplace_back(key, value);
}

const std::string *
Response::find(const std::string &key) const
{
    for (const auto &f : fields)
        if (f.first == key)
            return &f.second;
    return nullptr;
}

Response
Response::error(const std::string &kind, int code, const std::string &message)
{
    Response r;
    r.ok = false;
    r.set("kind", kind);
    r.set("code", std::to_string(code));
    r.hasPayload = true;
    r.payload = message;
    return r;
}

const char *
wireErrorKind(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::Parse:
        return "parse";
      case ErrorKind::Validation:
        return "validation";
      case ErrorKind::Io:
        return "io";
      case ErrorKind::Internal:
        return "internal";
      case ErrorKind::Cancelled:
        return "cancelled";
      case ErrorKind::Deadline:
        return "deadline";
    }
    return "internal";
}

int
wireErrorCode(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::Parse:
      case ErrorKind::Validation:
        return 400;  // The request's fault.
      case ErrorKind::Deadline:
        return 408;
      case ErrorKind::Cancelled:
        return 410;
      case ErrorKind::Io:
      case ErrorKind::Internal:
        return 500;  // The daemon's fault — never the input's.
    }
    return 500;
}

std::string
encodeRequest(const Request &request)
{
    std::string out = magicToken();
    out += ' ';
    out += verbName(request.verb);
    switch (request.verb) {
      case Verb::Submit:
        if (request.qasm.size() > kMaxPayloadBytes)
            throw ValidationError("submit: payload exceeds " +
                                  std::to_string(kMaxPayloadBytes) +
                                  " bytes");
        // Canonical form: every field, fixed order, defaults included,
        // so identical requests are identical bytes (golden-friendly).
        out += " technique=";
        out += wireTechniqueName(request.technique);
        out += " format=";
        out += request.format == ResultFormat::Qasm ? "qasm" : "text";
        out += " priority=" + std::to_string(request.priority);
        out += " deadline_ms=" + std::to_string(request.deadlineMs);
        out += request.useCache ? " cache=on" : " cache=off";
        out += " payload=" + std::to_string(request.qasm.size());
        out += '\n';
        out += request.qasm;
        out += '\n';
        return out;
      case Verb::Batch:
        if (request.qasm.size() > kMaxPayloadBytes)
            throw ValidationError("batch: payload exceeds " +
                                  std::to_string(kMaxPayloadBytes) +
                                  " bytes");
        // Canonical form, like submit: every field, fixed order.
        out += " technique=";
        out += wireTechniqueName(request.technique);
        out += request.useCache ? " cache=on" : " cache=off";
        out += " verify=" + std::to_string(request.verifySample);
        out += " payload=" + std::to_string(request.qasm.size());
        out += '\n';
        out += request.qasm;
        out += '\n';
        return out;
      case Verb::Status:
      case Verb::Result:
      case Verb::Cancel:
      case Verb::Trace:
        out += " id=" + std::to_string(request.id);
        break;
      case Verb::Ping:
      case Verb::Stats:
      case Verb::Shutdown:
      case Verb::Metrics:
        break;
    }
    out += '\n';
    return out;
}

std::string
encodeResponse(const Response &response)
{
    std::string out = magicToken();
    out += response.ok ? " ok" : " err";
    for (const auto &f : response.fields) {
        if (!validKey(f.first) || f.first == "payload" ||
            !validToken(f.second))
            throw InternalError("encodeResponse: unencodable field '" +
                                f.first + "=" + f.second + "'");
        out += ' ';
        out += f.first;
        out += '=';
        out += f.second;
    }
    if (response.hasPayload) {
        if (response.payload.size() > kMaxPayloadBytes)
            throw InternalError("encodeResponse: payload exceeds cap");
        out += " payload=" + std::to_string(response.payload.size());
        out += '\n';
        out += response.payload;
    }
    out += '\n';
    return out;
}

Frame<Request>
parseRequestHeader(const std::string &line)
{
    const auto tokens = tokenize(line);
    checkMagic(tokens);
    if (tokens.size() < 2)
        bad("missing verb");

    Frame<Request> frame;
    Request &request = frame.message;
    const std::string &verb = tokens[1];
    const auto fields = parseFields(tokens, 2);

    auto only = [&](const char *key) {
        // Control verbs take exactly the fields named by the grammar.
        for (const auto &f : fields)
            if (f.first != key)
                bad(verb + ": unknown field '" + f.first + "'");
    };

    if (verb == "submit") {
        request.verb = Verb::Submit;
        bool sawPayload = false;
        for (const auto &[key, value] : fields) {
            if (key == "technique") {
                request.technique = techniqueFromWire(value);
            } else if (key == "format") {
                if (value == "qasm")
                    request.format = ResultFormat::Qasm;
                else if (value == "text")
                    request.format = ResultFormat::Text;
                else
                    bad("format: unknown value '" + value + "'");
            } else if (key == "priority") {
                request.priority = static_cast<int>(
                    parseSigned(key, value, -1000000, 1000000));
            } else if (key == "deadline_ms") {
                request.deadlineMs = static_cast<long>(
                    parseSigned(key, value, 0, 1000L * 1000 * 1000));
            } else if (key == "cache") {
                if (value == "on")
                    request.useCache = true;
                else if (value == "off")
                    request.useCache = false;
                else
                    bad("cache: unknown value '" + value + "'");
            } else if (key == "payload") {
                frame.payloadBytes = parsePayloadBytes(value);
                sawPayload = true;
            } else {
                bad("submit: unknown field '" + key + "'");
            }
        }
        if (!sawPayload)
            bad("submit: missing payload");
        frame.hasPayload = true;
        return frame;
    }
    if (verb == "batch") {
        request.verb = Verb::Batch;
        bool sawPayload = false;
        for (const auto &[key, value] : fields) {
            if (key == "technique") {
                request.technique = techniqueFromWire(value);
            } else if (key == "cache") {
                if (value == "on")
                    request.useCache = true;
                else if (value == "off")
                    request.useCache = false;
                else
                    bad("cache: unknown value '" + value + "'");
            } else if (key == "verify") {
                request.verifySample =
                    static_cast<int>(parseSigned(key, value, 0, 1000000));
            } else if (key == "payload") {
                frame.payloadBytes = parsePayloadBytes(value);
                sawPayload = true;
            } else {
                bad("batch: unknown field '" + key + "'");
            }
        }
        if (!sawPayload)
            bad("batch: missing payload");
        frame.hasPayload = true;
        return frame;
    }
    if (verb == "status" || verb == "result" || verb == "cancel" ||
        verb == "trace") {
        request.verb = verb == "status"   ? Verb::Status
                       : verb == "result" ? Verb::Result
                       : verb == "cancel" ? Verb::Cancel
                                          : Verb::Trace;
        only("id");
        bool sawId = false;
        for (const auto &[key, value] : fields) {
            request.id = parseUnsigned(key, value, UINT64_MAX);
            sawId = true;
        }
        if (!sawId)
            bad(verb + ": missing id");
        return frame;
    }
    if (verb == "ping" || verb == "stats" || verb == "shutdown" ||
        verb == "metrics") {
        request.verb = verb == "ping"    ? Verb::Ping
                       : verb == "stats" ? Verb::Stats
                       : verb == "shutdown" ? Verb::Shutdown
                                            : Verb::Metrics;
        if (!fields.empty())
            bad(verb + ": takes no fields");
        return frame;
    }
    bad("unknown verb '" + verb + "'");
}

Frame<Response>
parseResponseHeader(const std::string &line)
{
    const auto tokens = tokenize(line);
    checkMagic(tokens);
    if (tokens.size() < 2)
        bad("missing ok/err");

    Frame<Response> frame;
    Response &response = frame.message;
    if (tokens[1] == "ok")
        response.ok = true;
    else if (tokens[1] == "err")
        response.ok = false;
    else
        bad("expected ok/err, got '" + tokens[1] + "'");

    for (auto &[key, value] : parseFields(tokens, 2)) {
        if (key == "payload") {
            frame.payloadBytes = parsePayloadBytes(value);
            frame.hasPayload = true;
            response.hasPayload = true;
        } else {
            response.fields.emplace_back(std::move(key), std::move(value));
        }
    }
    if (!response.ok) {
        if (response.find("kind") == nullptr ||
            response.find("code") == nullptr)
            bad("err response missing kind/code");
        parseSigned("code", *response.find("code"), 100, 599);
    }
    return frame;
}

namespace {

/**
 * Split a complete frame into its header line and payload, enforcing
 * the exact length-prefixed layout (trailing '\n' included, no junk).
 */
template <typename T>
T
parseFrame(const std::string &bytes,
           Frame<T> (*parseHeader)(const std::string &),
           std::string T::*payloadMember)
{
    const size_t nl = bytes.find('\n');
    if (nl == std::string::npos)
        bad("missing header terminator");
    Frame<T> frame = parseHeader(bytes.substr(0, nl));
    const std::string rest = bytes.substr(nl + 1);
    if (!frame.hasPayload) {
        if (!rest.empty())
            bad("trailing bytes after header");
        return std::move(frame.message);
    }
    if (rest.size() != frame.payloadBytes + 1)
        bad("payload length mismatch (promised " +
            std::to_string(frame.payloadBytes) + ", got " +
            std::to_string(rest.empty() ? 0 : rest.size() - 1) + ")");
    if (rest.back() != '\n')
        bad("missing payload terminator");
    frame.message.*payloadMember = rest.substr(0, frame.payloadBytes);
    return std::move(frame.message);
}

}  // namespace

Request
parseRequest(const std::string &bytes)
{
    return parseFrame<Request>(bytes, parseRequestHeader, &Request::qasm);
}

Response
parseResponse(const std::string &bytes)
{
    Response r =
        parseFrame<Response>(bytes, parseResponseHeader, &Response::payload);
    return r;
}

}  // namespace service
}  // namespace geyser
