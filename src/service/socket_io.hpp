/**
 * @file
 * Small POSIX socket helpers shared by the geyserd server loop and the
 * in-process client: an owning fd wrapper, buffered line/exact reads
 * (the wire protocol's two read shapes), SIGPIPE-proof whole-buffer
 * writes, and listen/connect constructors for loopback TCP and Unix
 * sockets. All failures throw IoError with the address as context.
 */
#ifndef GEYSER_SERVICE_SOCKET_IO_HPP
#define GEYSER_SERVICE_SOCKET_IO_HPP

#include <optional>
#include <string>

namespace geyser {
namespace service {

/** Owning file descriptor (closes on destruction; movable). */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { close(); }
    Fd(Fd &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Fd &operator=(Fd &&other) noexcept;
    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    void close();
    int release();

  private:
    int fd_ = -1;
};

/**
 * Buffered reader over a socket: readLine() returns one '\n'-terminated
 * line without the terminator (nullopt on orderly EOF at a frame
 * boundary, IoError on EOF mid-line, overlong lines, or socket errors);
 * readExact() returns exactly n bytes.
 */
class SocketReader
{
  public:
    explicit SocketReader(int fd) : fd_(fd) {}

    std::optional<std::string> readLine(size_t maxBytes);
    std::string readExact(size_t n);

  private:
    bool fill();  ///< One recv(); false on EOF.

    int fd_;
    std::string buffer_;
    size_t pos_ = 0;
};

/** Write the whole buffer (MSG_NOSIGNAL); throws IoError on failure. */
void writeAll(int fd, const std::string &bytes);

/**
 * Listening socket on 127.0.0.1:`port` (0 picks an ephemeral port;
 * `boundPort` reports the actual one).
 */
Fd listenTcp(int port, int backlog, int *boundPort);

/** Listening Unix-domain socket at `path` (unlinks a stale file). */
Fd listenUnix(const std::string &path, int backlog);

/** Connect to 127.0.0.1:`port`. */
Fd connectTcp(int port);

/** Connect to the Unix-domain socket at `path`. */
Fd connectUnix(const std::string &path);

}  // namespace service
}  // namespace geyser

#endif  // GEYSER_SERVICE_SOCKET_IO_HPP
