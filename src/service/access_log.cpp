#include "service/access_log.hpp"

#include "common/error.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"

namespace geyser {
namespace service {

AccessLog::AccessLog(const std::string &path)
    : path_(path), out_(path, std::ios::app)
{
    if (!out_)
        throw IoError("access log: cannot open " + path);
}

void
AccessLog::log(const JobInfo &info)
{
    obs::Json line = obs::Json::object();
    line.set("ts", obs::utcTimestamp());
    line.set("id", static_cast<double>(info.id));
    line.set("peer", info.peer.empty() ? "local" : info.peer);
    line.set("outcome", jobStateName(info.state));
    line.set("technique", wireTechniqueName(info.technique));
    line.set("priority", info.priority);
    line.set("queue_us", info.queueMs * 1000.0);
    line.set("compile_us", info.wallMs * 1000.0);
    line.set("cache_hit", info.cacheHit);
    if (info.state == JobState::Done) {
        line.set("total_pulses", static_cast<double>(info.totalPulses));
    } else if (jobStateTerminal(info.state)) {
        line.set("error_kind", wireErrorKind(info.errorKind));
        line.set("error", info.errorMessage);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    out_ << line.dump() << '\n';
    out_.flush();
    if (!out_) {
        obs::serviceCounter("service.access_log_error").add();
        out_.clear();  // Keep trying; a full disk may recover.
    }
}

}  // namespace service
}  // namespace geyser
