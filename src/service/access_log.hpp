/**
 * @file
 * Structured JSONL access log for geyserd: one line per job reaching a
 * terminal state — id, peer, outcome, queue-wait and compile
 * microseconds, cache hit, and error detail for failures. Lines are
 * flushed as written so a crashed daemon loses at most the in-flight
 * line, and the file is append-only so restarts accumulate history.
 *
 * Threading: log() is serialized by an internal mutex independent of
 * every other lock in the service (it is called with the service job
 * table locked; keeping this class lock-leaf makes that safe).
 */
#ifndef GEYSER_SERVICE_ACCESS_LOG_HPP
#define GEYSER_SERVICE_ACCESS_LOG_HPP

#include <fstream>
#include <mutex>
#include <string>

namespace geyser {
namespace service {

struct JobInfo;

class AccessLog
{
  public:
    /** Open `path` for append; throws IoError when it cannot. */
    explicit AccessLog(const std::string &path);

    AccessLog(const AccessLog &) = delete;
    AccessLog &operator=(const AccessLog &) = delete;

    /** Append one terminal-job line and flush. Never throws (a failed
     *  write drops the line and counts service.access_log_error). */
    void log(const JobInfo &info);

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::mutex mutex_;
    std::ofstream out_;
};

}  // namespace service
}  // namespace geyser

#endif  // GEYSER_SERVICE_ACCESS_LOG_HPP
