/**
 * @file
 * A minimal synchronous client for the geyserd wire protocol, used by
 * the end-to-end tests and available to tooling. One ServiceClient
 * owns one connection; roundTrip() writes a request frame and blocks
 * for the matching reply (the protocol is strictly request/response,
 * so no correlation ids are needed).
 */
#ifndef GEYSER_SERVICE_CLIENT_HPP
#define GEYSER_SERVICE_CLIENT_HPP

#include <string>

#include "service/protocol.hpp"
#include "service/socket_io.hpp"

namespace geyser {
namespace service {

class ServiceClient
{
  public:
    /** Connect to a daemon on loopback TCP. Throws IoError on failure. */
    static ServiceClient overTcp(int port);

    /** Connect to a daemon on a Unix-domain socket path. */
    static ServiceClient overUnix(const std::string &path);

    /** Send one request and block for its reply. Throws IoError on a
     *  torn connection and ParseError on a malformed reply; protocol
     *  `err` replies are returned, not thrown. */
    Response roundTrip(const Request &request);

    /** Convenience wrappers over roundTrip(). */
    Response submit(const std::string &qasm, Technique technique,
                    int priority = 0, long deadlineMs = 0,
                    bool useCache = true);
    Response status(uint64_t id);
    Response result(uint64_t id);
    Response cancel(uint64_t id);
    Response ping();

    /** Poll status until the job reaches a terminal state, then fetch
     *  its result. Throws IoError if the daemon goes away. */
    Response waitResult(uint64_t id, int pollMs = 2);

    void close() { fd_.close(); }

  private:
    explicit ServiceClient(Fd fd) : fd_(std::move(fd)), reader_(fd_.get())
    {
    }

    Fd fd_;
    SocketReader reader_;
};

}  // namespace service
}  // namespace geyser

#endif  // GEYSER_SERVICE_CLIENT_HPP
