#include "service/client.hpp"

#include <chrono>
#include <thread>

#include "common/error.hpp"

namespace geyser {
namespace service {

ServiceClient
ServiceClient::overTcp(int port)
{
    return ServiceClient(connectTcp(port));
}

ServiceClient
ServiceClient::overUnix(const std::string &path)
{
    return ServiceClient(connectUnix(path));
}

Response
ServiceClient::roundTrip(const Request &request)
{
    writeAll(fd_.get(), encodeRequest(request));
    const auto line = reader_.readLine(kMaxHeaderBytes);
    if (!line)
        throw IoError("connection closed before reply");
    Frame<Response> frame = parseResponseHeader(*line);
    if (frame.hasPayload) {
        std::string payload = reader_.readExact(frame.payloadBytes + 1);
        if (payload.back() != '\n') {
            SourceContext ctx;
            ctx.source = "protocol";
            throw ParseError(ctx, "missing payload terminator");
        }
        payload.pop_back();
        frame.message.payload = std::move(payload);
    }
    return frame.message;
}

Response
ServiceClient::submit(const std::string &qasm, Technique technique,
                      int priority, long deadlineMs, bool useCache)
{
    Request request;
    request.verb = Verb::Submit;
    request.qasm = qasm;
    request.technique = technique;
    request.priority = priority;
    request.deadlineMs = deadlineMs;
    request.useCache = useCache;
    return roundTrip(request);
}

Response
ServiceClient::status(uint64_t id)
{
    Request request;
    request.verb = Verb::Status;
    request.id = id;
    return roundTrip(request);
}

Response
ServiceClient::result(uint64_t id)
{
    Request request;
    request.verb = Verb::Result;
    request.id = id;
    return roundTrip(request);
}

Response
ServiceClient::cancel(uint64_t id)
{
    Request request;
    request.verb = Verb::Cancel;
    request.id = id;
    return roundTrip(request);
}

Response
ServiceClient::ping()
{
    Request request;
    request.verb = Verb::Ping;
    return roundTrip(request);
}

Response
ServiceClient::waitResult(uint64_t id, int pollMs)
{
    for (;;) {
        const Response st = status(id);
        if (!st.ok)
            return st;  // not_found etc. — nothing to wait for.
        const std::string *state = st.find("state");
        if (state == nullptr)
            throw IoError("status reply missing state");
        if (*state != "queued" && *state != "running")
            return result(id);
        std::this_thread::sleep_for(std::chrono::milliseconds(pollMs));
    }
}

}  // namespace service
}  // namespace geyser
