#include "service/service.hpp"

#include <utility>

#include "cache/result_cache.hpp"
#include "io/qasm_parser.hpp"
#include "io/serialize.hpp"
#include "obs/obs.hpp"
#include "service/access_log.hpp"

namespace geyser {
namespace service {

namespace {

// Service-domain metrics: always counted, independent of the span
// tracing flag, so a production daemon can be scraped with tracing
// off. Registered once; reset() zeroes them in place so these
// references stay valid for the process lifetime.
struct ServiceMetrics
{
    obs::Counter &submitted = obs::serviceCounter("service.submitted");
    obs::Counter &rejected = obs::serviceCounter("service.rejected");
    obs::Counter &done = obs::serviceCounter("service.done");
    obs::Counter &failed = obs::serviceCounter("service.failed");
    obs::Counter &cancelled = obs::serviceCounter("service.cancelled");
    obs::Counter &expired = obs::serviceCounter("service.expired");
    obs::Counter &cacheHits = obs::serviceCounter("service.cache_hit");
    obs::Gauge &queueDepth = obs::serviceGauge("service.queue_depth");
    obs::Gauge &inFlight = obs::serviceGauge("service.in_flight");
    obs::Histogram &queueWaitMs =
        obs::serviceHistogram("service.queue_wait_ms");
    obs::Histogram &compileMs =
        obs::serviceHistogram("service.compile_ms");
    obs::Histogram &e2eMs = obs::serviceHistogram("service.e2e_ms");
};

ServiceMetrics &
metrics()
{
    static ServiceMetrics m;
    return m;
}

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

int
poolSizeFor(int workers)
{
    // workers == 0 is a test mode: the pool exists but no drain task is
    // ever submitted, freezing jobs in the queue deterministically.
    if (workers < 0)
        return 0;  // ThreadPool(0) selects hardware concurrency.
    return workers == 0 ? 1 : workers;
}

}  // namespace

CompileService::CompileService(ServiceConfig config)
    : config_(std::move(config)), pool_(poolSizeFor(config_.workers))
{
    if (config_.maxQueuedJobs <= 0)
        config_.maxQueuedJobs = 1;
    if (config_.maxRetainedJobs <= 0)
        config_.maxRetainedJobs = 1;
    if (config_.perJobTrace)
        obs::setTraceLimits(config_.perJobTraceEvents,
                            config_.retainedJobTraces);
    metrics();  // Register the service domain before the first scrape.
}

CompileService::~CompileService()
{
    shutdown(false);
}

uint64_t
CompileService::submit(const JobSpec &spec)
{
    ServiceMetrics &m = metrics();

    auto countRejected = [&] {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.rejected;
        m.rejected.add();
    };

    // The untrusted-input boundary: parse + validate on the caller's
    // thread so a malformed program is a synchronous structured error
    // and never occupies a queue slot or a worker.
    if (spec.qasm.size() > config_.maxQasmBytes) {
        countRejected();
        throw ValidationError(
            "submit: program of " + std::to_string(spec.qasm.size()) +
            " bytes exceeds the " + std::to_string(config_.maxQasmBytes) +
            "-byte limit");
    }
    Circuit logical;
    try {
        logical = circuitFromQasm(spec.qasm);
        logical.validate();
    } catch (const std::invalid_argument &) {
        countRejected();  // ParseError and ValidationError both.
        throw;
    }

    auto record = std::make_unique<JobRecord>();
    record->spec = spec;
    record->logical = std::move(logical);
    record->info.peer = spec.peer;
    record->submitted = std::chrono::steady_clock::now();
    const long deadlineMs =
        spec.deadlineMs > 0 ? spec.deadlineMs : config_.defaultDeadlineMs;
    record->token.setDeadlineAfterMs(deadlineMs);

    uint64_t id = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopped_) {
            ++stats_.rejected;
            m.rejected.add();
            throw UnavailableError("submit: service is shutting down");
        }
        if (stats_.queued >= config_.maxQueuedJobs) {
            ++stats_.rejected;
            m.rejected.add();
            throw UnavailableError(
                "submit: queue full (" + std::to_string(stats_.queued) +
                " pending jobs)");
        }
        id = nextId_++;
        record->id = id;
        record->info.id = id;
        jobs_.emplace(id, std::move(record));
        queue_.push(id, spec.priority);
        ++stats_.submitted;
        ++stats_.queued;
        m.queueDepth.set(stats_.queued);
    }
    m.submitted.add();
    // One drain slot per accepted job: the pool provides the threads,
    // the JobQueue provides the priority order.
    if (config_.workers != 0)
        pool_.submit([this] { runOne(); });
    return id;
}

fleet::FleetReport
CompileService::compileBatch(const BatchSpec &spec)
{
    ServiceMetrics &m = metrics();

    auto countRejected = [&] {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.rejected;
        m.rejected.add();
    };

    if (spec.payload.size() > config_.maxQasmBytes) {
        countRejected();
        throw ValidationError(
            "batch: payload of " + std::to_string(spec.payload.size()) +
            " bytes exceeds the " + std::to_string(config_.maxQasmBytes) +
            "-byte limit");
    }
    std::vector<fleet::FleetJob> jobs;
    try {
        jobs = fleet::parseFleetPayload(spec.payload);
    } catch (const std::invalid_argument &) {
        countRejected();
        throw;
    }
    if (jobs.empty()) {
        countRejected();
        throw ValidationError("batch: payload contains no members");
    }
    if (jobs.size() > static_cast<size_t>(config_.maxBatchMembers)) {
        countRejected();
        throw ValidationError(
            "batch: " + std::to_string(jobs.size()) +
            " members exceed the " +
            std::to_string(config_.maxBatchMembers) + "-member limit");
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopped_) {
            ++stats_.rejected;
            m.rejected.add();
            throw UnavailableError("batch: service is shutting down");
        }
    }

    fleet::FleetOptions options;
    options.techniques = {spec.technique};
    options.pipeline = config_.pipeline;
    options.pipeline.cache = spec.useCache ? config_.cache : nullptr;
    options.verifySample = spec.verifySample;
    return fleet::compileFleet(jobs, options);
}

void
CompileService::runOne()
{
    const auto item = queue_.tryPop();
    if (!item)
        return;  // Cancelled-by-close or a skipped entry's slot.

    JobRecord *record = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = jobs_.find(item->id);
        if (it == jobs_.end())
            return;
        record = it->second.get();
        if (record->state != JobState::Queued)
            return;  // Cancelled (or expired) while waiting; skip.
        expireIfOverdue(*record);
        if (record->state != JobState::Queued)
            return;
        record->state = JobState::Running;
        record->info.queueMs = msSince(record->submitted);
        --stats_.queued;
        ++stats_.running;
        ServiceMetrics &m = metrics();
        m.queueDepth.set(stats_.queued);
        m.inFlight.set(stats_.running);
        m.queueWaitMs.record(record->info.queueMs);
    }
    execute(*record);
}

void
CompileService::execute(JobRecord &record)
{
    // Per-job trace context: every span recorded under this scope —
    // including the pipeline's, on whatever worker thread it runs —
    // lands in a bounded buffer keyed by the job id, served later by
    // the `trace <job-id>` wire verb. Independent of the global
    // tracing flag; TraceScope(0) is a no-op when disabled.
    const uint64_t traceId = config_.perJobTrace ? record.id : 0;
    if (traceId != 0)
        obs::beginTrace(traceId);
    obs::TraceScope trace(traceId);

    obs::Span span("service.job", "service");
    span.arg("id", static_cast<double>(record.id));
    span.arg("technique", techniqueName(record.spec.technique));
    span.arg("priority", record.spec.priority);

    const auto started = std::chrono::steady_clock::now();
    try {
        PipelineOptions options = config_.pipeline;
        options.cancel = &record.token;
        options.cache = record.spec.useCache ? config_.cache : nullptr;
        const CompileResult result =
            compile(record.spec.technique, record.logical, options);
        std::string payload = record.spec.format == ResultFormat::Qasm
                                  ? circuitToQasm(result.physical)
                                  : circuitToText(result.physical);
        span.arg("cache_hit", result.cacheHit ? 1.0 : 0.0);
        finish(record, JobState::Done, &result, std::move(payload),
               ErrorKind::Internal, "", msSince(started));
    } catch (const std::exception &e) {
        ErrorKind kind = ErrorKind::Internal;
        if (const auto *err = dynamic_cast<const Error *>(&e))
            kind = err->kind();
        const JobState state = kind == ErrorKind::Cancelled
                                   ? JobState::Cancelled
                               : kind == ErrorKind::Deadline
                                   ? JobState::Expired
                                   : JobState::Failed;
        span.arg("error", e.what());
        finish(record, state, nullptr, "", kind, e.what(),
               msSince(started));
    } catch (...) {
        finish(record, JobState::Failed, nullptr, "", ErrorKind::Internal,
               "unknown exception during compile", msSince(started));
    }
}

void
CompileService::finish(JobRecord &record, JobState state,
                       const CompileResult *result, std::string payload,
                       ErrorKind kind, const std::string &message,
                       double wallMs)
{
    ServiceMetrics &m = metrics();

    std::lock_guard<std::mutex> lock(mutex_);
    record.state = state;
    --stats_.running;
    m.inFlight.set(stats_.running);
    JobInfo &info = record.info;
    info.wallMs = wallMs;
    m.compileMs.record(wallMs);
    m.e2eMs.record(msSince(record.submitted));
    if (result != nullptr) {
        info.cacheHit = result->cacheHit;
        info.totalMs = result->totalMs;
        info.transpileMs = result->transpileMs;
        info.blockingMs = result->blockingMs;
        info.composeMs = result->composeMs;
        info.u3Count = result->stats.u3Count;
        info.czCount = result->stats.czCount;
        info.cczCount = result->stats.cczCount;
        info.swaps = result->swapsInserted;
        info.totalPulses = result->stats.totalPulses;
        info.depthPulses = result->stats.depthPulses;
        record.payload = std::move(payload);
    } else {
        info.errorKind = kind;
        info.errorMessage = message;
    }
    switch (state) {
      case JobState::Done:
        ++stats_.done;
        m.done.add();
        if (info.cacheHit) {
            ++stats_.cacheHits;
            m.cacheHits.add();
        }
        break;
      case JobState::Failed:
        ++stats_.failed;
        m.failed.add();
        break;
      case JobState::Cancelled:
        ++stats_.cancelled;
        m.cancelled.add();
        break;
      case JobState::Expired:
        ++stats_.expired;
        m.expired.add();
        break;
      case JobState::Queued:
      case JobState::Running:
        break;  // finish() is only called with terminal states.
    }
    if (config_.accessLog != nullptr)
        config_.accessLog->log(infoSnapshot(record));
    retired_.push_back(record.id);
    trimRetained();
}

void
CompileService::expireIfOverdue(JobRecord &record)
{
    ServiceMetrics &m = metrics();
    if (record.state != JobState::Queued || !record.token.deadlineExpired())
        return;
    record.state = JobState::Expired;
    record.info.errorKind = ErrorKind::Deadline;
    record.info.errorMessage = "deadline exceeded while queued";
    record.info.queueMs = msSince(record.submitted);
    --stats_.queued;
    ++stats_.expired;
    m.queueDepth.set(stats_.queued);
    m.expired.add();
    if (config_.accessLog != nullptr)
        config_.accessLog->log(infoSnapshot(record));
    retired_.push_back(record.id);
    trimRetained();
}

void
CompileService::trimRetained()
{
    while (retired_.size() > static_cast<size_t>(config_.maxRetainedJobs)) {
        jobs_.erase(retired_.front());
        retired_.pop_front();
    }
}

JobInfo
CompileService::infoSnapshot(const JobRecord &record) const
{
    JobInfo info = record.info;
    info.id = record.id;
    info.state = record.state;
    info.technique = record.spec.technique;
    info.priority = record.spec.priority;
    info.stage = record.state == JobState::Queued    ? "queued"
                 : record.state == JobState::Running ? record.token.stage()
                                                     : jobStateName(
                                                           record.state);
    return info;
}

std::optional<JobInfo>
CompileService::status(uint64_t id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    expireIfOverdue(*it->second);
    return infoSnapshot(*it->second);
}

FetchResult
CompileService::result(uint64_t id)
{
    FetchResult fetch;
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        fetch.status = FetchStatus::NotFound;
        return fetch;
    }
    JobRecord &record = *it->second;
    expireIfOverdue(record);
    fetch.info = infoSnapshot(record);
    switch (record.state) {
      case JobState::Queued:
      case JobState::Running:
        fetch.status = FetchStatus::NotReady;
        break;
      case JobState::Done:
        fetch.status = FetchStatus::Ready;
        fetch.payload = record.payload;
        break;
      case JobState::Failed:
      case JobState::Cancelled:
      case JobState::Expired:
        fetch.status = FetchStatus::Failed;
        break;
    }
    return fetch;
}

CancelOutcome
CompileService::cancel(uint64_t id)
{
    ServiceMetrics &m = metrics();
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return CancelOutcome::NotFound;
    JobRecord &record = *it->second;
    switch (record.state) {
      case JobState::Queued:
        record.state = JobState::Cancelled;
        record.info.errorKind = ErrorKind::Cancelled;
        record.info.errorMessage = "cancelled while queued";
        record.info.queueMs = msSince(record.submitted);
        record.token.requestCancel();
        --stats_.queued;
        ++stats_.cancelled;
        m.queueDepth.set(stats_.queued);
        m.cancelled.add();
        if (config_.accessLog != nullptr)
            config_.accessLog->log(infoSnapshot(record));
        retired_.push_back(record.id);
        trimRetained();
        return CancelOutcome::Cancelled;
      case JobState::Running:
        // Cooperative: the compile unwinds at its next checkpoint and
        // finish() records the terminal state.
        record.token.requestCancel();
        return CancelOutcome::Cancelled;
      case JobState::Done:
      case JobState::Failed:
      case JobState::Cancelled:
      case JobState::Expired:
        return CancelOutcome::AlreadyTerminal;
    }
    return CancelOutcome::NotFound;
}

ServiceStats
CompileService::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
CompileService::shutdown(bool drain)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopped_ = true;
    }
    // With no dispatch (the workers == 0 test mode) a drain would wait
    // on jobs nothing will ever run; abort instead.
    if (!drain || config_.workers == 0) {
        ServiceMetrics &m = metrics();
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto &[id, record] : jobs_) {
            if (record->state == JobState::Queued) {
                record->state = JobState::Cancelled;
                record->info.errorKind = ErrorKind::Cancelled;
                record->info.errorMessage = "service shut down";
                record->info.queueMs = msSince(record->submitted);
                --stats_.queued;
                ++stats_.cancelled;
                m.cancelled.add();
                if (config_.accessLog != nullptr)
                    config_.accessLog->log(infoSnapshot(*record));
                retired_.push_back(id);
            } else if (record->state == JobState::Running) {
                record->token.requestCancel();
            }
        }
        m.queueDepth.set(stats_.queued);
        trimRetained();
        queue_.close();
    }
    pool_.waitIdle();
}

}  // namespace service
}  // namespace geyser
