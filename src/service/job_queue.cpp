#include "service/job_queue.hpp"

namespace geyser {
namespace service {

const char *
jobStateName(JobState state)
{
    switch (state) {
      case JobState::Queued:
        return "queued";
      case JobState::Running:
        return "running";
      case JobState::Done:
        return "done";
      case JobState::Failed:
        return "failed";
      case JobState::Cancelled:
        return "cancelled";
      case JobState::Expired:
        return "expired";
    }
    return "?";
}

bool
JobQueue::push(uint64_t id, int priority)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_)
        return false;
    items_.push(Item{id, priority, nextSeq_++});
    return true;
}

std::optional<JobQueue::Item>
JobQueue::tryPop()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty())
        return std::nullopt;
    Item item = items_.top();
    items_.pop();
    return item;
}

size_t
JobQueue::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
}

void
JobQueue::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    while (!items_.empty())
        items_.pop();
}

bool
JobQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

}  // namespace service
}  // namespace geyser
