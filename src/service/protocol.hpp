/**
 * @file
 * The geyserd wire protocol, version 1: a line-framed, length-prefixed
 * text protocol small enough to speak from a shell script or a
 * ten-line Python client, strict enough to fuzz.
 *
 * One request is a single header line
 *
 *   geyser/1 <verb> [key=value ...][ payload=<N>]\n
 *   [<N raw payload bytes>\n]
 *
 * and one response mirrors it
 *
 *   geyser/1 ok [key=value ...][ payload=<N>]\n[<N bytes>\n]
 *   geyser/1 err kind=<kind> code=<http-class code> payload=<N>\n<msg>\n
 *
 * Free-form text (QASM programs, compiled circuits, error messages)
 * always travels as a length-prefixed payload, never inside the header
 * line, so nothing ever needs escaping and binary garbage cannot
 * desynchronise the stream. Header parsing is an untrusted-input
 * boundary in the PR-5 sense: every malformed header throws ParseError
 * (wrong magic or version, unknown verb, unknown/duplicate/misplaced
 * keys, bad numbers, oversize header or payload), which the server
 * renders as a structured `err` reply.
 *
 * Versioning: kProtocolVersion names the grammar; golden byte
 * transcripts under tests/service/golden pin it, so any wire-format
 * drift is a deliberate, reviewed change. The `ping` reply additionally
 * carries kPipelineVersion so clients can tell when cached results
 * will differ across daemon builds.
 */
#ifndef GEYSER_SERVICE_PROTOCOL_HPP
#define GEYSER_SERVICE_PROTOCOL_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "geyser/pipeline.hpp"

namespace geyser {
namespace service {

/** Wire-grammar version; bump on any framing/field change. */
inline constexpr int kProtocolVersion = 1;

/** Header lines longer than this are rejected before parsing. */
inline constexpr size_t kMaxHeaderBytes = 4096;

/** Hard cap on any length-prefixed payload (QASM in, circuit out). */
inline constexpr size_t kMaxPayloadBytes = 4u << 20;

/** Everything a client can ask the daemon to do. */
enum class Verb
{
    Submit,
    Status,
    Result,
    Cancel,
    Ping,
    Stats,
    Shutdown,
    /** Live Prometheus text exposition of the obs registry (PR 7). */
    Metrics,
    /** Per-job Chrome trace JSON by job id (PR 7). */
    Trace,
    /**
     * Fleet compilation (PR 10): the payload is a sequence of OpenQASM
     * programs separated by "%%" lines; the daemon compiles them as one
     * batch with skeleton/parameter structure sharing and replies with
     * the aggregate fair-comparison report as a JSON payload.
     */
    Batch,
};

/** Wire token of a verb ("submit", "status", ...). */
const char *verbName(Verb verb);

/** Wire token of a technique ("baseline", "optimap", ...). */
const char *wireTechniqueName(Technique technique);

/** Output format of a compiled-circuit payload. */
enum class ResultFormat { Qasm, Text };

/** A parsed (and therefore well-formed) request. */
struct Request
{
    Verb verb = Verb::Ping;
    // Submit fields.
    Technique technique = Technique::Geyser;
    ResultFormat format = ResultFormat::Qasm;
    int priority = 0;       ///< Higher runs sooner; FIFO within a level.
    long deadlineMs = 0;    ///< Per-job deadline from submit time; 0 = none.
    bool useCache = true;   ///< Serve/store through the persistent cache.
    std::string qasm;       ///< Submit/batch payload (OpenQASM 2.0).
    // Status / result / cancel / trace field.
    uint64_t id = 0;
    // Batch field: re-bound members verified from scratch per skeleton
    // group (0 disables verification).
    int verifySample = 1;
};

/**
 * A response: `ok` with ordered key=value fields and an optional
 * payload, or `err` with a wire kind, an HTTP-class code, and the
 * message as payload.
 */
struct Response
{
    bool ok = true;
    std::vector<std::pair<std::string, std::string>> fields;
    bool hasPayload = false;
    std::string payload;

    /** Append a field (keys/values must be header-token safe). */
    void set(const std::string &key, const std::string &value);
    /** First value for `key`; nullptr if absent. */
    const std::string *find(const std::string &key) const;

    /** Build an error response from a wire kind + code + message. */
    static Response error(const std::string &kind, int code,
                          const std::string &message);
};

/** Wire token for a taxonomy kind ("parse", "validation", ...). */
const char *wireErrorKind(ErrorKind kind);

/** HTTP-class code for a taxonomy kind (400/408/410/500). */
int wireErrorCode(ErrorKind kind);

// Wire-only error kinds (no taxonomy exception maps to them).
inline constexpr const char *kErrNotFound = "not_found";     ///< 404
inline constexpr const char *kErrNotReady = "not_ready";     ///< 409
inline constexpr const char *kErrUnavailable = "unavailable";///< 503

/** Serialize a request to its exact wire bytes. */
std::string encodeRequest(const Request &request);

/** Serialize a response to its exact wire bytes. */
std::string encodeResponse(const Response &response);

/** A parsed header line plus the payload bytes still to be read. */
template <typename T> struct Frame
{
    T message;
    size_t payloadBytes = 0;
    bool hasPayload = false;
};

/**
 * Parse one request header line (without its trailing '\n'). Throws
 * ParseError on any malformed input. When the result's payloadBytes is
 * nonzero, the caller must read exactly that many payload bytes plus a
 * trailing '\n' and attach them (Request::qasm).
 */
Frame<Request> parseRequestHeader(const std::string &line);

/** Parse one response header line; same contract as requests. */
Frame<Response> parseResponseHeader(const std::string &line);

/** Parse a complete request frame (header + payload) from raw bytes. */
Request parseRequest(const std::string &bytes);

/** Parse a complete response frame from raw bytes. */
Response parseResponse(const std::string &bytes);

}  // namespace service
}  // namespace geyser

#endif  // GEYSER_SERVICE_PROTOCOL_HPP
