/**
 * @file
 * The job model and the priority queue behind the compile service.
 *
 * Job lifecycle state machine (DESIGN.md §11):
 *
 *   Queued ──pop──▶ Running ──▶ Done
 *     │                │    ├──▶ Failed     (taxonomy error recorded)
 *     │                │    ├──▶ Cancelled  (cancel observed mid-compile)
 *     │                └────└──▶ Expired    (deadline observed)
 *     ├──cancel──▶ Cancelled    (before a worker picked it up)
 *     └──deadline─▶ Expired     (lazily, while still queued)
 *
 * Queued / Running are the only non-terminal states; a terminal state
 * never changes again. The queue itself is deliberately dumb: it
 * orders job ids by (priority desc, submit sequence asc) and knows
 * nothing about records, deadlines, or cancellation — those live in
 * the service's job table, so a cancelled or expired entry is simply
 * skipped when popped.
 */
#ifndef GEYSER_SERVICE_JOB_QUEUE_HPP
#define GEYSER_SERVICE_JOB_QUEUE_HPP

#include <cstdint>
#include <mutex>
#include <optional>
#include <queue>
#include <vector>

namespace geyser {
namespace service {

/** Where a job is in its lifecycle. */
enum class JobState { Queued, Running, Done, Failed, Cancelled, Expired };

/** Wire/report token of a state ("queued", "running", ...). */
const char *jobStateName(JobState state);

/** True once a job can never change state again. */
inline bool
jobStateTerminal(JobState state)
{
    return state != JobState::Queued && state != JobState::Running;
}

/**
 * Thread-safe ordering of pending job ids: highest priority first,
 * FIFO within a priority level (by submit sequence). Closing the queue
 * permanently empties it; pushes after close are dropped.
 */
class JobQueue
{
  public:
    struct Item
    {
        uint64_t id = 0;
        int priority = 0;
        uint64_t seq = 0;  ///< Submit order, assigned by push().
    };

    /** Enqueue a job id at a priority; returns false after close(). */
    bool push(uint64_t id, int priority);

    /** Highest-priority pending item, or nullopt when empty/closed. */
    std::optional<Item> tryPop();

    /** Pending count (0 after close()). */
    size_t size() const;

    /** Drop all pending items and reject future pushes. */
    void close();

    bool closed() const;

  private:
    struct After
    {
        bool operator()(const Item &a, const Item &b) const
        {
            if (a.priority != b.priority)
                return a.priority < b.priority;  // Higher priority first.
            return a.seq > b.seq;                // Then FIFO.
        }
    };

    mutable std::mutex mutex_;
    std::priority_queue<Item, std::vector<Item>, After> items_;
    uint64_t nextSeq_ = 0;
    bool closed_ = false;
};

}  // namespace service
}  // namespace geyser

#endif  // GEYSER_SERVICE_JOB_QUEUE_HPP
