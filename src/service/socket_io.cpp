#include "service/socket_io.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace geyser {
namespace service {

namespace {

[[noreturn]] void
ioFail(const std::string &where, const std::string &what)
{
    SourceContext ctx;
    ctx.source = where;
    throw IoError(ctx, what + ": " + std::strerror(errno));
}

}  // namespace

Fd &
Fd::operator=(Fd &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void
Fd::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

int
Fd::release()
{
    const int fd = fd_;
    fd_ = -1;
    return fd;
}

bool
SocketReader::fill()
{
    char chunk[4096];
    ssize_t n;
    do {
        n = ::recv(fd_, chunk, sizeof(chunk), 0);
    } while (n < 0 && errno == EINTR);
    if (n < 0)
        ioFail("socket", "recv failed");
    if (n == 0)
        return false;
    // Compact consumed bytes occasionally so the buffer stays bounded.
    if (pos_ > 0 && pos_ == buffer_.size()) {
        buffer_.clear();
        pos_ = 0;
    }
    buffer_.append(chunk, static_cast<size_t>(n));
    return true;
}

std::optional<std::string>
SocketReader::readLine(size_t maxBytes)
{
    for (;;) {
        const size_t nl = buffer_.find('\n', pos_);
        if (nl != std::string::npos) {
            if (nl - pos_ > maxBytes)
                ioFail("socket", "header line exceeds " +
                                     std::to_string(maxBytes) + " bytes");
            std::string line = buffer_.substr(pos_, nl - pos_);
            pos_ = nl + 1;
            return line;
        }
        if (buffer_.size() - pos_ > maxBytes)
            ioFail("socket", "header line exceeds " +
                                 std::to_string(maxBytes) + " bytes");
        if (!fill()) {
            if (pos_ == buffer_.size())
                return std::nullopt;  // Clean EOF between frames.
            ioFail("socket", "connection closed mid-line");
        }
    }
}

std::string
SocketReader::readExact(size_t n)
{
    while (buffer_.size() - pos_ < n)
        if (!fill())
            ioFail("socket", "connection closed mid-payload");
    std::string bytes = buffer_.substr(pos_, n);
    pos_ += n;
    return bytes;
}

void
writeAll(int fd, const std::string &bytes)
{
    size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n = ::send(fd, bytes.data() + sent,
                                 bytes.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ioFail("socket", "send failed");
        }
        sent += static_cast<size_t>(n);
    }
}

Fd
listenTcp(int port, int backlog, int *boundPort)
{
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        ioFail("tcp", "socket failed");
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        ioFail("tcp", "bind to 127.0.0.1:" + std::to_string(port) +
                          " failed");
    if (::listen(fd.get(), backlog) != 0)
        ioFail("tcp", "listen failed");
    if (boundPort != nullptr) {
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(fd.get(), reinterpret_cast<sockaddr *>(&bound),
                          &len) != 0)
            ioFail("tcp", "getsockname failed");
        *boundPort = ntohs(bound.sin_port);
    }
    return fd;
}

Fd
listenUnix(const std::string &path, int backlog)
{
    sockaddr_un addr{};
    if (path.empty() || path.size() >= sizeof(addr.sun_path))
        throw IoError("unix socket path unusable: '" + path + "'");
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid())
        ioFail(path, "socket failed");
    ::unlink(path.c_str());  // A stale socket file blocks bind.
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        ioFail(path, "bind failed");
    if (::listen(fd.get(), backlog) != 0)
        ioFail(path, "listen failed");
    return fd;
}

Fd
connectTcp(int port)
{
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        ioFail("tcp", "socket failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        ioFail("tcp", "connect to 127.0.0.1:" + std::to_string(port) +
                          " failed");
    return fd;
}

Fd
connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    if (path.empty() || path.size() >= sizeof(addr.sun_path))
        throw IoError("unix socket path unusable: '" + path + "'");
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid())
        ioFail(path, "socket failed");
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        ioFail(path, "connect failed");
    return fd;
}

}  // namespace service
}  // namespace geyser
