#include "algos/algos.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace geyser {

Circuit
qaoaBenchmark(int num_qubits, int edges, int rounds, uint64_t seed)
{
    // Seeded random simple graph with the requested edge count.
    const int maxEdges = num_qubits * (num_qubits - 1) / 2;
    if (edges > maxEdges)
        throw std::invalid_argument("qaoaBenchmark: too many edges");
    std::vector<std::pair<int, int>> all;
    for (int i = 0; i < num_qubits; ++i)
        for (int j = i + 1; j < num_qubits; ++j)
            all.emplace_back(i, j);
    Rng rng(seed);
    std::shuffle(all.begin(), all.end(), rng.engine());
    all.resize(static_cast<size_t>(edges));

    Circuit c(num_qubits);
    for (Qubit q = 0; q < num_qubits; ++q)
        c.h(q);
    for (int r = 0; r < rounds; ++r) {
        const double gamma = rng.uniform(0.0, kPi);
        const double beta = rng.uniform(0.0, kPi);
        for (const auto &[a, b] : all)
            c.rzz(a, b, 2.0 * gamma);
        for (Qubit q = 0; q < num_qubits; ++q)
            c.rx(q, 2.0 * beta);
    }
    return c;
}

}  // namespace geyser
