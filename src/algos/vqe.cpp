#include "algos/algos.hpp"

#include "common/rng.hpp"

namespace geyser {

Circuit
vqeBenchmark(int num_qubits, int layers, uint64_t seed)
{
    Rng rng(seed);
    Circuit c(num_qubits);
    for (int l = 0; l < layers; ++l) {
        for (Qubit q = 0; q < num_qubits; ++q) {
            c.ry(q, rng.uniform(0.0, 2.0 * kPi));
            c.rz(q, rng.uniform(0.0, 2.0 * kPi));
        }
        for (Qubit q = 0; q + 1 < num_qubits; ++q)
            c.cx(q, q + 1);
    }
    for (Qubit q = 0; q < num_qubits; ++q) {
        c.ry(q, rng.uniform(0.0, 2.0 * kPi));
        c.rz(q, rng.uniform(0.0, 2.0 * kPi));
    }
    return c;
}

}  // namespace geyser
