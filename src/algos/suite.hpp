/**
 * @file
 * The benchmark suite of paper Table 1: the ten evaluated circuits with
 * their paper-reported Baseline characteristics, so every bench can print
 * paper-vs-measured side by side.
 */
#ifndef GEYSER_ALGOS_SUITE_HPP
#define GEYSER_ALGOS_SUITE_HPP

#include <functional>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"

namespace geyser {

/** Paper-reported Baseline characteristics (Table 1). */
struct PaperRow
{
    int u3Gates = 0;
    int czGates = 0;
    long totalPulses = 0;
    long depthPulses = 0;
};

/** One suite entry. */
struct BenchmarkSpec
{
    std::string name;       ///< e.g. "adder-4".
    std::string family;     ///< e.g. "Adder".
    int numQubits = 0;
    PaperRow paper;         ///< Paper Table 1 Baseline numbers.
    std::function<Circuit()> make;
    /** Rough cost class: large circuits are skipped by quick TVD runs. */
    bool heavy = false;
};

/** All ten Table 1 benchmarks, in paper order. */
const std::vector<BenchmarkSpec> &benchmarkSuite();

/** Lookup by name; throws if unknown. */
const BenchmarkSpec &benchmarkByName(const std::string &name);

}  // namespace geyser

#endif  // GEYSER_ALGOS_SUITE_HPP
