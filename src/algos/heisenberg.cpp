#include "algos/algos.hpp"

namespace geyser {

Circuit
heisenbergBenchmark(int num_qubits, int steps, double dt)
{
    // First-order Trotterization of the 1-D Heisenberg XXX chain with a
    // transverse field (the paper's 16-qubit material-simulation
    // benchmark from ArQTiC): per step, exp(-i dt (X X + Y Y + Z Z))
    // per bond plus exp(-i dt Z) per site.
    constexpr double kJ = 1.0;
    constexpr double kField = 0.5;
    Circuit c(num_qubits);
    // Neel initial state.
    for (Qubit q = 0; q < num_qubits; ++q)
        if (q % 2 == 1)
            c.x(q);
    for (int s = 0; s < steps; ++s) {
        for (Qubit q = 0; q + 1 < num_qubits; ++q) {
            c.rxx(q, q + 1, 2.0 * kJ * dt);
            c.ryy(q, q + 1, 2.0 * kJ * dt);
            c.rzz(q, q + 1, 2.0 * kJ * dt);
        }
        for (Qubit q = 0; q < num_qubits; ++q)
            c.rz(q, 2.0 * kField * dt);
    }
    return c;
}

}  // namespace geyser
