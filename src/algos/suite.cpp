#include "algos/suite.hpp"

#include <stdexcept>

#include "algos/algos.hpp"

namespace geyser {

const std::vector<BenchmarkSpec> &
benchmarkSuite()
{
    static const std::vector<BenchmarkSpec> suite = {
        {"adder-4", "Adder", 4, {75, 24, 147, 117},
         [] { return adderBenchmark(1, true); }, false},
        {"vqe-4", "VQE", 4, {235, 74, 457, 359},
         [] { return vqeBenchmark(4, 20, 11); }, false},
        {"qaoa-5", "QAOA", 5, {123, 48, 267, 212},
         [] { return qaoaBenchmark(5, 8, 3, 23); }, false},
        {"qft-5", "QFT", 5, {113, 39, 230, 167},
         [] { return qftBenchmark(5); }, false},
        {"multiplier-5", "Multiplier", 5, {75, 23, 144, 104},
         [] { return multiplier5Benchmark(); }, false},
        {"adder-9", "Adder", 9, {380, 158, 854, 605},
         [] { return adderBenchmark(4, false); }, false},
        {"advantage-9", "Advantage", 9, {108, 32, 204, 73},
         [] { return advantageBenchmark(6, 37); }, false},
        {"qft-10", "QFT", 10, {1141, 498, 2635, 1629},
         [] { return qftBenchmark(10); }, false},
        {"multiplier-10", "Multiplier", 10, {787, 340, 1807, 1136},
         [] { return multiplier10Benchmark(); }, false},
        {"heisenberg-16", "Heisenberg", 16, {15614, 3339, 25631, 8083},
         [] { return heisenbergBenchmark(16, 37, 0.1); }, true},
    };
    return suite;
}

const BenchmarkSpec &
benchmarkByName(const std::string &name)
{
    for (const auto &spec : benchmarkSuite())
        if (spec.name == name)
            return spec;
    throw std::invalid_argument("unknown benchmark: " + name);
}

}  // namespace geyser
