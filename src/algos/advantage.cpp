#include "algos/algos.hpp"

#include "common/rng.hpp"

namespace geyser {

Circuit
advantageBenchmark(int cycles, uint64_t seed)
{
    // Sycamore-style random circuit on a 3x3 grid (paper's 9-qubit
    // "Advantage" benchmark): each cycle applies a random one-qubit gate
    // from {sqrt(X), sqrt(Y), sqrt(W)} per qubit and a patterned layer
    // of CZ gates on one of four alternating edge sets.
    constexpr int kRows = 3, kCols = 3;
    Circuit c(kRows * kCols);
    Rng rng(seed);
    auto at = [&](int r, int col) { return r * kCols + col; };

    std::vector<int> lastGate(static_cast<size_t>(c.numQubits()), -1);
    for (int cycle = 0; cycle < cycles; ++cycle) {
        for (Qubit q = 0; q < c.numQubits(); ++q) {
            int g = rng.uniformInt(3);
            while (g == lastGate[static_cast<size_t>(q)])
                g = rng.uniformInt(3);  // Sycamore never repeats a gate.
            lastGate[static_cast<size_t>(q)] = g;
            switch (g) {
              case 0:  // sqrt(X)
                c.rx(q, kPi / 2.0);
                break;
              case 1:  // sqrt(Y)
                c.ry(q, kPi / 2.0);
                break;
              default: // sqrt(W), W = (X + Y)/sqrt(2)
                c.u3(q, kPi / 2.0, -kPi / 4.0, kPi / 4.0 + kPi);
                break;
            }
        }
        // Alternating coupler patterns A/B/C/D.
        const int pattern = cycle % 4;
        if (pattern == 0 || pattern == 1) {
            for (int r = 0; r < kRows; ++r)
                for (int col = pattern % 2; col + 1 < kCols; col += 2)
                    c.cz(at(r, col), at(r, col + 1));
        } else {
            for (int col = 0; col < kCols; ++col)
                for (int r = pattern % 2; r + 1 < kRows; r += 2)
                    c.cz(at(r, col), at(r + 1, col));
        }
    }
    return c;
}

}  // namespace geyser
