#include "algos/algos.hpp"

#include <stdexcept>

namespace geyser {

Circuit
ghzCircuit(int num_qubits)
{
    if (num_qubits < 2)
        throw std::invalid_argument("ghzCircuit: need >= 2 qubits");
    Circuit c(num_qubits);
    c.h(0);
    for (Qubit q = 0; q + 1 < num_qubits; ++q)
        c.cx(q, q + 1);
    return c;
}

Circuit
bernsteinVazirani(int num_bits, uint64_t secret)
{
    if (num_bits < 1 || num_bits > 20)
        throw std::invalid_argument("bernsteinVazirani: 1..20 bits");
    // Qubits 0..n-1 are the query register, qubit n the oracle ancilla.
    Circuit c(num_bits + 1);
    c.x(num_bits);
    c.h(num_bits);
    for (Qubit q = 0; q < num_bits; ++q)
        c.h(q);
    for (Qubit q = 0; q < num_bits; ++q)
        if (secret & (uint64_t{1} << q))
            c.cx(q, num_bits);
    for (Qubit q = 0; q < num_bits; ++q)
        c.h(q);
    return c;
}

namespace {

/** Multi-controlled Z over all qubits of a 2- or 3-qubit register. */
void
controlledZAll(Circuit &c, int num_qubits)
{
    if (num_qubits == 2)
        c.cz(0, 1);
    else
        c.ccz(0, 1, 2);
}

}  // namespace

Circuit
groverSearch(int num_qubits, uint64_t marked, int iterations)
{
    if (num_qubits < 2 || num_qubits > 3)
        throw std::invalid_argument(
            "groverSearch: 2 or 3 qubits (native CZ/CCZ oracle)");
    if (marked >= (uint64_t{1} << num_qubits))
        throw std::invalid_argument("groverSearch: marked item too large");

    Circuit c(num_qubits);
    for (Qubit q = 0; q < num_qubits; ++q)
        c.h(q);
    for (int it = 0; it < iterations; ++it) {
        // Oracle: phase-flip |marked> (conjugate a CZ/CCZ with X).
        for (Qubit q = 0; q < num_qubits; ++q)
            if (!(marked & (uint64_t{1} << q)))
                c.x(q);
        controlledZAll(c, num_qubits);
        for (Qubit q = 0; q < num_qubits; ++q)
            if (!(marked & (uint64_t{1} << q)))
                c.x(q);
        // Diffusion: H X (CZ-all) X H.
        for (Qubit q = 0; q < num_qubits; ++q) {
            c.h(q);
            c.x(q);
        }
        controlledZAll(c, num_qubits);
        for (Qubit q = 0; q < num_qubits; ++q) {
            c.x(q);
            c.h(q);
        }
    }
    return c;
}

}  // namespace geyser
