#include "algos/algos.hpp"

#include <stdexcept>

namespace geyser {

namespace {

/** MAJ block of the Cuccaro adder. */
void
maj(Circuit &c, Qubit x, Qubit y, Qubit z)
{
    c.cx(z, y);
    c.cx(z, x);
    c.ccx(x, y, z);
}

/** UMA (UnMajority-and-Add) block of the Cuccaro adder. */
void
uma(Circuit &c, Qubit x, Qubit y, Qubit z)
{
    c.ccx(x, y, z);
    c.cx(z, x);
    c.cx(x, y);
}

}  // namespace

Circuit
cuccaroAdderCore(int bits, bool carry_out)
{
    if (bits < 1)
        throw std::invalid_argument("cuccaroAdderCore: bits >= 1");
    const int n = 2 * bits + 1 + (carry_out ? 1 : 0);
    Circuit c(n);
    auto b = [](int i) { return 2 * i + 1; };
    auto a = [](int i) { return 2 * i + 2; };
    const Qubit cin = 0;
    const Qubit cout = 2 * bits + 1;

    maj(c, cin, b(0), a(0));
    for (int i = 1; i < bits; ++i)
        maj(c, a(i - 1), b(i), a(i));
    if (carry_out)
        c.cx(a(bits - 1), cout);
    for (int i = bits - 1; i >= 1; --i)
        uma(c, a(i - 1), b(i), a(i));
    uma(c, cin, b(0), a(0));
    return c;
}

Circuit
adderBenchmark(int bits, bool carry_out)
{
    Circuit core = cuccaroAdderCore(bits, carry_out);
    Circuit c(core.numQubits());
    // Superposition over the a-register; X on alternating b bits.
    for (int i = 0; i < bits; ++i) {
        c.h(2 * i + 2);
        if (i % 2 == 0)
            c.x(2 * i + 1);
    }
    c.append(core);
    return c;
}

}  // namespace geyser
