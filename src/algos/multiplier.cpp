#include "algos/algos.hpp"

#include <cmath>
#include <stdexcept>

namespace geyser {

namespace {

/**
 * Doubly-controlled phase: adds e^{i theta} when both controls are set.
 * Built from CP and CX (standard construction).
 */
void
ccp(Circuit &c, Qubit c1, Qubit c2, Qubit target, double theta)
{
    c.cp(c2, target, theta / 2.0);
    c.cx(c1, c2);
    c.cp(c2, target, -theta / 2.0);
    c.cx(c1, c2);
    c.cp(c1, target, theta / 2.0);
}

}  // namespace

Circuit
toffoliMultiplierCore(int nb)
{
    if (nb < 1)
        throw std::invalid_argument("toffoliMultiplierCore: nb >= 1");
    // a0 = 0, b = 1..nb, p = nb+1..2nb. With a single a bit there are no
    // carries: p_j = a0 * b_j.
    Circuit c(1 + 2 * nb);
    for (int j = 0; j < nb; ++j)
        c.ccx(0, 1 + j, 1 + nb + j);
    return c;
}

Circuit
multiplier5Benchmark()
{
    Circuit core = toffoliMultiplierCore(2);
    Circuit c(core.numQubits());
    c.h(0);
    c.h(1);
    c.h(2);
    c.append(core);
    return c;
}

Circuit
qftMultiplierCore(int na, int nb)
{
    if (na < 1 || nb < 1)
        throw std::invalid_argument("qftMultiplierCore: registers >= 1 bit");
    const int np = na + nb;
    const int n = na + nb + np;
    Circuit c(n);
    auto a = [](int i) { return i; };
    auto b = [&](int j) { return na + j; };
    auto p = [&](int k) { return na + nb + k; };

    // No-swap QFT over the product register: afterwards qubit p(q)
    // carries the Fourier phase 2*pi * value * 2^{np-1-q} / 2^{np}.
    const Circuit fourier = [&] {
        Circuit f(n);
        for (int i = np - 1; i >= 0; --i) {
            f.h(p(i));
            for (int j = i - 1; j >= 0; --j)
                f.cp(p(j), p(i), kPi / static_cast<double>(1 << (i - j)));
        }
        return f;
    }();
    c.append(fourier);

    // Accumulate a_i * b_j * 2^{i+j} into the Fourier phases.
    for (int i = 0; i < na; ++i) {
        for (int j = 0; j < nb; ++j) {
            for (int q = 0; q < np; ++q) {
                const int power = i + j + (np - 1 - q);
                if (power >= np)
                    continue;  // Phase is a multiple of 2*pi.
                const double theta =
                    2.0 * kPi * std::pow(2.0, power) /
                    std::pow(2.0, np);
                ccp(c, a(i), b(j), p(q), theta);
            }
        }
    }

    c.append(fourier.inverted());
    return c;
}

Circuit
multiplier10Benchmark()
{
    Circuit core = qftMultiplierCore(2, 3);
    Circuit c(core.numQubits());
    for (Qubit q = 0; q < 5; ++q)  // a and b registers in superposition.
        c.h(q);
    c.append(core);
    return c;
}

}  // namespace geyser
