#include "algos/algos.hpp"

namespace geyser {

Circuit
qftCore(int num_qubits, bool do_swaps)
{
    Circuit c(num_qubits);
    for (int i = num_qubits - 1; i >= 0; --i) {
        c.h(i);
        for (int j = i - 1; j >= 0; --j)
            c.cp(j, i, kPi / static_cast<double>(1 << (i - j)));
    }
    if (do_swaps) {
        for (int i = 0; i < num_qubits / 2; ++i)
            c.swap(i, num_qubits - 1 - i);
    }
    return c;
}

Circuit
qftBenchmark(int num_qubits)
{
    Circuit c(num_qubits);
    // A non-trivial input: X on alternate qubits, H on the others.
    for (Qubit q = 0; q < num_qubits; ++q) {
        if (q % 2 == 0)
            c.x(q);
        else
            c.h(q);
    }
    c.append(qftCore(num_qubits, true));
    return c;
}

}  // namespace geyser
