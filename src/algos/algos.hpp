/**
 * @file
 * Generators for the paper's benchmark circuits (Table 1): Cuccaro
 * ripple-carry adders, a hardware-efficient VQE ansatz, QAOA MaxCut,
 * QFT, quantum multipliers (Toffoli-based and Draper/QFT-based), a
 * Sycamore-style "Advantage" random circuit, and 1-D Heisenberg Trotter
 * evolution. All stochastic generators take explicit seeds.
 */
#ifndef GEYSER_ALGOS_ALGOS_HPP
#define GEYSER_ALGOS_ALGOS_HPP

#include <cstdint>

#include "circuit/circuit.hpp"

namespace geyser {

/**
 * Cuccaro ripple-carry adder core (no input prep). Layout: qubit 0 is
 * the incoming carry; bit i uses qubits 2i+1 (b_i, receives the sum) and
 * 2i+2 (a_i, restored); with carry_out, qubit 2*bits+1 receives the
 * final carry. Width = 2*bits + 1 + (carry_out ? 1 : 0).
 */
Circuit cuccaroAdderCore(int bits, bool carry_out);

/**
 * The Table 1 "Adder" benchmark: Cuccaro adder with Hadamard prep on
 * the a-register and X prep on half the b-register. bits=1 with carry
 * gives the 4-qubit row; bits=4 without carry gives the 9-qubit row.
 */
Circuit adderBenchmark(int bits, bool carry_out);

/**
 * Hardware-efficient VQE ansatz: `layers` of (RY, RZ) rotations per
 * qubit followed by a CX chain, with seeded random angles.
 */
Circuit vqeBenchmark(int num_qubits, int layers, uint64_t seed);

/**
 * QAOA MaxCut circuit: H prep, then p rounds of RZZ cost layers over a
 * seeded random graph with `edges` edges and RX mixer layers.
 */
Circuit qaoaBenchmark(int num_qubits, int edges, int rounds, uint64_t seed);

/** Textbook QFT over n qubits (controlled-phase cascade + final swaps). */
Circuit qftCore(int num_qubits, bool do_swaps);

/** The Table 1 QFT benchmark: X/H input prep followed by the QFT. */
Circuit qftBenchmark(int num_qubits);

/**
 * Toffoli multiplier core: p = a * b for a 1-bit a-register and nb-bit
 * b-register (one CCX per product bit, no carries needed). Layout:
 * a0 = qubit 0, b = qubits 1..nb, p = qubits nb+1..2nb.
 */
Circuit toffoliMultiplierCore(int nb);

/** The 5-qubit Table 1 Multiplier: H prep + 1x2-bit Toffoli multiplier. */
Circuit multiplier5Benchmark();

/**
 * Draper (QFT) multiplier core: p += a * b with na-bit a, nb-bit b and
 * (na+nb)-bit p via doubly-controlled phases in the Fourier domain.
 * Layout: a = qubits 0..na-1, b = na..na+nb-1, p = the rest.
 */
Circuit qftMultiplierCore(int na, int nb);

/** The 10-qubit Table 1 Multiplier: H prep + 2x3-bit Draper multiplier. */
Circuit multiplier10Benchmark();

/**
 * Sycamore-style random circuit ("Advantage"): `cycles` of random
 * one-qubit gates plus patterned CZ layers on a 3x3 grid.
 */
Circuit advantageBenchmark(int cycles, uint64_t seed);

/**
 * 1-D Heisenberg chain Trotter evolution: Neel-state prep, then `steps`
 * first-order Trotter steps of RXX+RYY+RZZ per bond plus RZ fields.
 */
Circuit heisenbergBenchmark(int num_qubits, int steps, double dt);

/** GHZ-state preparation: H then a CX chain. */
Circuit ghzCircuit(int num_qubits);

/**
 * Bernstein-Vazirani: recovers `secret` in one oracle query. Width is
 * num_bits + 1 (oracle ancilla is the top qubit); the ideal output has
 * the query register equal to `secret` with certainty.
 */
Circuit bernsteinVazirani(int num_bits, uint64_t secret);

/**
 * Grover search over 2 or 3 qubits with a native CZ/CCZ phase oracle —
 * a natural fit for neutral atoms (the 3-qubit oracle is one CCZ).
 */
Circuit groverSearch(int num_qubits, uint64_t marked, int iterations);

}  // namespace geyser

#endif  // GEYSER_ALGOS_ALGOS_HPP
