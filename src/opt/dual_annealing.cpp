#include "opt/dual_annealing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/types.hpp"
#include "opt/nelder_mead.hpp"

namespace geyser {

namespace {

/** Clamp x into the box. */
void
clampToBox(std::vector<double> &x, const std::vector<double> &lo,
           const std::vector<double> &hi)
{
    for (size_t i = 0; i < x.size(); ++i)
        x[i] = std::clamp(x[i], lo[i], hi[i]);
}

}  // namespace

OptResult
dualAnnealing(const Objective &f, const std::vector<double> &lower,
              const std::vector<double> &upper,
              const DualAnnealingOptions &options)
{
    if (lower.size() != upper.size() || lower.empty())
        throw std::invalid_argument("dualAnnealing: bad bounds");
    const size_t n = lower.size();
    Rng rng(options.seed);

    OptResult result;
    auto evaluate = [&](const std::vector<double> &x) {
        ++result.evaluations;
        return f(x);
    };

    // Random start inside the box.
    std::vector<double> x(n);
    for (size_t i = 0; i < n; ++i)
        x[i] = rng.uniform(lower[i], upper[i]);
    double e = evaluate(x);
    result.x = x;
    result.value = e;

    auto maybePolish = [&]() {
        if (!options.localPolish)
            return;
        NelderMeadOptions nm;
        nm.initialStep = 0.3;
        nm.maxIterations = 300;
        const auto polished = nelderMead(f, result.x, nm);
        result.evaluations += polished.evaluations;
        if (polished.value < result.value) {
            result.value = polished.value;
            result.x = polished.x;
            clampToBox(result.x, lower, upper);
        }
    };

    const double t0 = options.initialTemperature;
    const double tRestart = t0 * options.restartTemperatureRatio;
    // Visiting-step scale relative to the box size.
    std::vector<double> span(n);
    for (size_t i = 0; i < n; ++i)
        span[i] = upper[i] - lower[i];

    int cycle = 0;
    while (result.evaluations < options.maxEvaluations &&
           result.value > options.targetValue) {
        // One annealing cycle: temperature decays with the generalized
        // visiting schedule t_q = t0 * (2^{qv-1}-1) / ((1+k)^{qv-1}-1).
        constexpr double kQv = 2.62;
        const double qvm1 = kQv - 1.0;
        const double num = std::pow(2.0, qvm1) - 1.0;
        for (int k = 1; k <= options.maxIterations; ++k) {
            const double temp =
                t0 * num / (std::pow(1.0 + k, qvm1) - 1.0);
            if (temp < tRestart)
                break;
            if (result.evaluations >= options.maxEvaluations ||
                result.value <= options.targetValue)
                break;

            // Heavy-tailed (Cauchy) visiting move scaled by the current
            // temperature fraction, one trial per annealing step.
            std::vector<double> y = x;
            const double scale =
                std::min(1.0, temp / t0 + 1e-3);
            for (size_t i = 0; i < n; ++i) {
                const double u = rng.uniform(-0.5, 0.5);
                const double step =
                    scale * span[i] * 0.1 * std::tan(kPi * u);
                y[i] += std::clamp(step, -span[i], span[i]);
            }
            clampToBox(y, lower, upper);

            const double ey = evaluate(y);
            bool accept = ey <= e;
            if (!accept) {
                const double prob = std::exp(-(ey - e) / std::max(temp, 1e-12));
                accept = rng.bernoulli(prob);
            }
            if (accept) {
                x = y;
                e = ey;
                if (e < result.value) {
                    result.value = e;
                    result.x = x;
                }
            }
        }
        maybePolish();
        if (result.value <= options.targetValue ||
            result.evaluations >= options.maxEvaluations)
            break;
        // Reanneal: alternate fresh uniform restarts (basin hopping)
        // with perturbations of the best-known point.
        ++cycle;
        if (cycle % 2 == 1) {
            for (size_t i = 0; i < n; ++i)
                x[i] = rng.uniform(lower[i], upper[i]);
        } else {
            x = result.x;
            for (size_t i = 0; i < n; ++i)
                x[i] = std::clamp(x[i] + 0.1 * span[i] * rng.normal(),
                                  lower[i], upper[i]);
        }
        e = evaluate(x);
    }

    maybePolish();
    return result;
}

}  // namespace geyser
