/**
 * @file
 * Shared types for the numeric optimizers used in block composition.
 */
#ifndef GEYSER_OPT_OBJECTIVE_HPP
#define GEYSER_OPT_OBJECTIVE_HPP

#include <functional>
#include <vector>

namespace geyser {

/** A real objective over a real parameter vector. */
using Objective = std::function<double(const std::vector<double> &)>;

/** Outcome of an optimization run. */
struct OptResult
{
    std::vector<double> x;
    double value = 0.0;
    int evaluations = 0;
};

/**
 * Wrap an objective so every call bumps `count`. The composer charges
 * annealing probes against the per-block evaluation budget this way
 * (its objective closes over an AnsatzEvaluator, so the optimizer
 * itself never needs to know about counting). `count` must outlive the
 * returned objective.
 */
inline Objective
countedObjective(Objective f, long &count)
{
    return [f = std::move(f), &count](const std::vector<double> &x) {
        ++count;
        return f(x);
    };
}

}  // namespace geyser

#endif  // GEYSER_OPT_OBJECTIVE_HPP
