/**
 * @file
 * Shared types for the numeric optimizers used in block composition.
 */
#ifndef GEYSER_OPT_OBJECTIVE_HPP
#define GEYSER_OPT_OBJECTIVE_HPP

#include <functional>
#include <vector>

namespace geyser {

/** A real objective over a real parameter vector. */
using Objective = std::function<double(const std::vector<double> &)>;

/** Outcome of an optimization run. */
struct OptResult
{
    std::vector<double> x;
    double value = 0.0;
    int evaluations = 0;
};

}  // namespace geyser

#endif  // GEYSER_OPT_OBJECTIVE_HPP
