#include "opt/nelder_mead.hpp"

#include <algorithm>
#include <cmath>

namespace geyser {

OptResult
nelderMead(const Objective &f, const std::vector<double> &x0,
           const NelderMeadOptions &options)
{
    const size_t n = x0.size();
    OptResult result;

    // Build the initial simplex: x0 plus one offset vertex per dimension.
    std::vector<std::vector<double>> simplex(n + 1, x0);
    for (size_t i = 0; i < n; ++i)
        simplex[i + 1][i] += options.initialStep;

    std::vector<double> values(n + 1);
    for (size_t i = 0; i <= n; ++i) {
        values[i] = f(simplex[i]);
        ++result.evaluations;
    }

    constexpr double kAlpha = 1.0;   // reflection
    constexpr double kGamma = 2.0;   // expansion
    constexpr double kRho = 0.5;     // contraction
    constexpr double kSigma = 0.5;   // shrink

    std::vector<size_t> order(n + 1);
    for (int iter = 0; iter < options.maxIterations; ++iter) {
        for (size_t i = 0; i <= n; ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](size_t a, size_t b) { return values[a] < values[b]; });
        const size_t best = order[0];
        const size_t worst = order[n];
        const size_t second = order[n - 1];

        if (values[worst] - values[best] < options.tolerance)
            break;

        // Centroid of all but the worst vertex.
        std::vector<double> centroid(n, 0.0);
        for (size_t i = 0; i <= n; ++i) {
            if (i == worst)
                continue;
            for (size_t d = 0; d < n; ++d)
                centroid[d] += simplex[i][d];
        }
        for (auto &c : centroid)
            c /= static_cast<double>(n);

        auto blend = [&](double coeff) {
            std::vector<double> x(n);
            for (size_t d = 0; d < n; ++d)
                x[d] = centroid[d] + coeff * (centroid[d] - simplex[worst][d]);
            return x;
        };

        const auto reflected = blend(kAlpha);
        const double fr = f(reflected);
        ++result.evaluations;

        if (fr < values[best]) {
            const auto expanded = blend(kGamma);
            const double fe = f(expanded);
            ++result.evaluations;
            if (fe < fr) {
                simplex[worst] = expanded;
                values[worst] = fe;
            } else {
                simplex[worst] = reflected;
                values[worst] = fr;
            }
        } else if (fr < values[second]) {
            simplex[worst] = reflected;
            values[worst] = fr;
        } else {
            const auto contracted = blend(-kRho);
            const double fc = f(contracted);
            ++result.evaluations;
            if (fc < values[worst]) {
                simplex[worst] = contracted;
                values[worst] = fc;
            } else {
                // Shrink toward the best vertex.
                for (size_t i = 0; i <= n; ++i) {
                    if (i == best)
                        continue;
                    for (size_t d = 0; d < n; ++d)
                        simplex[i][d] = simplex[best][d] +
                            kSigma * (simplex[i][d] - simplex[best][d]);
                    values[i] = f(simplex[i]);
                    ++result.evaluations;
                }
            }
        }
    }

    size_t best = 0;
    for (size_t i = 1; i <= n; ++i)
        if (values[i] < values[best])
            best = i;
    result.x = simplex[best];
    result.value = values[best];
    return result;
}

}  // namespace geyser
