/**
 * @file
 * Nelder-Mead downhill simplex — the local-search component of the dual
 * annealing optimizer (paper Sec 3.4 uses scipy's dual annealing, which
 * pairs a generalized-annealing global phase with local minimization).
 */
#ifndef GEYSER_OPT_NELDER_MEAD_HPP
#define GEYSER_OPT_NELDER_MEAD_HPP

#include "opt/objective.hpp"

namespace geyser {

/** Options for a Nelder-Mead run. */
struct NelderMeadOptions
{
    double initialStep = 0.5;  ///< Simplex edge length around x0.
    int maxIterations = 2000;
    double tolerance = 1e-12;  ///< Simplex value-spread stopping threshold.
};

/** Minimize f starting from x0. */
OptResult nelderMead(const Objective &f, const std::vector<double> &x0,
                     const NelderMeadOptions &options = {});

}  // namespace geyser

#endif  // GEYSER_OPT_NELDER_MEAD_HPP
