/**
 * @file
 * Dual annealing: a generalized simulated annealing global search with a
 * heavy-tailed (Cauchy) visiting distribution, geometric-restart
 * reannealing, and Nelder-Mead local polish on improvement — the C++
 * counterpart of scipy's dual_annealing, which the paper uses to minimize
 * the Hilbert-Schmidt distance during block composition (Sec 3.4).
 */
#ifndef GEYSER_OPT_DUAL_ANNEALING_HPP
#define GEYSER_OPT_DUAL_ANNEALING_HPP

#include "common/rng.hpp"
#include "opt/objective.hpp"

namespace geyser {

/** Options for a dual annealing run. */
struct DualAnnealingOptions
{
    double initialTemperature = 5230.0;  ///< scipy default.
    double restartTemperatureRatio = 2e-5;
    int maxIterations = 1000;            ///< Annealing steps per restart cycle.
    int maxEvaluations = 200000;         ///< Global evaluation budget.
    double targetValue = -1e300;         ///< Early stop when reached.
    bool localPolish = true;             ///< Nelder-Mead around improvements.
    uint64_t seed = 42;
};

/**
 * Minimize f within the box [lower, upper]^n. Stops at the evaluation
 * budget, the iteration budget, or as soon as the best value drops to
 * targetValue.
 */
OptResult dualAnnealing(const Objective &f, const std::vector<double> &lower,
                        const std::vector<double> &upper,
                        const DualAnnealingOptions &options = {});

}  // namespace geyser

#endif  // GEYSER_OPT_DUAL_ANNEALING_HPP
