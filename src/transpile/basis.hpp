/**
 * @file
 * Basis translation: lower logical gates to the neutral-atom physical
 * basis {U3, CZ} (paper Sec 3.2 — the mapper is given basis gates
 * {U3, CZ}; CCZ gates are only ever *introduced* later by Geyser's
 * composition step, so lowering never emits them).
 */
#ifndef GEYSER_TRANSPILE_BASIS_HPP
#define GEYSER_TRANSPILE_BASIS_HPP

#include "circuit/circuit.hpp"

namespace geyser {

/**
 * Lower every gate of `circuit` to {U3, CZ}. Multi-qubit logical gates
 * expand through their textbook CX/CZ decompositions (e.g. a Toffoli
 * becomes 6 CX-derived CZ plus one-qubit gates — the 26-pulse pattern of
 * paper Fig 11 once fused); one-qubit gates become a single U3. No
 * optimization is performed (that is OptiMap's job).
 */
Circuit decomposeToBasis(const Circuit &circuit);

/** Append the lowering of a single gate to `out`. */
void lowerGate(const Gate &gate, Circuit &out);

/** The U3 angles of a one-qubit logical gate. */
Gate u3FromGate(const Gate &gate);

}  // namespace geyser

#endif  // GEYSER_TRANSPILE_BASIS_HPP
