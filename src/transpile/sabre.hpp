/**
 * @file
 * SABRE-style lookahead SWAP router (Li, Ding, Xie — ASPLOS'19), the
 * algorithm behind the Qiskit routing pass the paper's mapping step
 * uses. Compared to the shortest-path walker in router.hpp it chooses
 * each SWAP by scoring all candidate SWAPs against the current front
 * layer plus a lookahead window, usually inserting fewer SWAPs on
 * congested circuits.
 */
#ifndef GEYSER_TRANSPILE_SABRE_HPP
#define GEYSER_TRANSPILE_SABRE_HPP

#include "transpile/router.hpp"

namespace geyser {

/** Tuning knobs for the SABRE search. */
struct SabreOptions
{
    /** Gates beyond the front layer contributing to the score. */
    int lookaheadWindow = 20;
    /** Relative weight of the lookahead term. */
    double lookaheadWeight = 0.5;
    /** Decay applied to recently swapped atoms (avoids ping-pong). */
    double decay = 0.001;
};

/**
 * Route a physical-basis circuit onto `topo` with SABRE lookahead
 * scoring, starting from the given initial layout. Output contract is
 * identical to route(): every multi-qubit gate in the result acts on
 * adjacent atoms and the RoutedCircuit layouts relate logical qubits to
 * atoms before/after.
 */
RoutedCircuit routeSabre(const Circuit &circuit, const Topology &topo,
                         const std::vector<Qubit> &initial_layout,
                         const SabreOptions &options = {});

/** routeSabre() with the interaction-aware greedy initial layout. */
RoutedCircuit routeSabre(const Circuit &circuit, const Topology &topo,
                         const SabreOptions &options = {});

}  // namespace geyser

#endif  // GEYSER_TRANSPILE_SABRE_HPP
