#include "transpile/sabre.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "common/error.hpp"
#include "obs/obs.hpp"
#include "transpile/basis.hpp"

namespace geyser {

namespace {

/** Per-qubit frontier view of the circuit's dependency DAG. */
class Frontier
{
  public:
    explicit Frontier(const Circuit &circuit)
        : circuit_(circuit), opLists_(circuit.qubitOpLists()),
          position_(opLists_.size(), 0), executed_(circuit.size(), false)
    {
    }

    /** True if the gate is ready (frontier op of all its qubits). */
    bool ready(int gate) const
    {
        const Gate &g = circuit_.gates()[static_cast<size_t>(gate)];
        for (int i = 0; i < g.numQubits(); ++i) {
            const auto &list = opLists_[static_cast<size_t>(g.qubit(i))];
            const size_t pos = position_[static_cast<size_t>(g.qubit(i))];
            if (pos >= list.size() || list[pos] != gate)
                return false;
        }
        return true;
    }

    /** Mark a gate executed and advance its qubits' frontiers. */
    void execute(int gate)
    {
        const Gate &g = circuit_.gates()[static_cast<size_t>(gate)];
        executed_[static_cast<size_t>(gate)] = true;
        for (int i = 0; i < g.numQubits(); ++i)
            ++position_[static_cast<size_t>(g.qubit(i))];
    }

    bool executed(int gate) const
    {
        return executed_[static_cast<size_t>(gate)];
    }

    /** All currently ready gate indices. */
    std::vector<int> frontLayer() const
    {
        std::vector<int> front;
        for (size_t q = 0; q < opLists_.size(); ++q) {
            const auto &list = opLists_[q];
            const size_t pos = position_[q];
            if (pos >= list.size())
                continue;
            const int gate = list[pos];
            if (ready(gate) &&
                std::find(front.begin(), front.end(), gate) == front.end())
                front.push_back(gate);
        }
        return front;
    }

    /**
     * The next up-to-`window` unexecuted two-qubit gates in program
     * order (the SABRE lookahead set).
     */
    std::vector<int> lookahead(int window) const
    {
        std::vector<int> out;
        for (size_t i = 0; i < circuit_.size() &&
                           static_cast<int>(out.size()) < window;
             ++i) {
            if (executed_[i])
                continue;
            if (circuit_.gates()[i].numQubits() == 2)
                out.push_back(static_cast<int>(i));
        }
        return out;
    }

  private:
    const Circuit &circuit_;
    std::vector<std::vector<int>> opLists_;
    std::vector<size_t> position_;
    std::vector<bool> executed_;
};

}  // namespace

RoutedCircuit
routeSabre(const Circuit &circuit, const Topology &topo,
           const std::vector<Qubit> &initial_layout,
           const SabreOptions &options)
{
    if (!circuit.isPhysical())
        throw ValidationError("routeSabre: physical basis required");
    if (circuit.numQubits() > topo.numAtoms())
        throw ValidationError("routeSabre: not enough atoms");
    if (initial_layout.size() != static_cast<size_t>(circuit.numQubits()))
        throw ValidationError("routeSabre: bad initial layout");

    RoutedCircuit result;
    result.circuit.setNumQubits(topo.numAtoms());
    result.initialLayout = initial_layout;

    std::vector<Qubit> l2a = initial_layout;
    std::vector<Qubit> a2l(static_cast<size_t>(topo.numAtoms()), -1);
    for (size_t l = 0; l < l2a.size(); ++l)
        a2l[static_cast<size_t>(l2a[l])] = static_cast<Qubit>(l);

    std::vector<double> decay(static_cast<size_t>(topo.numAtoms()), 1.0);
    Frontier frontier(circuit);

    auto gateDistance = [&](int gate) {
        const Gate &g = circuit.gates()[static_cast<size_t>(gate)];
        return topo.hopDistance(l2a[static_cast<size_t>(g.qubit(0))],
                                l2a[static_cast<size_t>(g.qubit(1))]);
    };

    auto emitMapped = [&](int gate) {
        Gate mapped = circuit.gates()[static_cast<size_t>(gate)];
        for (int i = 0; i < mapped.numQubits(); ++i)
            mapped.setQubit(i, l2a[static_cast<size_t>(mapped.qubit(i))]);
        result.circuit.append(mapped);
        frontier.execute(gate);
    };

    auto applySwap = [&](int atom_a, int atom_b) {
        lowerGate(Gate(GateKind::SWAP, atom_a, atom_b), result.circuit);
        const Qubit la = a2l[static_cast<size_t>(atom_a)];
        const Qubit lb = a2l[static_cast<size_t>(atom_b)];
        if (la >= 0)
            l2a[static_cast<size_t>(la)] = atom_b;
        if (lb >= 0)
            l2a[static_cast<size_t>(lb)] = atom_a;
        std::swap(a2l[static_cast<size_t>(atom_a)],
                  a2l[static_cast<size_t>(atom_b)]);
        decay[static_cast<size_t>(atom_a)] += options.decay;
        decay[static_cast<size_t>(atom_b)] += options.decay;
        ++result.swapsInserted;
        static obs::Counter &swaps = obs::counter("sabre.swaps");
        swaps.add();
    };

    int sinceProgress = 0;
    for (;;) {
        // Drain every executable gate.
        bool progressed = true;
        while (progressed) {
            progressed = false;
            for (const int gate : frontier.frontLayer()) {
                const Gate &g = circuit.gates()[static_cast<size_t>(gate)];
                if (g.numQubits() == 1 ||
                    (g.numQubits() == 2 && gateDistance(gate) == 1)) {
                    emitMapped(gate);
                    progressed = true;
                }
            }
            if (progressed)
                sinceProgress = 0;
        }

        const auto front = frontier.frontLayer();
        if (front.empty())
            break;  // All gates routed.

        // Candidate SWAPs: every interaction edge touching an atom that
        // hosts a qubit of a front-layer gate.
        std::vector<std::array<int, 2>> candidates;
        for (const int gate : front) {
            const Gate &g = circuit.gates()[static_cast<size_t>(gate)];
            for (int i = 0; i < g.numQubits(); ++i) {
                const int atom = l2a[static_cast<size_t>(g.qubit(i))];
                for (const int nb : topo.neighbors(atom)) {
                    std::array<int, 2> edge{std::min(atom, nb),
                                            std::max(atom, nb)};
                    if (std::find(candidates.begin(), candidates.end(),
                                  edge) == candidates.end())
                        candidates.push_back(edge);
                }
            }
        }

        const auto look = frontier.lookahead(options.lookaheadWindow);
        static obs::Counter &lookaheadHits = obs::counter("sabre.lookahead_hits");
        lookaheadHits.add(static_cast<long>(look.size()));
        double bestScore = std::numeric_limits<double>::infinity();
        std::array<int, 2> bestSwap{-1, -1};
        for (const auto &edge : candidates) {
            // Tentatively apply the swap to the layout.
            const Qubit la = a2l[static_cast<size_t>(edge[0])];
            const Qubit lb = a2l[static_cast<size_t>(edge[1])];
            if (la >= 0)
                l2a[static_cast<size_t>(la)] = edge[1];
            if (lb >= 0)
                l2a[static_cast<size_t>(lb)] = edge[0];

            double frontCost = 0.0;
            for (const int gate : front)
                frontCost += gateDistance(gate);
            frontCost /= static_cast<double>(front.size());
            double lookCost = 0.0;
            if (!look.empty()) {
                for (const int gate : look)
                    lookCost += gateDistance(gate);
                lookCost /= static_cast<double>(look.size());
            }
            const double score =
                std::max(decay[static_cast<size_t>(edge[0])],
                         decay[static_cast<size_t>(edge[1])]) *
                (frontCost + options.lookaheadWeight * lookCost);

            // Undo the tentative swap.
            if (la >= 0)
                l2a[static_cast<size_t>(la)] = edge[0];
            if (lb >= 0)
                l2a[static_cast<size_t>(lb)] = edge[1];

            if (score < bestScore) {
                bestScore = score;
                bestSwap = edge;
            }
        }
        if (bestSwap[0] < 0)
            throw std::logic_error("routeSabre: no candidate swaps");
        applySwap(bestSwap[0], bestSwap[1]);

        // Anti-livelock: if many swaps pass with no gate becoming
        // executable, reset the decay table (standard SABRE practice).
        if (++sinceProgress > 4 * topo.numAtoms()) {
            std::fill(decay.begin(), decay.end(), 1.0);
            sinceProgress = 0;
        }
    }

    result.finalLayout = l2a;
    return result;
}

RoutedCircuit
routeSabre(const Circuit &circuit, const Topology &topo,
           const SabreOptions &options)
{
    return routeSabre(circuit, topo, chooseInitialLayout(circuit, topo),
                      options);
}

}  // namespace geyser
