#include "transpile/basis.hpp"

#include <stdexcept>

#include "common/error.hpp"
#include "transpile/zyz.hpp"

namespace geyser {

namespace {

/** Emit H as U3(pi/2, 0, pi). */
void
emitH(Circuit &out, Qubit q)
{
    out.u3(q, kPi / 2.0, 0.0, kPi);
}

/** Emit CX(control, target) as (H t)(CZ)(H t). */
void
emitCx(Circuit &out, Qubit control, Qubit target)
{
    emitH(out, target);
    out.cz(control, target);
    emitH(out, target);
}

/** Emit P(lambda) as U3(0, 0, lambda). */
void
emitP(Circuit &out, Qubit q, double lambda)
{
    out.u3(q, 0.0, 0.0, lambda);
}

/**
 * Emit the textbook Toffoli-core phase network: CCZ(a, b, c) built from
 * 6 CX and 7 T/Tdg phase gates (paper Fig 11 modulo 1q fusion).
 */
void
emitCcz(Circuit &out, Qubit a, Qubit b, Qubit c)
{
    const double t = kPi / 4.0;
    emitCx(out, b, c);
    emitP(out, c, -t);
    emitCx(out, a, c);
    emitP(out, c, t);
    emitCx(out, b, c);
    emitP(out, c, -t);
    emitCx(out, a, c);
    emitP(out, c, t);
    emitP(out, b, t);
    emitCx(out, a, b);
    emitP(out, a, t);
    emitP(out, b, -t);
    emitCx(out, a, b);
}

}  // namespace

Gate
u3FromGate(const Gate &gate)
{
    if (gate.numQubits() != 1)
        throw ValidationError("u3FromGate: not a one-qubit gate");
    const U3Params p = u3FromMatrix(gate.matrix());
    return Gate(GateKind::U3, gate.qubit(0), p.theta, p.phi, p.lambda);
}

void
lowerGate(const Gate &gate, Circuit &out)
{
    switch (gate.kind()) {
      case GateKind::U3:
      case GateKind::CZ:
        out.append(gate);
        return;
      case GateKind::CCZ:
        emitCcz(out, gate.qubit(0), gate.qubit(1), gate.qubit(2));
        return;
      case GateKind::CX:
        emitCx(out, gate.qubit(0), gate.qubit(1));
        return;
      case GateKind::CP: {
        // CP(l) = P(l/2) a; P(l/2) b; CX a,b; P(-l/2) b; CX a,b.
        const double half = gate.param(0) / 2.0;
        const Qubit a = gate.qubit(0), b = gate.qubit(1);
        emitP(out, a, half);
        emitP(out, b, half);
        emitCx(out, a, b);
        emitP(out, b, -half);
        emitCx(out, a, b);
        return;
      }
      case GateKind::RZZ: {
        const Qubit a = gate.qubit(0), b = gate.qubit(1);
        emitCx(out, a, b);
        out.u3(b, 0.0, 0.0, gate.param(0));  // RZ up to phase
        emitCx(out, a, b);
        // Restore the RZZ phase convention: the U3(0,0,theta) form of RZ
        // differs from RZ(theta) only by a global phase, which TVD/HSD
        // metrics ignore.
        return;
      }
      case GateKind::RXX: {
        const Qubit a = gate.qubit(0), b = gate.qubit(1);
        emitH(out, a);
        emitH(out, b);
        lowerGate(Gate(GateKind::RZZ, a, b, gate.param(0)), out);
        emitH(out, a);
        emitH(out, b);
        return;
      }
      case GateKind::RYY: {
        const Qubit a = gate.qubit(0), b = gate.qubit(1);
        // Conjugate RZZ by RX(pi/2).
        out.u3(a, kPi / 2.0, -kPi / 2.0, kPi / 2.0);
        out.u3(b, kPi / 2.0, -kPi / 2.0, kPi / 2.0);
        lowerGate(Gate(GateKind::RZZ, a, b, gate.param(0)), out);
        out.u3(a, kPi / 2.0, kPi / 2.0, -kPi / 2.0);
        out.u3(b, kPi / 2.0, kPi / 2.0, -kPi / 2.0);
        return;
      }
      case GateKind::SWAP: {
        const Qubit a = gate.qubit(0), b = gate.qubit(1);
        emitCx(out, a, b);
        emitCx(out, b, a);
        emitCx(out, a, b);
        return;
      }
      case GateKind::CCX: {
        const Qubit a = gate.qubit(0), b = gate.qubit(1), c = gate.qubit(2);
        emitH(out, c);
        emitCcz(out, a, b, c);
        emitH(out, c);
        return;
      }
      default:
        // Remaining kinds are one-qubit logical gates.
        out.append(u3FromGate(gate));
        return;
    }
}

Circuit
decomposeToBasis(const Circuit &circuit)
{
    Circuit out(circuit.numQubits());
    for (const auto &g : circuit.gates())
        lowerGate(g, out);
    return out;
}

}  // namespace geyser
