/**
 * @file
 * One-qubit resynthesis: recover U3(theta, phi, lambda) angles (plus a
 * global phase) from an arbitrary 2x2 unitary. This powers single-qubit
 * gate fusion (any product of one-qubit gates collapses to one U3) and
 * the analytic shortcut in block composition.
 */
#ifndef GEYSER_TRANSPILE_ZYZ_HPP
#define GEYSER_TRANSPILE_ZYZ_HPP

#include "circuit/gate.hpp"
#include "linalg/matrix.hpp"

namespace geyser {

/** U3 angles plus the global phase gamma: V = e^{i gamma} U3(...). */
struct U3Params
{
    double theta = 0.0;
    double phi = 0.0;
    double lambda = 0.0;
    double phase = 0.0;
};

/**
 * Decompose a 2x2 unitary into U3 angles. The reconstruction
 * e^{i phase} U3(theta, phi, lambda) equals the input to ~1e-12.
 * Throws if the input is not 2x2 or not unitary.
 */
U3Params u3FromMatrix(const Matrix &u);

/** True if the 2x2 unitary is the identity up to global phase. */
bool isIdentityUpToPhase(const Matrix &u, double tol = 1e-9);

/** True if the 2x2 unitary is diagonal (commutes with CZ/CCZ). */
bool isDiagonal(const Matrix &u, double tol = 1e-9);

}  // namespace geyser

#endif  // GEYSER_TRANSPILE_ZYZ_HPP
