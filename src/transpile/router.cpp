#include "transpile/router.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/error.hpp"
#include "obs/obs.hpp"
#include "transpile/basis.hpp"

namespace geyser {

namespace {

/** Emit a physical SWAP (3 CX worth of gates) between adjacent atoms. */
void
emitSwap(Circuit &out, Qubit a, Qubit b)
{
    lowerGate(Gate(GateKind::SWAP, a, b), out);
}

}  // namespace

RoutedCircuit
route(const Circuit &circuit, const Topology &topo)
{
    std::vector<Qubit> trivial(static_cast<size_t>(circuit.numQubits()));
    std::iota(trivial.begin(), trivial.end(), 0);
    return route(circuit, topo, trivial);
}

RoutedCircuit
route(const Circuit &circuit, const Topology &topo,
      const std::vector<Qubit> &initial_layout)
{
    if (!circuit.isPhysical())
        throw ValidationError("route: circuit must be in {U3, CZ} basis");
    if (circuit.numQubits() > topo.numAtoms())
        throw ValidationError("route: not enough atoms for circuit");
    if (initial_layout.size() != static_cast<size_t>(circuit.numQubits()))
        throw ValidationError("route: bad initial layout size");

    RoutedCircuit result;
    result.circuit.setNumQubits(topo.numAtoms());

    // logical -> atom and its inverse.
    std::vector<Qubit> l2a = initial_layout;
    std::vector<Qubit> a2l(static_cast<size_t>(topo.numAtoms()), -1);
    for (size_t l = 0; l < l2a.size(); ++l)
        a2l[static_cast<size_t>(l2a[l])] = static_cast<Qubit>(l);
    result.initialLayout = l2a;

    auto swap_atoms = [&](Qubit x, Qubit y) {
        emitSwap(result.circuit, x, y);
        const Qubit lx = a2l[static_cast<size_t>(x)];
        const Qubit ly = a2l[static_cast<size_t>(y)];
        if (lx >= 0)
            l2a[static_cast<size_t>(lx)] = y;
        if (ly >= 0)
            l2a[static_cast<size_t>(ly)] = x;
        std::swap(a2l[static_cast<size_t>(x)], a2l[static_cast<size_t>(y)]);
        ++result.swapsInserted;
        static obs::Counter &swaps = obs::counter("route.swaps");
        swaps.add();
    };

    for (const auto &g : circuit.gates()) {
        if (g.numQubits() == 1) {
            Gate mapped = g;
            mapped.setQubit(0, l2a[static_cast<size_t>(g.qubit(0))]);
            result.circuit.append(mapped);
            continue;
        }
        if (g.numQubits() != 2)
            throw InternalError("route: unexpected 3-qubit gate");
        Qubit a = l2a[static_cast<size_t>(g.qubit(0))];
        Qubit b = l2a[static_cast<size_t>(g.qubit(1))];
        if (!topo.areAdjacent(a, b)) {
            // Walk a's state along a shortest path until adjacent to b.
            const auto path = topo.shortestPath(a, b);
            for (size_t i = 0; i + 2 < path.size(); ++i)
                swap_atoms(path[i], path[i + 1]);
            a = l2a[static_cast<size_t>(g.qubit(0))];
            b = l2a[static_cast<size_t>(g.qubit(1))];
        }
        Gate mapped = g;
        mapped.setQubit(0, a);
        mapped.setQubit(1, b);
        result.circuit.append(mapped);
    }
    result.finalLayout = l2a;
    return result;
}

std::vector<Qubit>
chooseInitialLayout(const Circuit &circuit, const Topology &topo)
{
    const int n = circuit.numQubits();
    const int atoms = topo.numAtoms();
    if (n > atoms)
        throw ValidationError("chooseInitialLayout: too many qubits");

    // Interaction weights between logical qubits.
    std::vector<std::vector<int>> weight(
        static_cast<size_t>(n), std::vector<int>(static_cast<size_t>(n), 0));
    std::vector<long> degree(static_cast<size_t>(n), 0);
    for (const auto &g : circuit.gates()) {
        if (g.numQubits() != 2)
            continue;
        const Qubit a = g.qubit(0), b = g.qubit(1);
        ++weight[static_cast<size_t>(a)][static_cast<size_t>(b)];
        ++weight[static_cast<size_t>(b)][static_cast<size_t>(a)];
        ++degree[static_cast<size_t>(a)];
        ++degree[static_cast<size_t>(b)];
    }

    // Placement order: heaviest interactors first (stable tie-break by
    // index for determinism).
    std::vector<Qubit> order(static_cast<size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](Qubit x, Qubit y) {
        return degree[static_cast<size_t>(x)] > degree[static_cast<size_t>(y)];
    });

    // The most-connected atom hosts the heaviest qubit.
    std::vector<Qubit> layout(static_cast<size_t>(n), -1);
    std::vector<bool> used(static_cast<size_t>(atoms), false);
    int center = 0;
    for (int a = 1; a < atoms; ++a)
        if (topo.neighbors(a).size() > topo.neighbors(center).size())
            center = a;

    for (const Qubit q : order) {
        int bestAtom = -1;
        long bestCost = 0;
        for (int a = 0; a < atoms; ++a) {
            if (used[static_cast<size_t>(a)])
                continue;
            long cost = 0;
            bool anyPartner = false;
            for (Qubit p = 0; p < n; ++p) {
                if (layout[static_cast<size_t>(p)] < 0 ||
                    weight[static_cast<size_t>(q)][static_cast<size_t>(p)] == 0)
                    continue;
                anyPartner = true;
                cost += static_cast<long>(
                            weight[static_cast<size_t>(q)][static_cast<size_t>(p)]) *
                        topo.hopDistance(a, layout[static_cast<size_t>(p)]);
            }
            if (!anyPartner)
                cost = topo.hopDistance(a, center);  // Stay central.
            if (bestAtom < 0 || cost < bestCost) {
                bestAtom = a;
                bestCost = cost;
            }
        }
        layout[static_cast<size_t>(q)] = bestAtom;
        used[static_cast<size_t>(bestAtom)] = true;
    }
    return layout;
}

}  // namespace geyser
