/**
 * @file
 * Circuit optimization passes — the "OptiMap" technique of the paper
 * (Sec 4): all the state-of-the-art gate-level optimizations a
 * superconducting-style compiler performs, i.e. single-qubit gate fusion
 * (with identity removal) and commutation-aware CZ cancellation, iterated
 * to a fixed point. Geyser runs these before blocking/composition.
 */
#ifndef GEYSER_TRANSPILE_PASSES_HPP
#define GEYSER_TRANSPILE_PASSES_HPP

#include "circuit/circuit.hpp"

namespace geyser {

/**
 * Fuse runs of adjacent one-qubit gates into a single U3 each (resynthesis
 * through the 2x2 product). With drop_identity, fused gates equal to the
 * identity (up to phase) are deleted. Returns true if the circuit changed.
 * Requires a physical-basis circuit.
 */
bool fuseU3Pass(Circuit &circuit, bool drop_identity = true);

/**
 * Cancel pairs of equal CZ gates that are adjacent modulo the diagonal
 * subcircuit between them (diagonal U3s and CZs on any pair all commute).
 * Returns true if the circuit changed.
 */
bool cancelCzPass(Circuit &circuit);

/**
 * Run fuse + cancel to a fixed point (bounded iterations). This is the
 * full OptiMap optimization pipeline.
 */
void optimize(Circuit &circuit);

}  // namespace geyser

#endif  // GEYSER_TRANSPILE_PASSES_HPP
