/**
 * @file
 * Qubit mapping and SWAP routing onto an atom topology (paper Sec 3.2's
 * "circuit mapping" step — the role Qiskit's layout/routing passes play
 * in the paper).
 *
 * The router consumes a physical-basis circuit over logical qubits and
 * produces a physical-basis circuit over atoms in which every CZ acts on
 * adjacent atoms; SWAPs (lowered to 3 CX = 3 CZ + 6 U3) are inserted
 * along shortest interaction paths when needed.
 */
#ifndef GEYSER_TRANSPILE_ROUTER_HPP
#define GEYSER_TRANSPILE_ROUTER_HPP

#include <vector>

#include "circuit/circuit.hpp"
#include "topology/topology.hpp"

namespace geyser {

/** Result of routing: the mapped circuit plus the layouts used. */
struct RoutedCircuit
{
    Circuit circuit;                 ///< Over atom indices; CZs adjacent.
    std::vector<Qubit> initialLayout; ///< logical qubit -> atom.
    std::vector<Qubit> finalLayout;   ///< logical qubit -> atom at the end.
    int swapsInserted = 0;
};

/**
 * Route `circuit` (physical basis {U3, CZ}, logical qubit indices) onto
 * `topo` starting from the given initial layout (logical -> atom).
 * Deterministic.
 */
RoutedCircuit route(const Circuit &circuit, const Topology &topo,
                    const std::vector<Qubit> &initial_layout);

/** route() with the trivial layout (logical qubit i on atom i). */
RoutedCircuit route(const Circuit &circuit, const Topology &topo);

/**
 * Interaction-aware greedy initial layout: logical qubits are placed in
 * decreasing order of two-qubit-gate weight, each at the free atom that
 * minimizes the weighted hop distance to its already-placed partners.
 * Reduces inserted SWAPs versus the trivial layout (an OptiMap-level
 * optimization; Baseline keeps the trivial layout).
 */
std::vector<Qubit> chooseInitialLayout(const Circuit &circuit,
                                       const Topology &topo);

}  // namespace geyser

#endif  // GEYSER_TRANSPILE_ROUTER_HPP
