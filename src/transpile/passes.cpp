#include "transpile/passes.hpp"

#include <cmath>
#include <stdexcept>

#include "common/error.hpp"
#include "obs/obs.hpp"
#include "transpile/zyz.hpp"

namespace geyser {

namespace {

/** True if a physical gate is diagonal in the computational basis. */
bool
gateIsDiagonal(const Gate &g)
{
    if (g.kind() == GateKind::CZ || g.kind() == GateKind::CCZ)
        return true;
    if (g.kind() == GateKind::U3) {
        // U3 is diagonal iff theta = 0 mod 2*pi.
        const double c = std::cos(g.param(0) / 2.0);
        return std::abs(std::abs(c) - 1.0) < 1e-12;
    }
    return false;
}

}  // namespace

bool
fuseU3Pass(Circuit &circuit, bool drop_identity)
{
    if (!circuit.isPhysical())
        throw ValidationError("fuseU3Pass: physical circuit required");

    const size_t before = circuit.size();
    Circuit out(circuit.numQubits());

    // Pending accumulated 2x2 unitary per qubit (empty = identity).
    std::vector<Matrix> pending(static_cast<size_t>(circuit.numQubits()));
    std::vector<bool> hasPending(static_cast<size_t>(circuit.numQubits()),
                                 false);
    int fusedRuns = 0;

    auto flush = [&](Qubit q) {
        if (!hasPending[static_cast<size_t>(q)])
            return;
        auto &m = pending[static_cast<size_t>(q)];
        if (!(drop_identity && isIdentityUpToPhase(m))) {
            const U3Params p = u3FromMatrix(m);
            out.u3(q, p.theta, p.phi, p.lambda);
        }
        hasPending[static_cast<size_t>(q)] = false;
    };

    for (const auto &g : circuit.gates()) {
        if (g.numQubits() == 1) {
            const Qubit q = g.qubit(0);
            if (hasPending[static_cast<size_t>(q)]) {
                // Later gate acts after: left-multiply.
                pending[static_cast<size_t>(q)] =
                    g.matrix() * pending[static_cast<size_t>(q)];
                ++fusedRuns;
            } else {
                pending[static_cast<size_t>(q)] = g.matrix();
                hasPending[static_cast<size_t>(q)] = true;
            }
        } else {
            for (int i = 0; i < g.numQubits(); ++i)
                flush(g.qubit(i));
            out.append(g);
        }
    }
    for (Qubit q = 0; q < circuit.numQubits(); ++q)
        flush(q);

    const bool changed = fusedRuns > 0 || out.size() != before;
    if (changed) {
        static obs::Counter &fused = obs::counter("transpile.u3_fused");
        static obs::Counter &dropped =
            obs::counter("transpile.gates_dropped");
        fused.add(fusedRuns);
        if (out.size() < before)
            dropped.add(static_cast<long>(before - out.size()));
        circuit = std::move(out);
    }
    return changed;
}

bool
cancelCzPass(Circuit &circuit)
{
    auto &gates = circuit.gates();
    std::vector<bool> removed(gates.size(), false);
    bool changed = false;

    for (size_t i = 0; i < gates.size(); ++i) {
        if (removed[i] || gates[i].kind() != GateKind::CZ)
            continue;
        const Qubit a = gates[i].qubit(0);
        const Qubit b = gates[i].qubit(1);
        // Scan forward through the diagonal subcircuit: every diagonal
        // gate commutes with CZ(a, b), so a later equal CZ cancels it.
        for (size_t j = i + 1; j < gates.size(); ++j) {
            if (removed[j])
                continue;
            const Gate &h = gates[j];
            const bool touches = h.actsOn(a) || h.actsOn(b);
            if (h.kind() == GateKind::CZ && touches) {
                const bool samePair =
                    (h.qubit(0) == a && h.qubit(1) == b) ||
                    (h.qubit(0) == b && h.qubit(1) == a);
                if (samePair) {
                    removed[i] = removed[j] = true;
                    changed = true;
                    break;
                }
            }
            if (!touches)
                continue;
            if (!gateIsDiagonal(h))
                break;  // Non-commuting gate between the pair.
        }
    }

    if (changed) {
        Circuit out(circuit.numQubits());
        size_t cancelled = 0;
        for (size_t i = 0; i < gates.size(); ++i) {
            if (removed[i])
                ++cancelled;
            else
                out.append(gates[i]);
        }
        static obs::Counter &counter =
            obs::counter("transpile.cz_cancelled");
        counter.add(static_cast<long>(cancelled / 2));
        circuit = std::move(out);
    }
    return changed;
}

void
optimize(Circuit &circuit)
{
    obs::Span span("transpile.optimize", "transpile");
    const size_t before = circuit.size();
    constexpr int kMaxRounds = 20;
    int rounds = 0;
    for (; rounds < kMaxRounds; ++rounds) {
        bool changed = fuseU3Pass(circuit, true);
        changed = cancelCzPass(circuit) || changed;
        if (!changed)
            break;
    }
    span.arg("rounds", rounds);
    span.arg("gatesBefore", static_cast<double>(before));
    span.arg("gatesAfter", static_cast<double>(circuit.size()));
}

}  // namespace geyser
