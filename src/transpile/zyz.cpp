#include "transpile/zyz.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/error.hpp"

namespace geyser {

U3Params
u3FromMatrix(const Matrix &u)
{
    if (u.rows() != 2 || u.cols() != 2)
        throw ValidationError("u3FromMatrix: not a 2x2 matrix");
    if (!u.isUnitary(1e-8))
        throw ValidationError("u3FromMatrix: not unitary");

    U3Params p;
    const Complex v00 = u(0, 0), v01 = u(0, 1), v10 = u(1, 0), v11 = u(1, 1);
    const double a00 = std::abs(v00);

    if (a00 < 1e-12) {
        // theta = pi: U3 = [[0, -e^{i lambda}], [e^{i phi}, 0]].
        p.theta = kPi;
        p.phase = 0.0;
        p.phi = std::arg(v10);
        p.lambda = std::arg(-v01);
        return p;
    }

    p.phase = std::arg(v00);
    const double c = std::clamp(a00, 0.0, 1.0);
    p.theta = 2.0 * std::acos(c);
    if (std::abs(v10) < 1e-12) {
        // theta ~ 0: diagonal matrix; only phi + lambda matters.
        p.phi = 0.0;
        p.lambda = std::arg(v11) - p.phase;
    } else {
        p.phi = std::arg(v10) - p.phase;
        p.lambda = std::arg(-v01) - p.phase;
    }
    return p;
}

bool
isIdentityUpToPhase(const Matrix &u, double tol)
{
    if (u.rows() != 2 || u.cols() != 2)
        return false;
    const Complex t = u(0, 0) + u(1, 1);
    return std::abs(u(0, 1)) <= tol && std::abs(u(1, 0)) <= tol &&
           std::abs(std::abs(t) - 2.0) <= tol;
}

bool
isDiagonal(const Matrix &u, double tol)
{
    return u.rows() == 2 && u.cols() == 2 && std::abs(u(0, 1)) <= tol &&
           std::abs(u(1, 0)) <= tol;
}

}  // namespace geyser
