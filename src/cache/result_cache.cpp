#include "cache/result_cache.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "io/framing.hpp"
#include "io/serialize.hpp"
#include "obs/obs.hpp"

namespace geyser {
namespace cache {

namespace fs = std::filesystem;

namespace {

constexpr const char *kEntrySuffix = ".gce";

/** A lock file older than this is presumed abandoned by a dead process. */
constexpr auto kStaleLockAge = std::chrono::minutes(10);

long long
envMaxBytes()
{
    // 0 keeps the historical "unbounded" meaning; garbage or a negative
    // value now raises instead of silently disabling the cap.
    const long long mb =
        env::envInt("GEYSER_CACHE_MAX_MB", 0, 0, 1'000'000'000);
    return mb > 0 ? mb * 1024 * 1024 : 0;
}

/** O_CREAT|O_EXCL lock-file acquisition; true if we own the lock. */
bool
tryCreateLockFile(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0)
        return false;
    char pid[32];
    const int len = std::snprintf(pid, sizeof(pid), "%ld",
                                  static_cast<long>(::getpid()));
    if (len > 0) {
        // Best-effort provenance only; the lock is the file's existence.
        [[maybe_unused]] const ssize_t n = ::write(fd, pid, len);
    }
    ::close(fd);
    return true;
}

/**
 * One observation of a lock file for detail::LockWatch. A failed stat
 * used to be folded into "vanished — owner finished", which let a
 * transient EACCES/EIO break cross-process single-flight and duplicate
 * hours of composition; Missing and Error are now distinct outcomes.
 */
detail::LockStat
statLock(const std::string &path,
         std::chrono::steady_clock::duration &ageOut)
{
    std::error_code ec;
    const auto mtime = fs::last_write_time(path, ec);
    if (ec) {
        ageOut = {};
        return ec == std::errc::no_such_file_or_directory
                   ? detail::LockStat::Missing
                   : detail::LockStat::Error;
    }
    ageOut = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        fs::file_time_type::clock::now() - mtime);
    return detail::LockStat::Ok;
}

}  // namespace

CacheConfig
CacheConfig::fromEnv()
{
    CacheConfig config;
    const char *dir = std::getenv("GEYSER_CACHE_DIR");
    config.dir = dir != nullptr ? dir : "/tmp/geyser_cache";
    config.maxBytes = envMaxBytes();
    const char *off = std::getenv("GEYSER_NO_CACHE");
    config.enabled = !(off != nullptr && std::string(off) == "1");
    return config;
}

ResultCache::ResultCache(CacheConfig config) : config_(std::move(config))
{
    if (!config_.enabled || config_.dir.empty())
        return;
    if (io::createDirectories(config_.dir)) {
        enabled_ = true;
        return;
    }
    // A nested GEYSER_CACHE_DIR=/a/b/c used to silently disable caching
    // forever (single-level mkdir); now parents are created recursively
    // and a genuine failure is surfaced exactly once per cache.
    obs::counter("cache.dir_error").add();
    std::fprintf(stderr,
                 "geyser cache disabled: cannot create directory %s\n",
                 config_.dir.c_str());
}

ResultCache &
ResultCache::global()
{
    static ResultCache instance(CacheConfig::fromEnv());
    return instance;
}

ResultCache::Flight &
ResultCache::flightFor(const std::string &key)
{
    const uint64_t h = io::fnv1a64(key.data(), key.size());
    return flights_[h % kFlightStripes];
}

std::string
ResultCache::entryPath(const std::string &key) const
{
    return config_.dir + "/" + key + kEntrySuffix;
}

void
ResultCache::quarantine(const std::string &path)
{
    std::error_code ec;
    fs::rename(path, path + ".corrupt", ec);
    if (ec)
        fs::remove(path, ec);  // Rename failed: at least stop re-reading it.
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++stats_.corrupt;
    }
    obs::counter("cache.corrupt").add();
}

void
ResultCache::quarantineEntry(const std::string &key)
{
    if (!enabled_)
        return;
    quarantine(entryPath(key));
}

std::optional<std::string>
ResultCache::load(const std::string &key)
{
    static obs::Counter &hits = obs::counter("cache.hit");
    static obs::Counter &misses = obs::counter("cache.miss");
    if (!enabled_)
        return std::nullopt;
    obs::Span span("cache.load", "cache");
    const std::string path = entryPath(key);
    const auto framed = io::readFileBytes(path);
    if (!framed) {
        misses.add();
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++stats_.misses;
        return std::nullopt;
    }
    auto payload = io::unframeWithChecksum(*framed);
    if (!payload) {
        // Torn, truncated, bit-rotted, or written by an incompatible
        // frame version: quarantine and treat as a miss.
        quarantine(path);
        misses.add();
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++stats_.misses;
        return std::nullopt;
    }
    // Refresh LRU recency so hot entries survive the size cap.
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
    hits.add();
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++stats_.hits;
    }
    return payload;
}

bool
ResultCache::store(const std::string &key, const std::string &payload)
{
    if (!enabled_)
        return false;
    obs::Span span("cache.store", "cache");
    const bool ok =
        io::writeFileAtomic(entryPath(key), io::frameWithChecksum(payload));
    if (!ok) {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++stats_.storeFailures;
        return false;
    }
    evictIfNeeded();
    return true;
}

std::string
ResultCache::getOrCompute(const std::string &key,
                          const std::function<std::string()> &compute,
                          bool *wasHit)
{
    static obs::Counter &waits = obs::counter("cache.singleflight_wait");
    if (wasHit != nullptr)
        *wasHit = false;
    if (!enabled_)
        return compute();

    obs::Span span("cache.lookup", "cache");
    if (auto hit = load(key)) {
        if (wasHit != nullptr)
            *wasHit = true;
        return *hit;
    }

    // In-process single-flight: one winner per key; everyone else waits
    // on the stripe latch, then reads the winner's entry back from disk.
    Flight &flight = flightFor(key);
    {
        std::unique_lock<std::mutex> lock(flight.mutex);
        while (flight.inFlight.count(key) != 0) {
            waits.add();
            {
                std::lock_guard<std::mutex> slock(statsMutex_);
                ++stats_.singleflightWaits;
            }
            flight.cv.wait(lock, [&] {
                return flight.inFlight.count(key) == 0;
            });
            lock.unlock();
            if (auto again = load(key)) {
                if (wasHit != nullptr)
                    *wasHit = true;
                return *again;
            }
            // The winner failed to produce an entry (compute threw or
            // the store failed): take over as the new winner.
            lock.lock();
        }
        flight.inFlight.insert(key);
    }
    struct FlightRelease
    {
        Flight &flight;
        const std::string &key;
        ~FlightRelease()
        {
            {
                std::lock_guard<std::mutex> lock(flight.mutex);
                flight.inFlight.erase(key);
            }
            flight.cv.notify_all();
        }
    } flightRelease{flight, key};

    // Cross-process best-effort single-flight: if another process holds
    // a fresh lock on this key, poll for its entry instead of redoing
    // the work. Stale locks (dead owner) are ignored.
    const std::string lockPath = entryPath(key) + ".lock";
    const bool ownLock = tryCreateLockFile(lockPath);
    struct LockRelease
    {
        const std::string &path;
        bool owned;
        ~LockRelease()
        {
            if (owned) {
                std::error_code ec;
                fs::remove(path, ec);
            }
        }
    } lockRelease{lockPath, ownLock};

    if (!ownLock && config_.crossProcessWaitMs > 0) {
        waits.add();
        {
            std::lock_guard<std::mutex> slock(statsMutex_);
            ++stats_.singleflightWaits;
        }
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(config_.crossProcessWaitMs);
        detail::LockWatch watch(kStaleLockAge);
        auto lockIsFresh = [&](const std::string &path) {
            std::chrono::steady_clock::duration age{};
            const detail::LockStat stat = statLock(path, age);
            return watch.isFresh(stat, age, std::chrono::steady_clock::now());
        };
        while (std::chrono::steady_clock::now() < deadline &&
               lockIsFresh(lockPath)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            if (auto theirs = load(key)) {
                if (wasHit != nullptr)
                    *wasHit = true;
                return *theirs;
            }
        }
        // Timed out or the lock is stale: compute locally (best-effort
        // means duplicated work beats blocking forever).
    }

    const std::string payload = compute();
    store(key, payload);
    return payload;
}

long long
ResultCache::diskUsageBytes() const
{
    if (!enabled_)
        return 0;
    long long total = 0;
    std::error_code ec;
    for (fs::directory_iterator it(config_.dir, ec), end;
         !ec && it != end; it.increment(ec)) {
        if (it->path().extension() != kEntrySuffix)
            continue;
        std::error_code sizeEc;
        const auto size = it->file_size(sizeEc);
        if (!sizeEc)
            total += static_cast<long long>(size);
    }
    return total;
}

void
ResultCache::evictIfNeeded()
{
    static obs::Counter &evictions = obs::counter("cache.evicted");
    static obs::Counter &janitor = obs::counter("cache.janitor_removed");
    if (config_.maxBytes <= 0)
        return;
    std::lock_guard<std::mutex> evictLock(evictMutex_);

    struct Entry
    {
        fs::path path;
        long long size = 0;
        fs::file_time_type mtime;
    };
    std::vector<Entry> entries;
    long long total = 0;
    const auto now = fs::file_time_type::clock::now();
    const auto grace = std::chrono::milliseconds(
        config_.evictionGraceMs > 0 ? config_.evictionGraceMs : 0);
    std::error_code ec;
    for (fs::directory_iterator it(config_.dir, ec), end;
         !ec && it != end; it.increment(ec)) {
        const std::string ext = it->path().extension().string();
        if (ext != kEntrySuffix) {
            // Never an eviction candidate: .lock files guard an
            // in-flight compute, .tmp<pid> files are mid-publish, and
            // .corrupt files are quarantined evidence. The janitor
            // reaps only the ones a dead process abandoned.
            const bool reapable = ext == ".lock" || ext == ".corrupt" ||
                                  ext.rfind(".tmp", 0) == 0;
            if (!reapable)
                continue;
            std::error_code staleEc;
            const auto mtime = fs::last_write_time(it->path(), staleEc);
            if (staleEc || now - mtime < kStaleLockAge)
                continue;
            std::error_code removeEc;
            if (fs::remove(it->path(), removeEc) && !removeEc) {
                janitor.add();
                std::lock_guard<std::mutex> lock(statsMutex_);
                ++stats_.janitorRemoved;
            }
            continue;
        }
        Entry entry;
        entry.path = it->path();
        std::error_code entryEc;
        entry.size = static_cast<long long>(it->file_size(entryEc));
        if (entryEc)
            continue;
        entry.mtime = fs::last_write_time(entry.path, entryEc);
        if (entryEc)
            continue;
        total += entry.size;
        // A freshly written entry (possibly by a concurrent process that
        // has not yet read it back) is charged against the cap but kept
        // out of the candidate list for the grace window.
        if (now - entry.mtime < grace)
            continue;
        entries.push_back(std::move(entry));
    }
    if (total <= config_.maxBytes)
        return;

    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) { return a.mtime < b.mtime; });
    for (const Entry &entry : entries) {
        if (total <= config_.maxBytes)
            break;
        std::error_code removeEc;
        if (!fs::remove(entry.path, removeEc) || removeEc)
            continue;
        total -= entry.size;
        evictions.add();
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++stats_.evicted;
    }
}

CacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    return stats_;
}

std::string
compileCacheKey(const Circuit &logical, const PipelineOptions &options,
                Technique technique)
{
    io::Fnv128 h;
    h.feedValue(kPipelineVersion);
    h.feedValue(static_cast<int>(technique));
    h.feedString(circuitToText(logical));
    // Every option that can change the compiled output, and nothing
    // else: verify/trace/parallelism knobs alter diagnostics or wall
    // time, never the result.
    h.feedValue(options.blocker.pulseAware);
    h.feedValue(options.blocker.seedCandidates);
    h.feedValue(options.compose.threshold);
    h.feedValue(options.compose.maxLayers);
    h.feedValue(static_cast<int>(options.compose.optimizer));
    h.feedValue(static_cast<int>(options.compose.entanglerMode));
    h.feedValue(options.compose.restarts);
    h.feedValue(options.compose.maxSweeps);
    h.feedValue(options.compose.maxEvaluationsPerBlock);
    h.feedValue(options.compose.annealingEvaluations);
    h.feedValue(options.compose.maxSplitDepth);
    h.feedValue(options.compose.seed);
    return "c-" + h.hex();
}

std::string
blockCacheKey(uint64_t hi, uint64_t lo)
{
    io::Fnv128 h;
    h.feedValue(kPipelineVersion);
    h.feedValue(hi);
    h.feedValue(lo);
    return "b-" + h.hex();
}

std::string
skeletonCacheKey(const Circuit &logical,
                 const std::vector<std::pair<int, int>> &varyingSlots,
                 const PipelineOptions &options, Technique technique)
{
    // Varying-slot membership, encoded gate*4+param (<= 3 params/gate).
    std::unordered_set<long long> varying;
    for (const auto &[g, p] : varyingSlots)
        varying.insert(static_cast<long long>(g) * 4 + p);
    const bool allVarying = varyingSlots.empty();

    io::Fnv128 h;
    h.feedValue(kPipelineVersion);
    h.feedValue(static_cast<int>(technique));
    h.feedValue(logical.numQubits());
    const auto &gates = logical.gates();
    h.feedValue(static_cast<long long>(gates.size()));
    for (size_t i = 0; i < gates.size(); ++i) {
        const Gate &gate = gates[i];
        h.feedValue(static_cast<int>(gate.kind()));
        h.feedValue(gate.numQubits());
        for (int q = 0; q < gate.numQubits(); ++q)
            h.feedValue(static_cast<int>(gate.qubit(q)));
        // Per parameter slot: a varying-or-fixed tag, and for fixed
        // slots the value bit-exact. The tags make the key a function of
        // the *effective* mask, so an empty mask (all varying) and an
        // explicit every-slot mask canonicalize to the same key.
        const int params = gateKindParamCount(gate.kind());
        for (int p = 0; p < params; ++p) {
            const bool slotVaries =
                allVarying ||
                varying.count(static_cast<long long>(i) * 4 + p) != 0;
            h.feedValue(static_cast<int>(slotVaries));
            if (!slotVaries)
                h.feedValue(gate.param(p));
        }
    }
    // Same behaviour-relevant option set as compileCacheKey.
    h.feedValue(options.blocker.pulseAware);
    h.feedValue(options.blocker.seedCandidates);
    h.feedValue(options.compose.threshold);
    h.feedValue(options.compose.maxLayers);
    h.feedValue(static_cast<int>(options.compose.optimizer));
    h.feedValue(static_cast<int>(options.compose.entanglerMode));
    h.feedValue(options.compose.restarts);
    h.feedValue(options.compose.maxSweeps);
    h.feedValue(options.compose.maxEvaluationsPerBlock);
    h.feedValue(options.compose.annealingEvaluations);
    h.feedValue(options.compose.maxSplitDepth);
    h.feedValue(options.compose.seed);
    return "s-" + h.hex();
}

}  // namespace cache
}  // namespace geyser
