/**
 * @file
 * Crash-safe persistent result cache for compiled circuits and composed
 * blocks — the first-class promotion of what used to be an ad-hoc
 * per-bench-binary file cache in bench/common.cpp. Usable by the
 * pipeline (PipelineOptions::cache), geyserc (--cache-dir), and every
 * bench binary; composition dominates every evaluation run, so serving
 * repeated traffic hinges on never recomputing a circuit or block that
 * any process on the machine has already compiled.
 *
 * Guarantees:
 *  - Content-addressed keys: FNV-1a 128 over the serialized logical
 *    circuit, the behaviour-relevant PipelineOptions, the technique,
 *    and kPipelineVersion. A pipeline change bumps the version constant
 *    once; old entries stop matching and age out — no hand-maintained
 *    version strings at call sites.
 *  - Crash-safe writes: entries are framed with a length header and an
 *    FNV-1a 64 checksum footer (io/framing), written to a temp file and
 *    published with an atomic rename. Readers never see a torn entry.
 *  - Graceful degradation: a corrupt, truncated, or version-skewed
 *    entry is treated as a miss, quarantined to <entry>.corrupt, and
 *    counted (cache.corrupt) — never a crash, never a wrong result.
 *  - Single-flight: concurrent misses on the same key inside one
 *    process compute once (striped latches); across processes a
 *    best-effort lock file lets late arrivals wait briefly for the
 *    winner's entry instead of duplicating hours of composition.
 *  - Bounded size: GEYSER_CACHE_MAX_MB (or CacheConfig::maxBytes) caps
 *    the directory; least-recently-used entries are evicted (hits
 *    refresh an entry's mtime).
 *
 * Obs surface: cache.hit / cache.miss / cache.corrupt / cache.evicted /
 * cache.singleflight_wait counters and a cache.lookup span, plus
 * always-on CacheStats atomics for tests and reports.
 */
#ifndef GEYSER_CACHE_RESULT_CACHE_HPP
#define GEYSER_CACHE_RESULT_CACHE_HPP

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "geyser/pipeline.hpp"

namespace geyser {
namespace cache {

/** Construction-time configuration. */
struct CacheConfig
{
    /** Entry directory (created recursively; empty disables the cache). */
    std::string dir;
    /** Size cap in bytes; <= 0 means unbounded. */
    long long maxBytes = 0;
    /** Master switch (GEYSER_NO_CACHE=1 turns it off from the env). */
    bool enabled = true;
    /**
     * How long a getOrCompute() miss waits on another process's lock
     * file before giving up and computing anyway (best-effort
     * cross-process single-flight; 0 disables the wait).
     */
    int crossProcessWaitMs = 10000;
    /**
     * Entries younger than this survive LRU eviction even over the size
     * cap, so an entry a concurrent process just finished writing is
     * never deleted before its first reader arrives. The cap may be
     * exceeded transiently by the youngest generation; the next store
     * converges once the grace window lapses. 0 disables the window.
     */
    int evictionGraceMs = 2000;

    /**
     * Environment-driven config: GEYSER_CACHE_DIR (default
     * /tmp/geyser_cache), GEYSER_NO_CACHE=1, GEYSER_CACHE_MAX_MB.
     */
    static CacheConfig fromEnv();
};

/** Always-on activity counters (obs counters mirror these when enabled). */
struct CacheStats
{
    long hits = 0;
    long misses = 0;
    long corrupt = 0;       ///< Entries quarantined (checksum/frame skew).
    long evicted = 0;       ///< Entries removed by the LRU size cap.
    long singleflightWaits = 0;  ///< Lookups that waited on another flight.
    long storeFailures = 0; ///< Best-effort writes that did not land.
    long janitorRemoved = 0;  ///< Stale .lock/.tmp/.corrupt files cleaned.
};

namespace detail {

/** What one stat of a cross-process lock file observed. */
enum class LockStat
{
    Ok,       ///< Stat succeeded; an mtime age is available.
    Missing,  ///< The file is gone (ENOENT) — the owner finished.
    Error,    ///< Stat failed for any other reason (EACCES, EIO, ...).
};

/**
 * Freshness decision for one cross-process lock file across repeated
 * polls. Pure logic, fed observations by the caller, so the
 * unreachable-in-tests stat-error path has a unit-testable seam.
 *
 * Rules: a stat success is fresh while the mtime age is under the
 * stale-age budget; a missing file is never fresh (the owner released
 * it); a stat *error* must not be conflated with either — the lock is
 * presumed fresh from the first failed observation until the stale-age
 * budget elapses, then presumed abandoned. A later successful stat
 * resets the error clock.
 */
class LockWatch
{
  public:
    explicit LockWatch(std::chrono::steady_clock::duration staleAge)
        : staleAge_(staleAge) {}

    bool isFresh(LockStat stat, std::chrono::steady_clock::duration age,
                 std::chrono::steady_clock::time_point now)
    {
        switch (stat) {
        case LockStat::Ok:
            errorSeen_ = false;
            return age < staleAge_;
        case LockStat::Missing:
            errorSeen_ = false;
            return false;
        case LockStat::Error:
            if (!errorSeen_) {
                errorSeen_ = true;
                firstError_ = now;
            }
            return now - firstError_ < staleAge_;
        }
        return false;
    }

  private:
    std::chrono::steady_clock::duration staleAge_;
    bool errorSeen_ = false;
    std::chrono::steady_clock::time_point firstError_{};
};

}  // namespace detail

/**
 * A persistent, process-shared result cache rooted at one directory.
 * All methods are thread-safe; all failures degrade to "cache miss" or
 * "entry not stored" — the cache never throws for I/O reasons.
 */
class ResultCache
{
  public:
    explicit ResultCache(CacheConfig config);

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /**
     * Process-wide cache configured from the environment. Lazily
     * constructed on first use; shared by the bench binaries.
     */
    static ResultCache &global();

    /** False when disabled by config/env or the directory is unusable. */
    bool enabled() const { return enabled_; }

    const std::string &dir() const { return config_.dir; }

    /**
     * Fetch an entry's payload. Missing → nullopt (cache.miss); corrupt
     * or truncated or version-skewed → quarantined + nullopt
     * (cache.corrupt); hit refreshes the entry's LRU recency.
     */
    std::optional<std::string> load(const std::string &key);

    /**
     * Store a payload crash-safely (temp file + checksum + rename),
     * then enforce the size cap. Best-effort: returns false if the
     * entry could not be written.
     */
    bool store(const std::string &key, const std::string &payload);

    /**
     * load(), falling back to compute() exactly once per key across
     * every concurrent caller in this process (and, best-effort, across
     * processes via a lock file): late arrivals block until the winner
     * has stored the entry, then read it back. `wasHit`, when given,
     * reports whether the payload came from disk. If compute() throws,
     * the flight is released and the exception propagates.
     */
    std::string getOrCompute(const std::string &key,
                             const std::function<std::string()> &compute,
                             bool *wasHit = nullptr);

    /** On-disk path of a key's entry file. */
    std::string entryPath(const std::string &key) const;

    /**
     * Quarantine a key's entry whose payload passed the frame checksum
     * but failed semantic validation downstream (deserialize error,
     * invalid circuit or layout). Moves it to <entry>.corrupt exactly
     * like a framing failure, so the next lookup recomputes instead of
     * replaying the same poisoned payload forever.
     */
    void quarantineEntry(const std::string &key);

    /** Total bytes currently held in entry files (scans the directory). */
    long long diskUsageBytes() const;

    /** Snapshot of the activity counters. */
    CacheStats stats() const;

  private:
    struct Flight
    {
        std::mutex mutex;
        std::condition_variable cv;
        std::unordered_set<std::string> inFlight;
    };

    static constexpr int kFlightStripes = 16;

    Flight &flightFor(const std::string &key);
    void quarantine(const std::string &path);
    void evictIfNeeded();

    CacheConfig config_;
    bool enabled_ = false;
    Flight flights_[kFlightStripes];
    std::mutex evictMutex_;
    mutable std::mutex statsMutex_;
    CacheStats stats_;
};

/**
 * Content-addressed key for a whole-circuit compile: FNV-1a 128 over
 * kPipelineVersion, the technique, the serialized logical circuit, and
 * every PipelineOptions field that can change the compiled output
 * (blocker and compose options including the seed; verify/trace/
 * parallelism knobs are excluded — they do not alter the result).
 */
std::string compileCacheKey(const Circuit &logical,
                            const PipelineOptions &options,
                            Technique technique);

/**
 * Key for one composed block, derived from the composition memo's
 * 128-bit content hash (block gates + compose options) plus
 * kPipelineVersion.
 */
std::string blockCacheKey(uint64_t hi, uint64_t lo);

/**
 * Content-addressed key for a circuit *skeleton*: the structural
 * identity shared by every member of a parameter sweep. Hashes the
 * gate sequence with the parameters at `varyingSlots` (pairs of
 * 0-based gate index and parameter index within the gate) canonicalized
 * out, while every *fixed* parameter is fed bit-exactly — plus the same
 * behaviour-relevant options, technique, and kPipelineVersion as
 * compileCacheKey, and the varying-slot mask itself. Two circuits with
 * the same structure and fixed angles but different varying angles map
 * to the same key; any change to a gate kind, operand, qubit count,
 * technique (and hence topology), fixed angle, or the mask changes it.
 * An empty mask means "every parameter varies" (pure structure hash).
 */
std::string skeletonCacheKey(
    const Circuit &logical,
    const std::vector<std::pair<int, int>> &varyingSlots,
    const PipelineOptions &options, Technique technique);

}  // namespace cache
}  // namespace geyser

#endif  // GEYSER_CACHE_RESULT_CACHE_HPP
