#include "obs/prometheus.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "linalg/kernels/backend.hpp"

namespace geyser {
namespace obs {

namespace {

/** Where one internal metric lands in the exposition. */
struct SeriesTarget
{
    std::string family;  ///< Prometheus family name (no suffix).
    std::string labels;  ///< Rendered label set ("" or `key="value"`).
    double scale = 1.0;  ///< Applied to values/edges (ms -> seconds).
};

std::string
sanitize(const std::string &internal)
{
    std::string out = "geyser_";
    for (const char c : internal) {
        if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9'))
            out += c;
        else if (c == '.' || c == '-' || c == '_')
            out += '_';
    }
    return out;
}

/** Explicit service-family names; everything else sanitizes generically. */
SeriesTarget
targetFor(const std::string &internal)
{
    static const std::map<std::string, SeriesTarget> kTable = {
        {"service.done", {"geyser_jobs_total", "outcome=\"done\"", 1.0}},
        {"service.failed", {"geyser_jobs_total", "outcome=\"failed\"", 1.0}},
        {"service.cancelled",
         {"geyser_jobs_total", "outcome=\"cancelled\"", 1.0}},
        {"service.expired",
         {"geyser_jobs_total", "outcome=\"expired\"", 1.0}},
        {"service.rejected",
         {"geyser_jobs_total", "outcome=\"rejected\"", 1.0}},
        {"service.submitted", {"geyser_jobs_submitted_total", "", 1.0}},
        {"service.cache_hit", {"geyser_cache_hits_total", "", 1.0}},
        {"service.requests", {"geyser_requests_total", "", 1.0}},
        {"service.queue_depth", {"geyser_queue_depth", "", 1.0}},
        {"service.in_flight", {"geyser_jobs_in_flight", "", 1.0}},
        {"service.queue_wait_ms", {"geyser_queue_wait_seconds", "", 1e-3}},
        {"service.compile_ms", {"geyser_compile_seconds", "", 1e-3}},
        {"service.e2e_ms", {"geyser_e2e_seconds", "", 1e-3}},
        // Per-channel noise events from the trajectory simulator: one
        // family, the channel as a label (kebab-case NoiseChannelId
        // names from sim/noise.hpp).
        {"sim.noise.legacy_pauli_events",
         {"geyser_sim_noise_events_total", "channel=\"legacy-pauli\"", 1.0}},
        {"sim.noise.amp_damp_events",
         {"geyser_sim_noise_events_total", "channel=\"amp-damp\"", 1.0}},
        {"sim.noise.idle_dephasing_events",
         {"geyser_sim_noise_events_total", "channel=\"idle-dephasing\"",
          1.0}},
        {"sim.noise.atom_loss_events",
         {"geyser_sim_noise_events_total", "channel=\"atom-loss\"", 1.0}},
        {"sim.noise.correlated_pauli_events",
         {"geyser_sim_noise_events_total", "channel=\"correlated-pauli\"",
          1.0}},
        {"sim.noise.readout_events",
         {"geyser_sim_noise_events_total", "channel=\"readout\"", 1.0}},
        // Fleet compilation: batch jobs, skeleton groups, and the
        // re-bind/fallback split (src/fleet).
        {"fleet.jobs", {"geyser_fleet_jobs_total", "", 1.0}},
        {"fleet.groups", {"geyser_fleet_groups_total", "", 1.0}},
        {"fleet.rebound",
         {"geyser_fleet_members_total", "path=\"rebound\"", 1.0}},
        {"fleet.fallback",
         {"geyser_fleet_members_total", "path=\"fallback\"", 1.0}},
        {"fleet.plan_hit",
         {"geyser_fleet_plans_total", "outcome=\"hit\"", 1.0}},
        {"fleet.plan_store",
         {"geyser_fleet_plans_total", "outcome=\"store\"", 1.0}},
        {"fleet.verify_failure",
         {"geyser_fleet_verify_failures_total", "", 1.0}},
    };
    const auto it = kTable.find(internal);
    if (it != kTable.end())
        return it->second;
    return {sanitize(internal), "", 1.0};
}

std::string
formatValue(double v)
{
    // Integers render without a fraction; everything else shortest-ish.
    if (v == static_cast<long long>(v) && std::abs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

std::string
seriesLine(const std::string &family, const std::string &suffix,
           const std::string &labels, double value)
{
    std::string line = family + suffix;
    if (!labels.empty())
        line += "{" + labels + "}";
    line += ' ';
    line += formatValue(value);
    line += '\n';
    return line;
}

void
header(std::string &out, const std::string &family, const char *type,
       const std::string &internal)
{
    out += "# HELP " + family + " geyser metric " + internal + "\n";
    out += "# TYPE " + family + " " + type + "\n";
}

}  // namespace

std::string
prometheusText(const MetricsSnapshot &snapshot)
{
    std::string out;

    // Counters, grouped by target family so labelled variants of one
    // family (geyser_jobs_total{outcome=...}) share one header.
    struct CounterRow
    {
        std::string internal;
        std::string labels;
        long value = 0;
    };
    std::vector<std::pair<std::string, std::vector<CounterRow>>> families;
    auto familyRows = [&](const std::string &family)
        -> std::vector<CounterRow> & {
        for (auto &f : families)
            if (f.first == family)
                return f.second;
        families.emplace_back(family, std::vector<CounterRow>{});
        return families.back().second;
    };
    for (const auto &[name, value] : snapshot.counters) {
        const SeriesTarget target = targetFor(name);
        // Mapped families carry their _total suffix already; only the
        // generically sanitized names need it appended.
        std::string family = target.family;
        const std::string suffix = "_total";
        if (family.size() < suffix.size() ||
            family.compare(family.size() - suffix.size(), suffix.size(),
                           suffix) != 0)
            family += suffix;
        familyRows(family).push_back({name, target.labels, value});
    }
    for (const auto &[family, rows] : families) {
        header(out, family, "counter", rows.front().internal);
        for (const auto &row : rows)
            out += seriesLine(family, "", row.labels,
                              static_cast<double>(row.value));
    }

    // Gauges.
    long cacheHits = -1, jobsDone = -1;
    for (const auto &[name, value] : snapshot.counters) {
        if (name == "service.cache_hit")
            cacheHits = value;
        else if (name == "service.done")
            jobsDone = value;
    }
    for (const auto &[name, value] : snapshot.gauges) {
        const SeriesTarget target = targetFor(name);
        header(out, target.family, "gauge", name);
        out += seriesLine(target.family, "", target.labels,
                          value * target.scale);
    }
    if (jobsDone > 0 && cacheHits >= 0) {
        header(out, "geyser_cache_hit_ratio", "gauge",
               "service.cache_hit / service.done");
        out += seriesLine("geyser_cache_hit_ratio", "", "",
                          static_cast<double>(cacheHits) /
                              static_cast<double>(jobsDone));
    }
    // Info-style gauge: which SIMD compute backend this process
    // dispatched to (constant 1, identity in the label).
    header(out, "geyser_backend_info", "gauge", "kernels.backend");
    out += seriesLine("geyser_backend_info", "",
                      std::string("backend=\"") + kernels::activeName() +
                          "\"",
                      1.0);

    // Histograms: cumulative le-buckets up to the highest occupied
    // bucket, then +Inf, _sum, _count.
    for (const auto &[name, snap] : snapshot.histograms) {
        const SeriesTarget target = targetFor(name);
        header(out, target.family, "histogram", name);
        int highest = -1;
        for (size_t i = 0; i < snap.buckets.size(); ++i)
            if (snap.buckets[i] > 0)
                highest = static_cast<int>(i);
        long cumulative = 0;
        for (int i = 0; i <= highest; ++i) {
            cumulative += snap.buckets[static_cast<size_t>(i)];
            const double le =
                Histogram::bucketUpperBound(i) * target.scale;
            out += seriesLine(target.family, "_bucket",
                              "le=\"" + formatValue(le) + "\"",
                              static_cast<double>(cumulative));
        }
        out += seriesLine(target.family, "_bucket", "le=\"+Inf\"",
                          static_cast<double>(snap.count));
        out += seriesLine(target.family, "_sum", "",
                          snap.sum * target.scale);
        out += seriesLine(target.family, "_count", "",
                          static_cast<double>(snap.count));
    }
    return out;
}

std::string
prometheusText()
{
    return prometheusText(metricsSnapshot());
}

}  // namespace obs
}  // namespace geyser
