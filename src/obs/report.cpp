#include "obs/report.hpp"

#include <algorithm>
#include <ctime>
#include <fstream>
#include <map>
#include <stdexcept>

#include "linalg/kernels/backend.hpp"
#include "obs/obs.hpp"

namespace geyser {
namespace obs {

std::string
gitSha()
{
#ifdef GEYSER_GIT_SHA
    return GEYSER_GIT_SHA;
#else
    return "unknown";
#endif
}

std::string
utcTimestamp()
{
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

void
RunReport::setConfig(const std::string &key, Json value)
{
    config_.set(key, std::move(value));
}

void
RunReport::addCircuit(Json row)
{
    circuits_.push(std::move(row));
}

namespace {

/** Sum the recorded 'X' spans by name: count, total and max wall time. */
Json
stagesJson()
{
    struct Agg
    {
        long count = 0;
        uint64_t totalUs = 0;
        uint64_t maxUs = 0;
    };
    std::map<std::string, Agg> byName;
    for (const auto &event : events()) {
        if (event.phase != 'X')
            continue;
        Agg &a = byName[event.name];
        ++a.count;
        a.totalUs += event.durMicros;
        a.maxUs = std::max(a.maxUs, event.durMicros);
    }
    Json stages = Json::array();
    for (const auto &entry : byName) {
        Json s = Json::object();
        s.set("name", entry.first);
        s.set("count", entry.second.count);
        s.set("wallMs", static_cast<double>(entry.second.totalUs) / 1000.0);
        s.set("maxMs", static_cast<double>(entry.second.maxUs) / 1000.0);
        stages.push(std::move(s));
    }
    return stages;
}

Json
metricsJson()
{
    const MetricsSnapshot snap = metricsSnapshot();
    Json counters = Json::object();
    for (const auto &c : snap.counters)
        counters.set(c.first, c.second);
    Json gauges = Json::object();
    for (const auto &g : snap.gauges)
        gauges.set(g.first, g.second);
    Json histograms = Json::object();
    for (const auto &h : snap.histograms) {
        Json v = Json::object();
        v.set("count", h.second.count);
        v.set("sum", h.second.sum);
        v.set("min", h.second.min);
        v.set("max", h.second.max);
        v.set("mean", h.second.mean());
        v.set("p50", h.second.percentile(0.5));
        v.set("p99", h.second.percentile(0.99));
        histograms.set(h.first, std::move(v));
    }
    Json metrics = Json::object();
    metrics.set("counters", std::move(counters));
    metrics.set("gauges", std::move(gauges));
    metrics.set("histograms", std::move(histograms));
    return metrics;
}

}  // namespace

Json
RunReport::toJson() const
{
    Json doc = Json::object();
    doc.set("tool", tool_);
    doc.set("timestamp", utcTimestamp());
    doc.set("gitSha", gitSha());
    // Which SIMD backend the compose hot path dispatched to, plus what
    // was asked for (they differ after a GEYSER_BACKEND fallback).
    Json compose = Json::object();
    compose.set("backend", std::string(kernels::activeName()));
    compose.set("backendRequested", kernels::requestedName());
    doc.set("compose", std::move(compose));
    doc.set("config", config_);
    doc.set("circuits", circuits_);
    doc.set("stages", stagesJson());
    doc.set("metrics", metricsJson());
    return doc;
}

void
RunReport::write(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("RunReport::write: cannot open " + path);
    out << toJson().dump(2) << "\n";
}

}  // namespace obs
}  // namespace geyser
