/**
 * @file
 * Prometheus text-format exposition of the obs metric registry — the
 * payload of geyserd's `metrics` wire verb and of geyserc --prom.
 *
 * Exposition grammar (DESIGN.md §12): every internal metric renders as
 * one Prometheus series family with `# HELP` and `# TYPE` headers.
 *
 *  - Generic mapping: internal name `a.b_c` becomes `geyser_a_b_c`
 *    (dots and dashes to underscores, other non-alphanumerics dropped);
 *    counters additionally get the `_total` suffix.
 *  - Service families carry an explicit mapping so the daemon's key
 *    series have conventional names and labels:
 *      service.done/failed/cancelled/expired/rejected
 *          -> geyser_jobs_total{outcome="..."}
 *      service.submitted   -> geyser_jobs_submitted_total
 *      service.cache_hit   -> geyser_cache_hits_total
 *      service.requests    -> geyser_requests_total
 *      service.queue_depth -> geyser_queue_depth         (gauge)
 *      service.in_flight   -> geyser_jobs_in_flight      (gauge)
 *      service.queue_wait_ms -> geyser_queue_wait_seconds (x 1e-3)
 *      service.compile_ms    -> geyser_compile_seconds    (x 1e-3)
 *      service.e2e_ms        -> geyser_e2e_seconds        (x 1e-3)
 *  - Histograms render cumulative `_bucket{le="..."}` series over the
 *    base-2 bucket edges (scaled where the family converts ms to
 *    seconds) up to the highest occupied bucket, a terminal
 *    `le="+Inf"` bucket, and `_sum` / `_count`.
 *  - One derived gauge, geyser_cache_hit_ratio, is computed from
 *    service.cache_hit / service.done when any job has completed.
 *
 * The snapshot the text is computed from is lock-consistent per metric
 * (each counter/gauge is one atomic read; each histogram snapshot is
 * taken under its own lock) and taken live — this is the scrape path of
 * a running daemon, not an end-of-run report.
 */
#ifndef GEYSER_OBS_PROMETHEUS_HPP
#define GEYSER_OBS_PROMETHEUS_HPP

#include <string>

#include "obs/obs.hpp"

namespace geyser {
namespace obs {

/** Render one snapshot in Prometheus text exposition format. */
std::string prometheusText(const MetricsSnapshot &snapshot);

/** Render a live snapshot of the registry (the daemon scrape path). */
std::string prometheusText();

}  // namespace obs
}  // namespace geyser

#endif  // GEYSER_OBS_PROMETHEUS_HPP
