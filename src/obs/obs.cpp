#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <map>
#include <stdexcept>

#include "obs/json.hpp"

namespace geyser {
namespace obs {

namespace detail {

std::atomic<bool> g_enabled{false};

namespace {
thread_local int t_depth = 0;
}

int
pushSpanDepth()
{
    return t_depth++;
}

void
popSpanDepth()
{
    --t_depth;
}

}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

/** All shared collection state, one mutex. Metric maps are node-based so
 *  references survive later insertions; reset() zeroes in place. */
struct Registry
{
    std::mutex mutex;
    std::map<std::string, Counter> counters;
    std::map<std::string, Gauge> gauges;
    std::map<std::string, Histogram> histograms;
    std::vector<TraceEvent> events;
    std::map<int, std::string> threadNames;
    Clock::time_point epoch = Clock::now();
    std::atomic<int> nextTid{0};
};

Registry &
registry()
{
    static Registry r;
    return r;
}

thread_local int t_tid = -1;

void
record(TraceEvent &&event)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.events.push_back(std::move(event));
}

}  // namespace

void
setEnabled(bool on)
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

void
reset()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.events.clear();
    for (auto &c : r.counters)
        c.second.reset();
    for (auto &g : r.gauges)
        g.second.reset();
    for (auto &h : r.histograms)
        h.second.reset();
    r.epoch = Clock::now();
}

uint64_t
nowMicros()
{
    const auto d = Clock::now() - registry().epoch;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(d).count());
}

int
currentThreadId()
{
    if (t_tid < 0)
        t_tid = registry().nextTid.fetch_add(1, std::memory_order_relaxed);
    return t_tid;
}

void
setThreadName(const std::string &name)
{
    const int tid = currentThreadId();
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.threadNames[tid] = name;
}

void
Span::begin(const char *name, const char *category)
{
    active_ = true;
    name_ = name;
    category_ = category;
    depth_ = detail::pushSpanDepth();
    start_ = nowMicros();
}

void
Span::end()
{
    const uint64_t stop = nowMicros();
    detail::popSpanDepth();
    TraceEvent event;
    event.name = name_;
    event.category = category_;
    event.phase = 'X';
    event.tsMicros = start_;
    event.durMicros = stop - start_;
    event.tid = currentThreadId();
    event.depth = depth_;
    event.numArgs = std::move(numArgs_);
    event.strArgs = std::move(strArgs_);
    record(std::move(event));
}

double
Histogram::bucketUpperBound(int i)
{
    return std::ldexp(1.0, i);  // 2^i; bucket 0 is (-inf, 1).
}

void
Histogram::record(double value)
{
    if (!enabled())
        return;
    int bucket = 0;
    if (value >= 1.0)
        bucket = std::min(kBuckets - 1,
                          1 + static_cast<int>(std::floor(std::log2(value))));
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
    ++buckets_[bucket];
}

Histogram::Snapshot
Histogram::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot s;
    s.count = count_;
    s.sum = sum_;
    s.min = min_;
    s.max = max_;
    s.buckets.assign(buckets_, buckets_ + kBuckets);
    return s;
}

void
Histogram::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
    std::fill(buckets_, buckets_ + kBuckets, 0L);
}

double
Histogram::Snapshot::percentile(double p) const
{
    if (count == 0)
        return 0.0;
    const double target = p * static_cast<double>(count);
    long seen = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
        seen += buckets[i];
        if (static_cast<double>(seen) >= target)
            return std::min(max, bucketUpperBound(static_cast<int>(i)));
    }
    return max;
}

Counter &
counter(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return r.counters[name];
}

Gauge &
gauge(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return r.gauges[name];
}

Histogram &
histogram(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return r.histograms[name];
}

void
counterEvent(const char *name, double value)
{
    if (!enabled())
        return;
    TraceEvent event;
    event.name = name;
    event.category = "metric";
    event.phase = 'C';
    event.tsMicros = nowMicros();
    event.tid = currentThreadId();
    event.numArgs.emplace_back("value", value);
    record(std::move(event));
}

std::vector<TraceEvent>
events()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return r.events;
}

MetricsSnapshot
metricsSnapshot()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    MetricsSnapshot s;
    for (const auto &c : r.counters)
        s.counters.emplace_back(c.first, c.second.value());
    for (const auto &g : r.gauges)
        s.gauges.emplace_back(g.first, g.second.value());
    for (const auto &h : r.histograms)
        s.histograms.emplace_back(h.first, h.second.snapshot());
    return s;
}

std::vector<std::pair<int, std::string>>
threadNames()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return {r.threadNames.begin(), r.threadNames.end()};
}

namespace {

Json
argsJson(const TraceEvent &event)
{
    Json args = Json::object();
    for (const auto &a : event.numArgs)
        args.set(a.first, a.second);
    for (const auto &a : event.strArgs)
        args.set(a.first, a.second);
    return args;
}

}  // namespace

std::string
chromeTraceJson()
{
    Json trace = Json::array();
    // Thread-name metadata first, so viewers label tracks immediately.
    for (const auto &tn : threadNames()) {
        Json m = Json::object();
        m.set("ph", "M");
        m.set("pid", 1);
        m.set("tid", tn.first);
        m.set("name", "thread_name");
        Json args = Json::object();
        args.set("name", tn.second);
        m.set("args", std::move(args));
        trace.push(std::move(m));
    }
    for (const auto &event : events()) {
        Json e = Json::object();
        e.set("name", event.name);
        e.set("cat", event.category);
        e.set("ph", std::string(1, event.phase));
        e.set("pid", 1);
        e.set("tid", event.tid);
        e.set("ts", static_cast<double>(event.tsMicros));
        if (event.phase == 'X')
            e.set("dur", static_cast<double>(event.durMicros));
        if (event.phase == 'C') {
            e.set("args", argsJson(event));
        } else if (!event.numArgs.empty() || !event.strArgs.empty()) {
            e.set("args", argsJson(event));
        }
        trace.push(std::move(e));
    }
    Json doc = Json::object();
    doc.set("traceEvents", std::move(trace));
    doc.set("displayTimeUnit", "ms");
    return doc.dump();
}

void
writeChromeTrace(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("writeChromeTrace: cannot open " + path);
    out << chromeTraceJson() << "\n";
}

std::string
metricsJsonl()
{
    std::string out;
    for (const auto &event : events()) {
        Json line = Json::object();
        line.set("type", event.phase == 'C' ? "counter_sample" : "span");
        line.set("name", event.name);
        line.set("cat", event.category);
        line.set("tid", event.tid);
        line.set("depth", event.depth);
        line.set("ts_us", static_cast<double>(event.tsMicros));
        if (event.phase == 'X')
            line.set("dur_us", static_cast<double>(event.durMicros));
        const Json args = argsJson(event);
        if (args.size() > 0)
            line.set("args", args);
        out += line.dump();
        out += '\n';
    }
    const MetricsSnapshot snap = metricsSnapshot();
    for (const auto &c : snap.counters) {
        Json line = Json::object();
        line.set("type", "counter");
        line.set("name", c.first);
        line.set("value", c.second);
        out += line.dump();
        out += '\n';
    }
    for (const auto &g : snap.gauges) {
        Json line = Json::object();
        line.set("type", "gauge");
        line.set("name", g.first);
        line.set("value", g.second);
        out += line.dump();
        out += '\n';
    }
    for (const auto &h : snap.histograms) {
        Json line = Json::object();
        line.set("type", "histogram");
        line.set("name", h.first);
        line.set("count", h.second.count);
        line.set("sum", h.second.sum);
        line.set("min", h.second.min);
        line.set("max", h.second.max);
        line.set("mean", h.second.mean());
        line.set("p50", h.second.percentile(0.5));
        line.set("p99", h.second.percentile(0.99));
        out += line.dump();
        out += '\n';
    }
    return out;
}

void
writeMetricsJsonl(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("writeMetricsJsonl: cannot open " + path);
    out << metricsJsonl();
}

}  // namespace obs
}  // namespace geyser
