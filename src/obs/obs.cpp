#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <fstream>
#include <map>
#include <stdexcept>

#include "obs/json.hpp"

namespace geyser {
namespace obs {

namespace detail {

std::atomic<bool> g_enabled{false};
thread_local uint64_t t_traceId = 0;

namespace {
thread_local int t_depth = 0;
}

int
pushSpanDepth()
{
    return t_depth++;
}

void
popSpanDepth()
{
    --t_depth;
}

}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

int64_t
steadyNanos()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now().time_since_epoch())
        .count();
}

/** Retained per-trace event buffer (see beginTrace). */
struct TraceBuffer
{
    std::vector<TraceEvent> events;
    long dropped = 0;
};

/** All shared collection state, one mutex. Metric maps are node-based so
 *  references survive later insertions; reset() zeroes in place. The
 *  epoch is atomic so nowMicros() never races reset(). */
struct Registry
{
    std::mutex mutex;
    std::map<std::string, Counter> counters;
    std::map<std::string, Gauge> gauges;
    std::map<std::string, Histogram> histograms;
    // Global recorder: fixed-capacity ring, oldest overwritten first.
    std::vector<TraceEvent> ring;
    size_t ringHead = 0;  ///< Oldest slot once the ring is full.
    size_t ringCapacity = kDefaultEventCapacity;
    Counter droppedEvents;  ///< Always-on `obs.events_dropped`.
    // Per-trace buffers, insertion order tracked for LRU eviction.
    std::map<uint64_t, TraceBuffer> traces;
    std::deque<uint64_t> traceOrder;
    size_t eventsPerTrace = 2048;
    size_t retainedTraces = 64;
    std::map<int, std::string> threadNames;
    std::atomic<int64_t> epochNanos{steadyNanos()};
    std::atomic<int> nextTid{0};

    Registry() { droppedEvents.setAlwaysOn(); }
};

Registry &
registry()
{
    static Registry r;
    return r;
}

thread_local int t_tid = -1;

/** Append to the global ring (registry mutex held). */
void
ringPush(Registry &r, TraceEvent &&event)
{
    if (r.ring.size() < r.ringCapacity) {
        r.ring.push_back(std::move(event));
        return;
    }
    r.ring[r.ringHead] = std::move(event);
    r.ringHead = (r.ringHead + 1) % r.ringCapacity;
    r.droppedEvents.add();
}

void
record(TraceEvent &&event)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    if (event.traceId != 0) {
        const auto it = r.traces.find(event.traceId);
        if (it != r.traces.end()) {
            if (it->second.events.size() < r.eventsPerTrace)
                it->second.events.push_back(event);
            else
                ++it->second.dropped;
        }
    }
    // The global ring only collects under the process-wide flag; a
    // trace context alone keeps the daemon's ring quiet.
    if (detail::g_enabled.load(std::memory_order_relaxed))
        ringPush(r, std::move(event));
}

}  // namespace

void
setEnabled(bool on)
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

void
reset()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.ring.clear();
    r.ringHead = 0;
    r.droppedEvents.reset();
    r.traces.clear();
    r.traceOrder.clear();
    for (auto &c : r.counters)
        c.second.reset();
    for (auto &g : r.gauges)
        g.second.reset();
    for (auto &h : r.histograms)
        h.second.reset();
    r.epochNanos.store(steadyNanos(), std::memory_order_relaxed);
}

uint64_t
nowMicros()
{
    // Relaxed atomic epoch: a concurrent reset() may move it forward
    // between the two loads, in which case clamp to zero rather than
    // wrapping (the event lands at the new epoch's origin).
    const int64_t now = steadyNanos();
    const int64_t epoch =
        registry().epochNanos.load(std::memory_order_relaxed);
    return now <= epoch ? 0
                        : static_cast<uint64_t>((now - epoch) / 1000);
}

int
currentThreadId()
{
    if (t_tid < 0)
        t_tid = registry().nextTid.fetch_add(1, std::memory_order_relaxed);
    return t_tid;
}

void
setThreadName(const std::string &name)
{
    const int tid = currentThreadId();
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.threadNames[tid] = name;
}

// ---- Trace contexts -------------------------------------------------

void
beginTrace(uint64_t id)
{
    if (id == 0)
        return;
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.traces.find(id);
    if (it != r.traces.end()) {
        it->second.events.clear();
        it->second.dropped = 0;
        return;
    }
    while (r.traceOrder.size() >= r.retainedTraces) {
        r.traces.erase(r.traceOrder.front());
        r.traceOrder.pop_front();
    }
    r.traces.emplace(id, TraceBuffer{});
    r.traceOrder.push_back(id);
}

bool
hasTrace(uint64_t id)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return r.traces.count(id) != 0;
}

std::vector<TraceEvent>
traceEvents(uint64_t id)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.traces.find(id);
    return it == r.traces.end() ? std::vector<TraceEvent>{}
                                : it->second.events;
}

long
traceDropped(uint64_t id)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.traces.find(id);
    return it == r.traces.end() ? -1 : it->second.dropped;
}

std::vector<uint64_t>
traceIds()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return {r.traceOrder.begin(), r.traceOrder.end()};
}

void
setTraceLimits(size_t eventsPerTrace, size_t retainedTraces)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.eventsPerTrace = std::max<size_t>(1, eventsPerTrace);
    r.retainedTraces = std::max<size_t>(1, retainedTraces);
    while (r.traceOrder.size() > r.retainedTraces) {
        r.traces.erase(r.traceOrder.front());
        r.traceOrder.pop_front();
    }
}

// ---- Spans ----------------------------------------------------------

void
Span::begin(const char *name, const char *category)
{
    active_ = true;
    name_ = name;
    category_ = category;
    depth_ = detail::pushSpanDepth();
    start_ = nowMicros();
}

void
Span::end()
{
    const uint64_t stop = nowMicros();
    detail::popSpanDepth();
    TraceEvent event;
    event.name = name_;
    event.category = category_;
    event.phase = 'X';
    event.tsMicros = start_;
    event.durMicros = stop - start_;
    event.tid = currentThreadId();
    event.depth = depth_;
    event.traceId = detail::t_traceId;
    event.numArgs = std::move(numArgs_);
    event.strArgs = std::move(strArgs_);
    record(std::move(event));
}

// ---- Metrics --------------------------------------------------------

double
Histogram::bucketUpperBound(int i)
{
    return std::ldexp(1.0, i);  // 2^i; bucket 0 is (-inf, 1).
}

void
Histogram::record(double value)
{
    if (!enabled() && !always_.load(std::memory_order_relaxed))
        return;
    int bucket = 0;
    if (value >= 1.0)
        bucket = std::min(kBuckets - 1,
                          1 + static_cast<int>(std::floor(std::log2(value))));
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
    ++buckets_[bucket];
}

Histogram::Snapshot
Histogram::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot s;
    s.count = count_;
    s.sum = sum_;
    s.min = min_;
    s.max = max_;
    s.buckets.assign(buckets_, buckets_ + kBuckets);
    return s;
}

void
Histogram::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
    std::fill(buckets_, buckets_ + kBuckets, 0L);
}

double
Histogram::Snapshot::percentile(double p) const
{
    if (count == 0)
        return 0.0;
    if (p <= 0.0)
        return min;
    const double target = p * static_cast<double>(count);
    long seen = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
        seen += buckets[i];
        if (static_cast<double>(seen) >= target)
            return std::min(max, bucketUpperBound(static_cast<int>(i)));
    }
    return max;
}

Counter &
counter(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    // The ring's drop counter lives outside the map (record() already
    // holds the registry mutex when it increments it) but is addressable
    // under its metric name like any other counter.
    if (name == "obs.events_dropped")
        return r.droppedEvents;
    return r.counters[name];
}

Gauge &
gauge(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return r.gauges[name];
}

Histogram &
histogram(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return r.histograms[name];
}

Counter &
serviceCounter(const std::string &name)
{
    Counter &c = counter(name);
    c.setAlwaysOn();
    return c;
}

Gauge &
serviceGauge(const std::string &name)
{
    Gauge &g = gauge(name);
    g.setAlwaysOn();
    return g;
}

Histogram &
serviceHistogram(const std::string &name)
{
    Histogram &h = histogram(name);
    h.setAlwaysOn();
    return h;
}

void
counterEvent(const char *name, double value)
{
    if (!collecting())
        return;
    TraceEvent event;
    event.name = name;
    event.category = "metric";
    event.phase = 'C';
    event.tsMicros = nowMicros();
    event.tid = currentThreadId();
    event.traceId = detail::t_traceId;
    event.numArgs.emplace_back("value", value);
    record(std::move(event));
}

// ---- The bounded global recorder ------------------------------------

void
setEventCapacity(size_t capacity)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    const size_t cap = std::max<size_t>(1, capacity);
    // Linearize, keep the newest `cap` events, count the rest dropped.
    std::vector<TraceEvent> linear;
    linear.reserve(r.ring.size());
    for (size_t i = 0; i < r.ring.size(); ++i)
        linear.push_back(
            std::move(r.ring[(r.ringHead + i) % r.ring.size()]));
    if (linear.size() > cap) {
        r.droppedEvents.add(static_cast<long>(linear.size() - cap));
        linear.erase(linear.begin(),
                     linear.begin() +
                         static_cast<long>(linear.size() - cap));
    }
    r.ring = std::move(linear);
    r.ringHead = 0;
    r.ringCapacity = cap;
}

size_t
eventCapacity()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return r.ringCapacity;
}

long
eventsDropped()
{
    return registry().droppedEvents.value();
}

std::vector<TraceEvent>
events()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<TraceEvent> out;
    out.reserve(r.ring.size());
    for (size_t i = 0; i < r.ring.size(); ++i)
        out.push_back(r.ring[(r.ringHead + i) % r.ring.size()]);
    return out;
}

MetricsSnapshot
metricsSnapshot()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    MetricsSnapshot s;
    for (const auto &c : r.counters)
        s.counters.emplace_back(c.first, c.second.value());
    s.counters.emplace_back("obs.events_dropped", r.droppedEvents.value());
    for (const auto &g : r.gauges)
        s.gauges.emplace_back(g.first, g.second.value());
    for (const auto &h : r.histograms)
        s.histograms.emplace_back(h.first, h.second.snapshot());
    return s;
}

std::vector<std::pair<int, std::string>>
threadNames()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return {r.threadNames.begin(), r.threadNames.end()};
}

namespace {

Json
argsJson(const TraceEvent &event)
{
    Json args = Json::object();
    for (const auto &a : event.numArgs)
        args.set(a.first, a.second);
    for (const auto &a : event.strArgs)
        args.set(a.first, a.second);
    if (event.traceId != 0)
        args.set("trace_id", static_cast<double>(event.traceId));
    return args;
}

}  // namespace

std::string
chromeTraceJson(const std::vector<TraceEvent> &events,
                const std::vector<std::pair<int, std::string>> &threads)
{
    Json trace = Json::array();
    // Thread-name metadata first, so viewers label tracks immediately.
    for (const auto &tn : threads) {
        Json m = Json::object();
        m.set("ph", "M");
        m.set("pid", 1);
        m.set("tid", tn.first);
        m.set("name", "thread_name");
        Json args = Json::object();
        args.set("name", tn.second);
        m.set("args", std::move(args));
        trace.push(std::move(m));
    }
    for (const auto &event : events) {
        Json e = Json::object();
        e.set("name", event.name);
        e.set("cat", event.category);
        e.set("ph", std::string(1, event.phase));
        e.set("pid", 1);
        e.set("tid", event.tid);
        e.set("ts", static_cast<double>(event.tsMicros));
        if (event.phase == 'X')
            e.set("dur", static_cast<double>(event.durMicros));
        if (event.phase == 'C') {
            e.set("args", argsJson(event));
        } else if (!event.numArgs.empty() || !event.strArgs.empty() ||
                   event.traceId != 0) {
            e.set("args", argsJson(event));
        }
        trace.push(std::move(e));
    }
    Json doc = Json::object();
    doc.set("traceEvents", std::move(trace));
    doc.set("displayTimeUnit", "ms");
    return doc.dump();
}

std::string
chromeTraceJson()
{
    return chromeTraceJson(events(), threadNames());
}

void
writeChromeTrace(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("writeChromeTrace: cannot open " + path);
    out << chromeTraceJson() << "\n";
}

std::string
metricsJsonl()
{
    std::string out;
    for (const auto &event : events()) {
        Json line = Json::object();
        line.set("type", event.phase == 'C' ? "counter_sample" : "span");
        line.set("name", event.name);
        line.set("cat", event.category);
        line.set("tid", event.tid);
        line.set("depth", event.depth);
        line.set("ts_us", static_cast<double>(event.tsMicros));
        if (event.phase == 'X')
            line.set("dur_us", static_cast<double>(event.durMicros));
        if (event.traceId != 0)
            line.set("trace_id", static_cast<double>(event.traceId));
        const Json args = argsJson(event);
        if (args.size() > 0)
            line.set("args", args);
        out += line.dump();
        out += '\n';
    }
    const MetricsSnapshot snap = metricsSnapshot();
    for (const auto &c : snap.counters) {
        Json line = Json::object();
        line.set("type", "counter");
        line.set("name", c.first);
        line.set("value", c.second);
        out += line.dump();
        out += '\n';
    }
    for (const auto &g : snap.gauges) {
        Json line = Json::object();
        line.set("type", "gauge");
        line.set("name", g.first);
        line.set("value", g.second);
        out += line.dump();
        out += '\n';
    }
    for (const auto &h : snap.histograms) {
        Json line = Json::object();
        line.set("type", "histogram");
        line.set("name", h.first);
        line.set("count", h.second.count);
        line.set("sum", h.second.sum);
        line.set("min", h.second.min);
        line.set("max", h.second.max);
        line.set("mean", h.second.mean());
        line.set("p50", h.second.percentile(0.5));
        line.set("p99", h.second.percentile(0.99));
        out += line.dump();
        out += '\n';
    }
    return out;
}

void
writeMetricsJsonl(const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("writeMetricsJsonl: cannot open " + path);
    out << metricsJsonl();
}

}  // namespace obs
}  // namespace geyser
