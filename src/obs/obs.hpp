/**
 * @file
 * Low-overhead tracing and metrics for the whole pipeline.
 *
 * Design: one process-wide atomic flag gates every hook. While tracing
 * is disabled (the default) a Span construction or Counter::add is a
 * relaxed atomic load plus a predicted branch — a few nanoseconds, cheap
 * enough to leave permanently compiled into the hot paths (verified by
 * the overhead smoke test). When enabled, spans record complete
 * trace_event-style events (name, category, wall-clock interval, thread,
 * nesting depth, key/value args) into a process-global recorder, and
 * counters/gauges/histograms accumulate in a named registry.
 *
 * Two exporters serialize a session:
 *  - Chrome trace_event JSON (chrome://tracing, Perfetto): nested spans
 *    per thread, thread-name metadata, 'C' counter tracks.
 *  - JSONL: one JSON object per line — every span event followed by the
 *    final value of every metric — for machine-readable perf logs.
 *
 * Threading: all hooks are safe to call concurrently. Metric references
 * returned by counter()/gauge()/histogram() are stable for the process
 * lifetime; reset() zeroes values and drops events but never invalidates
 * references, so call sites may cache them in function-local statics.
 */
#ifndef GEYSER_OBS_OBS_HPP
#define GEYSER_OBS_OBS_HPP

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace geyser {
namespace obs {

namespace detail {
extern std::atomic<bool> g_enabled;
/** Enter/leave the calling thread's span nesting scope. */
int pushSpanDepth();
void popSpanDepth();
}  // namespace detail

/** True while tracing/metrics collection is on. The one-flag fast path. */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Turn collection on or off (off drops nothing already recorded). */
void setEnabled(bool on);

/** Drop all recorded events and zero every metric (references survive). */
void reset();

/**
 * RAII: when constructed with on == true, enables collection and
 * restores the previous state on destruction; with on == false it is a
 * no-op (never *disables* an enclosing session). Backs
 * PipelineOptions::trace.
 */
class EnabledScope
{
  public:
    explicit EnabledScope(bool on) : previous_(enabled())
    {
        if (on)
            setEnabled(true);
    }
    ~EnabledScope() { setEnabled(previous_); }
    EnabledScope(const EnabledScope &) = delete;
    EnabledScope &operator=(const EnabledScope &) = delete;

  private:
    bool previous_;
};

/** Monotonic microseconds since the trace epoch (process start/reset). */
uint64_t nowMicros();

/** Small dense id for the calling thread (assigned on first use). */
int currentThreadId();

/** Name the calling thread in trace exports ("main", "geyser-wk0"...). */
void setThreadName(const std::string &name);

/** One recorded event (Chrome trace_event phases). */
struct TraceEvent
{
    std::string name;
    std::string category;
    char phase = 'X';     ///< 'X' complete span, 'C' counter sample.
    uint64_t tsMicros = 0;
    uint64_t durMicros = 0;  ///< For 'X' events.
    int tid = 0;
    int depth = 0;        ///< Span nesting depth within the thread.
    std::vector<std::pair<std::string, double>> numArgs;
    std::vector<std::pair<std::string, std::string>> strArgs;
};

/**
 * RAII span covering a scope. Construction is free when collection is
 * disabled; when enabled, the destructor records a complete event with
 * any args attached in between.
 */
class Span
{
  public:
    explicit Span(const char *name, const char *category = "geyser")
    {
        if (enabled())
            begin(name, category);
    }
    ~Span()
    {
        if (active_)
            end();
    }
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** True if this span is recording (collection was on at entry). */
    bool active() const { return active_; }

    /** Microseconds since span entry (0 when inactive). */
    uint64_t elapsedMicros() const
    {
        return active_ ? nowMicros() - start_ : 0;
    }

    /** Attach args, recorded when the span closes. No-ops when inactive. */
    void arg(const char *key, double value)
    {
        if (active_)
            numArgs_.emplace_back(key, value);
    }
    void arg(const char *key, const char *value)
    {
        if (active_)
            strArgs_.emplace_back(key, value);
    }
    void arg(const char *key, const std::string &value)
    {
        if (active_)
            strArgs_.emplace_back(key, value);
    }

  private:
    void begin(const char *name, const char *category);
    void end();

    bool active_ = false;
    int depth_ = 0;
    uint64_t start_ = 0;
    const char *name_ = nullptr;
    const char *category_ = nullptr;
    std::vector<std::pair<std::string, double>> numArgs_;
    std::vector<std::pair<std::string, std::string>> strArgs_;
};

/** Monotonic counter. add() is dropped while collection is disabled. */
class Counter
{
  public:
    void add(long delta = 1)
    {
        if (enabled())
            value_.fetch_add(delta, std::memory_order_relaxed);
    }
    long value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<long> value_{0};
};

/** Last-value gauge. */
class Gauge
{
  public:
    void set(double v)
    {
        if (enabled())
            value_.store(v, std::memory_order_relaxed);
    }
    double value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Histogram over base-2 exponential buckets: bucket 0 holds values < 1,
 * bucket i >= 1 holds [2^(i-1), 2^i). Tracks count/sum/min/max exactly;
 * percentiles are bucket-resolution estimates.
 */
class Histogram
{
  public:
    static constexpr int kBuckets = 64;

    struct Snapshot
    {
        long count = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;
        std::vector<long> buckets;

        double mean() const { return count > 0 ? sum / count : 0.0; }
        /** Upper-bound estimate of the p-quantile (p in [0, 1]). */
        double percentile(double p) const;
    };

    void record(double value);
    Snapshot snapshot() const;
    void reset();

    /** Inclusive upper edge of bucket i. */
    static double bucketUpperBound(int i);

  private:
    mutable std::mutex mutex_;
    long count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    long buckets_[kBuckets] = {};
};

/** Named-metric registry. References are stable for the process. */
Counter &counter(const std::string &name);
Gauge &gauge(const std::string &name);
Histogram &histogram(const std::string &name);

/** Record an instantaneous counter sample as a 'C' trace event. */
void counterEvent(const char *name, double value);

/** Copy of every event recorded so far (chronological per thread). */
std::vector<TraceEvent> events();

/** Final values of every registered metric. */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, long>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
};
MetricsSnapshot metricsSnapshot();

/** Registered thread names by obs thread id. */
std::vector<std::pair<int, std::string>> threadNames();

/** Chrome trace_event JSON of the session (load in Perfetto). */
std::string chromeTraceJson();
void writeChromeTrace(const std::string &path);

/** JSONL: one line per span event, then one line per metric. */
std::string metricsJsonl();
void writeMetricsJsonl(const std::string &path);

}  // namespace obs
}  // namespace geyser

#endif  // GEYSER_OBS_OBS_HPP
