/**
 * @file
 * Low-overhead tracing and metrics for the whole pipeline, service-grade
 * since PR 7 (bounded recorder, metric domains, per-job trace contexts).
 *
 * Design: one process-wide atomic flag gates span recording into the
 * global event recorder. While tracing is disabled (the default) a Span
 * construction is a relaxed atomic load, a thread-local load, and a
 * predicted branch — a few nanoseconds, cheap enough to leave
 * permanently compiled into the hot paths (verified by the overhead
 * smoke test; the measured number lives in DESIGN.md §12). When
 * enabled, spans record complete trace_event-style events (name,
 * category, wall-clock interval, thread, nesting depth, key/value args)
 * into a process-global recorder, and counters/gauges/histograms
 * accumulate in a named registry.
 *
 * Metric domains (PR 7): every metric belongs to one of two domains.
 *  - Trace domain (counter()/gauge()/histogram()): hooks are dropped
 *    while the tracing flag is off — free enough for per-evaluation
 *    hot-path counters.
 *  - Service domain (serviceCounter()/serviceGauge()/serviceHistogram()):
 *    always counted, independent of the tracing flag, so a long-running
 *    daemon reports real queue depths, latencies, and cache hit counts
 *    without paying for span collection.
 * A name requested through both accessors is one metric; the service
 * accessor stickily promotes it to always-on.
 *
 * Bounded recorder (PR 7): the global recorder is a fixed-capacity ring
 * buffer (setEventCapacity). When full, the oldest event is overwritten
 * and the always-on `obs.events_dropped` counter increments, so a
 * week-long traced daemon cannot OOM and the loss is observable.
 *
 * Trace contexts (PR 7): beginTrace(id) opens a bounded per-trace event
 * buffer; a TraceScope tags the calling thread so spans it records are
 * copied into that buffer even while the global flag is off (this is
 * how geyserd captures per-job traces with tracing disabled). Buffers
 * are retained for later retrieval (traceEvents) under an LRU cap on
 * both traces retained and events per trace.
 *
 * Two exporters serialize a session:
 *  - Chrome trace_event JSON (chrome://tracing, Perfetto): nested spans
 *    per thread, thread-name metadata, 'C' counter tracks.
 *  - JSONL: one JSON object per line — every span event followed by the
 *    final value of every metric — for machine-readable perf logs.
 * A third, Prometheus text exposition, lives in obs/prometheus.hpp.
 *
 * Threading: all hooks are safe to call concurrently, and reset() is
 * safe against concurrent recording and scraping (the epoch is atomic;
 * everything else is under the registry mutex or per-metric locks).
 * Metric references returned by the accessors are stable for the
 * process lifetime; reset() zeroes values and drops events but never
 * invalidates references, so call sites may cache them in
 * function-local statics.
 */
#ifndef GEYSER_OBS_OBS_HPP
#define GEYSER_OBS_OBS_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace geyser {
namespace obs {

namespace detail {
extern std::atomic<bool> g_enabled;
/** Nonzero while the calling thread is inside a TraceScope. */
extern thread_local uint64_t t_traceId;
/** Enter/leave the calling thread's span nesting scope. */
int pushSpanDepth();
void popSpanDepth();
}  // namespace detail

/** True while global tracing/metrics collection is on. */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/**
 * True when a span constructed now would record somewhere: globally
 * (tracing flag) or into the calling thread's trace context. This is
 * the span fast path; both loads are relaxed/thread-local.
 */
inline bool
collecting()
{
    return enabled() || detail::t_traceId != 0;
}

/** Turn collection on or off (off drops nothing already recorded). */
void setEnabled(bool on);

/**
 * Drop all recorded events (global ring and per-trace buffers) and zero
 * every metric (references survive). Safe to call while other threads
 * record or scrape.
 */
void reset();

/**
 * RAII: when constructed with on == true, enables collection and
 * restores the previous state on destruction; with on == false it is a
 * no-op (never *disables* an enclosing session). Backs
 * PipelineOptions::trace.
 */
class EnabledScope
{
  public:
    explicit EnabledScope(bool on) : previous_(enabled())
    {
        if (on)
            setEnabled(true);
    }
    ~EnabledScope() { setEnabled(previous_); }
    EnabledScope(const EnabledScope &) = delete;
    EnabledScope &operator=(const EnabledScope &) = delete;

  private:
    bool previous_;
};

/** Monotonic microseconds since the trace epoch (process start/reset). */
uint64_t nowMicros();

/** Small dense id for the calling thread (assigned on first use). */
int currentThreadId();

/** Name the calling thread in trace exports ("main", "geyser-wk0"...). */
void setThreadName(const std::string &name);

/** One recorded event (Chrome trace_event phases). */
struct TraceEvent
{
    std::string name;
    std::string category;
    char phase = 'X';     ///< 'X' complete span, 'C' counter sample.
    uint64_t tsMicros = 0;
    uint64_t durMicros = 0;  ///< For 'X' events.
    int tid = 0;
    int depth = 0;        ///< Span nesting depth within the thread.
    uint64_t traceId = 0; ///< Owning trace context (0 = none).
    std::vector<std::pair<std::string, double>> numArgs;
    std::vector<std::pair<std::string, std::string>> strArgs;
};

// ---- Trace contexts (per-job traces) --------------------------------

/**
 * Open (or clear) the bounded event buffer for trace `id` so spans
 * recorded under a TraceScope with that id are retained for retrieval.
 * Beyond the retained-traces cap the oldest buffer is evicted.
 * id 0 is reserved ("no trace") and ignored.
 */
void beginTrace(uint64_t id);

/** True while a buffer for `id` is retained. */
bool hasTrace(uint64_t id);

/** Chronological copy of the events captured for trace `id`. */
std::vector<TraceEvent> traceEvents(uint64_t id);

/** Events dropped from trace `id` by its per-trace cap (-1: unknown). */
long traceDropped(uint64_t id);

/** Retained trace ids, oldest first. */
std::vector<uint64_t> traceIds();

/**
 * Bound the per-trace buffers: at most `eventsPerTrace` events are kept
 * per trace (the rest are counted as dropped) and at most
 * `retainedTraces` trace buffers are retained (oldest evicted first).
 * Applies to traces begun afterwards; both clamp to >= 1.
 */
void setTraceLimits(size_t eventsPerTrace, size_t retainedTraces);

/**
 * RAII: tags the calling thread with trace `id` for its lifetime, so
 * spans it opens are copied into that trace's buffer (if begun) even
 * while the global flag is off. TraceScope(0) is a no-op — it neither
 * sets nor clears an enclosing scope — which makes propagating
 * currentTraceId() across thread-pool tasks unconditional.
 */
class TraceScope
{
  public:
    explicit TraceScope(uint64_t id) : previous_(detail::t_traceId),
                                       active_(id != 0)
    {
        if (active_)
            detail::t_traceId = id;
    }
    ~TraceScope()
    {
        if (active_)
            detail::t_traceId = previous_;
    }
    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    uint64_t previous_;
    bool active_;
};

/** The calling thread's trace id (0 outside any TraceScope). */
inline uint64_t
currentTraceId()
{
    return detail::t_traceId;
}

// ---- Spans ----------------------------------------------------------

/**
 * RAII span covering a scope. Construction is free when nothing is
 * collecting; when the global flag or a thread trace context is active,
 * the destructor records a complete event with any args attached in
 * between.
 */
class Span
{
  public:
    explicit Span(const char *name, const char *category = "geyser")
    {
        if (collecting())
            begin(name, category);
    }
    ~Span()
    {
        if (active_)
            end();
    }
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** True if this span is recording (collection was on at entry). */
    bool active() const { return active_; }

    /** Microseconds since span entry (0 when inactive). */
    uint64_t elapsedMicros() const
    {
        return active_ ? nowMicros() - start_ : 0;
    }

    /** Attach args, recorded when the span closes. No-ops when inactive. */
    void arg(const char *key, double value)
    {
        if (active_)
            numArgs_.emplace_back(key, value);
    }
    void arg(const char *key, const char *value)
    {
        if (active_)
            strArgs_.emplace_back(key, value);
    }
    void arg(const char *key, const std::string &value)
    {
        if (active_)
            strArgs_.emplace_back(key, value);
    }

  private:
    void begin(const char *name, const char *category);
    void end();

    bool active_ = false;
    int depth_ = 0;
    uint64_t start_ = 0;
    const char *name_ = nullptr;
    const char *category_ = nullptr;
    std::vector<std::pair<std::string, double>> numArgs_;
    std::vector<std::pair<std::string, std::string>> strArgs_;
};

// ---- Metrics --------------------------------------------------------

/**
 * Monotonic counter. Trace-domain add() is dropped while collection is
 * disabled; a service-domain counter (setAlwaysOn) always counts.
 */
class Counter
{
  public:
    void add(long delta = 1)
    {
        if (enabled() || always_.load(std::memory_order_relaxed))
            value_.fetch_add(delta, std::memory_order_relaxed);
    }
    long value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0, std::memory_order_relaxed); }

    /** Promote to the always-counted service domain (sticky). */
    void setAlwaysOn() { always_.store(true, std::memory_order_relaxed); }
    bool alwaysOn() const
    {
        return always_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<long> value_{0};
    std::atomic<bool> always_{false};
};

/** Last-value gauge (same domain rules as Counter). */
class Gauge
{
  public:
    void set(double v)
    {
        if (enabled() || always_.load(std::memory_order_relaxed))
            value_.store(v, std::memory_order_relaxed);
    }
    double value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

    void setAlwaysOn() { always_.store(true, std::memory_order_relaxed); }
    bool alwaysOn() const
    {
        return always_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
    std::atomic<bool> always_{false};
};

/**
 * Histogram over base-2 exponential buckets: bucket 0 holds values < 1,
 * bucket i >= 1 holds [2^(i-1), 2^i). Tracks count/sum/min/max exactly;
 * percentiles are bucket-resolution estimates. Same domain rules as
 * Counter.
 */
class Histogram
{
  public:
    static constexpr int kBuckets = 64;

    struct Snapshot
    {
        long count = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;
        std::vector<long> buckets;

        double mean() const { return count > 0 ? sum / count : 0.0; }
        /** Upper-bound estimate of the p-quantile (p in [0, 1]). */
        double percentile(double p) const;
    };

    void record(double value);
    Snapshot snapshot() const;
    void reset();

    void setAlwaysOn() { always_.store(true, std::memory_order_relaxed); }
    bool alwaysOn() const
    {
        return always_.load(std::memory_order_relaxed);
    }

    /** Inclusive upper edge of bucket i. */
    static double bucketUpperBound(int i);

  private:
    mutable std::mutex mutex_;
    std::atomic<bool> always_{false};
    long count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    long buckets_[kBuckets] = {};
};

/** Trace-domain named metrics. References are process-stable. */
Counter &counter(const std::string &name);
Gauge &gauge(const std::string &name);
Histogram &histogram(const std::string &name);

/** Service-domain (always-counted) named metrics; same registry. */
Counter &serviceCounter(const std::string &name);
Gauge &serviceGauge(const std::string &name);
Histogram &serviceHistogram(const std::string &name);

/** Record an instantaneous counter sample as a 'C' trace event. */
void counterEvent(const char *name, double value);

// ---- The bounded global recorder ------------------------------------

/** Default capacity of the global event ring buffer. */
inline constexpr size_t kDefaultEventCapacity = 1u << 16;

/**
 * Resize the global ring buffer (clamped to >= 1). When shrinking, the
 * oldest events are discarded and counted as dropped.
 */
void setEventCapacity(size_t capacity);
size_t eventCapacity();

/** Events overwritten by the ring since the last reset(). */
long eventsDropped();

/** Chronological copy of the global ring (bounded by its capacity). */
std::vector<TraceEvent> events();

/** Final values of every registered metric. */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, long>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
};
MetricsSnapshot metricsSnapshot();

/** Registered thread names by obs thread id. */
std::vector<std::pair<int, std::string>> threadNames();

/** Chrome trace_event JSON of the session (load in Perfetto). */
std::string chromeTraceJson();
/** Chrome trace_event JSON of an explicit event set (per-job traces). */
std::string chromeTraceJson(
    const std::vector<TraceEvent> &events,
    const std::vector<std::pair<int, std::string>> &threads);
void writeChromeTrace(const std::string &path);

/** JSONL: one line per span event, then one line per metric. */
std::string metricsJsonl();
void writeMetricsJsonl(const std::string &path);

}  // namespace obs
}  // namespace geyser

#endif  // GEYSER_OBS_OBS_HPP
