#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace geyser {
namespace obs {

void
Json::push(Json v)
{
    if (type_ == Type::Null)
        type_ = Type::Array;
    if (type_ != Type::Array)
        throw std::logic_error("Json::push: not an array");
    arr_.push_back(std::move(v));
}

void
Json::set(const std::string &key, Json v)
{
    if (type_ == Type::Null)
        type_ = Type::Object;
    if (type_ != Type::Object)
        throw std::logic_error("Json::set: not an object");
    for (auto &member : obj_) {
        if (member.first == key) {
            member.second = std::move(v);
            return;
        }
    }
    obj_.emplace_back(key, std::move(v));
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &member : obj_)
        if (member.first == key)
            return &member.second;
    return nullptr;
}

std::string
Json::quote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (const unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
    return out;
}

namespace {

std::string
formatNumber(double v)
{
    if (!std::isfinite(v))
        return "null";  // JSON has no NaN/Inf.
    char buf[40];
    if (v == std::floor(v) && std::abs(v) < 9.0e15)
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    else
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

}  // namespace

void
Json::dumpTo(std::string &out, int indent, int level) const
{
    const bool pretty = indent >= 0;
    const std::string pad(pretty ? static_cast<size_t>(indent * (level + 1))
                                 : 0,
                          ' ');
    const std::string closePad(pretty ? static_cast<size_t>(indent * level)
                                      : 0,
                               ' ');
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Number:
        out += formatNumber(num_);
        break;
      case Type::String:
        out += quote(str_);
        break;
      case Type::Array:
        if (arr_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (size_t i = 0; i < arr_.size(); ++i) {
            if (i > 0)
                out += ',';
            if (pretty) {
                out += '\n';
                out += pad;
            }
            arr_[i].dumpTo(out, indent, level + 1);
        }
        if (pretty) {
            out += '\n';
            out += closePad;
        }
        out += ']';
        break;
      case Type::Object:
        if (obj_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (size_t i = 0; i < obj_.size(); ++i) {
            if (i > 0)
                out += ',';
            if (pretty) {
                out += '\n';
                out += pad;
            }
            out += quote(obj_[i].first);
            out += pretty ? ": " : ":";
            obj_[i].second.dumpTo(out, indent, level + 1);
        }
        if (pretty) {
            out += '\n';
            out += closePad;
        }
        out += '}';
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/** Recursive-descent parser over a string view of the input. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Json parseDocument()
    {
        Json v = parseValue();
        skipWhitespace();
        if (pos_ != text_.size())
            fail("trailing characters after JSON value");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &what) const
    {
        throw std::invalid_argument("Json::parse at offset " +
                                    std::to_string(pos_) + ": " + what);
    }

    void skipWhitespace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consumeLiteral(const char *lit)
    {
        size_t n = 0;
        while (lit[n] != '\0')
            ++n;
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Json parseValue()
    {
        skipWhitespace();
        const char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return Json(parseString());
        if (c == 't') {
            if (!consumeLiteral("true"))
                fail("bad literal");
            return Json(true);
        }
        if (c == 'f') {
            if (!consumeLiteral("false"))
                fail("bad literal");
            return Json(false);
        }
        if (c == 'n') {
            if (!consumeLiteral("null"))
                fail("bad literal");
            return Json();
        }
        return parseNumber();
    }

    Json parseNumber()
    {
        const size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        try {
            size_t used = 0;
            const double v = std::stod(text_.substr(start, pos_ - start),
                                       &used);
            if (used != pos_ - start)
                fail("malformed number");
            return Json(v);
        } catch (const std::logic_error &) {
            fail("malformed number");
        }
    }

    void appendUtf8(std::string &out, unsigned code)
    {
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                appendUtf8(out, code);
                break;
              }
              default:
                fail("bad escape");
            }
        }
    }

    Json parseArray()
    {
        expect('[');
        Json out = Json::array();
        skipWhitespace();
        if (peek() == ']') {
            ++pos_;
            return out;
        }
        for (;;) {
            out.push(parseValue());
            skipWhitespace();
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == ']') {
                ++pos_;
                return out;
            }
            fail("expected ',' or ']'");
        }
    }

    Json parseObject()
    {
        expect('{');
        Json out = Json::object();
        skipWhitespace();
        if (peek() == '}') {
            ++pos_;
            return out;
        }
        for (;;) {
            skipWhitespace();
            std::string key = parseString();
            skipWhitespace();
            expect(':');
            out.set(key, parseValue());
            skipWhitespace();
            const char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == '}') {
                ++pos_;
                return out;
            }
            fail("expected ',' or '}'");
        }
    }

    const std::string &text_;
    size_t pos_ = 0;
};

}  // namespace

Json
Json::parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

}  // namespace obs
}  // namespace geyser
