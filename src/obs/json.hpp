/**
 * @file
 * A minimal ordered JSON value: enough of a writer/parser for the
 * observability exporters (Chrome trace_event files, JSONL metric logs,
 * structured run reports) and for round-trip validation in tests. Object
 * keys keep insertion order so reports stay human-readable and diffable.
 * Not a general-purpose JSON library: numbers are doubles, duplicate
 * keys are last-write-wins, and inputs larger than memory are out of
 * scope.
 */
#ifndef GEYSER_OBS_JSON_HPP
#define GEYSER_OBS_JSON_HPP

#include <string>
#include <utility>
#include <vector>

namespace geyser {
namespace obs {

class Json
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Json() = default;
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double v) : type_(Type::Number), num_(v) {}
    Json(int v) : type_(Type::Number), num_(v) {}
    Json(long v) : type_(Type::Number), num_(static_cast<double>(v)) {}
    Json(long long v) : type_(Type::Number), num_(static_cast<double>(v)) {}
    Json(const char *s) : type_(Type::String), str_(s) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

    static Json array() { Json j; j.type_ = Type::Array; return j; }
    static Json object() { Json j; j.type_ = Type::Object; return j; }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool boolean() const { return bool_; }
    double number() const { return num_; }
    const std::string &str() const { return str_; }

    /** Array elements (empty unless type() == Array). */
    const std::vector<Json> &items() const { return arr_; }
    /** Object members in insertion order. */
    const std::vector<std::pair<std::string, Json>> &members() const
    {
        return obj_;
    }
    size_t size() const
    {
        return type_ == Type::Array ? arr_.size() : obj_.size();
    }

    /** Append to an array (converts a Null value into an array). */
    void push(Json v);

    /** Set an object member (converts a Null value into an object). */
    void set(const std::string &key, Json v);

    /** Member lookup; nullptr if absent or not an object. */
    const Json *find(const std::string &key) const;

    /**
     * Serialize. indent < 0 emits the compact single-line form; >= 0
     * pretty-prints with that many spaces per level.
     */
    std::string dump(int indent = -1) const;

    /** Parse a complete JSON document; throws std::invalid_argument. */
    static Json parse(const std::string &text);

    /** Escape and quote a string as a JSON literal. */
    static std::string quote(const std::string &s);

  private:
    void dumpTo(std::string &out, int indent, int level) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace obs
}  // namespace geyser

#endif  // GEYSER_OBS_JSON_HPP
