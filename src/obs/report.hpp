/**
 * @file
 * Structured per-run report: the machine-readable summary a bench binary
 * (or any harness) writes after a run — tool name, UTC timestamp, git
 * revision, configuration, free-form per-circuit rows, per-stage wall
 * times aggregated from the recorded trace spans, and the final metric
 * values. Successive reports form a perf trajectory that regressions can
 * be diffed against (see bench/common's --report flag).
 */
#ifndef GEYSER_OBS_REPORT_HPP
#define GEYSER_OBS_REPORT_HPP

#include <string>

#include "obs/json.hpp"

namespace geyser {
namespace obs {

/** Git revision baked in at configure time ("unknown" outside a repo). */
std::string gitSha();

/** Current UTC time as ISO-8601 ("2026-08-06T12:34:56Z"). */
std::string utcTimestamp();

class RunReport
{
  public:
    explicit RunReport(std::string tool) : tool_(std::move(tool)) {}

    /** Record one configuration key (run scale, env knobs, ...). */
    void setConfig(const std::string &key, Json value);

    /** Append one per-circuit row (free-form object with a "name"). */
    void addCircuit(Json row);

    /**
     * Assemble the full report. Stage wall times and metrics are
     * aggregated from the obs recorder at call time, so enable
     * collection before the run to populate them.
     */
    Json toJson() const;

    /** Write toJson() pretty-printed to `path`. */
    void write(const std::string &path) const;

  private:
    std::string tool_;
    Json config_ = Json::object();
    Json circuits_ = Json::array();
};

}  // namespace obs
}  // namespace geyser

#endif  // GEYSER_OBS_REPORT_HPP
