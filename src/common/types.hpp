/**
 * @file
 * Shared scalar and container aliases used across the geyser library.
 */
#ifndef GEYSER_COMMON_TYPES_HPP
#define GEYSER_COMMON_TYPES_HPP

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace geyser {

/** Complex amplitude type used by all simulators and unitaries. */
using Complex = std::complex<double>;

/** Index of a qubit (logical or physical, depending on context). */
using Qubit = int;

/** A probability distribution over computational basis states. */
using Distribution = std::vector<double>;

/** Imaginary unit. */
inline constexpr Complex kI{0.0, 1.0};

/** Pi, to double precision. */
inline constexpr double kPi = 3.14159265358979323846;

}  // namespace geyser

#endif  // GEYSER_COMMON_TYPES_HPP
