#include "common/env.hpp"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/error.hpp"

namespace geyser {
namespace env {

namespace {

[[noreturn]] void
fail(const char *name, const std::string &value, const std::string &why)
{
    throw ValidationError(std::string(name) + ": invalid value \"" + value +
                          "\" (" + why + ")");
}

std::string
formatRange(double lo, double hi)
{
    return "expected a number in [" + std::to_string(lo) + ", " +
           std::to_string(hi) + "]";
}

}  // namespace

long long
envInt(const char *name, long long fallback, long long lo, long long hi)
{
    const char *raw = std::getenv(name);
    if (raw == nullptr || raw[0] == '\0')
        return fallback;
    const std::string value(raw);
    long long parsed = 0;
    const auto [end, ec] =
        std::from_chars(value.data(), value.data() + value.size(), parsed);
    if (ec == std::errc::result_out_of_range)
        fail(name, value, "integer out of range");
    if (ec != std::errc() || end != value.data() + value.size())
        fail(name, value, "expected a base-10 integer");
    if (parsed < lo || parsed > hi)
        fail(name, value,
             "expected an integer in [" + std::to_string(lo) + ", " +
                 std::to_string(hi) + "]");
    return parsed;
}

double
envDouble(const char *name, double fallback, double lo, double hi)
{
    const char *raw = std::getenv(name);
    if (raw == nullptr || raw[0] == '\0')
        return fallback;
    const std::string value(raw);
    errno = 0;
    char *end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end != value.c_str() + value.size() || end == value.c_str())
        fail(name, value, "expected a number");
    if (errno == ERANGE || !std::isfinite(parsed))
        fail(name, value, "number out of range");
    if (parsed < lo || parsed > hi)
        fail(name, value, formatRange(lo, hi));
    return parsed;
}

}  // namespace env
}  // namespace geyser
