#include "common/error.hpp"

#include <sstream>

namespace geyser {

const char *
errorKindName(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::Parse:
        return "parse error";
      case ErrorKind::Validation:
        return "validation error";
      case ErrorKind::Io:
        return "io error";
      case ErrorKind::Internal:
        return "internal error";
    }
    return "error";
}

std::string
formatWithContext(const SourceContext &context, const std::string &message)
{
    if (!context.known())
        return message;
    std::ostringstream out;
    if (!context.source.empty())
        out << context.source;
    if (context.line > 0)
        out << ":" << context.line;
    else if (context.offset >= 0)
        out << "@" << context.offset;
    out << ": " << message;
    return out.str();
}

}  // namespace geyser
