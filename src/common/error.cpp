#include "common/error.hpp"

#include <cstdio>
#include <sstream>

namespace geyser {

const char *
errorKindName(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::Parse:
        return "parse error";
      case ErrorKind::Validation:
        return "validation error";
      case ErrorKind::Io:
        return "io error";
      case ErrorKind::Internal:
        return "internal error";
      case ErrorKind::Cancelled:
        return "cancelled";
      case ErrorKind::Deadline:
        return "deadline exceeded";
    }
    return "error";
}

int
renderCliError(const char *tool, const std::exception &e)
{
    // Taxonomy errors know their class and location; report both so
    // "<tool>: parse error: qasm:17: ..." is actionable without a
    // debugger. Internal errors are bugs in this library, not in the
    // input — exit 3 so scripts can tell them apart.
    if (const auto *err = dynamic_cast<const Error *>(&e)) {
        std::fprintf(stderr, "%s: %s: %s\n", tool,
                     errorKindName(err->kind()), err->what());
        return err->kind() == ErrorKind::Internal ? 3 : 1;
    }
    std::fprintf(stderr, "%s: %s\n", tool, e.what());
    return 1;
}

std::string
formatWithContext(const SourceContext &context, const std::string &message)
{
    if (!context.known())
        return message;
    std::ostringstream out;
    if (!context.source.empty())
        out << context.source;
    if (context.line > 0)
        out << ":" << context.line;
    else if (context.offset >= 0)
        out << "@" << context.offset;
    out << ": " << message;
    return out.str();
}

}  // namespace geyser
