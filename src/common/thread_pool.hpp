/**
 * @file
 * A minimal fixed-size thread pool used to compose circuit blocks and run
 * noise trajectories in parallel (the paper composes blocks concurrently
 * with Python multiprocessing; this is the C++ equivalent).
 */
#ifndef GEYSER_COMMON_THREAD_POOL_HPP
#define GEYSER_COMMON_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace geyser {

/**
 * Fixed-size worker pool. Tasks are void() callables; waitIdle() blocks
 * until every submitted task has finished.
 */
class ThreadPool
{
  public:
    /** Create a pool with n workers (n <= 0 selects hardware concurrency). */
    explicit ThreadPool(int n = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task for execution. */
    void submit(std::function<void()> task);

    /** Block until all submitted tasks have completed. */
    void waitIdle();

    /** Number of worker threads. */
    int size() const { return static_cast<int>(workers_.size()); }

    /**
     * Convenience: run fn(i) for i in [0, n) across the pool and wait.
     * fn must be safe to invoke concurrently for distinct i.
     */
    void parallelFor(int n, const std::function<void(int)> &fn);

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cvTask_;
    std::condition_variable cvIdle_;
    int inFlight_ = 0;
    bool stop_ = false;
};

/** Global pool shared by the library (lazily constructed). */
ThreadPool &globalPool();

}  // namespace geyser

#endif  // GEYSER_COMMON_THREAD_POOL_HPP
