/**
 * @file
 * A minimal fixed-size thread pool used to compose circuit blocks and run
 * noise trajectories in parallel (the paper composes blocks concurrently
 * with Python multiprocessing; this is the C++ equivalent).
 *
 * The pool keeps lightweight lifetime counters (submitted / completed /
 * busy time) unconditionally and, when obs tracing is enabled, emits a
 * span per task plus queue-depth samples and wait/run-time histograms.
 * Workers are named ("geyser-wk0", ...) for trace readability and
 * debugger ergonomics.
 *
 * Exception safety: a task that throws never reaches std::terminate.
 * parallelFor() captures the first exception thrown by any of its tasks
 * and rethrows it on the calling thread after the whole batch has
 * drained; exceptions from bare submit() tasks are swallowed and counted
 * (PoolStats::exceptions, pool.task_exception). Each parallelFor() batch
 * completes on its own latch, so concurrent batches from different
 * threads do not wait on each other's tasks, and a task that re-enters
 * parallelFor() on its own pool runs the nested batch inline instead of
 * deadlocking on a starved queue.
 */
#ifndef GEYSER_COMMON_THREAD_POOL_HPP
#define GEYSER_COMMON_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace geyser {

/** Point-in-time view of a pool's activity. */
struct PoolStats
{
    long submitted = 0;    ///< Tasks ever submitted.
    long completed = 0;    ///< Tasks finished.
    int inFlight = 0;      ///< Submitted but unfinished (queued + running).
    int queued = 0;        ///< Waiting in the queue (subset of inFlight).
    int workers = 0;       ///< Worker-thread count.
    long busyMicros = 0;   ///< Total wall time spent inside tasks.
    long exceptions = 0;   ///< Swallowed throws from bare submit() tasks.

    /**
     * Fraction of worker capacity spent running tasks over an interval,
     * given a snapshot taken at its start (both from this pool).
     */
    double utilizationSince(const PoolStats &start,
                            double interval_micros) const;
};

/**
 * Fixed-size worker pool. Tasks are void() callables; waitIdle() blocks
 * until every submitted task has finished.
 */
class ThreadPool
{
  public:
    /** Create a pool with n workers (n <= 0 selects hardware concurrency). */
    explicit ThreadPool(int n = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task for execution. */
    void submit(std::function<void()> task);

    /** Block until all submitted tasks have completed. */
    void waitIdle();

    /** Number of worker threads. */
    int size() const { return static_cast<int>(workers_.size()); }

    /** Activity counters (thread-safe; queued/inFlight are a snapshot). */
    PoolStats snapshot() const;

    /**
     * Convenience: run fn(i) for i in [0, n) across the pool and wait
     * for exactly this batch (not for unrelated in-flight tasks). fn
     * must be safe to invoke concurrently for distinct i. If any
     * invocation throws, the remaining tasks of the batch still run to
     * completion and the first exception is rethrown on the calling
     * thread. Called from one of this pool's own workers, the batch
     * runs inline on the caller (a worker blocking on its own queue
     * would deadlock a 1-worker pool).
     */
    void parallelFor(int n, const std::function<void(int)> &fn);

  private:
    struct Task
    {
        std::function<void()> fn;
        uint64_t submitMicros = 0;
    };

    /** Completion state shared by one parallelFor batch. */
    struct Batch
    {
        std::mutex mutex;
        std::condition_variable cv;
        int remaining = 0;
        std::exception_ptr error;
    };

    void workerLoop(int index);

    std::vector<std::thread> workers_;
    std::queue<Task> tasks_;
    mutable std::mutex mutex_;
    std::condition_variable cvTask_;
    std::condition_variable cvIdle_;
    int inFlight_ = 0;
    bool stop_ = false;
    std::atomic<long> submitted_{0};
    std::atomic<long> completed_{0};
    std::atomic<long> busyMicros_{0};
    std::atomic<long> exceptions_{0};
};

/** Global pool shared by the library (lazily constructed). */
ThreadPool &globalPool();

}  // namespace geyser

#endif  // GEYSER_COMMON_THREAD_POOL_HPP
