#include "common/thread_pool.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>

#ifdef __linux__
#include <pthread.h>
#endif

#include "obs/obs.hpp"

namespace geyser {

namespace {

/**
 * The pool (if any) whose workerLoop owns the current thread. Lets
 * parallelFor detect re-entrant calls from its own workers and run them
 * inline instead of enqueueing work the blocked worker can never drain.
 */
thread_local ThreadPool *t_workerPool = nullptr;

}  // namespace

double
PoolStats::utilizationSince(const PoolStats &start,
                            double interval_micros) const
{
    if (workers <= 0 || interval_micros <= 0.0)
        return 0.0;
    const double busy = static_cast<double>(busyMicros - start.busyMicros);
    return std::min(1.0, busy / (interval_micros * workers));
}

ThreadPool::ThreadPool(int n)
{
    int count = n > 0 ? n : static_cast<int>(std::thread::hardware_concurrency());
    count = std::max(1, count);
    workers_.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cvTask_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    submitted_.fetch_add(1, std::memory_order_relaxed);
    size_t depth;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push({std::move(task),
                     obs::enabled() ? obs::nowMicros() : uint64_t{0}});
        ++inFlight_;
        depth = tasks_.size();
    }
    obs::counterEvent("pool.queue_depth", static_cast<double>(depth));
    cvTask_.notify_one();
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    cvIdle_.wait(lock, [this] { return inFlight_ == 0; });
}

PoolStats
ThreadPool::snapshot() const
{
    PoolStats stats;
    stats.submitted = submitted_.load(std::memory_order_relaxed);
    stats.completed = completed_.load(std::memory_order_relaxed);
    stats.workers = static_cast<int>(workers_.size());
    stats.busyMicros = busyMicros_.load(std::memory_order_relaxed);
    stats.exceptions = exceptions_.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats.inFlight = inFlight_;
        stats.queued = static_cast<int>(tasks_.size());
    }
    return stats;
}

void
ThreadPool::parallelFor(int n, const std::function<void(int)> &fn)
{
    if (n <= 0)
        return;
    // Re-entrant call from one of our own workers: the caller already
    // occupies a worker slot, so queueing and blocking could starve a
    // small pool into deadlock. Run the nested batch inline; exceptions
    // propagate naturally.
    if (t_workerPool == this) {
        for (int i = 0; i < n; ++i)
            fn(i);
        return;
    }
    // Each batch completes on its own latch so concurrent parallelFor
    // callers (block composition vs. trajectory chunks) never wait on
    // each other's tasks the way a global waitIdle() would.
    auto batch = std::make_shared<Batch>();
    batch->remaining = n;
    for (int i = 0; i < n; ++i) {
        submit([batch, &fn, i] {
            std::exception_ptr error;
            try {
                fn(i);
            } catch (...) {
                error = std::current_exception();
            }
            std::lock_guard<std::mutex> lock(batch->mutex);
            if (error && !batch->error)
                batch->error = error;
            if (--batch->remaining == 0)
                batch->cv.notify_all();
        });
    }
    std::unique_lock<std::mutex> lock(batch->mutex);
    batch->cv.wait(lock, [&] { return batch->remaining == 0; });
    // The whole batch has drained (so `fn` is safely dead); surface the
    // first failure on the calling thread instead of std::terminate.
    if (batch->error)
        std::rethrow_exception(batch->error);
}

void
ThreadPool::workerLoop(int index)
{
    char name[16];
    std::snprintf(name, sizeof(name), "geyser-wk%d", index);
#ifdef __linux__
    pthread_setname_np(pthread_self(), name);
#endif
    obs::setThreadName(name);
    t_workerPool = this;

    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cvTask_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
            if (stop_ && tasks_.empty())
                return;
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        const uint64_t start = obs::nowMicros();
        {
            obs::Span span("pool.task", "pool");
            if (span.active() && task.submitMicros != 0) {
                const double waitUs =
                    static_cast<double>(start - task.submitMicros);
                span.arg("wait_us", waitUs);
                obs::histogram("pool.task_wait_us").record(waitUs);
            }
            // A throwing task must never unwind into the worker loop:
            // that would std::terminate the process and skip the
            // in-flight bookkeeping below, hanging every waitIdle()
            // caller. parallelFor wraps its tasks to propagate the
            // exception; anything escaping a bare submit() is swallowed
            // and counted here.
            try {
                task.fn();
            } catch (...) {
                exceptions_.fetch_add(1, std::memory_order_relaxed);
                obs::counter("pool.task_exception").add();
            }
        }
        const uint64_t stop = obs::nowMicros();
        busyMicros_.fetch_add(static_cast<long>(stop - start),
                              std::memory_order_relaxed);
        completed_.fetch_add(1, std::memory_order_relaxed);
        if (obs::enabled())
            obs::histogram("pool.task_run_us")
                .record(static_cast<double>(stop - start));
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --inFlight_;
            if (inFlight_ == 0)
                cvIdle_.notify_all();
        }
    }
}

ThreadPool &
globalPool()
{
    static ThreadPool pool;
    return pool;
}

}  // namespace geyser
