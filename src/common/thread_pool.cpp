#include "common/thread_pool.hpp"

#include <algorithm>

namespace geyser {

ThreadPool::ThreadPool(int n)
{
    int count = n > 0 ? n : static_cast<int>(std::thread::hardware_concurrency());
    count = std::max(1, count);
    workers_.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cvTask_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push(std::move(task));
        ++inFlight_;
    }
    cvTask_.notify_one();
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    cvIdle_.wait(lock, [this] { return inFlight_ == 0; });
}

void
ThreadPool::parallelFor(int n, const std::function<void(int)> &fn)
{
    for (int i = 0; i < n; ++i)
        submit([&fn, i] { fn(i); });
    waitIdle();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cvTask_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
            if (stop_ && tasks_.empty())
                return;
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --inFlight_;
            if (inFlight_ == 0)
                cvIdle_.notify_all();
        }
    }
}

ThreadPool &
globalPool()
{
    static ThreadPool pool;
    return pool;
}

}  // namespace geyser
