#include "common/thread_pool.hpp"

#include <algorithm>
#include <cstdio>

#ifdef __linux__
#include <pthread.h>
#endif

#include "obs/obs.hpp"

namespace geyser {

double
PoolStats::utilizationSince(const PoolStats &start,
                            double interval_micros) const
{
    if (workers <= 0 || interval_micros <= 0.0)
        return 0.0;
    const double busy = static_cast<double>(busyMicros - start.busyMicros);
    return std::min(1.0, busy / (interval_micros * workers));
}

ThreadPool::ThreadPool(int n)
{
    int count = n > 0 ? n : static_cast<int>(std::thread::hardware_concurrency());
    count = std::max(1, count);
    workers_.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cvTask_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    submitted_.fetch_add(1, std::memory_order_relaxed);
    size_t depth;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push({std::move(task),
                     obs::enabled() ? obs::nowMicros() : uint64_t{0}});
        ++inFlight_;
        depth = tasks_.size();
    }
    obs::counterEvent("pool.queue_depth", static_cast<double>(depth));
    cvTask_.notify_one();
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    cvIdle_.wait(lock, [this] { return inFlight_ == 0; });
}

PoolStats
ThreadPool::snapshot() const
{
    PoolStats stats;
    stats.submitted = submitted_.load(std::memory_order_relaxed);
    stats.completed = completed_.load(std::memory_order_relaxed);
    stats.workers = static_cast<int>(workers_.size());
    stats.busyMicros = busyMicros_.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats.inFlight = inFlight_;
        stats.queued = static_cast<int>(tasks_.size());
    }
    return stats;
}

void
ThreadPool::parallelFor(int n, const std::function<void(int)> &fn)
{
    for (int i = 0; i < n; ++i)
        submit([&fn, i] { fn(i); });
    waitIdle();
}

void
ThreadPool::workerLoop(int index)
{
    char name[16];
    std::snprintf(name, sizeof(name), "geyser-wk%d", index);
#ifdef __linux__
    pthread_setname_np(pthread_self(), name);
#endif
    obs::setThreadName(name);

    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cvTask_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
            if (stop_ && tasks_.empty())
                return;
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        const uint64_t start = obs::nowMicros();
        {
            obs::Span span("pool.task", "pool");
            if (span.active() && task.submitMicros != 0) {
                const double waitUs =
                    static_cast<double>(start - task.submitMicros);
                span.arg("wait_us", waitUs);
                obs::histogram("pool.task_wait_us").record(waitUs);
            }
            task.fn();
        }
        const uint64_t stop = obs::nowMicros();
        busyMicros_.fetch_add(static_cast<long>(stop - start),
                              std::memory_order_relaxed);
        completed_.fetch_add(1, std::memory_order_relaxed);
        if (obs::enabled())
            obs::histogram("pool.task_run_us")
                .record(static_cast<double>(stop - start));
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --inFlight_;
            if (inFlight_ == 0)
                cvIdle_.notify_all();
        }
    }
}

ThreadPool &
globalPool()
{
    static ThreadPool pool;
    return pool;
}

}  // namespace geyser
