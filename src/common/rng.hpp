/**
 * @file
 * Deterministic random-number utilities.
 *
 * Every stochastic component in the library (annealer, trajectory
 * simulator, random circuit generators) draws from an explicitly seeded
 * Rng so that benches and tests are reproducible run-to-run.
 */
#ifndef GEYSER_COMMON_RNG_HPP
#define GEYSER_COMMON_RNG_HPP

#include <cstdint>
#include <random>
#include <vector>

namespace geyser {

/**
 * A seeded pseudo-random generator with the handful of draw shapes the
 * library needs. Thin wrapper over std::mt19937_64.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed) : engine_(seed) {}

    /** Uniform double in [0, 1). */
    double uniform() { return unit_(engine_); }

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

    /** Uniform integer in [0, n). Requires n > 0. */
    int uniformInt(int n)
    {
        return static_cast<int>(engine_() % static_cast<uint64_t>(n));
    }

    /** Standard normal draw. */
    double normal() { return normal_(engine_); }

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p) { return uniform() < p; }

    /** A vector of n uniform draws in [lo, hi). */
    std::vector<double> uniformVector(int n, double lo, double hi);

    /** Derive an independent child generator (for per-thread streams). */
    Rng spawn() { return Rng(engine_()); }

    /** Access to the raw engine for std distributions. */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
    std::uniform_real_distribution<double> unit_{0.0, 1.0};
    std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace geyser

#endif  // GEYSER_COMMON_RNG_HPP
