/**
 * @file
 * Checked numeric environment knobs.
 *
 * Every numeric GEYSER_* environment variable used to be parsed with
 * atoi/atof at its point of use, so `GEYSER_TRAJECTORIES=fast` or a
 * negative cache cap silently degraded to some clamped default. These
 * helpers are the one sanctioned path: unset returns the fallback,
 * anything else must parse completely and land inside [lo, hi], or a
 * ValidationError naming the variable is raised at startup — loud and
 * immediate instead of a silently wrong run.
 */
#ifndef GEYSER_COMMON_ENV_HPP
#define GEYSER_COMMON_ENV_HPP

namespace geyser {
namespace env {

/**
 * Read an integer knob. Unset (or set to the empty string) returns
 * `fallback`; otherwise the whole value must parse as a base-10 integer
 * in [lo, hi]. Throws ValidationError naming the variable on garbage,
 * trailing junk, overflow, or a value outside the range.
 */
long long envInt(const char *name, long long fallback, long long lo,
                 long long hi);

/**
 * Read a floating-point knob. Same contract as envInt: unset/empty →
 * fallback; otherwise a fully-parsed finite double in [lo, hi] or a
 * ValidationError naming the variable.
 */
double envDouble(const char *name, double fallback, double lo, double hi);

}  // namespace env
}  // namespace geyser

#endif  // GEYSER_COMMON_ENV_HPP
