/**
 * @file
 * Cooperative cancellation and per-job deadlines for long compiles.
 *
 * A CancelToken is shared between the party running a compile (which
 * calls checkpoint() between pipeline stages and per composed block)
 * and the party that may abort it (a service cancel request, a signal
 * handler, a watchdog). checkpoint() is cheap — two relaxed atomic
 * loads on the not-cancelled path — and throws CancelledError or
 * DeadlineError when the token has tripped, unwinding the compile at
 * the next stage boundary. It also records the stage name it was
 * called with, so an observer (the service's status endpoint) can
 * report where a running job currently is without any extra plumbing.
 *
 * Tokens outlive the compile they guard (the service keeps them in the
 * job table); all members are safe to call concurrently.
 */
#ifndef GEYSER_COMMON_CANCEL_HPP
#define GEYSER_COMMON_CANCEL_HPP

#include <atomic>
#include <chrono>

#include "common/error.hpp"

namespace geyser {

class CancelToken
{
  public:
    using Clock = std::chrono::steady_clock;

    CancelToken() = default;
    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** Ask the guarded work to stop at its next checkpoint. */
    void requestCancel() { cancelled_.store(true, std::memory_order_relaxed); }

    bool cancelRequested() const
    {
        return cancelled_.load(std::memory_order_relaxed);
    }

    /** Absolute deadline; work past it throws at the next checkpoint. */
    void setDeadline(Clock::time_point deadline)
    {
        deadlineMicros_.store(
            std::chrono::duration_cast<std::chrono::microseconds>(
                deadline.time_since_epoch())
                .count(),
            std::memory_order_relaxed);
    }

    /** Convenience: deadline `ms` milliseconds from now (ms <= 0: none). */
    void setDeadlineAfterMs(long ms)
    {
        if (ms > 0)
            setDeadline(Clock::now() + std::chrono::milliseconds(ms));
    }

    bool deadlineExpired() const
    {
        const long long us = deadlineMicros_.load(std::memory_order_relaxed);
        return us > 0 &&
               Clock::now().time_since_epoch() >=
                   std::chrono::microseconds(us);
    }

    /**
     * Record the current stage and throw if the token has tripped.
     * Called between pipeline stages and once per composed block, so a
     * cancel or deadline takes effect at the next block boundary, not
     * after hours of composition.
     */
    void checkpoint(const char *stage) const
    {
        stage_.store(stage, std::memory_order_relaxed);
        if (cancelRequested())
            throw CancelledError(std::string("cancelled during ") + stage);
        if (deadlineExpired())
            throw DeadlineError(std::string("deadline exceeded during ") +
                                stage);
    }

    /** Last stage name passed to checkpoint() ("" before the first). */
    const char *stage() const
    {
        const char *s = stage_.load(std::memory_order_relaxed);
        return s != nullptr ? s : "";
    }

  private:
    std::atomic<bool> cancelled_{false};
    std::atomic<long long> deadlineMicros_{0};
    mutable std::atomic<const char *> stage_{nullptr};
};

}  // namespace geyser

#endif  // GEYSER_COMMON_CANCEL_HPP
