#include "common/rng.hpp"

namespace geyser {

std::vector<double>
Rng::uniformVector(int n, double lo, double hi)
{
    std::vector<double> out(static_cast<size_t>(n));
    for (auto &x : out)
        x = uniform(lo, hi);
    return out;
}

}  // namespace geyser
