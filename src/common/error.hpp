/**
 * @file
 * The error taxonomy for the untrusted-input boundary.
 *
 * Everything that crosses into the library from outside — QASM text,
 * native circuit text, cache entries, files — is parsed and validated
 * behind exceptions from this small hierarchy, so callers (the CLI, a
 * service frontend, the fuzzers) can tell *what class of thing* went
 * wrong and *where* without string-matching messages:
 *
 *  - ParseError       malformed input text (bad syntax, bad number,
 *                     unknown mnemonic). Carries source/line/offset.
 *  - ValidationError  well-formed input describing an invalid circuit
 *                     or result (operand out of range, duplicate
 *                     operands, non-finite angle, bad layout).
 *  - IoError          the environment failed us (cannot open/write a
 *                     file). Carries the path as source context.
 *  - InternalError    a "can't happen" invariant broke — always a bug
 *                     in this library, never the input's fault.
 *  - CancelledError   cooperative cancellation observed a cancel
 *                     request at a checkpoint (service jobs, Ctrl-C).
 *  - DeadlineError    a per-job deadline expired before the work
 *                     finished (checked at the same checkpoints).
 *
 * ParseError and ValidationError derive from std::invalid_argument,
 * IoError from std::runtime_error, and InternalError from
 * std::logic_error, so pre-taxonomy call sites (and tests) that catch
 * the standard types keep working. All four additionally derive from
 * the geyser::Error interface: `catch (const geyser::Error &e)` is the
 * one handler an input boundary needs, and `e.kind()` / `e.where()`
 * give the class and location without parsing e.what().
 */
#ifndef GEYSER_COMMON_ERROR_HPP
#define GEYSER_COMMON_ERROR_HPP

#include <stdexcept>
#include <string>

namespace geyser {

/** Coarse class of a boundary error; see the file comment. */
enum class ErrorKind { Parse, Validation, Io, Internal, Cancelled, Deadline };

/** Human-readable name of a kind ("parse error", ...). */
const char *errorKindName(ErrorKind kind);

/**
 * Where in the input an error was detected. `source` names the stream
 * ("qasm", "circuit-text", "expr", a file path); `line` is 1-based
 * (0 = unknown); `offset` is a 0-based byte offset (-1 = unknown).
 */
struct SourceContext
{
    std::string source;
    int line = 0;
    long long offset = -1;

    bool known() const { return !source.empty() || line > 0 || offset >= 0; }
};

/**
 * Render "source:line: message" / "source@offset: message" /
 * "message", matching the `qasm:<line>:` diagnostic convention.
 */
std::string formatWithContext(const SourceContext &context,
                              const std::string &message);

/**
 * Mixin interface implemented by every taxonomy error. Not an
 * exception type itself; each concrete error also derives from the
 * matching <stdexcept> class.
 */
class Error
{
  public:
    virtual ~Error() = default;
    virtual ErrorKind kind() const noexcept = 0;
    virtual const char *what() const noexcept = 0;
    const SourceContext &where() const noexcept { return context_; }

  protected:
    Error() = default;
    explicit Error(SourceContext context) : context_(std::move(context)) {}

    SourceContext context_;
};

/** Malformed input text. */
class ParseError : public std::invalid_argument, public Error
{
  public:
    explicit ParseError(const std::string &message)
        : std::invalid_argument(message) {}
    ParseError(SourceContext context, const std::string &message)
        : std::invalid_argument(formatWithContext(context, message)),
          Error(std::move(context)) {}

    ErrorKind kind() const noexcept override { return ErrorKind::Parse; }
    const char *what() const noexcept override
    {
        return std::invalid_argument::what();
    }
};

/** Well-formed input describing an invalid circuit or result. */
class ValidationError : public std::invalid_argument, public Error
{
  public:
    explicit ValidationError(const std::string &message)
        : std::invalid_argument(message) {}
    ValidationError(SourceContext context, const std::string &message)
        : std::invalid_argument(formatWithContext(context, message)),
          Error(std::move(context)) {}

    ErrorKind kind() const noexcept override { return ErrorKind::Validation; }
    const char *what() const noexcept override
    {
        return std::invalid_argument::what();
    }
};

/** Environment/filesystem failure; `source` context is the path. */
class IoError : public std::runtime_error, public Error
{
  public:
    explicit IoError(const std::string &message)
        : std::runtime_error(message) {}
    IoError(SourceContext context, const std::string &message)
        : std::runtime_error(formatWithContext(context, message)),
          Error(std::move(context)) {}

    ErrorKind kind() const noexcept override { return ErrorKind::Io; }
    const char *what() const noexcept override
    {
        return std::runtime_error::what();
    }
};

/** Broken internal invariant — a bug in this library. */
class InternalError : public std::logic_error, public Error
{
  public:
    explicit InternalError(const std::string &message)
        : std::logic_error(message) {}
    InternalError(SourceContext context, const std::string &message)
        : std::logic_error(formatWithContext(context, message)),
          Error(std::move(context)) {}

    ErrorKind kind() const noexcept override { return ErrorKind::Internal; }
    const char *what() const noexcept override
    {
        return std::logic_error::what();
    }
};

/** Cooperative cancellation observed at a checkpoint (not a failure). */
class CancelledError : public std::runtime_error, public Error
{
  public:
    explicit CancelledError(const std::string &message)
        : std::runtime_error(message) {}

    ErrorKind kind() const noexcept override { return ErrorKind::Cancelled; }
    const char *what() const noexcept override
    {
        return std::runtime_error::what();
    }
};

/** A per-job deadline expired before the work finished. */
class DeadlineError : public std::runtime_error, public Error
{
  public:
    explicit DeadlineError(const std::string &message)
        : std::runtime_error(message) {}

    ErrorKind kind() const noexcept override { return ErrorKind::Deadline; }
    const char *what() const noexcept override
    {
        return std::runtime_error::what();
    }
};

/**
 * Shared CLI rendering of a boundary error: "<tool>: <kind>: <what>"
 * for taxonomy errors, "<tool>: <what>" for anything else — one helper
 * so geyserc's and geyserd's kind-labelled stderr cannot drift apart.
 * Returns the process exit code: 3 for internal bugs, 1 otherwise.
 */
int renderCliError(const char *tool, const std::exception &e);

}  // namespace geyser

#endif  // GEYSER_COMMON_ERROR_HPP
