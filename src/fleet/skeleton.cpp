#include "fleet/skeleton.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "blocking/blocker.hpp"
#include "circuit/schedule.hpp"
#include "compose/composer.hpp"
#include "io/framing.hpp"
#include "io/serialize.hpp"
#include "metrics/metrics.hpp"
#include "obs/obs.hpp"

namespace geyser {
namespace fleet {

namespace {

using StageClock = std::chrono::steady_clock;

double
msSince(StageClock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(StageClock::now() - t0)
        .count();
}

/** Gate kinds, arities, and operands equal; parameters ignored. */
bool
structureEquals(const Circuit &a, const Circuit &b)
{
    if (a.numQubits() != b.numQubits() || a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        const Gate &ga = a.gates()[i];
        const Gate &gb = b.gates()[i];
        if (ga.kind() != gb.kind() || ga.numQubits() != gb.numQubits())
            return false;
        for (int q = 0; q < ga.numQubits(); ++q)
            if (ga.qubit(q) != gb.qubit(q))
                return false;
    }
    return true;
}

/** Same routed structure: circuit structure, layouts, swap count. */
bool
routedEquals(const CompileResult &a, const CompileResult &b)
{
    return structureEquals(a.physical, b.physical) &&
           a.initialLayout == b.initialLayout &&
           a.finalLayout == b.finalLayout &&
           a.swapsInserted == b.swapsInserted;
}

}  // namespace

std::string
structureDigest(const Circuit &circuit)
{
    io::Fnv128 h;
    h.feedValue(circuit.numQubits());
    h.feedValue(static_cast<long long>(circuit.size()));
    for (const Gate &gate : circuit.gates()) {
        h.feedValue(static_cast<int>(gate.kind()));
        h.feedValue(gate.numQubits());
        for (int q = 0; q < gate.numQubits(); ++q)
            h.feedValue(static_cast<int>(gate.qubit(q)));
    }
    return h.hex();
}

std::vector<SkeletonGroup>
groupBySkeleton(const std::vector<Circuit> &members)
{
    std::vector<SkeletonGroup> groups;
    // Digest -> candidate group indices; structural equality against the
    // representative settles hash collisions exactly.
    std::unordered_map<std::string, std::vector<size_t>> byDigest;
    for (int m = 0; m < static_cast<int>(members.size()); ++m) {
        const Circuit &circuit = members[static_cast<size_t>(m)];
        const std::string digest = structureDigest(circuit);
        auto &candidates = byDigest[digest];
        size_t found = groups.size();
        for (const size_t gi : candidates) {
            const Circuit &rep =
                members[static_cast<size_t>(groups[gi].members.front())];
            if (structureEquals(rep, circuit)) {
                found = gi;
                break;
            }
        }
        if (found == groups.size()) {
            SkeletonGroup group;
            group.digest = digest;
            group.members.push_back(m);
            groups.push_back(std::move(group));
            candidates.push_back(groups.size() - 1);
            continue;
        }
        SkeletonGroup &group = groups[found];
        const Circuit &rep =
            members[static_cast<size_t>(group.members.front())];
        for (size_t i = 0; i < circuit.size(); ++i) {
            const Gate &ga = rep.gates()[i];
            const Gate &gb = circuit.gates()[i];
            const int params = gateKindParamCount(ga.kind());
            for (int p = 0; p < params; ++p) {
                if (ga.param(p) == gb.param(p))
                    continue;
                const ParamSlot slot{static_cast<int>(i), p};
                if (std::find(group.varyingSlots.begin(),
                              group.varyingSlots.end(),
                              slot) == group.varyingSlots.end())
                    group.varyingSlots.push_back(slot);
            }
        }
        group.members.push_back(m);
    }
    for (auto &group : groups)
        std::sort(group.varyingSlots.begin(), group.varyingSlots.end(),
                  [](const ParamSlot &a, const ParamSlot &b) {
                      return a.gate != b.gate ? a.gate < b.gate
                                              : a.param < b.param;
                  });
    return groups;
}

std::vector<std::pair<int, int>>
slotPairs(const std::vector<ParamSlot> &slots)
{
    std::vector<std::pair<int, int>> pairs;
    pairs.reserve(slots.size());
    for (const ParamSlot &slot : slots)
        pairs.emplace_back(slot.gate, slot.param);
    return pairs;
}

std::optional<SkeletonPlan>
buildSkeletonPlan(Technique technique, const Circuit &representative,
                  const std::vector<ParamSlot> &varyingSlots,
                  const PipelineOptions &options, bool cachedCompose)
{
    if (technique != Technique::Geyser)
        return std::nullopt;
    obs::Span span("fleet.plan", "fleet");

    CompileResult t0 =
        transpileForTechnique(technique, representative, options);

    // Trace the varying logical slots onto physical U3 parameters by
    // perturbation differencing: nudge every varying angle by two
    // different deltas, re-transpile, and mark each physical parameter
    // that moved either time. The optimizer is angle-sensitive only at
    // identity/diagonal boundaries (1e-12 checks in the passes); if a
    // perturbation changes the routed *structure*, this circuit sits on
    // such a boundary and cannot be skeleton-shared — report that.
    std::vector<uint8_t> varying(t0.physical.size() * 3, 0);
    const double kDeltas[2] = {1.2345e-3, -2.3456e-3};
    for (const double delta : kDeltas) {
        if (varyingSlots.empty())
            break;
        Circuit perturbed = representative;
        for (const ParamSlot &slot : varyingSlots) {
            if (slot.gate < 0 ||
                slot.gate >= static_cast<int>(perturbed.size()))
                return std::nullopt;
            Gate &gate = perturbed.gates()[static_cast<size_t>(slot.gate)];
            if (slot.param < 0 ||
                slot.param >= gateKindParamCount(gate.kind()))
                return std::nullopt;
            gate.setParam(slot.param, gate.param(slot.param) + delta);
        }
        const CompileResult ti =
            transpileForTechnique(technique, perturbed, options);
        if (!routedEquals(t0, ti))
            return std::nullopt;
        for (size_t i = 0; i < t0.physical.size(); ++i) {
            const Gate &a = t0.physical.gates()[i];
            const Gate &b = ti.physical.gates()[i];
            const int params = gateKindParamCount(a.kind());
            for (int p = 0; p < params; ++p)
                if (a.param(p) != b.param(p))
                    varying[i * 3 + static_cast<size_t>(p)] = 1;
        }
    }
    // Widen the mask to gate granularity: a U3 whose angles depend on a
    // varying slot can branch-flip a nominally constant companion angle
    // (ZYZ lambda jumps between 0 and ±pi with the branch of the varying
    // angle — a discrete function local perturbation cannot see). The
    // gate's whole triple is copied at re-bind anyway, so treating it as
    // fully varying costs nothing and keeps the fixed-param validation
    // honest.
    for (size_t i = 0; i < t0.physical.size(); ++i)
        if (varying[i * 3] != 0 || varying[i * 3 + 1] != 0 ||
            varying[i * 3 + 2] != 0)
            varying[i * 3] = varying[i * 3 + 1] = varying[i * 3 + 2] = 1;
    // Varying angles must live on plain one-qubit U3s — the only
    // parameterized physical kind — so re-binding is a parameter copy.
    for (size_t i = 0; i < t0.physical.size(); ++i) {
        const bool gateVaries = varying[i * 3] != 0;
        if (!gateVaries)
            continue;
        const Gate &gate = t0.physical.gates()[i];
        if (gate.kind() != GateKind::U3 || gate.numQubits() != 1)
            return std::nullopt;
    }

    SkeletonPlan plan;
    plan.technique = technique;
    plan.transpiled = t0.physical;
    plan.initialLayout = t0.initialLayout;
    plan.finalLayout = t0.finalLayout;
    plan.swapsInserted = t0.swapsInserted;
    plan.paramVarying = varying;

    const BlockedCircuit blocked =
        blockCircuit(t0.physical, t0.topology, options.blocker);
    plan.blockCount = blocked.blockCount();

    ComposeOptions composeOptions = options.compose;
    if (cachedCompose) {
        if (composeOptions.spill == nullptr)
            composeOptions.spill = options.cache;
    } else {
        composeOptions.spill = nullptr;
    }
    if (composeOptions.cancel == nullptr)
        composeOptions.cancel = options.cancel;

    const int numAtoms = t0.topology.numAtoms();
    Circuit stitched(numAtoms);
    int composedSegments = 0;
    for (const Round &round : blocked.rounds) {
        for (const Block &block : round.blocks) {
            const Circuit local = blocked.localCircuit(block);
            Circuit segment(static_cast<int>(block.atoms.size()));
            bool blockComposed = false;
            auto flush = [&] {
                if (segment.size() == 0)
                    return;
                const ComposeResult cr =
                    cachedCompose
                        ? composeBlockCached(segment, composeOptions)
                        : composeBlock(segment, composeOptions);
                stitched.append(cr.circuit.remapped(block.atoms, numAtoms));
                if (cr.composed) {
                    ++composedSegments;
                    blockComposed = true;
                }
                plan.compositionEvaluations += cr.evaluations;
                plan.maxBlockHsd = std::max(plan.maxBlockHsd, cr.hsd);
                segment = Circuit(static_cast<int>(block.atoms.size()));
            };
            for (size_t k = 0; k < local.size(); ++k) {
                const int src = block.opIndices[k];
                const Gate &gate = local.gates()[k];
                const bool gateVaries =
                    varying[static_cast<size_t>(src) * 3] != 0 ||
                    varying[static_cast<size_t>(src) * 3 + 1] != 0 ||
                    varying[static_cast<size_t>(src) * 3 + 2] != 0;
                if (!gateVaries) {
                    segment.append(gate);
                    continue;
                }
                // Emit the varying U3 verbatim (1 pulse) between the
                // composed fixed segments, and remember where it landed
                // so re-binding is an O(1) parameter copy.
                flush();
                plan.rebindMap.emplace_back(
                    static_cast<int>(stitched.size()), src);
                stitched.append(Gate(
                    GateKind::U3,
                    block.atoms[static_cast<size_t>(gate.qubit(0))],
                    gate.param(0), gate.param(1), gate.param(2)));
            }
            flush();
            if (blockComposed)
                ++plan.composedBlockCount;
        }
    }

    // Mirror compileGeyser's adoption rule: when no segment composed,
    // the block-order reshuffle buys nothing — keep the routed circuit.
    plan.adopted = composedSegments > 0;
    if (plan.adopted) {
        plan.stitched = std::move(stitched);
    } else {
        plan.stitched = plan.transpiled;
        plan.rebindMap.clear();
        plan.composedBlockCount = 0;
    }
    return plan;
}

std::optional<CompileResult>
rebindMember(const SkeletonPlan &plan, const Circuit &memberLogical,
             const PipelineOptions &options)
{
    if (plan.technique != Technique::Geyser)
        return std::nullopt;
    const auto t0 = StageClock::now();
    obs::Span span("fleet.rebind", "fleet");

    CompileResult tm =
        transpileForTechnique(plan.technique, memberLogical, options);
    const auto tRebind = StageClock::now();

    // The plan applies only if this member routed to the exact same
    // structure with the exact same fixed angles; the transpiler's
    // angle-dependent passes (identity dropping, diagonal commutation)
    // make this a per-member check, not an assumption.
    if (!structureEquals(tm.physical, plan.transpiled) ||
        tm.initialLayout != plan.initialLayout ||
        tm.finalLayout != plan.finalLayout ||
        tm.swapsInserted != plan.swapsInserted)
        return std::nullopt;
    if (plan.paramVarying.size() != tm.physical.size() * 3)
        return std::nullopt;
    if (plan.stitched.numQubits() != plan.transpiled.numQubits())
        return std::nullopt;
    for (size_t i = 0; i < tm.physical.size(); ++i) {
        const Gate &got = tm.physical.gates()[i];
        const Gate &want = plan.transpiled.gates()[i];
        const int params = gateKindParamCount(got.kind());
        for (int p = 0; p < params; ++p) {
            if (plan.paramVarying[i * 3 + static_cast<size_t>(p)] != 0)
                continue;
            if (got.param(p) != want.param(p))
                return std::nullopt;
        }
    }

    CompileResult result = std::move(tm);
    result.blockCount = plan.blockCount;
    result.composedBlockCount = plan.composedBlockCount;
    result.compositionEvaluations = plan.compositionEvaluations;
    result.maxBlockHsd = plan.maxBlockHsd;
    if (plan.adopted) {
        Circuit stitched = plan.stitched;
        for (const auto &[s, t] : plan.rebindMap) {
            if (s < 0 || s >= static_cast<int>(stitched.size()) || t < 0 ||
                t >= static_cast<int>(result.physical.size()))
                return std::nullopt;
            Gate &dst = stitched.gates()[static_cast<size_t>(s)];
            const Gate &src = result.physical.gates()[static_cast<size_t>(t)];
            if (dst.kind() != GateKind::U3 || src.kind() != GateKind::U3)
                return std::nullopt;
            for (int p = 0; p < 3; ++p)
                dst.setParam(p, src.param(p));
        }
        result.physical = std::move(stitched);
        result.stats = circuitStats(result.physical);
        result.stats.depthPulses =
            depthPulses(result.physical, result.topology);
    }
    result.composeMs = msSince(tRebind);
    result.totalMs = msSince(t0);
    return result;
}

namespace {

/** Line/byte-chunk cursor over a serialized plan. */
struct Cursor
{
    const std::string &text;
    size_t pos = 0;

    bool line(std::string &out)
    {
        if (pos >= text.size())
            return false;
        const size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            return false;
        out = text.substr(pos, nl - pos);
        pos = nl + 1;
        return true;
    }

    bool chunk(size_t n, std::string &out)
    {
        if (pos + n > text.size())
            return false;
        out = text.substr(pos, n);
        pos += n;
        return true;
    }
};

bool
parseLong(const std::string &s, long long &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    out = std::strtoll(s.c_str(), &end, 10);
    return errno == 0 && end == s.c_str() + s.size();
}

/** "key v1 v2 ..." -> values; false on key mismatch or parse failure. */
bool
parseKeyedLongs(const std::string &line, const std::string &key,
                std::vector<long long> &out, size_t expected = 0)
{
    if (line.compare(0, key.size(), key) != 0 ||
        (line.size() > key.size() && line[key.size()] != ' '))
        return false;
    out.clear();
    size_t pos = key.size();
    while (pos < line.size()) {
        while (pos < line.size() && line[pos] == ' ')
            ++pos;
        if (pos >= line.size())
            break;
        size_t end = line.find(' ', pos);
        if (end == std::string::npos)
            end = line.size();
        long long v = 0;
        if (!parseLong(line.substr(pos, end - pos), v))
            return false;
        out.push_back(v);
        pos = end;
    }
    return expected == 0 || out.size() == expected;
}

std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

}  // namespace

std::string
skeletonPlanToText(const SkeletonPlan &plan)
{
    std::string out = "geyser-skeleton v1\n";
    char buf[128];
    std::snprintf(buf, sizeof(buf), "technique %d\n",
                  static_cast<int>(plan.technique));
    out += buf;
    std::snprintf(buf, sizeof(buf), "swaps %d\n", plan.swapsInserted);
    out += buf;
    std::snprintf(buf, sizeof(buf), "blocks %d\n", plan.blockCount);
    out += buf;
    std::snprintf(buf, sizeof(buf), "composedblocks %d\n",
                  plan.composedBlockCount);
    out += buf;
    std::snprintf(buf, sizeof(buf), "evaluations %ld\n",
                  plan.compositionEvaluations);
    out += buf;
    out += "maxhsd " + formatDouble(plan.maxBlockHsd) + "\n";
    out += std::string("adopted ") + (plan.adopted ? "1" : "0") + "\n";

    auto writeInts = [&out](const char *key, const std::vector<long long> &v) {
        out += key;
        out += ' ';
        out += std::to_string(v.size());
        for (const long long x : v) {
            out += ' ';
            out += std::to_string(x);
        }
        out += '\n';
    };
    std::vector<long long> ints;
    for (const Qubit q : plan.initialLayout)
        ints.push_back(q);
    writeInts("ilayout", ints);
    ints.clear();
    for (const Qubit q : plan.finalLayout)
        ints.push_back(q);
    writeInts("flayout", ints);
    ints.clear();
    for (size_t i = 0; i < plan.paramVarying.size(); ++i)
        if (plan.paramVarying[i] != 0)
            ints.push_back(static_cast<long long>(i));
    writeInts("varying", ints);
    ints.clear();
    for (const auto &[s, t] : plan.rebindMap) {
        ints.push_back(s);
        ints.push_back(t);
    }
    writeInts("rebind", ints);

    const std::string transpiled = circuitToText(plan.transpiled);
    out += "transpiled " + std::to_string(transpiled.size()) + "\n";
    out += transpiled;
    const std::string stitched = circuitToText(plan.stitched);
    out += "stitched " + std::to_string(stitched.size()) + "\n";
    out += stitched;
    out += "end\n";
    return out;
}

std::optional<SkeletonPlan>
skeletonPlanFromText(const std::string &text)
{
    Cursor cursor{text};
    std::string line;
    if (!cursor.line(line) || line != "geyser-skeleton v1")
        return std::nullopt;

    SkeletonPlan plan;
    std::vector<long long> v;
    if (!cursor.line(line) || !parseKeyedLongs(line, "technique", v, 1))
        return std::nullopt;
    if (v[0] < 0 || v[0] > 3)
        return std::nullopt;
    plan.technique = static_cast<Technique>(v[0]);
    if (!cursor.line(line) || !parseKeyedLongs(line, "swaps", v, 1))
        return std::nullopt;
    plan.swapsInserted = static_cast<int>(v[0]);
    if (!cursor.line(line) || !parseKeyedLongs(line, "blocks", v, 1))
        return std::nullopt;
    plan.blockCount = static_cast<int>(v[0]);
    if (!cursor.line(line) || !parseKeyedLongs(line, "composedblocks", v, 1))
        return std::nullopt;
    plan.composedBlockCount = static_cast<int>(v[0]);
    if (!cursor.line(line) || !parseKeyedLongs(line, "evaluations", v, 1))
        return std::nullopt;
    plan.compositionEvaluations = static_cast<long>(v[0]);
    if (!cursor.line(line) || line.compare(0, 7, "maxhsd ") != 0)
        return std::nullopt;
    {
        const std::string value = line.substr(7);
        char *end = nullptr;
        plan.maxBlockHsd = std::strtod(value.c_str(), &end);
        if (end != value.c_str() + value.size())
            return std::nullopt;
    }
    if (!cursor.line(line) || !parseKeyedLongs(line, "adopted", v, 1))
        return std::nullopt;
    plan.adopted = v[0] != 0;

    auto readCounted = [&](const char *key,
                           std::vector<long long> &out) -> bool {
        if (!cursor.line(line) || !parseKeyedLongs(line, key, out))
            return false;
        if (out.empty())
            return false;
        const long long count = out.front();
        out.erase(out.begin());
        return count >= 0 && out.size() == static_cast<size_t>(count);
    };
    if (!readCounted("ilayout", v))
        return std::nullopt;
    for (const long long x : v)
        plan.initialLayout.push_back(static_cast<Qubit>(x));
    if (!readCounted("flayout", v))
        return std::nullopt;
    for (const long long x : v)
        plan.finalLayout.push_back(static_cast<Qubit>(x));
    std::vector<long long> varyingIdx;
    if (!readCounted("varying", varyingIdx))
        return std::nullopt;
    std::vector<long long> rebind;
    if (!readCounted("rebind", rebind))
        return std::nullopt;
    if (rebind.size() % 2 != 0)
        return std::nullopt;

    auto readCircuit = [&](const char *key, Circuit &out) -> bool {
        if (!cursor.line(line) || !parseKeyedLongs(line, key, v, 1))
            return false;
        if (v[0] < 0)
            return false;
        std::string body;
        if (!cursor.chunk(static_cast<size_t>(v[0]), body))
            return false;
        try {
            out = circuitFromText(body);
        } catch (const std::exception &) {
            return false;
        }
        return true;
    };
    if (!readCircuit("transpiled", plan.transpiled))
        return std::nullopt;
    if (!readCircuit("stitched", plan.stitched))
        return std::nullopt;
    if (!cursor.line(line) || line != "end")
        return std::nullopt;

    plan.paramVarying.assign(plan.transpiled.size() * 3, 0);
    for (const long long idx : varyingIdx) {
        if (idx < 0 || idx >= static_cast<long long>(plan.paramVarying.size()))
            return std::nullopt;
        plan.paramVarying[static_cast<size_t>(idx)] = 1;
    }
    for (size_t i = 0; i + 1 < rebind.size(); i += 2) {
        const long long s = rebind[i];
        const long long t = rebind[i + 1];
        if (s < 0 || s >= static_cast<long long>(plan.stitched.size()) ||
            t < 0 || t >= static_cast<long long>(plan.transpiled.size()))
            return std::nullopt;
        plan.rebindMap.emplace_back(static_cast<int>(s),
                                    static_cast<int>(t));
    }
    return plan;
}

}  // namespace fleet
}  // namespace geyser
