#include "fleet/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string_view>

#include "cache/result_cache.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "io/qasm_parser.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"

namespace geyser {
namespace fleet {

namespace {

using StageClock = std::chrono::steady_clock;

double
msSince(StageClock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(StageClock::now() - t0)
        .count();
}

/** Always-on fleet counters, exported as geyser_fleet_* families. */
struct FleetCounters
{
    obs::Counter &jobs = obs::serviceCounter("fleet.jobs");
    obs::Counter &groups = obs::serviceCounter("fleet.groups");
    obs::Counter &rebound = obs::serviceCounter("fleet.rebound");
    obs::Counter &fallback = obs::serviceCounter("fleet.fallback");
    obs::Counter &planHits = obs::serviceCounter("fleet.plan_hit");
    obs::Counter &planStores = obs::serviceCounter("fleet.plan_store");
    obs::Counter &verifyFailures =
        obs::serviceCounter("fleet.verify_failure");

    static FleetCounters &get()
    {
        static FleetCounters instance;
        return instance;
    }
};

double
percentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/** Gate-by-gate equality within an absolute parameter tolerance. */
bool
circuitsMatch(const Circuit &a, const Circuit &b, double tolerance)
{
    if (a.numQubits() != b.numQubits() || a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        const Gate &ga = a.gates()[i];
        const Gate &gb = b.gates()[i];
        if (ga.kind() != gb.kind() || ga.numQubits() != gb.numQubits())
            return false;
        for (int q = 0; q < ga.numQubits(); ++q)
            if (ga.qubit(q) != gb.qubit(q))
                return false;
        const int params = gateKindParamCount(ga.kind());
        for (int p = 0; p < params; ++p)
            if (std::abs(ga.param(p) - gb.param(p)) > tolerance)
                return false;
    }
    return true;
}

const char *
topologyNameFor(Technique technique)
{
    return technique == Technique::Superconducting ? "square" : "triangular";
}

/** Acquire a group's plan: cache load, else build + store. */
std::optional<SkeletonPlan>
acquirePlan(const SkeletonGroup &group, const Circuit &representative,
            const FleetOptions &options, FleetReport &report)
{
    cache::ResultCache *cache = options.pipeline.cache;
    const bool usable = cache != nullptr && cache->enabled();
    std::string key;
    if (usable) {
        key = cache::skeletonCacheKey(representative,
                                      slotPairs(group.varyingSlots),
                                      options.pipeline, Technique::Geyser);
        if (auto payload = cache->load(key)) {
            if (auto plan = skeletonPlanFromText(*payload)) {
                if (plan->technique == Technique::Geyser) {
                    ++report.planHits;
                    FleetCounters::get().planHits.add();
                    return plan;
                }
            }
            // Framed checksum passed but the plan does not parse: the
            // serializer skewed — quarantine so the next run recomputes.
            obs::counter("cache.invalid_payload").add();
            cache->quarantineEntry(key);
        }
    }
    auto plan = buildSkeletonPlan(Technique::Geyser, representative,
                                  group.varyingSlots, options.pipeline,
                                  /*cachedCompose=*/true);
    if (plan && usable && cache->store(key, skeletonPlanToText(*plan))) {
        ++report.planStores;
        FleetCounters::get().planStores.add();
    }
    return plan;
}

void
forEach(int n, bool parallel, const std::function<void(int)> &fn)
{
    if (parallel) {
        globalPool().parallelFor(n, fn);
    } else {
        for (int i = 0; i < n; ++i)
            fn(i);
    }
}

}  // namespace

double
FleetReport::reuseRatio() const
{
    long eligible = 0;
    for (const MemberRow &row : rows)
        if (row.technique == Technique::Geyser)
            ++eligible;
    if (eligible == 0)
        return 0.0;
    return static_cast<double>(rebound) / static_cast<double>(eligible);
}

FleetReport
compileFleet(const std::vector<FleetJob> &jobs, const FleetOptions &options)
{
    const auto t0 = StageClock::now();
    obs::Span span("fleet.compile", "fleet");
    FleetCounters &counters = FleetCounters::get();

    FleetReport report;
    report.members = static_cast<long>(jobs.size());

    // Reject invalid members before any compilation starts: a fleet is
    // one request, and half-compiled batches help nobody.
    for (const FleetJob &job : jobs)
        job.logical.validate();

    cache::ResultCache *cache = options.pipeline.cache;
    const cache::CacheStats statsBefore =
        cache != nullptr ? cache->stats() : cache::CacheStats{};

    std::vector<Circuit> circuits;
    circuits.reserve(jobs.size());
    for (const FleetJob &job : jobs)
        circuits.push_back(job.logical);
    const std::vector<SkeletonGroup> groups = groupBySkeleton(circuits);
    report.groups = static_cast<long>(groups.size());
    counters.groups.add(report.groups);

    for (const Technique technique : options.techniques) {
        std::vector<MemberRow> rows(jobs.size());
        std::vector<CompileResult> results(jobs.size());
        auto recordRow = [&](int m, const CompileResult &result,
                             bool viaRebind, bool viaFallback) {
            MemberRow &row = rows[static_cast<size_t>(m)];
            row.name = jobs[static_cast<size_t>(m)].name;
            row.technique = technique;
            row.pulses = result.stats.totalPulses;
            row.depth = result.stats.depthPulses;
            row.compileMs = result.totalMs;
            row.rebound = viaRebind;
            row.fallback = viaFallback;
            row.cacheHit = result.cacheHit;
            results[static_cast<size_t>(m)] = result;
        };

        if (technique != Technique::Geyser) {
            // No composition stage to share: member-by-member through
            // the exact cache (identical members still dedupe there).
            forEach(static_cast<int>(jobs.size()), options.parallel,
                    [&](int m) {
                        const CompileResult result = compile(
                            technique, circuits[static_cast<size_t>(m)],
                            options.pipeline);
                        recordRow(m, result, false, false);
                    });
        } else {
            for (const SkeletonGroup &group : groups) {
                const Circuit &representative =
                    circuits[static_cast<size_t>(group.members.front())];
                std::optional<SkeletonPlan> plan =
                    acquirePlan(group, representative, options, report);

                forEach(static_cast<int>(group.members.size()),
                        options.parallel, [&](int gi) {
                            const int m =
                                group.members[static_cast<size_t>(gi)];
                            const Circuit &member =
                                circuits[static_cast<size_t>(m)];
                            if (plan) {
                                if (auto r = rebindMember(*plan, member,
                                                          options.pipeline)) {
                                    recordRow(m, *r, true, false);
                                    return;
                                }
                            }
                            const CompileResult full = compile(
                                technique, member, options.pipeline);
                            recordRow(m, full, false, plan.has_value());
                        });

                // Verify a sample of re-bound members against a
                // from-scratch compile of the same construction — the
                // oracle builds its own plan with member-as-rep and a
                // memo-free, spill-free composition path, so equality
                // proves the cached segments replay exactly.
                int checked = 0;
                for (const int m : group.members) {
                    if (checked >= options.verifySample)
                        break;
                    MemberRow &row = rows[static_cast<size_t>(m)];
                    if (!row.rebound)
                        continue;
                    ++checked;
                    const Circuit &member =
                        circuits[static_cast<size_t>(m)];
                    bool ok = false;
                    if (auto oraclePlan = buildSkeletonPlan(
                            Technique::Geyser, member, group.varyingSlots,
                            options.pipeline, /*cachedCompose=*/false)) {
                        if (auto oracle = rebindMember(
                                *oraclePlan, member, options.pipeline))
                            ok = circuitsMatch(
                                results[static_cast<size_t>(m)].physical,
                                oracle->physical, options.verifyTolerance);
                    }
                    ++report.verified;
                    if (ok) {
                        row.verified = true;
                    } else {
                        ++report.verifyFailures;
                        counters.verifyFailures.add();
                    }
                }
            }
        }

        // Optional noisy-TVD sample for the fair-comparison column.
        for (int s = 0; s < options.tvdSample &&
                        s < static_cast<int>(jobs.size());
             ++s)
            rows[static_cast<size_t>(s)].tvd =
                evaluateTvd(results[static_cast<size_t>(s)], options.noise,
                            options.trajectories);

        // Fold this technique's rows into the report.
        TechniqueSummary summary;
        summary.technique = technique;
        summary.topology = topologyNameFor(technique);
        std::vector<double> times;
        times.reserve(rows.size());
        double tvdSum = 0.0;
        for (const MemberRow &row : rows) {
            ++summary.members;
            summary.totalPulses += row.pulses;
            summary.meanDepth += static_cast<double>(row.depth);
            summary.meanMs += row.compileMs;
            times.push_back(row.compileMs);
            if (row.rebound)
                ++summary.rebound;
            if (row.fallback)
                ++summary.fallback;
            if (row.cacheHit)
                ++summary.cacheHits;
            if (row.tvd >= 0.0) {
                tvdSum += row.tvd;
                ++summary.tvdSampled;
            }
        }
        if (summary.members > 0) {
            summary.meanPulses =
                static_cast<double>(summary.totalPulses) /
                static_cast<double>(summary.members);
            summary.meanDepth /= static_cast<double>(summary.members);
            summary.meanMs /= static_cast<double>(summary.members);
        }
        if (summary.tvdSampled > 0)
            summary.meanTvd = tvdSum / static_cast<double>(summary.tvdSampled);
        std::sort(times.begin(), times.end());
        summary.p50Ms = percentile(times, 50.0);
        summary.p90Ms = percentile(times, 90.0);
        summary.p99Ms = percentile(times, 99.0);
        report.rebound += summary.rebound;
        report.fallback += summary.fallback;
        counters.rebound.add(summary.rebound);
        counters.fallback.add(summary.fallback);
        report.techniques.push_back(std::move(summary));
        for (MemberRow &row : rows)
            report.rows.push_back(std::move(row));
    }

    report.jobs = static_cast<long>(report.rows.size());
    counters.jobs.add(report.jobs);
    if (cache != nullptr) {
        const cache::CacheStats after = cache->stats();
        report.cacheHits = after.hits - statsBefore.hits;
        report.cacheMisses = after.misses - statsBefore.misses;
        report.cacheCorrupt = after.corrupt - statsBefore.corrupt;
    }
    report.wallMs = msSince(t0);
    return report;
}

std::string
FleetReport::toJson(int indent) const
{
    obs::Json doc = obs::Json::object();
    doc.set("tool", "geyser-fleet");
    doc.set("pipelineVersion", kPipelineVersion);
    doc.set("members", members);
    doc.set("jobs", jobs);
    doc.set("groups", groups);
    doc.set("rebound", rebound);
    doc.set("fallback", fallback);
    doc.set("reuseRatio", reuseRatio());
    doc.set("verified", verified);
    doc.set("verifyFailures", verifyFailures);
    doc.set("wallMs", wallMs);
    obs::Json cacheObj = obs::Json::object();
    cacheObj.set("hits", cacheHits);
    cacheObj.set("misses", cacheMisses);
    cacheObj.set("corrupt", cacheCorrupt);
    cacheObj.set("planHits", planHits);
    cacheObj.set("planStores", planStores);
    doc.set("cache", std::move(cacheObj));

    obs::Json techniquesArr = obs::Json::array();
    for (const TechniqueSummary &s : techniques) {
        obs::Json t = obs::Json::object();
        t.set("technique", techniqueName(s.technique));
        t.set("topology", s.topology);
        t.set("members", s.members);
        t.set("totalPulses", static_cast<double>(s.totalPulses));
        t.set("meanPulses", s.meanPulses);
        t.set("meanDepth", s.meanDepth);
        obs::Json ms = obs::Json::object();
        ms.set("mean", s.meanMs);
        ms.set("p50", s.p50Ms);
        ms.set("p90", s.p90Ms);
        ms.set("p99", s.p99Ms);
        t.set("compileMs", std::move(ms));
        t.set("rebound", s.rebound);
        t.set("fallback", s.fallback);
        t.set("cacheHits", s.cacheHits);
        if (s.tvdSampled > 0) {
            obs::Json tvd = obs::Json::object();
            tvd.set("sampled", s.tvdSampled);
            tvd.set("mean", s.meanTvd);
            t.set("tvd", std::move(tvd));
        }
        techniquesArr.push(std::move(t));
    }
    doc.set("techniques", std::move(techniquesArr));

    // Per-member rows only for small fleets: a 1000-member report stays
    // a summary, not a dump.
    if (rows.size() <= 64) {
        obs::Json rowsArr = obs::Json::array();
        for (const MemberRow &row : rows) {
            obs::Json r = obs::Json::object();
            r.set("name", row.name);
            r.set("technique", techniqueName(row.technique));
            r.set("pulses", row.pulses);
            r.set("depth", row.depth);
            r.set("compileMs", row.compileMs);
            r.set("rebound", row.rebound);
            r.set("fallback", row.fallback);
            r.set("cacheHit", row.cacheHit);
            if (row.tvd >= 0.0)
                r.set("tvd", row.tvd);
            rowsArr.push(std::move(r));
        }
        doc.set("rows", std::move(rowsArr));
    }
    return doc.dump(indent);
}

std::string
FleetReport::renderTable() const
{
    std::string out;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "fleet: %ld members, %ld jobs, %ld groups | rebound "
                  "%ld fallback %ld (reuse %.3f) | plans hit/store %ld/%ld "
                  "| verify %ld ok / %ld failed | %.0f ms\n",
                  members, jobs, groups, rebound, fallback, reuseRatio(),
                  planHits, planStores, verified - verifyFailures,
                  verifyFailures, wallMs);
    out += buf;
    std::snprintf(buf, sizeof(buf), "%-16s %-10s %10s %10s %9s %9s %9s %8s %8s %10s\n",
                  "technique", "topology", "meanPulses", "meanDepth",
                  "p50 ms", "p90 ms", "p99 ms", "rebound", "fallback",
                  "meanTVD");
    out += buf;
    out += std::string(std::strlen(buf) > 1 ? std::strlen(buf) - 1 : 0, '-');
    out += '\n';
    for (const TechniqueSummary &s : techniques) {
        std::string tvd = "-";
        if (s.tvdSampled > 0) {
            char tbuf[32];
            std::snprintf(tbuf, sizeof(tbuf), "%.4f", s.meanTvd);
            tvd = tbuf;
        }
        std::snprintf(buf, sizeof(buf),
                      "%-16s %-10s %10.1f %10.1f %9.2f %9.2f %9.2f %8ld %8ld %10s\n",
                      techniqueName(s.technique), s.topology.c_str(),
                      s.meanPulses, s.meanDepth, s.p50Ms, s.p90Ms, s.p99Ms,
                      s.rebound, s.fallback, tvd.c_str());
        out += buf;
    }
    return out;
}

std::vector<FleetJob>
parseFleetPayload(const std::string &payload)
{
    std::vector<FleetJob> jobs;
    size_t start = 0;
    auto flush = [&](size_t end) {
        std::string part = payload.substr(start, end - start);
        // Skip whitespace-only parts (trailing separators, blank tail).
        if (part.find_first_not_of(" \t\r\n") == std::string::npos)
            return;
        const int index = static_cast<int>(jobs.size());
        FleetJob job;
        job.name = "m" + std::to_string(index);
        try {
            job.logical = circuitFromQasm(part);
        } catch (const Error &e) {
            throw ParseError(SourceContext{"fleet member " +
                                               std::to_string(index),
                                           0, -1},
                             e.what());
        }
        jobs.push_back(std::move(job));
    };
    size_t pos = 0;
    while (pos <= payload.size()) {
        size_t nl = payload.find('\n', pos);
        const bool last = nl == std::string::npos;
        const std::string_view lineView(
            payload.data() + pos, (last ? payload.size() : nl) - pos);
        std::string line(lineView);
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line == "%%") {
            flush(pos);
            start = last ? payload.size() : nl + 1;
        }
        if (last)
            break;
        pos = nl + 1;
    }
    flush(payload.size());
    return jobs;
}

}  // namespace fleet
}  // namespace geyser
