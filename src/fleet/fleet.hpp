/**
 * @file
 * Fleet compilation: batch front end over the pipeline that compiles a
 * suite × techniques × parameter-set sweep on one standard footing and
 * emits one aggregate fair-comparison report.
 *
 * The engine groups members by circuit skeleton (fleet/skeleton.hpp),
 * compiles each skeleton once through the persistent cache, then
 * re-binds every member's parameters against the cached composed
 * structure instead of recompiling — turning a thousand-member VQE
 * sweep from a thousand composition searches into one search plus a
 * thousand millisecond-scale re-binds. Members whose transpile
 * diverges from the skeleton (the optimizer is angle-sensitive at
 * identity boundaries) fall back to a plain full compile, so sharing
 * never changes results. Non-Geyser techniques have no composition
 * stage to share and compile member-by-member through the exact cache.
 *
 * Observability: always-on fleet.* counters (fleet.jobs,
 * fleet.rebound, fleet.fallback, fleet.groups, fleet.plan_hit,
 * fleet.plan_store, fleet.verify_failure), exported to Prometheus as
 * geyser_fleet_* families.
 */
#ifndef GEYSER_FLEET_FLEET_HPP
#define GEYSER_FLEET_FLEET_HPP

#include <string>
#include <vector>

#include "fleet/skeleton.hpp"
#include "geyser/pipeline.hpp"
#include "sim/noise.hpp"
#include "sim/trajectory.hpp"

namespace geyser {
namespace fleet {

/** One member of a fleet: a named logical circuit. */
struct FleetJob
{
    std::string name;
    Circuit logical;
};

/** Fleet-wide configuration. */
struct FleetOptions
{
    /** Techniques to compile every member with (fair comparison). */
    std::vector<Technique> techniques = {Technique::Geyser};
    /** Pipeline configuration; `pipeline.cache` enables skeleton and
     *  exact-entry persistence. */
    PipelineOptions pipeline;
    /**
     * Per skeleton group, how many re-bound members to verify against a
     * from-scratch (uncached, memo-free) compile of the same stitched
     * construction. Mismatches beyond `verifyTolerance` count as
     * fleet.verify_failure. 0 disables verification.
     */
    int verifySample = 1;
    double verifyTolerance = 1e-12;
    /** Compile members of a group concurrently on the global pool. */
    bool parallel = true;
    /**
     * Per technique, how many members to simulate for a noisy-TVD
     * column in the report (0 = skip simulation; it dominates wall time
     * for wide circuits).
     */
    int tvdSample = 0;
    NoiseModel noise;
    TrajectoryConfig trajectories;
};

/** Per-member outcome row. */
struct MemberRow
{
    std::string name;
    Technique technique = Technique::Geyser;
    long pulses = 0;
    long depth = 0;
    double compileMs = 0.0;
    bool rebound = false;   ///< Served by skeleton re-bind.
    bool fallback = false;  ///< Plan existed but this member diverged.
    bool cacheHit = false;  ///< Exact-entry replay (full-compile path).
    bool verified = false;  ///< Sampled and matched the oracle compile.
    double tvd = -1.0;      ///< Noisy TVD when sampled, else -1.
};

/** Aggregate over one technique (one row of the comparison table). */
struct TechniqueSummary
{
    Technique technique = Technique::Geyser;
    std::string topology;  ///< "triangular" or "square".
    long members = 0;
    long long totalPulses = 0;
    double meanPulses = 0.0;
    double meanDepth = 0.0;
    double meanMs = 0.0;
    double p50Ms = 0.0;
    double p90Ms = 0.0;
    double p99Ms = 0.0;
    long rebound = 0;
    long fallback = 0;
    long cacheHits = 0;
    double meanTvd = -1.0;  ///< -1 when no members were simulated.
    long tvdSampled = 0;
};

/** The aggregate fair-comparison report. */
struct FleetReport
{
    long members = 0;   ///< Fleet members (circuits).
    long jobs = 0;      ///< Compiles = members × techniques.
    long groups = 0;    ///< Skeleton groups.
    long rebound = 0;   ///< Jobs served by skeleton re-bind.
    long fallback = 0;  ///< Jobs that diverged from their plan.
    long planHits = 0;    ///< Skeleton plans loaded from the cache.
    long planStores = 0;  ///< Skeleton plans built and stored.
    long verified = 0;         ///< Re-binds checked against the oracle.
    long verifyFailures = 0;   ///< Checks that exceeded the tolerance.
    double wallMs = 0.0;
    // Result-cache activity delta over this fleet run (exact entries +
    // composed blocks + skeleton plans share one cache).
    long cacheHits = 0;
    long cacheMisses = 0;
    long cacheCorrupt = 0;
    std::vector<TechniqueSummary> techniques;
    std::vector<MemberRow> rows;  ///< members × techniques rows.

    /**
     * Skeleton-reuse ratio: re-bound jobs over skeleton-eligible jobs
     * (Geyser-technique jobs); 0 when none were eligible.
     */
    double reuseRatio() const;

    /** The aggregate report as ordered JSON (schema: DESIGN.md §15). */
    std::string toJson(int indent = 2) const;

    /** Rendered fair-comparison table for terminals. */
    std::string renderTable() const;
};

/** Compile a fleet; never throws for per-member reasons (a member that
 *  fails to compile is recorded, not fatal — but invalid input circuits
 *  throw ValidationError before any compilation starts). */
FleetReport compileFleet(const std::vector<FleetJob> &jobs,
                         const FleetOptions &options);

/**
 * Parse a batch payload: OpenQASM 2.0 programs separated by lines
 * containing exactly "%%". Members are named m0, m1, ... in payload
 * order. Throws ParseError/ValidationError on any malformed member
 * (with the member index in the message).
 */
std::vector<FleetJob> parseFleetPayload(const std::string &payload);

}  // namespace fleet
}  // namespace geyser

#endif  // GEYSER_FLEET_FLEET_HPP
