/**
 * @file
 * Skeleton/parameter structure sharing for fleet compilation.
 *
 * A parameter sweep (VQE/QAOA) iterates one circuit *structure* with
 * new angles; full recompilation redoes the expensive composition
 * search per member even though only a handful of U3 angles moved. This
 * module factors a sweep into:
 *
 *  1. a grouping step (`groupBySkeleton`): members with identical
 *     structure — gate kinds, operands, qubit count, every parameter
 *     slot position — land in one SkeletonGroup, with the slots whose
 *     values actually differ across the group recorded as the varying
 *     mask;
 *  2. a plan (`buildSkeletonPlan`): the group's representative is
 *     transpiled once, the varying logical slots are traced through the
 *     transpiler onto physical U3 parameters by perturbation
 *     differencing, the circuit is blocked, and each block's maximal
 *     runs of *fixed* gates are composed (through the composed-block
 *     cache) while the varying U3s are emitted verbatim — yielding one
 *     stitched "composed skeleton" circuit plus a re-bind map from
 *     stitched varying slots back to transpiled gate indices;
 *  3. a per-member re-bind (`rebindMember`): transpile the member
 *     (cheap — milliseconds vs seconds of composition), check its
 *     structure and *fixed* parameters bit-exactly against the plan,
 *     then copy its varying physical angles into the cached stitched
 *     circuit. Any divergence (the optimizer is angle-sensitive at
 *     identity/diagonal boundaries) returns nullopt and the caller
 *     falls back to a plain full compile — sharing is an optimization,
 *     never a change in results.
 *
 * Plans serialize (`skeletonPlanToText`) and persist in the result
 * cache under `cache::skeletonCacheKey`, so a warm process re-binds a
 * thousand-member sweep without composing anything at all.
 *
 * Only Technique::Geyser has a composition stage to share; the fleet
 * driver compiles other techniques member-by-member through the exact
 * cache.
 */
#ifndef GEYSER_FLEET_SKELETON_HPP
#define GEYSER_FLEET_SKELETON_HPP

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "geyser/pipeline.hpp"

namespace geyser {
namespace fleet {

/** One parameter slot of a circuit: gate index + param index. */
struct ParamSlot
{
    int gate = 0;
    int param = 0;

    bool operator==(const ParamSlot &o) const
    {
        return gate == o.gate && param == o.param;
    }
};

/**
 * Hex digest of a circuit's structure only: qubit count, gate kinds,
 * operands — every parameter canonicalized out. Equal digests mean the
 * circuits are candidates for one skeleton group.
 */
std::string structureDigest(const Circuit &circuit);

/** A set of same-structure sweep members and their varying slots. */
struct SkeletonGroup
{
    std::string digest;
    /** Indices into the caller's member list, in input order. */
    std::vector<int> members;
    /**
     * Slots whose value differs from the representative (the first
     * member) anywhere in the group, in (gate, param) order. Empty for
     * a group whose members are parameter-identical.
     */
    std::vector<ParamSlot> varyingSlots;
};

/** Partition members into skeleton groups (input order preserved). */
std::vector<SkeletonGroup> groupBySkeleton(
    const std::vector<Circuit> &members);

/**
 * The cached composed structure of one skeleton group: everything
 * needed to turn a member's transpiled angles into a full Geyser
 * result without composing.
 */
struct SkeletonPlan
{
    Technique technique = Technique::Geyser;
    /** The representative's routed physical circuit (pre-blocking). */
    Circuit transpiled;
    std::vector<Qubit> initialLayout;
    std::vector<Qubit> finalLayout;
    int swapsInserted = 0;
    /**
     * Per transpiled-gate parameter slot (flat index gate*3+param):
     * nonzero if the slot tracks a varying logical angle. Fixed slots
     * must match the plan bit-exactly for a member to re-bind.
     */
    std::vector<uint8_t> paramVarying;
    /**
     * The composed skeleton: fixed segments composed, varying U3s
     * verbatim (holding the representative's angle values until
     * re-bound). Equals `transpiled` when adopted == false.
     */
    Circuit stitched;
    /** (stitched gate index, transpiled gate index) for varying U3s. */
    std::vector<std::pair<int, int>> rebindMap;
    // Representative's composition metadata, reported for every
    // re-bound member (the search ran once, on the skeleton).
    int blockCount = 0;
    int composedBlockCount = 0;
    long compositionEvaluations = 0;
    double maxBlockHsd = 0.0;
    /** False when no segment composed (Geyser degenerates to OptiMap). */
    bool adopted = false;
};

/**
 * Build a plan from a group representative. `varyingSlots` are the
 * group's varying logical slots. When `cachedCompose` is set, fixed
 * segments compose through the process memo + persistent spill
 * (options.cache); otherwise composition runs from scratch — the
 * oracle path used to verify re-bound results. Returns nullopt when
 * the transpiler output is structurally angle-sensitive for this
 * circuit (perturbation differencing detects it) or a varying angle
 * lands outside a plain U3 — the caller then full-compiles the group.
 */
std::optional<SkeletonPlan> buildSkeletonPlan(
    Technique technique, const Circuit &representative,
    const std::vector<ParamSlot> &varyingSlots,
    const PipelineOptions &options, bool cachedCompose = true);

/**
 * Re-bind one member against a plan: transpile it, validate structure
 * + fixed parameters + layouts against the plan, then substitute its
 * varying angles into the stitched circuit. nullopt on any divergence
 * (caller falls back to compile()).
 */
std::optional<CompileResult> rebindMember(const SkeletonPlan &plan,
                                          const Circuit &memberLogical,
                                          const PipelineOptions &options);

/** Serialize a plan for the persistent cache. */
std::string skeletonPlanToText(const SkeletonPlan &plan);

/** Parse skeletonPlanToText() output; nullopt on malformed input. */
std::optional<SkeletonPlan> skeletonPlanFromText(const std::string &text);

/** The group's varying slots as (gate, param) pairs for cache keys. */
std::vector<std::pair<int, int>> slotPairs(
    const std::vector<ParamSlot> &slots);

}  // namespace fleet
}  // namespace geyser

#endif  // GEYSER_FLEET_SKELETON_HPP
