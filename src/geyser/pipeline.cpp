#include "geyser/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "cache/result_cache.hpp"
#include "common/cancel.hpp"
#include "common/error.hpp"
#include "circuit/schedule.hpp"
#include "common/thread_pool.hpp"
#include "io/serialize.hpp"
#include "obs/obs.hpp"
#include "sim/statevector.hpp"
#include "transpile/basis.hpp"
#include "transpile/passes.hpp"
#include "transpile/router.hpp"
#include "transpile/sabre.hpp"
#include "verify/equivalence.hpp"

namespace geyser {

const char *
techniqueName(Technique technique)
{
    switch (technique) {
      case Technique::Baseline:
        return "Baseline";
      case Technique::OptiMap:
        return "OptiMap";
      case Technique::Geyser:
        return "Geyser";
      case Technique::Superconducting:
        return "Superconducting";
    }
    return "?";
}

namespace {

using StageClock = std::chrono::steady_clock;

double
msSince(StageClock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(StageClock::now() - t0)
        .count();
}

/** Cooperative cancellation/deadline check at a stage boundary. */
void
checkpoint(const PipelineOptions &options, const char *stage)
{
    if (options.cancel != nullptr)
        options.cancel->checkpoint(stage);
}

verify::EquivalenceOptions
verifyOptionsFrom(const PipelineOptions &options)
{
    verify::EquivalenceOptions eo;
    eo.unitaryTolerance = options.verifyUnitaryTolerance;
    eo.tvdTolerance = options.verifyTvdTolerance;
    eo.maxUnitaryQubits = options.verifyMaxUnitaryQubits;
    return eo;
}

/** Throw VerificationError if `candidate` diverged from `reference`. */
void
verifyStage(const PipelineOptions &options, const char *stage,
            const Circuit &reference, const Circuit &candidate)
{
    if (!options.verifyEquivalence)
        return;
    const auto report =
        verify::checkUnitary(reference, candidate, verifyOptionsFrom(options));
    if (!report.equivalent)
        throw verify::VerificationError(std::string(stage) +
                                        " diverged: " + report.detail);
}

/** Layout-aware variant for routed candidates. */
void
verifyRoutedStage(const PipelineOptions &options, const char *stage,
                  const Circuit &reference, const RoutedCircuit &routed)
{
    if (!options.verifyEquivalence)
        return;
    const auto report =
        verify::checkRouted(reference, routed.circuit, routed.initialLayout,
                            routed.finalLayout, verifyOptionsFrom(options));
    if (!report.equivalent)
        throw verify::VerificationError(std::string(stage) +
                                        " diverged: " + report.detail);
}

/** Shared mapping step: lower, (optionally) optimize, route, re-optimize. */
CompileResult
mapCircuit(Technique technique, const Circuit &logical, const Topology &topo,
           bool optimized, const PipelineOptions &options)
{
    // Every compile entry point funnels through here: reject invalid
    // circuits (out-of-range operands, duplicates, non-finite angles)
    // before they can reach the transpiler or the simulators.
    logical.validate();
    checkpoint(options, "transpile");

    CompileResult result;
    result.technique = technique;
    result.logical = logical;
    result.topology = topo;

    const auto t0 = StageClock::now();
    obs::Span span("transpile", "pipeline");
    span.arg("technique", techniqueName(technique));
    span.arg("qubits", logical.numQubits());

    Circuit physical;
    {
        obs::Span s("transpile.basis", "pipeline");
        physical = decomposeToBasis(logical);
        s.arg("gates", static_cast<double>(physical.size()));
    }
    verifyStage(options, "basis translation", logical, physical);
    if (optimized) {
        obs::Span s("transpile.optimize.pre", "pipeline");
        optimize(physical);
        s.arg("gates", static_cast<double>(physical.size()));
        verifyStage(options, "pre-routing optimization", logical, physical);
    }
    // Baseline routes from the trivial layout ("no mapping
    // optimizations"); the optimizing techniques try several routing
    // strategies (trivial walk, interaction-aware greedy layout, SABRE
    // lookahead) and keep the cheapest result.
    RoutedCircuit routed;
    {
        obs::Span s("transpile.route", "pipeline");
        s.arg("strategy", "trivial");
        routed = route(physical, topo);
        s.arg("swaps", routed.swapsInserted);
        s.arg("pulses", static_cast<double>(routed.circuit.totalPulses()));
    }
    verifyRoutedStage(options, "routing (trivial walk)", physical, routed);
    checkpoint(options, "route");
    if (optimized) {
        {
            obs::Span s("transpile.optimize.post", "pipeline");
            optimize(routed.circuit);
        }
        verifyRoutedStage(options, "post-routing optimization", physical,
                          routed);
        const auto greedyLayout = chooseInitialLayout(physical, topo);
        const char *names[] = {"routing (greedy layout)", "routing (SABRE)"};
        const char *strategies[] = {"greedy", "sabre"};
        RoutedCircuit candidates[2];
        for (size_t ci = 0; ci < 2; ++ci) {
            checkpoint(options, "route");
            obs::Span s("transpile.route", "pipeline");
            s.arg("strategy", strategies[ci]);
            auto &candidate = candidates[ci];
            candidate = ci == 0 ? route(physical, topo, greedyLayout)
                                : routeSabre(physical, topo, greedyLayout);
            s.arg("swaps", candidate.swapsInserted);
            optimize(candidate.circuit);
            s.arg("pulses",
                  static_cast<double>(candidate.circuit.totalPulses()));
            verifyRoutedStage(options, names[ci], physical, candidate);
            if (candidate.circuit.totalPulses() <
                routed.circuit.totalPulses())
                routed = std::move(candidate);
        }
    }
    result.physical = std::move(routed.circuit);
    result.initialLayout = std::move(routed.initialLayout);
    result.finalLayout = std::move(routed.finalLayout);
    result.swapsInserted = routed.swapsInserted;
    span.arg("swaps", result.swapsInserted);
    result.transpileMs = msSince(t0);
    return result;
}

/** Final whole-result check (distribution-level for Geyser). */
void
verifyResult(const PipelineOptions &options, const CompileResult &result)
{
    if (!options.verifyEquivalence)
        return;
    const auto report =
        verify::checkCompileResult(result, verifyOptionsFrom(options));
    if (!report.equivalent)
        throw verify::VerificationError(
            std::string(techniqueName(result.technique)) +
            " compilation diverged (" + report.method +
            "): " + report.detail);
}

void
fillStats(CompileResult &result)
{
    result.stats = circuitStats(result.physical);
    if (result.technique == Technique::Superconducting) {
        // Superconducting qubits have no Rydberg restriction zones.
        result.stats.depthPulses = depthPulses(result.physical);
    } else {
        result.stats.depthPulses =
            depthPulses(result.physical, result.topology);
    }
}

}  // namespace

CompileResult
compileBaseline(const Circuit &logical, const PipelineOptions &options)
{
    obs::EnabledScope traceScope(options.trace);
    const auto t0 = StageClock::now();
    obs::Span span("compile", "pipeline");
    span.arg("technique", "Baseline");
    CompileResult result =
        mapCircuit(Technique::Baseline, logical,
                   Topology::forQubits(logical.numQubits()), false, options);
    fillStats(result);
    verifyResult(options, result);
    result.totalMs = msSince(t0);
    return result;
}

CompileResult
compileOptiMap(const Circuit &logical, const PipelineOptions &options)
{
    obs::EnabledScope traceScope(options.trace);
    const auto t0 = StageClock::now();
    obs::Span span("compile", "pipeline");
    span.arg("technique", "OptiMap");
    CompileResult result =
        mapCircuit(Technique::OptiMap, logical,
                   Topology::forQubits(logical.numQubits()), true, options);
    fillStats(result);
    verifyResult(options, result);
    result.totalMs = msSince(t0);
    return result;
}

CompileResult
compileSuperconducting(const Circuit &logical, const PipelineOptions &options)
{
    obs::EnabledScope traceScope(options.trace);
    const auto t0 = StageClock::now();
    obs::Span span("compile", "pipeline");
    span.arg("technique", "Superconducting");
    CompileResult result =
        mapCircuit(Technique::Superconducting, logical,
                   Topology::squareForQubits(logical.numQubits()), true,
                   options);
    fillStats(result);
    verifyResult(options, result);
    result.totalMs = msSince(t0);
    return result;
}

CompileResult
compileGeyser(const Circuit &logical, const PipelineOptions &options)
{
    obs::EnabledScope traceScope(options.trace);
    const auto t0 = StageClock::now();
    obs::Span span("compile", "pipeline");
    span.arg("technique", "Geyser");
    CompileResult result =
        mapCircuit(Technique::Geyser, logical,
                   Topology::forQubits(logical.numQubits()), true, options);

    // Blocking (Algorithm 1).
    checkpoint(options, "blocking");
    const auto tBlock = StageClock::now();
    BlockedCircuit blocked;
    {
        obs::Span s("blocking", "pipeline");
        blocked =
            blockCircuit(result.physical, result.topology, options.blocker);
        s.arg("blocks", blocked.blockCount());
        s.arg("rounds", static_cast<double>(blocked.rounds.size()));
    }
    result.blockCount = blocked.blockCount();
    result.blockingMs = msSince(tBlock);

    // Composition (Algorithm 2), independently parallel across blocks.
    checkpoint(options, "compose");
    const auto tCompose = StageClock::now();
    Circuit out(result.topology.numAtoms());
    {
    obs::Span composeSpan("compose", "pipeline");
    std::vector<const Block *> blocks;
    for (const auto &round : blocked.rounds)
        for (const auto &block : round.blocks)
            blocks.push_back(&block);

    // The composed-block memo spills through the persistent cache when
    // one is attached, so repeated blocks survive process restarts.
    ComposeOptions composeOptions = options.compose;
    if (composeOptions.spill == nullptr)
        composeOptions.spill = options.cache;
    // Mid-block cancellation: one block's angle search can dominate the
    // whole compile, so the token must reach the optimizer loops too.
    if (composeOptions.cancel == nullptr)
        composeOptions.cancel = options.cancel;

    std::vector<ComposeResult> composed(blocks.size());
    // Pool workers don't inherit this thread's trace context (it is
    // thread-local), so capture it here and re-enter it per block;
    // TraceScope(0) is a no-op when no trace is active.
    const uint64_t traceId = obs::currentTraceId();
    auto composeOne = [&](int i) {
        obs::TraceScope trace(traceId);
        // Per-block cancellation: a cancelled compile drains the rest of
        // the batch in O(blocks) cheap throws instead of composing on.
        checkpoint(options, "compose");
        // Identical local blocks (every Trotter step, every ripple-carry
        // stage) share one composition through the memo, so the seed must
        // not vary per block.
        obs::Span s("compose.block", "compose");
        const auto &cr = composed[static_cast<size_t>(i)] = composeBlockCached(
            blocked.localCircuit(*blocks[static_cast<size_t>(i)]),
            composeOptions);
        if (s.active()) {
            s.arg("block", i);
            s.arg("atoms",
                  static_cast<double>(
                      blocks[static_cast<size_t>(i)]->atoms.size()));
            s.arg("evaluations", static_cast<double>(cr.evaluations));
            s.arg("composed", cr.composed ? 1.0 : 0.0);
            s.arg("layers", cr.layersUsed);
            s.arg("hsd", cr.hsd);
        }
    };
    if (options.parallelCompose) {
        globalPool().parallelFor(static_cast<int>(blocks.size()), composeOne);
    } else {
        for (int i = 0; i < static_cast<int>(blocks.size()); ++i)
            composeOne(i);
    }

    // Reassemble: blocks in round order, each remapped to its atoms.
    for (size_t i = 0; i < blocks.size(); ++i) {
        const Block &block = *blocks[i];
        const ComposeResult &cr = composed[i];
        out.append(cr.circuit.remapped(block.atoms,
                                       result.topology.numAtoms()));
        if (cr.composed)
            ++result.composedBlockCount;
        result.compositionEvaluations += cr.evaluations;
        result.maxBlockHsd = std::max(result.maxBlockHsd, cr.hsd);
    }
    composeSpan.arg("blocks", result.blockCount);
    composeSpan.arg("composed", result.composedBlockCount);
    composeSpan.arg("evaluations",
                    static_cast<double>(result.compositionEvaluations));
    composeSpan.arg("maxHsd", result.maxBlockHsd);
    }
    result.composeMs = msSince(tCompose);
    // If nothing composed, the block-order reshuffle buys nothing: keep
    // the mapped circuit verbatim (Geyser degenerates to OptiMap, as the
    // paper reports for the Advantage benchmark).
    if (result.composedBlockCount > 0)
        result.physical = std::move(out);
    fillStats(result);
    verifyResult(options, result);
    result.totalMs = msSince(t0);
    return result;
}

CompileResult
transpileForTechnique(Technique technique, const Circuit &logical,
                      const PipelineOptions &options)
{
    obs::EnabledScope traceScope(options.trace);
    const Topology topo =
        technique == Technique::Superconducting
            ? Topology::squareForQubits(logical.numQubits())
            : Topology::forQubits(logical.numQubits());
    const bool optimized = technique != Technique::Baseline;
    CompileResult result =
        mapCircuit(technique, logical, topo, optimized, options);
    fillStats(result);
    result.totalMs = result.transpileMs;
    return result;
}

namespace {

CompileResult
compileUncached(Technique technique, const Circuit &logical,
                const PipelineOptions &options)
{
    switch (technique) {
      case Technique::Baseline:
        return compileBaseline(logical, options);
      case Technique::OptiMap:
        return compileOptiMap(logical, options);
      case Technique::Geyser:
        return compileGeyser(logical, options);
      case Technique::Superconducting:
        return compileSuperconducting(logical, options);
    }
    throw InternalError("compile: unknown technique");
}

}  // namespace

CompileResult
compile(Technique technique, const Circuit &logical,
        const PipelineOptions &options)
{
    checkpoint(options, "start");
    cache::ResultCache *cache = options.cache;
    if (cache == nullptr || !cache->enabled())
        return compileUncached(technique, logical, options);

    const std::string key =
        cache::compileCacheKey(logical, options, technique);
    // Single-flight: concurrent misses on this key — other threads, and
    // best-effort other processes — compute once and replay the stored
    // entry. A compute keeps its in-memory result; replays are rebuilt
    // from the serialized payload (checksummed by the cache layer).
    std::optional<CompileResult> computed;
    bool wasHit = false;
    const std::string payload = cache->getOrCompute(key, [&] {
        computed = compileUncached(technique, logical, options);
        return compileResultToText(*computed);
    }, &wasHit);
    if (computed)
        return std::move(*computed);
    if (auto replayed = compileResultFromText(payload, logical)) {
        replayed->cacheHit = wasHit;
        return std::move(*replayed);
    }
    // A payload that passed the checksum but fails to parse or
    // validate means the serializer and parser disagree, or the entry
    // was written by a skewed build. Quarantine it so the next run
    // recomputes a good entry instead of replaying the poisoned one
    // forever, and degrade to an uncached compile.
    obs::counter("cache.invalid_payload").add();
    cache->quarantineEntry(key);
    return compileUncached(technique, logical, options);
}

Distribution
projectToLogical(const Distribution &physical,
                 const std::vector<Qubit> &final_layout, int num_logical,
                 int num_atoms)
{
    if (num_atoms < 0 || num_atoms >= 63 || num_logical < 0 ||
        num_logical > num_atoms)
        throw ValidationError("projectToLogical: bad qubit counts");
    if (physical.size() != (size_t{1} << num_atoms))
        throw ValidationError("projectToLogical: size mismatch");
    if (final_layout.size() < static_cast<size_t>(num_logical))
        throw ValidationError("projectToLogical: layout too short");
    for (int q = 0; q < num_logical; ++q) {
        const Qubit atom = final_layout[static_cast<size_t>(q)];
        if (atom < 0 || atom >= num_atoms)
            throw ValidationError(
                "projectToLogical: layout atom out of range");
    }
    Distribution logical(size_t{1} << num_logical, 0.0);
    for (size_t y = 0; y < physical.size(); ++y) {
        if (physical[y] == 0.0)
            continue;
        size_t x = 0;
        for (int q = 0; q < num_logical; ++q) {
            const Qubit atom = final_layout[static_cast<size_t>(q)];
            if (y & (size_t{1} << atom))
                x |= size_t{1} << q;
        }
        logical[x] += physical[y];
    }
    return logical;
}

double
evaluateTvd(const CompileResult &result, const NoiseModel &noise,
            const TrajectoryConfig &config)
{
    const Distribution ideal = idealDistribution(result.logical);
    TrajectoryConfig cfg = config;
    if (noise.crosstalkPhase > 0.0 && cfg.topology == nullptr)
        cfg.topology = &result.topology;
    const Distribution phys =
        noisyDistribution(result.physical, noise, cfg);
    const Distribution projected =
        projectToLogical(phys, result.finalLayout,
                         result.logical.numQubits(),
                         result.physical.numQubits());
    return totalVariationDistance(ideal, projected);
}

double
idealTvd(const CompileResult &result)
{
    const Distribution ideal = idealDistribution(result.logical);
    const Distribution phys = idealDistribution(result.physical);
    const Distribution projected =
        projectToLogical(phys, result.finalLayout,
                         result.logical.numQubits(),
                         result.physical.numQubits());
    return totalVariationDistance(ideal, projected);
}

}  // namespace geyser
