#include "geyser/pipeline.hpp"

#include <algorithm>
#include <stdexcept>

#include "circuit/schedule.hpp"
#include "common/thread_pool.hpp"
#include "sim/statevector.hpp"
#include "transpile/basis.hpp"
#include "transpile/passes.hpp"
#include "transpile/router.hpp"
#include "transpile/sabre.hpp"
#include "verify/equivalence.hpp"

namespace geyser {

const char *
techniqueName(Technique technique)
{
    switch (technique) {
      case Technique::Baseline:
        return "Baseline";
      case Technique::OptiMap:
        return "OptiMap";
      case Technique::Geyser:
        return "Geyser";
      case Technique::Superconducting:
        return "Superconducting";
    }
    return "?";
}

namespace {

verify::EquivalenceOptions
verifyOptionsFrom(const PipelineOptions &options)
{
    verify::EquivalenceOptions eo;
    eo.unitaryTolerance = options.verifyUnitaryTolerance;
    eo.tvdTolerance = options.verifyTvdTolerance;
    eo.maxUnitaryQubits = options.verifyMaxUnitaryQubits;
    return eo;
}

/** Throw VerificationError if `candidate` diverged from `reference`. */
void
verifyStage(const PipelineOptions &options, const char *stage,
            const Circuit &reference, const Circuit &candidate)
{
    if (!options.verifyEquivalence)
        return;
    const auto report =
        verify::checkUnitary(reference, candidate, verifyOptionsFrom(options));
    if (!report.equivalent)
        throw verify::VerificationError(std::string(stage) +
                                        " diverged: " + report.detail);
}

/** Layout-aware variant for routed candidates. */
void
verifyRoutedStage(const PipelineOptions &options, const char *stage,
                  const Circuit &reference, const RoutedCircuit &routed)
{
    if (!options.verifyEquivalence)
        return;
    const auto report =
        verify::checkRouted(reference, routed.circuit, routed.initialLayout,
                            routed.finalLayout, verifyOptionsFrom(options));
    if (!report.equivalent)
        throw verify::VerificationError(std::string(stage) +
                                        " diverged: " + report.detail);
}

/** Shared mapping step: lower, (optionally) optimize, route, re-optimize. */
CompileResult
mapCircuit(Technique technique, const Circuit &logical, const Topology &topo,
           bool optimized, const PipelineOptions &options)
{
    CompileResult result;
    result.technique = technique;
    result.logical = logical;
    result.topology = topo;

    Circuit physical = decomposeToBasis(logical);
    verifyStage(options, "basis translation", logical, physical);
    if (optimized) {
        optimize(physical);
        verifyStage(options, "pre-routing optimization", logical, physical);
    }
    // Baseline routes from the trivial layout ("no mapping
    // optimizations"); the optimizing techniques try several routing
    // strategies (trivial walk, interaction-aware greedy layout, SABRE
    // lookahead) and keep the cheapest result.
    RoutedCircuit routed = route(physical, topo);
    verifyRoutedStage(options, "routing (trivial walk)", physical, routed);
    if (optimized) {
        optimize(routed.circuit);
        verifyRoutedStage(options, "post-routing optimization", physical,
                          routed);
        const auto greedyLayout = chooseInitialLayout(physical, topo);
        RoutedCircuit candidates[] = {
            route(physical, topo, greedyLayout),
            routeSabre(physical, topo, greedyLayout),
        };
        const char *names[] = {"routing (greedy layout)", "routing (SABRE)"};
        for (size_t ci = 0; ci < 2; ++ci) {
            auto &candidate = candidates[ci];
            optimize(candidate.circuit);
            verifyRoutedStage(options, names[ci], physical, candidate);
            if (candidate.circuit.totalPulses() <
                routed.circuit.totalPulses())
                routed = std::move(candidate);
        }
    }
    result.physical = std::move(routed.circuit);
    result.initialLayout = std::move(routed.initialLayout);
    result.finalLayout = std::move(routed.finalLayout);
    result.swapsInserted = routed.swapsInserted;
    return result;
}

/** Final whole-result check (distribution-level for Geyser). */
void
verifyResult(const PipelineOptions &options, const CompileResult &result)
{
    if (!options.verifyEquivalence)
        return;
    const auto report =
        verify::checkCompileResult(result, verifyOptionsFrom(options));
    if (!report.equivalent)
        throw verify::VerificationError(
            std::string(techniqueName(result.technique)) +
            " compilation diverged (" + report.method +
            "): " + report.detail);
}

void
fillStats(CompileResult &result)
{
    result.stats = circuitStats(result.physical);
    if (result.technique == Technique::Superconducting) {
        // Superconducting qubits have no Rydberg restriction zones.
        result.stats.depthPulses = depthPulses(result.physical);
    } else {
        result.stats.depthPulses =
            depthPulses(result.physical, result.topology);
    }
}

}  // namespace

CompileResult
compileBaseline(const Circuit &logical, const PipelineOptions &options)
{
    CompileResult result =
        mapCircuit(Technique::Baseline, logical,
                   Topology::forQubits(logical.numQubits()), false, options);
    fillStats(result);
    verifyResult(options, result);
    return result;
}

CompileResult
compileOptiMap(const Circuit &logical, const PipelineOptions &options)
{
    CompileResult result =
        mapCircuit(Technique::OptiMap, logical,
                   Topology::forQubits(logical.numQubits()), true, options);
    fillStats(result);
    verifyResult(options, result);
    return result;
}

CompileResult
compileSuperconducting(const Circuit &logical, const PipelineOptions &options)
{
    CompileResult result =
        mapCircuit(Technique::Superconducting, logical,
                   Topology::squareForQubits(logical.numQubits()), true,
                   options);
    fillStats(result);
    verifyResult(options, result);
    return result;
}

CompileResult
compileGeyser(const Circuit &logical, const PipelineOptions &options)
{
    CompileResult result =
        mapCircuit(Technique::Geyser, logical,
                   Topology::forQubits(logical.numQubits()), true, options);

    // Blocking (Algorithm 1).
    BlockedCircuit blocked =
        blockCircuit(result.physical, result.topology, options.blocker);
    result.blockCount = blocked.blockCount();

    // Composition (Algorithm 2), independently parallel across blocks.
    std::vector<const Block *> blocks;
    for (const auto &round : blocked.rounds)
        for (const auto &block : round.blocks)
            blocks.push_back(&block);

    std::vector<ComposeResult> composed(blocks.size());
    auto composeOne = [&](int i) {
        // Identical local blocks (every Trotter step, every ripple-carry
        // stage) share one composition through the memo, so the seed must
        // not vary per block.
        composed[static_cast<size_t>(i)] = composeBlockCached(
            blocked.localCircuit(*blocks[static_cast<size_t>(i)]),
            options.compose);
    };
    if (options.parallelCompose) {
        globalPool().parallelFor(static_cast<int>(blocks.size()), composeOne);
    } else {
        for (int i = 0; i < static_cast<int>(blocks.size()); ++i)
            composeOne(i);
    }

    // Reassemble: blocks in round order, each remapped to its atoms.
    Circuit out(result.topology.numAtoms());
    for (size_t i = 0; i < blocks.size(); ++i) {
        const Block &block = *blocks[i];
        const ComposeResult &cr = composed[i];
        out.append(cr.circuit.remapped(block.atoms,
                                       result.topology.numAtoms()));
        if (cr.composed)
            ++result.composedBlockCount;
        result.compositionEvaluations += cr.evaluations;
        result.maxBlockHsd = std::max(result.maxBlockHsd, cr.hsd);
    }
    // If nothing composed, the block-order reshuffle buys nothing: keep
    // the mapped circuit verbatim (Geyser degenerates to OptiMap, as the
    // paper reports for the Advantage benchmark).
    if (result.composedBlockCount > 0)
        result.physical = std::move(out);
    fillStats(result);
    verifyResult(options, result);
    return result;
}

CompileResult
compile(Technique technique, const Circuit &logical,
        const PipelineOptions &options)
{
    switch (technique) {
      case Technique::Baseline:
        return compileBaseline(logical, options);
      case Technique::OptiMap:
        return compileOptiMap(logical, options);
      case Technique::Geyser:
        return compileGeyser(logical, options);
      case Technique::Superconducting:
        return compileSuperconducting(logical, options);
    }
    throw std::invalid_argument("compile: unknown technique");
}

Distribution
projectToLogical(const Distribution &physical,
                 const std::vector<Qubit> &final_layout, int num_logical,
                 int num_atoms)
{
    if (physical.size() != (size_t{1} << num_atoms))
        throw std::invalid_argument("projectToLogical: size mismatch");
    Distribution logical(size_t{1} << num_logical, 0.0);
    for (size_t y = 0; y < physical.size(); ++y) {
        if (physical[y] == 0.0)
            continue;
        size_t x = 0;
        for (int q = 0; q < num_logical; ++q) {
            const Qubit atom = final_layout[static_cast<size_t>(q)];
            if (y & (size_t{1} << atom))
                x |= size_t{1} << q;
        }
        logical[x] += physical[y];
    }
    return logical;
}

double
evaluateTvd(const CompileResult &result, const NoiseModel &noise,
            const TrajectoryConfig &config)
{
    const Distribution ideal = idealDistribution(result.logical);
    TrajectoryConfig cfg = config;
    if (noise.crosstalkPhase > 0.0 && cfg.topology == nullptr)
        cfg.topology = &result.topology;
    const Distribution phys =
        noisyDistribution(result.physical, noise, cfg);
    const Distribution projected =
        projectToLogical(phys, result.finalLayout,
                         result.logical.numQubits(),
                         result.physical.numQubits());
    return totalVariationDistance(ideal, projected);
}

double
idealTvd(const CompileResult &result)
{
    const Distribution ideal = idealDistribution(result.logical);
    const Distribution phys = idealDistribution(result.physical);
    const Distribution projected =
        projectToLogical(phys, result.finalLayout,
                         result.logical.numQubits(),
                         result.physical.numQubits());
    return totalVariationDistance(ideal, projected);
}

}  // namespace geyser
