/**
 * @file
 * The end-to-end compilation pipeline and the paper's comparative
 * techniques (Sec 4):
 *
 *  - Baseline: lower to {U3, CZ} and route onto the triangular atom
 *    lattice; no optimization (Baker et al.-style mapping).
 *  - OptiMap: Baseline plus all gate-level optimizations (1q fusion,
 *    CZ cancellation) before and after routing.
 *  - Geyser: OptiMap plus circuit blocking (Algorithm 1) and block
 *    composition into native CCZ gates (Algorithm 2).
 *  - Superconducting: OptiMap-style compilation onto a 4-neighbour
 *    square grid with no CCZ support (the paper's best-case
 *    superconducting comparison).
 */
#ifndef GEYSER_GEYSER_PIPELINE_HPP
#define GEYSER_GEYSER_PIPELINE_HPP

#include <string>
#include <vector>

#include "blocking/blocker.hpp"
#include "circuit/circuit.hpp"
#include "compose/composer.hpp"
#include "metrics/metrics.hpp"
#include "sim/noise.hpp"
#include "sim/trajectory.hpp"
#include "topology/topology.hpp"

namespace geyser {

class CancelToken;

namespace cache {
class ResultCache;
}  // namespace cache

/**
 * Behavioural version of the whole pipeline, folded into every
 * persistent-cache key (src/cache). Bump it whenever any change can
 * alter a compiled circuit bit-for-bit (new passes, different sweep
 * orders, retuned budgets); stale on-disk entries then simply stop
 * matching and age out of the cache. Replaces the hand-bumped version
 * string that used to live in bench/common.cpp (history: v4 added stage
 * wall times, v5 the incremental composition kernel, v6 this constant
 * and the checksummed cache framing, v7 the SIMD compute backends —
 * FMA contraction and reduction-order changes shift composed circuits
 * within rounding).
 */
inline constexpr int kPipelineVersion = 7;

/** The compilation strategy to apply. */
enum class Technique { Baseline, OptiMap, Geyser, Superconducting };

/** Display name ("Baseline", "OptiMap", ...). */
const char *techniqueName(Technique technique);

/** Pipeline configuration. */
struct PipelineOptions
{
    BlockerOptions blocker;
    ComposeOptions compose;
    /** Compose blocks concurrently on the global thread pool. */
    bool parallelCompose = true;
    /**
     * Differentially verify every transpiler stage (basis translation,
     * optimization, each routing candidate) and the final result against
     * the logical source, throwing verify::VerificationError on the
     * first divergence. Exact stages are checked at the unitary level up
     * to global phase (layout-aware once routed); the approximate Geyser
     * composition is checked against the distribution bound. Costs an
     * extra simulation per stage — an opt-in self-check, not a default.
     */
    bool verifyEquivalence = false;
    /** HSD bound for the exact-stage checks when verifying. */
    double verifyUnitaryTolerance = 1e-8;
    /** TVD bound for the composed-circuit check when verifying. */
    double verifyTvdTolerance = 1e-2;
    /** Widest circuit verified at the unitary level (else distribution). */
    int verifyMaxUnitaryQubits = 10;
    /**
     * Force obs tracing/metrics collection on for the duration of this
     * compile (restoring the previous state afterwards), so a single
     * compilation can be traced without touching the process-wide
     * obs::setEnabled flag. Export with obs::writeChromeTrace /
     * obs::writeMetricsJsonl after the call.
     */
    bool trace = false;
    /**
     * Optional persistent result cache (not owned). When set, compile()
     * serves whole-circuit results content-addressed on the logical
     * circuit + behavioural options + technique + kPipelineVersion, and
     * the Geyser composition stage spills its composed-block memo
     * through the same cache, so repeated blocks survive process
     * restarts. Concurrent misses on one key compute once
     * (single-flight); corrupt or stale entries degrade to a recompute,
     * never an error. nullptr compiles uncached.
     */
    cache::ResultCache *cache = nullptr;
    /**
     * Optional cooperative cancellation/deadline token (not owned).
     * compile() calls cancel->checkpoint(stage) at every stage boundary
     * and once per composed block; a tripped token unwinds the compile
     * with CancelledError/DeadlineError at the next checkpoint and
     * records the stage a running compile is currently in. nullptr
     * compiles uninterruptible (the pre-service behaviour).
     */
    const CancelToken *cancel = nullptr;
};

/** Everything the benches report about one compiled circuit. */
struct CompileResult
{
    Technique technique = Technique::Baseline;
    Circuit logical;                ///< The input program.
    Circuit physical;               ///< Final circuit over atom indices.
    Topology topology;              ///< The atom arrangement used.
    std::vector<Qubit> initialLayout; ///< logical qubit -> atom at entry.
    std::vector<Qubit> finalLayout; ///< logical qubit -> atom after routing.
    CircuitStats stats;             ///< Counts; depth is restriction-aware.
    int swapsInserted = 0;
    // Geyser-only details.
    int blockCount = 0;
    int composedBlockCount = 0;
    long compositionEvaluations = 0;
    double maxBlockHsd = 0.0;
    // Stage wall-clock times, populated unconditionally on every compile
    // (zero for stages a technique does not run, and replayed verbatim
    // from the bench result cache).
    double transpileMs = 0.0;  ///< Basis + optimization + routing.
    double blockingMs = 0.0;   ///< Algorithm 1 (Geyser only).
    double composeMs = 0.0;    ///< Algorithm 2 (Geyser only).
    double totalMs = 0.0;      ///< Whole compile() call.
    /**
     * True when this result was replayed from the persistent cache
     * instead of compiled (set per call, never serialized; the stage
     * times above are then the original compute's).
     */
    bool cacheHit = false;
};

/** Compile with the given technique. */
CompileResult compile(Technique technique, const Circuit &logical,
                      const PipelineOptions &options = {});

CompileResult compileBaseline(const Circuit &logical,
                              const PipelineOptions &options = {});
CompileResult compileOptiMap(const Circuit &logical,
                             const PipelineOptions &options = {});
CompileResult compileGeyser(const Circuit &logical,
                            const PipelineOptions &options = {});
CompileResult compileSuperconducting(const Circuit &logical,
                                     const PipelineOptions &options = {});

/**
 * The shared mapping stage only — basis lowering, optimization passes,
 * and routing with the technique's topology and optimization level —
 * with no blocking or composition. The result's `physical` circuit is
 * the routed pre-blocking circuit; for the non-Geyser techniques this
 * matches the corresponding full compile (stats filled, no final
 * whole-result verification). The fleet re-binder uses this to obtain a
 * sweep member's routed structure and angles cheaply before re-binding
 * them against a cached composed skeleton.
 */
CompileResult transpileForTechnique(Technique technique,
                                    const Circuit &logical,
                                    const PipelineOptions &options = {});

/**
 * Project a distribution over the physical atoms down to the logical
 * qubits through the final layout (unused atoms are marginalized out).
 */
Distribution projectToLogical(const Distribution &physical,
                              const std::vector<Qubit> &final_layout,
                              int num_logical, int num_atoms);

/**
 * TVD between the ideal output of the original program and the noisy
 * output of the compiled circuit (paper Figs 15-18).
 */
double evaluateTvd(const CompileResult &result, const NoiseModel &noise,
                   const TrajectoryConfig &config = {});

/**
 * TVD between the ideal outputs of the compiled circuit and the
 * original program — the paper's Sec 6 fidelity sanity check
 * (should be < 1e-2 for Geyser circuits).
 */
double idealTvd(const CompileResult &result);

}  // namespace geyser

#endif  // GEYSER_GEYSER_PIPELINE_HPP
