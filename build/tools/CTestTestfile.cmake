# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(geyserc_benchmark_compile "/root/repo/build/tools/geyserc" "--benchmark" "qaoa-5" "--quiet" "--output" "/dev/null")
set_tests_properties(geyserc_benchmark_compile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(geyserc_text_format "/root/repo/build/tools/geyserc" "--benchmark" "adder-4" "--technique" "optimap" "--format" "text" "--quiet" "--output" "/dev/null")
set_tests_properties(geyserc_text_format PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(geyserc_rejects_bad_args "/root/repo/build/tools/geyserc" "--bogus")
set_tests_properties(geyserc_rejects_bad_args PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(geyserc_rejects_missing_file "/root/repo/build/tools/geyserc" "/nonexistent.qasm")
set_tests_properties(geyserc_rejects_missing_file PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
