file(REMOVE_RECURSE
  "CMakeFiles/geyserc.dir/geyserc.cpp.o"
  "CMakeFiles/geyserc.dir/geyserc.cpp.o.d"
  "geyserc"
  "geyserc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geyserc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
