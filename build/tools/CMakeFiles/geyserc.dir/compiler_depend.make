# Empty compiler generated dependencies file for geyserc.
# This may be replaced when dependencies are built.
