# Empty dependencies file for adder_fidelity.
# This may be replaced when dependencies are built.
