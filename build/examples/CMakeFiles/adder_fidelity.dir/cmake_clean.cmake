file(REMOVE_RECURSE
  "CMakeFiles/adder_fidelity.dir/adder_fidelity.cpp.o"
  "CMakeFiles/adder_fidelity.dir/adder_fidelity.cpp.o.d"
  "adder_fidelity"
  "adder_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adder_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
