file(REMOVE_RECURSE
  "CMakeFiles/pulse_schedule.dir/pulse_schedule.cpp.o"
  "CMakeFiles/pulse_schedule.dir/pulse_schedule.cpp.o.d"
  "pulse_schedule"
  "pulse_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pulse_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
