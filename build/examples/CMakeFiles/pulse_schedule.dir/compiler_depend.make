# Empty compiler generated dependencies file for pulse_schedule.
# This may be replaced when dependencies are built.
