file(REMOVE_RECURSE
  "CMakeFiles/export_qasm.dir/export_qasm.cpp.o"
  "CMakeFiles/export_qasm.dir/export_qasm.cpp.o.d"
  "export_qasm"
  "export_qasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_qasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
