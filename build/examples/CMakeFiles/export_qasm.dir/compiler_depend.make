# Empty compiler generated dependencies file for export_qasm.
# This may be replaced when dependencies are built.
