file(REMOVE_RECURSE
  "CMakeFiles/atom_loss_refill.dir/atom_loss_refill.cpp.o"
  "CMakeFiles/atom_loss_refill.dir/atom_loss_refill.cpp.o.d"
  "atom_loss_refill"
  "atom_loss_refill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atom_loss_refill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
