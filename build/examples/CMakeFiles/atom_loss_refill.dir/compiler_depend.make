# Empty compiler generated dependencies file for atom_loss_refill.
# This may be replaced when dependencies are built.
