# Empty compiler generated dependencies file for heisenberg_dynamics.
# This may be replaced when dependencies are built.
