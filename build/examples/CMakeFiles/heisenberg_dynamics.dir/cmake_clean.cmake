file(REMOVE_RECURSE
  "CMakeFiles/heisenberg_dynamics.dir/heisenberg_dynamics.cpp.o"
  "CMakeFiles/heisenberg_dynamics.dir/heisenberg_dynamics.cpp.o.d"
  "heisenberg_dynamics"
  "heisenberg_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heisenberg_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
