# Empty compiler generated dependencies file for vqe_optimize.
# This may be replaced when dependencies are built.
