file(REMOVE_RECURSE
  "CMakeFiles/vqe_optimize.dir/vqe_optimize.cpp.o"
  "CMakeFiles/vqe_optimize.dir/vqe_optimize.cpp.o.d"
  "vqe_optimize"
  "vqe_optimize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqe_optimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
