file(REMOVE_RECURSE
  "CMakeFiles/bench_fidelity_check.dir/bench_fidelity_check.cpp.o"
  "CMakeFiles/bench_fidelity_check.dir/bench_fidelity_check.cpp.o.d"
  "bench_fidelity_check"
  "bench_fidelity_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fidelity_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
