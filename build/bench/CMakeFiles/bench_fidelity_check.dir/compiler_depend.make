# Empty compiler generated dependencies file for bench_fidelity_check.
# This may be replaced when dependencies are built.
