# Empty dependencies file for bench_fig18_sc_noise_sweep.
# This may be replaced when dependencies are built.
