file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_sc_noise_sweep.dir/bench_fig18_sc_noise_sweep.cpp.o"
  "CMakeFiles/bench_fig18_sc_noise_sweep.dir/bench_fig18_sc_noise_sweep.cpp.o.d"
  "bench_fig18_sc_noise_sweep"
  "bench_fig18_sc_noise_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_sc_noise_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
