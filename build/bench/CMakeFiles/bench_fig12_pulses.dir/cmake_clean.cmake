file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_pulses.dir/bench_fig12_pulses.cpp.o"
  "CMakeFiles/bench_fig12_pulses.dir/bench_fig12_pulses.cpp.o.d"
  "bench_fig12_pulses"
  "bench_fig12_pulses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_pulses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
