# Empty compiler generated dependencies file for bench_fig12_pulses.
# This may be replaced when dependencies are built.
