# Empty compiler generated dependencies file for bench_ablation_atomloss.
# This may be replaced when dependencies are built.
