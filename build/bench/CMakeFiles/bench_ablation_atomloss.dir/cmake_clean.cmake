file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_atomloss.dir/bench_ablation_atomloss.cpp.o"
  "CMakeFiles/bench_ablation_atomloss.dir/bench_ablation_atomloss.cpp.o.d"
  "bench_ablation_atomloss"
  "bench_ablation_atomloss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_atomloss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
