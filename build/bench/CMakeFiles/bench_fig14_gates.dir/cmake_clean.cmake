file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_gates.dir/bench_fig14_gates.cpp.o"
  "CMakeFiles/bench_fig14_gates.dir/bench_fig14_gates.cpp.o.d"
  "bench_fig14_gates"
  "bench_fig14_gates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_gates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
