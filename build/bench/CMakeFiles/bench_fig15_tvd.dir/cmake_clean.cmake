file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_tvd.dir/bench_fig15_tvd.cpp.o"
  "CMakeFiles/bench_fig15_tvd.dir/bench_fig15_tvd.cpp.o.d"
  "bench_fig15_tvd"
  "bench_fig15_tvd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_tvd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
