# Empty dependencies file for bench_fig15_tvd.
# This may be replaced when dependencies are built.
