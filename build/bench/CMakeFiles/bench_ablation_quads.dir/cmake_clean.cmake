file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_quads.dir/bench_ablation_quads.cpp.o"
  "CMakeFiles/bench_ablation_quads.dir/bench_ablation_quads.cpp.o.d"
  "bench_ablation_quads"
  "bench_ablation_quads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_quads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
