# Empty compiler generated dependencies file for bench_ablation_quads.
# This may be replaced when dependencies are built.
