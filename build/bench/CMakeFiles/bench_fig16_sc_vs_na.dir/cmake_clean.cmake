file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_sc_vs_na.dir/bench_fig16_sc_vs_na.cpp.o"
  "CMakeFiles/bench_fig16_sc_vs_na.dir/bench_fig16_sc_vs_na.cpp.o.d"
  "bench_fig16_sc_vs_na"
  "bench_fig16_sc_vs_na.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_sc_vs_na.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
