# Empty compiler generated dependencies file for bench_fig16_sc_vs_na.
# This may be replaced when dependencies are built.
