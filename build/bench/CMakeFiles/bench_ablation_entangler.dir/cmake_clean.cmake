file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_entangler.dir/bench_ablation_entangler.cpp.o"
  "CMakeFiles/bench_ablation_entangler.dir/bench_ablation_entangler.cpp.o.d"
  "bench_ablation_entangler"
  "bench_ablation_entangler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_entangler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
