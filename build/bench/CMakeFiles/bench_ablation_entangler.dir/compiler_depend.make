# Empty compiler generated dependencies file for bench_ablation_entangler.
# This may be replaced when dependencies are built.
