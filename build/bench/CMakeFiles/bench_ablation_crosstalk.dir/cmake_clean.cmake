file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_crosstalk.dir/bench_ablation_crosstalk.cpp.o"
  "CMakeFiles/bench_ablation_crosstalk.dir/bench_ablation_crosstalk.cpp.o.d"
  "bench_ablation_crosstalk"
  "bench_ablation_crosstalk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_crosstalk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
