# Empty dependencies file for bench_fig17_noise_sweep.
# This may be replaced when dependencies are built.
