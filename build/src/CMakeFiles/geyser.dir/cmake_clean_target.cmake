file(REMOVE_RECURSE
  "libgeyser.a"
)
