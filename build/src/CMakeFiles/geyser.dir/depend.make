# Empty dependencies file for geyser.
# This may be replaced when dependencies are built.
