
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/adder.cpp" "src/CMakeFiles/geyser.dir/algos/adder.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/algos/adder.cpp.o.d"
  "/root/repo/src/algos/advantage.cpp" "src/CMakeFiles/geyser.dir/algos/advantage.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/algos/advantage.cpp.o.d"
  "/root/repo/src/algos/extra.cpp" "src/CMakeFiles/geyser.dir/algos/extra.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/algos/extra.cpp.o.d"
  "/root/repo/src/algos/heisenberg.cpp" "src/CMakeFiles/geyser.dir/algos/heisenberg.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/algos/heisenberg.cpp.o.d"
  "/root/repo/src/algos/multiplier.cpp" "src/CMakeFiles/geyser.dir/algos/multiplier.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/algos/multiplier.cpp.o.d"
  "/root/repo/src/algos/qaoa.cpp" "src/CMakeFiles/geyser.dir/algos/qaoa.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/algos/qaoa.cpp.o.d"
  "/root/repo/src/algos/qft.cpp" "src/CMakeFiles/geyser.dir/algos/qft.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/algos/qft.cpp.o.d"
  "/root/repo/src/algos/suite.cpp" "src/CMakeFiles/geyser.dir/algos/suite.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/algos/suite.cpp.o.d"
  "/root/repo/src/algos/vqe.cpp" "src/CMakeFiles/geyser.dir/algos/vqe.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/algos/vqe.cpp.o.d"
  "/root/repo/src/blocking/block.cpp" "src/CMakeFiles/geyser.dir/blocking/block.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/blocking/block.cpp.o.d"
  "/root/repo/src/blocking/blocker.cpp" "src/CMakeFiles/geyser.dir/blocking/blocker.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/blocking/blocker.cpp.o.d"
  "/root/repo/src/circuit/circuit.cpp" "src/CMakeFiles/geyser.dir/circuit/circuit.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/circuit/circuit.cpp.o.d"
  "/root/repo/src/circuit/draw.cpp" "src/CMakeFiles/geyser.dir/circuit/draw.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/circuit/draw.cpp.o.d"
  "/root/repo/src/circuit/gate.cpp" "src/CMakeFiles/geyser.dir/circuit/gate.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/circuit/gate.cpp.o.d"
  "/root/repo/src/circuit/schedule.cpp" "src/CMakeFiles/geyser.dir/circuit/schedule.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/circuit/schedule.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/geyser.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/CMakeFiles/geyser.dir/common/thread_pool.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/common/thread_pool.cpp.o.d"
  "/root/repo/src/compose/ansatz.cpp" "src/CMakeFiles/geyser.dir/compose/ansatz.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/compose/ansatz.cpp.o.d"
  "/root/repo/src/compose/composer.cpp" "src/CMakeFiles/geyser.dir/compose/composer.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/compose/composer.cpp.o.d"
  "/root/repo/src/geyser/pipeline.cpp" "src/CMakeFiles/geyser.dir/geyser/pipeline.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/geyser/pipeline.cpp.o.d"
  "/root/repo/src/io/qasm_parser.cpp" "src/CMakeFiles/geyser.dir/io/qasm_parser.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/io/qasm_parser.cpp.o.d"
  "/root/repo/src/io/serialize.cpp" "src/CMakeFiles/geyser.dir/io/serialize.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/io/serialize.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "src/CMakeFiles/geyser.dir/linalg/matrix.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/linalg/matrix.cpp.o.d"
  "/root/repo/src/metrics/fidelity_model.cpp" "src/CMakeFiles/geyser.dir/metrics/fidelity_model.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/metrics/fidelity_model.cpp.o.d"
  "/root/repo/src/metrics/metrics.cpp" "src/CMakeFiles/geyser.dir/metrics/metrics.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/metrics/metrics.cpp.o.d"
  "/root/repo/src/metrics/observable.cpp" "src/CMakeFiles/geyser.dir/metrics/observable.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/metrics/observable.cpp.o.d"
  "/root/repo/src/opt/dual_annealing.cpp" "src/CMakeFiles/geyser.dir/opt/dual_annealing.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/opt/dual_annealing.cpp.o.d"
  "/root/repo/src/opt/nelder_mead.cpp" "src/CMakeFiles/geyser.dir/opt/nelder_mead.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/opt/nelder_mead.cpp.o.d"
  "/root/repo/src/pulse/pulse.cpp" "src/CMakeFiles/geyser.dir/pulse/pulse.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/pulse/pulse.cpp.o.d"
  "/root/repo/src/sim/density_matrix.cpp" "src/CMakeFiles/geyser.dir/sim/density_matrix.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/sim/density_matrix.cpp.o.d"
  "/root/repo/src/sim/noise.cpp" "src/CMakeFiles/geyser.dir/sim/noise.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/sim/noise.cpp.o.d"
  "/root/repo/src/sim/statevector.cpp" "src/CMakeFiles/geyser.dir/sim/statevector.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/sim/statevector.cpp.o.d"
  "/root/repo/src/sim/trajectory.cpp" "src/CMakeFiles/geyser.dir/sim/trajectory.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/sim/trajectory.cpp.o.d"
  "/root/repo/src/sim/unitary_sim.cpp" "src/CMakeFiles/geyser.dir/sim/unitary_sim.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/sim/unitary_sim.cpp.o.d"
  "/root/repo/src/topology/rearrange.cpp" "src/CMakeFiles/geyser.dir/topology/rearrange.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/topology/rearrange.cpp.o.d"
  "/root/repo/src/topology/topology.cpp" "src/CMakeFiles/geyser.dir/topology/topology.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/topology/topology.cpp.o.d"
  "/root/repo/src/transpile/basis.cpp" "src/CMakeFiles/geyser.dir/transpile/basis.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/transpile/basis.cpp.o.d"
  "/root/repo/src/transpile/passes.cpp" "src/CMakeFiles/geyser.dir/transpile/passes.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/transpile/passes.cpp.o.d"
  "/root/repo/src/transpile/router.cpp" "src/CMakeFiles/geyser.dir/transpile/router.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/transpile/router.cpp.o.d"
  "/root/repo/src/transpile/sabre.cpp" "src/CMakeFiles/geyser.dir/transpile/sabre.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/transpile/sabre.cpp.o.d"
  "/root/repo/src/transpile/zyz.cpp" "src/CMakeFiles/geyser.dir/transpile/zyz.cpp.o" "gcc" "src/CMakeFiles/geyser.dir/transpile/zyz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
