
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_algos.cpp" "tests/CMakeFiles/geyser_tests.dir/test_algos.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_algos.cpp.o.d"
  "/root/repo/tests/test_ansatz.cpp" "tests/CMakeFiles/geyser_tests.dir/test_ansatz.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_ansatz.cpp.o.d"
  "/root/repo/tests/test_ansatz4.cpp" "tests/CMakeFiles/geyser_tests.dir/test_ansatz4.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_ansatz4.cpp.o.d"
  "/root/repo/tests/test_atomloss.cpp" "tests/CMakeFiles/geyser_tests.dir/test_atomloss.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_atomloss.cpp.o.d"
  "/root/repo/tests/test_basis.cpp" "tests/CMakeFiles/geyser_tests.dir/test_basis.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_basis.cpp.o.d"
  "/root/repo/tests/test_blocking.cpp" "tests/CMakeFiles/geyser_tests.dir/test_blocking.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_blocking.cpp.o.d"
  "/root/repo/tests/test_circuit.cpp" "tests/CMakeFiles/geyser_tests.dir/test_circuit.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_circuit.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/geyser_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_compose_extended.cpp" "tests/CMakeFiles/geyser_tests.dir/test_compose_extended.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_compose_extended.cpp.o.d"
  "/root/repo/tests/test_composer.cpp" "tests/CMakeFiles/geyser_tests.dir/test_composer.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_composer.cpp.o.d"
  "/root/repo/tests/test_crossmodule.cpp" "tests/CMakeFiles/geyser_tests.dir/test_crossmodule.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_crossmodule.cpp.o.d"
  "/root/repo/tests/test_crosstalk.cpp" "tests/CMakeFiles/geyser_tests.dir/test_crosstalk.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_crosstalk.cpp.o.d"
  "/root/repo/tests/test_density_matrix.cpp" "tests/CMakeFiles/geyser_tests.dir/test_density_matrix.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_density_matrix.cpp.o.d"
  "/root/repo/tests/test_draw.cpp" "tests/CMakeFiles/geyser_tests.dir/test_draw.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_draw.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/geyser_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_extra_algos.cpp" "tests/CMakeFiles/geyser_tests.dir/test_extra_algos.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_extra_algos.cpp.o.d"
  "/root/repo/tests/test_fidelity_model.cpp" "tests/CMakeFiles/geyser_tests.dir/test_fidelity_model.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_fidelity_model.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/geyser_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_gate.cpp" "tests/CMakeFiles/geyser_tests.dir/test_gate.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_gate.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/geyser_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/geyser_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_layout.cpp" "tests/CMakeFiles/geyser_tests.dir/test_layout.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_layout.cpp.o.d"
  "/root/repo/tests/test_linalg.cpp" "tests/CMakeFiles/geyser_tests.dir/test_linalg.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_linalg.cpp.o.d"
  "/root/repo/tests/test_noise.cpp" "tests/CMakeFiles/geyser_tests.dir/test_noise.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_noise.cpp.o.d"
  "/root/repo/tests/test_observable.cpp" "tests/CMakeFiles/geyser_tests.dir/test_observable.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_observable.cpp.o.d"
  "/root/repo/tests/test_opt.cpp" "tests/CMakeFiles/geyser_tests.dir/test_opt.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_opt.cpp.o.d"
  "/root/repo/tests/test_passes.cpp" "tests/CMakeFiles/geyser_tests.dir/test_passes.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_passes.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/geyser_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_pulse.cpp" "tests/CMakeFiles/geyser_tests.dir/test_pulse.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_pulse.cpp.o.d"
  "/root/repo/tests/test_qasm_parser.cpp" "tests/CMakeFiles/geyser_tests.dir/test_qasm_parser.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_qasm_parser.cpp.o.d"
  "/root/repo/tests/test_rearrange.cpp" "tests/CMakeFiles/geyser_tests.dir/test_rearrange.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_rearrange.cpp.o.d"
  "/root/repo/tests/test_router.cpp" "tests/CMakeFiles/geyser_tests.dir/test_router.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_router.cpp.o.d"
  "/root/repo/tests/test_sabre.cpp" "tests/CMakeFiles/geyser_tests.dir/test_sabre.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_sabre.cpp.o.d"
  "/root/repo/tests/test_schedule.cpp" "tests/CMakeFiles/geyser_tests.dir/test_schedule.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_schedule.cpp.o.d"
  "/root/repo/tests/test_statevector.cpp" "tests/CMakeFiles/geyser_tests.dir/test_statevector.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_statevector.cpp.o.d"
  "/root/repo/tests/test_suite_properties.cpp" "tests/CMakeFiles/geyser_tests.dir/test_suite_properties.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_suite_properties.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/geyser_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_zyz.cpp" "tests/CMakeFiles/geyser_tests.dir/test_zyz.cpp.o" "gcc" "tests/CMakeFiles/geyser_tests.dir/test_zyz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/geyser.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
