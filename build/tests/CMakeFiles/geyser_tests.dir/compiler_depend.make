# Empty compiler generated dependencies file for geyser_tests.
# This may be replaced when dependencies are built.
