/**
 * @file
 * Routing ablation: trivial-layout shortest-path walking vs greedy
 * initial layout vs SABRE lookahead, on the benchmark suite. Reports
 * inserted SWAPs and resulting total pulses (each SWAP costs 3 CZ +
 * 6 U3 before fusion).
 */
#include <cstdio>

#include "common.hpp"
#include "transpile/basis.hpp"
#include "transpile/passes.hpp"
#include "transpile/sabre.hpp"

using namespace geyser;
using namespace geyser::bench;

int
main()
{
    std::printf("Ablation: router quality (swaps / optimized pulses)\n\n");
    const std::vector<int> widths{14, 16, 16, 16};
    printRow({"Benchmark", "Trivial+walk", "Greedy+walk", "Greedy+SABRE"},
             widths);
    printRule(widths);
    for (const auto &spec : benchmarkSuite()) {
        if (spec.heavy)
            continue;
        const Circuit logical = spec.make();
        const Topology topo = Topology::forQubits(logical.numQubits());
        Circuit phys = decomposeToBasis(logical);
        optimize(phys);

        auto finish = [&](RoutedCircuit routed) {
            optimize(routed.circuit);
            return std::make_pair(routed.swapsInserted,
                                  routed.circuit.totalPulses());
        };
        const auto a = finish(route(phys, topo));
        const auto b = finish(route(phys, topo,
                                    chooseInitialLayout(phys, topo)));
        const auto c = finish(routeSabre(phys, topo));
        auto cell = [](const std::pair<int, long> &r) {
            return fmtLong(r.first) + " / " + fmtLong(r.second);
        };
        printRow({spec.name, cell(a), cell(b), cell(c)}, widths);
    }
    std::printf("\nExpected: the greedy layout removes most SWAPs on small\n"
                "benchmarks; SABRE matches or beats the walker when SWAPs\n"
                "remain (congested wide circuits).\n");
    return 0;
}
