/**
 * @file
 * Reproduces paper Fig 14(a,b,c): U3 / CZ / CCZ gate counts under
 * Baseline, OptiMap, and Geyser. Baseline and OptiMap must have zero
 * CCZ gates; Geyser introduces them through composition.
 */
#include <cstdio>

#include "common.hpp"

using namespace geyser;
using namespace geyser::bench;

int
main()
{
    std::printf("Fig 14: gate counts by technique "
                "(U3 / CZ / CCZ per cell)\n\n");
    const std::vector<int> widths{14, 16, 16, 16};
    printRow({"Benchmark", "Baseline", "OptiMap", "Geyser"}, widths);
    printRule(widths);
    auto cell = [](const CircuitStats &s) {
        return fmtLong(s.u3Count) + "/" + fmtLong(s.czCount) + "/" +
               fmtLong(s.cczCount);
    };
    for (const auto &spec : benchmarkSuite()) {
        const auto base = compileCached(spec, Technique::Baseline).stats;
        const auto opti = compileCached(spec, Technique::OptiMap).stats;
        const auto gey = compileCached(spec, Technique::Geyser).stats;
        printRow({spec.name, cell(base), cell(opti), cell(gey)}, widths);
    }
    std::printf("\nExpected shape (paper Fig 14): CCZ = 0 for Baseline and\n"
                "OptiMap on every row; Geyser trades U3+CZ for a few CCZ\n"
                "where blocks are long enough to compose.\n");
    return 0;
}
