/**
 * @file
 * Reproduces paper Fig 16: TVD of circuits compiled for a
 * superconducting square-grid architecture (no CCZ support) versus
 * Geyser on neutral atoms, with identical operation error rates.
 */
#include <cstdio>

#include "common.hpp"

using namespace geyser;
using namespace geyser::bench;

int
main(int argc, char **argv)
{
    // --channel <name>[=<rate>] compares the architectures under a
    // single-channel ablation instead of the paper model.
    const ChannelFlag channel = parseChannelFlag(argc, argv);
    std::printf("Fig 16%s%s: superconducting vs Geyser-on-neutral-atoms "
                "TVD%s\n\n",
                channel.set ? " ablation " : "",
                channel.set ? noiseChannelName(channel.id) : "",
                channel.set ? "" : ", noise = 0.1%");
    const std::vector<int> widths{14, 16, 14, 14};
    printRow({"Benchmark", "Superconducting", "Geyser (NA)", "NA vs SC"},
             widths);
    printRule(widths);
    const NoiseModel nm =
        channel.set ? channel.model() : NoiseModel::paperDefault();
    for (const auto &spec : tvdSuite()) {
        const auto cfg = trajectoryConfig(2000 + spec.numQubits);
        const double sc = evaluateTvd(
            compileCached(spec, Technique::Superconducting), nm, cfg);
        const double gey =
            evaluateTvd(compileCached(spec, Technique::Geyser), nm, cfg);
        printRow({spec.name, fmtTvd(sc), fmtTvd(gey),
                  sc > 0 ? "-" + fmtPct((sc - gey) / sc) : "n/a"},
                 widths);
    }
    std::printf("\nExpected shape (paper): neutral atoms win on every row\n"
                "because block composition is impossible without native\n"
                "multi-qubit gates.\n");
    return 0;
}
