/**
 * @file
 * Ablation of the paper's Sec 3.2 topology choice: triangular versus
 * diagonal-coupled square lattices. Reports the restriction-zone sizes
 * (Fig 7's argument) and the blocking consequences (rounds and depth
 * pulses) of running the same circuits on both.
 */
#include <cstdio>

#include "blocking/blocker.hpp"
#include "circuit/schedule.hpp"
#include "common.hpp"
#include "transpile/basis.hpp"
#include "transpile/passes.hpp"
#include "transpile/router.hpp"

using namespace geyser;
using namespace geyser::bench;

namespace {

struct TopoResult
{
    int rounds = 0;
    int blocks = 0;
    long depth = 0;
};

TopoResult
blockOn(const Circuit &logical, const Topology &topo)
{
    Circuit phys = decomposeToBasis(logical);
    optimize(phys);
    const Circuit routed = route(phys, topo).circuit;
    const auto blocked = blockCircuit(routed, topo);
    TopoResult r;
    r.rounds = static_cast<int>(blocked.rounds.size());
    r.blocks = blocked.blockCount();
    r.depth = depthPulses(routed, topo);
    return r;
}

}  // namespace

int
main()
{
    std::printf("Ablation (Sec 3.2): triangular vs diagonal-square "
                "topology\n\n");
    std::printf("Restriction zones (paper Fig 4/7):\n");
    const auto tri = Topology::makeTriangular(6, 6);
    const auto sq = Topology::makeSquare(6, 6, true);
    std::printf("  triangular: 2q op restricts %d, 3q op restricts %d\n",
                tri.maxEdgeRestriction(), tri.maxTriangleRestriction());
    std::printf("  square-diag: 2q op restricts %d, 3q op restricts %d\n\n",
                sq.maxEdgeRestriction(), sq.maxTriangleRestriction());

    const std::vector<int> widths{14, 20, 20};
    printRow({"Benchmark", "Triangular (r/b/d)", "SquareDiag (r/b/d)"},
             widths);
    printRule(widths);
    for (const auto &spec : benchmarkSuite()) {
        if (spec.heavy)
            continue;
        const Circuit logical = spec.make();
        const int n = logical.numQubits();
        const int cols = std::max(2, static_cast<int>(
            std::ceil(std::sqrt(static_cast<double>(n)))));
        const int rows = std::max(2, (n + cols - 1) / cols);
        const auto a = blockOn(logical, Topology::makeTriangular(rows, cols));
        const auto b = blockOn(logical, Topology::makeSquare(rows, cols,
                                                             true));
        printRow({spec.name,
                  fmtLong(a.rounds) + "/" + fmtLong(a.blocks) + "/" +
                      fmtLong(a.depth),
                  fmtLong(b.rounds) + "/" + fmtLong(b.blocks) + "/" +
                      fmtLong(b.depth)},
                 widths);
    }
    std::printf("\n(r/b/d = blocking rounds / blocks / restriction-aware\n"
                "depth pulses.) Two opposing effects: the diagonal square\n"
                "grid restricts more atoms per Rydberg op (12 vs 8/9,\n"
                "the paper's Fig 7 argument) but its denser connectivity\n"
                "(8 vs 6 neighbours) routes with fewer SWAPs. At these\n"
                "sizes routing often wins on raw depth; the triangular\n"
                "choice is driven by the 4x easier 3-qubit composition\n"
                "and equidistant neighbours (Sec 3.2), not depth alone.\n");
    return 0;
}
