/**
 * @file
 * Reproduces the paper's Sec 6 scalability discussion with
 * google-benchmark timings: mapping is ~linear in the operation count,
 * blocking is at worst quadratic, and composition is linear in the
 * number of blocks (and embarrassingly parallel).
 */
#include <benchmark/benchmark.h>

#include "algos/algos.hpp"
#include "blocking/blocker.hpp"
#include "geyser/pipeline.hpp"
#include "transpile/basis.hpp"
#include "transpile/passes.hpp"
#include "transpile/router.hpp"

using namespace geyser;

namespace {

Circuit
workload(int qubits)
{
    return qftBenchmark(qubits);
}

void
BM_Mapping(benchmark::State &state)
{
    const Circuit logical = workload(static_cast<int>(state.range(0)));
    const Topology topo = Topology::forQubits(logical.numQubits());
    for (auto _ : state) {
        Circuit phys = decomposeToBasis(logical);
        optimize(phys);
        benchmark::DoNotOptimize(route(phys, topo));
    }
    state.SetComplexityN(static_cast<int64_t>(
        decomposeToBasis(logical).size()));
}

void
BM_Blocking(benchmark::State &state)
{
    const Circuit logical = workload(static_cast<int>(state.range(0)));
    const Topology topo = Topology::forQubits(logical.numQubits());
    Circuit phys = decomposeToBasis(logical);
    optimize(phys);
    const Circuit routed = route(phys, topo).circuit;
    for (auto _ : state)
        benchmark::DoNotOptimize(blockCircuit(routed, topo));
    state.SetComplexityN(static_cast<int64_t>(routed.size()));
}

void
BM_Composition(benchmark::State &state)
{
    const Circuit logical = workload(static_cast<int>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(compileGeyser(logical));
}

void
BM_FullGeyserPipeline(benchmark::State &state)
{
    const Circuit logical =
        heisenbergBenchmark(static_cast<int>(state.range(0)), 4, 0.1);
    for (auto _ : state)
        benchmark::DoNotOptimize(compileGeyser(logical));
}

}  // namespace

BENCHMARK(BM_Mapping)->Arg(4)->Arg(6)->Arg(8)->Arg(10)
    ->Unit(benchmark::kMillisecond)->Complexity();
BENCHMARK(BM_Blocking)->Arg(4)->Arg(6)->Arg(8)->Arg(10)
    ->Unit(benchmark::kMillisecond)->Complexity();
BENCHMARK(BM_Composition)->Arg(4)->Arg(5)->Arg(6)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK(BM_FullGeyserPipeline)->Arg(6)->Arg(9)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

BENCHMARK_MAIN();
