/**
 * @file
 * bench_fleet — warm-cache fleet throughput floor: compiles a VQE
 * parameter sweep (same skeleton, per-seed angles) through the fleet
 * front end twice against a fresh persistent cache — once cold (builds
 * and stores the skeleton plan) and once warm (loads the plan and
 * re-binds every member) — and compares the warm sweep's wall time
 * against a full per-member recompilation baseline measured on a
 * sample.
 *
 * Assertions (exit 1 on violation):
 *   - warm sweep wall x GEYSER_FLEET_SPEEDUP_FLOOR (default 5) must not
 *     exceed the extrapolated cold full-recompilation wall;
 *   - warm skeleton-reuse ratio > 0.9;
 *   - zero verify failures on both passes (re-bound members are checked
 *     against from-scratch compiles inside the fleet engine);
 *   - zero corrupt cache entries.
 *
 * GEYSER_FLEET_MEMBERS (default 1000) sets the sweep size.
 */
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "algos/algos.hpp"
#include "cache/result_cache.hpp"
#include "common.hpp"
#include "common/env.hpp"
#include "fleet/fleet.hpp"
#include "obs/json.hpp"

using namespace geyser;

namespace {

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

}  // namespace

int
main(int argc, char **argv)
{
    bench::ReportSession session(argc, argv, "bench_fleet");

    const int members = static_cast<int>(
        env::envInt("GEYSER_FLEET_MEMBERS", 1000, 1, 1'000'000));
    const double floor =
        env::envDouble("GEYSER_FLEET_SPEEDUP_FLOOR", 5.0, 0.0, 1e6);

    std::vector<fleet::FleetJob> jobs;
    jobs.reserve(static_cast<size_t>(members));
    for (int seed = 0; seed < members; ++seed) {
        fleet::FleetJob job;
        job.name = "vqe4x1-s" + std::to_string(seed);
        job.logical = vqeBenchmark(4, 1, static_cast<uint64_t>(seed));
        jobs.push_back(std::move(job));
    }

    // Cold full-recompilation baseline: a sample of members compiled
    // from scratch (no cache, so every one pays its own composition
    // search), extrapolated to the sweep size.
    const int sample = members < 5 ? members : 5;
    double sampleMs = 0.0;
    for (int i = 0; i < sample; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        const CompileResult result =
            compile(Technique::Geyser, jobs[static_cast<size_t>(i)].logical);
        sampleMs += msSince(t0);
        if (result.stats.totalPulses <= 0) {
            std::fprintf(stderr, "bench_fleet: empty baseline compile\n");
            return 1;
        }
    }
    const double coldPerMemberMs = sampleMs / sample;
    const double coldEstimateMs = coldPerMemberMs * members;

    // Fresh cache: the cold fleet pass builds + stores the skeleton
    // plan, the warm pass must serve every member off it.
    std::string dir = "/tmp/geyser_fleet_bench_XXXXXX";
    if (::mkdtemp(dir.data()) == nullptr) {
        std::fprintf(stderr, "bench_fleet: mkdtemp failed\n");
        return 1;
    }
    cache::CacheConfig cacheConfig;
    cacheConfig.dir = dir;
    cache::ResultCache cacheCold(cacheConfig);

    fleet::FleetOptions options;
    options.pipeline.cache = &cacheCold;
    const fleet::FleetReport cold = fleet::compileFleet(jobs, options);

    cache::ResultCache cacheWarm(cacheConfig);
    options.pipeline.cache = &cacheWarm;
    const fleet::FleetReport warm = fleet::compileFleet(jobs, options);

    const double speedup =
        warm.wallMs > 0.0 ? coldEstimateMs / warm.wallMs : 0.0;
    std::printf("fleet sweep: %d members (vqe 4x1, per-seed angles)\n",
                members);
    std::printf("  cold full recompilation: %.1f ms/member -> %.0f ms "
                "(extrapolated from %d)\n",
                coldPerMemberMs, coldEstimateMs, sample);
    std::printf("  cold fleet pass: %.0f ms (%ld rebound, %ld fallback, "
                "%ld plan stores)\n",
                cold.wallMs, cold.rebound, cold.fallback, cold.planStores);
    std::printf("  warm fleet pass: %.0f ms (%ld rebound, %ld plan hits, "
                "reuse %.3f)\n",
                warm.wallMs, warm.rebound, warm.planHits,
                warm.reuseRatio());
    std::printf("  warm speedup vs cold recompilation: %.1fx "
                "(floor %.1fx)\n",
                speedup, floor);

    obs::Json row = obs::Json::object();
    row.set("members", members);
    row.set("coldPerMemberMs", coldPerMemberMs);
    row.set("coldEstimateMs", coldEstimateMs);
    row.set("coldFleetMs", cold.wallMs);
    row.set("warmFleetMs", warm.wallMs);
    row.set("speedup", speedup);
    row.set("reuseRatio", warm.reuseRatio());
    row.set("planHits", static_cast<double>(warm.planHits));
    row.set("verifyFailures",
            static_cast<double>(cold.verifyFailures + warm.verifyFailures));
    row.set("cacheCorrupt",
            static_cast<double>(cold.cacheCorrupt + warm.cacheCorrupt));
    session.addRow(std::move(row));

    bool ok = true;
    if (cold.verifyFailures != 0 || warm.verifyFailures != 0) {
        std::fprintf(stderr, "FAIL: %ld re-bind verify failures\n",
                     cold.verifyFailures + warm.verifyFailures);
        ok = false;
    }
    if (cold.cacheCorrupt != 0 || warm.cacheCorrupt != 0) {
        std::fprintf(stderr, "FAIL: %ld corrupt cache entries\n",
                     cold.cacheCorrupt + warm.cacheCorrupt);
        ok = false;
    }
    if (warm.reuseRatio() <= 0.9) {
        std::fprintf(stderr, "FAIL: warm reuse ratio %.3f <= 0.9\n",
                     warm.reuseRatio());
        ok = false;
    }
    if (warm.planHits < 1) {
        std::fprintf(stderr, "FAIL: warm pass built its plan instead of "
                             "loading it\n");
        ok = false;
    }
    if (speedup < floor) {
        std::fprintf(stderr,
                     "FAIL: warm speedup %.1fx below the %.1fx floor\n",
                     speedup, floor);
        ok = false;
    }
    std::printf("%s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
