/**
 * @file
 * Ablation of the paper's Sec 3.4 composition optimizer: the paper's
 * dual annealing versus this repo's rotosolve exact coordinate descent
 * versus the hybrid default, on the blocks produced by real workloads.
 */
#include <chrono>
#include <cstdio>

#include "blocking/blocker.hpp"
#include "common.hpp"
#include "transpile/basis.hpp"
#include "transpile/passes.hpp"
#include "transpile/router.hpp"

using namespace geyser;
using namespace geyser::bench;

namespace {

struct Outcome
{
    int composed = 0;
    int total = 0;
    long evaluations = 0;
    double millis = 0.0;
};

Outcome
composeAll(const std::vector<Circuit> &blocks, ComposeOptimizer optimizer)
{
    Outcome out;
    ComposeOptions opts;
    opts.optimizer = optimizer;
    const auto start = std::chrono::steady_clock::now();
    for (const auto &block : blocks) {
        const auto result = composeBlock(block, opts);
        ++out.total;
        if (result.composed)
            ++out.composed;
        out.evaluations += result.evaluations;
    }
    out.millis = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    return out;
}

}  // namespace

int
main()
{
    // Collect the real composition workload: all blocks of the small
    // benchmarks after mapping + optimization + blocking.
    std::vector<Circuit> blocks;
    for (const char *name : {"adder-4", "multiplier-5", "qft-5"}) {
        const auto &spec = benchmarkByName(name);
        const Circuit logical = spec.make();
        const Topology topo = Topology::forQubits(logical.numQubits());
        Circuit phys = decomposeToBasis(logical);
        optimize(phys);
        const Circuit routed = route(phys, topo).circuit;
        const auto blocked = blockCircuit(routed, topo);
        for (const auto &round : blocked.rounds)
            for (const auto &block : round.blocks)
                blocks.push_back(blocked.localCircuit(block));
    }
    std::printf("Ablation (Sec 3.4): composition optimizer on %zu real "
                "blocks\n\n",
                blocks.size());
    const std::vector<int> widths{14, 12, 14, 12};
    printRow({"Optimizer", "Composed", "Evaluations", "Time (ms)"}, widths);
    printRule(widths);
    for (const auto &[name, opt] :
         {std::pair{"Rotosolve", ComposeOptimizer::Rotosolve},
          std::pair{"DualAnneal", ComposeOptimizer::DualAnnealing},
          std::pair{"Hybrid", ComposeOptimizer::Hybrid}}) {
        const Outcome o = composeAll(blocks, opt);
        char t[32];
        std::snprintf(t, sizeof(t), "%.0f", o.millis);
        printRow({name, fmtLong(o.composed) + "/" + fmtLong(o.total),
                  fmtLong(o.evaluations), t},
                 widths);
    }
    std::printf("\nExpected: rotosolve composes at least as many blocks as\n"
                "dual annealing at a fraction of the evaluations; Hybrid\n"
                "matches rotosolve (annealing only runs as a fallback).\n");
    return 0;
}
