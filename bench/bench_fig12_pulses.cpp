/**
 * @file
 * Reproduces paper Fig 12: total pulse counts under Baseline, OptiMap,
 * and Geyser, with the reductions relative to Baseline.
 *
 * This is the one bench that compiles the full suite under Geyser, so
 * its run report (--report) is where end-to-end composition wall times
 * (per-circuit composeMs) are tracked across kernel changes.
 */
#include <cstdio>

#include "common.hpp"

using namespace geyser;
using namespace geyser::bench;

int
main(int argc, char **argv)
{
    ReportSession session(argc, argv, "bench_fig12_pulses");
    std::printf("Fig 12: total pulses by technique\n\n");
    const std::vector<int> widths{14, 10, 10, 10, 12, 12};
    printRow({"Benchmark", "Baseline", "OptiMap", "Geyser", "Opti vs Base",
              "Gey vs Base"},
             widths);
    printRule(widths);
    double totalComposeMs = 0.0;
    for (const auto &spec : benchmarkSuite()) {
        const long base =
            compileCached(spec, Technique::Baseline).stats.totalPulses;
        const long opti =
            compileCached(spec, Technique::OptiMap).stats.totalPulses;
        const CompileResult geyser =
            compileCached(spec, Technique::Geyser);
        const long gey = geyser.stats.totalPulses;
        session.add(spec.name, geyser);
        totalComposeMs += geyser.composeMs;
        printRow({spec.name, fmtLong(base), fmtLong(opti), fmtLong(gey),
                  "-" + fmtPct(1.0 - static_cast<double>(opti) / base),
                  "-" + fmtPct(1.0 - static_cast<double>(gey) / base)},
                 widths);
    }
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", totalComposeMs);
        session.note("totalComposeMs", buf);
    }
    std::printf("\nExpected shape (paper): Geyser cuts 25%%-90%% of Baseline\n"
                "pulses and is never worse than OptiMap; gains concentrate\n"
                "in Toffoli-rich algorithms (adder/multiplier).\n");
    return 0;
}
