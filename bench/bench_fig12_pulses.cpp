/**
 * @file
 * Reproduces paper Fig 12: total pulse counts under Baseline, OptiMap,
 * and Geyser, with the reductions relative to Baseline.
 */
#include <cstdio>

#include "common.hpp"

using namespace geyser;
using namespace geyser::bench;

int
main()
{
    std::printf("Fig 12: total pulses by technique\n\n");
    const std::vector<int> widths{14, 10, 10, 10, 12, 12};
    printRow({"Benchmark", "Baseline", "OptiMap", "Geyser", "Opti vs Base",
              "Gey vs Base"},
             widths);
    printRule(widths);
    for (const auto &spec : benchmarkSuite()) {
        const long base =
            compileCached(spec, Technique::Baseline).stats.totalPulses;
        const long opti =
            compileCached(spec, Technique::OptiMap).stats.totalPulses;
        const long gey =
            compileCached(spec, Technique::Geyser).stats.totalPulses;
        printRow({spec.name, fmtLong(base), fmtLong(opti), fmtLong(gey),
                  "-" + fmtPct(1.0 - static_cast<double>(opti) / base),
                  "-" + fmtPct(1.0 - static_cast<double>(gey) / base)},
                 widths);
    }
    std::printf("\nExpected shape (paper): Geyser cuts 25%%-90%% of Baseline\n"
                "pulses and is never worse than OptiMap; gains concentrate\n"
                "in Toffoli-rich algorithms (adder/multiplier).\n");
    return 0;
}
