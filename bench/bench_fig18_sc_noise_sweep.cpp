/**
 * @file
 * Reproduces paper Fig 18: the Fig 16 superconducting-vs-neutral-atom
 * comparison at error rates 0.05% and 0.5%.
 */
#include <cstdio>

#include "common.hpp"

using namespace geyser;
using namespace geyser::bench;

int
main(int argc, char **argv)
{
    // --channel <name> sweeps the chosen channel's rate instead of the
    // paper's coupled bit/phase-flip rate.
    const ChannelFlag channel = parseChannelFlag(argc, argv);
    for (const double rate : {0.0005, 0.005}) {
        std::printf("Fig 18%s%s: SC vs Geyser-on-NA TVD, noise = %.2f%%\n\n",
                    channel.set ? " ablation " : "",
                    channel.set ? noiseChannelName(channel.id) : "",
                    rate * 100.0);
        const std::vector<int> widths{14, 16, 14};
        printRow({"Benchmark", "Superconducting", "Geyser (NA)"}, widths);
        printRule(widths);
        const NoiseModel nm =
            channel.set ? channel.modelAt(rate) : NoiseModel::withRate(rate);
        for (const auto &spec : tvdSuite()) {
            const auto cfg = trajectoryConfig(
                4000 + spec.numQubits + static_cast<uint64_t>(rate * 1e6));
            const double sc = evaluateTvd(
                compileCached(spec, Technique::Superconducting), nm, cfg);
            const double gey = evaluateTvd(
                compileCached(spec, Technique::Geyser), nm, cfg);
            printRow({spec.name, fmtTvd(sc), fmtTvd(gey)}, widths);
        }
        std::printf("\n");
    }
    std::printf("Expected shape (paper): neutral atoms keep the advantage\n"
                "at both error rates.\n");
    return 0;
}
