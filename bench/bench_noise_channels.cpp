/**
 * @file
 * Per-channel noise ablations and the legacy golden-distribution gate.
 *
 * Default mode runs the Fig 15 protocol with one channel enabled at a
 * time (at its default ablation rate), over the TVD suite and all three
 * compilation techniques, so each channel's contribution to circuit
 * infidelity is visible in isolation — the per-channel RNG streams make
 * the rows seed-comparable across ablations.
 *
 *   bench_noise_channels [--channel <name>[=<rate>]] [--json <file>]
 *   bench_noise_channels --golden <file>
 *
 * --golden replays the six pre-refactor golden configurations and
 * compares every probability bit-for-bit against the checked-in
 * capture (tests/golden/noise_legacy_golden.txt); any drift exits
 * nonzero. CI runs this on every push.
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common.hpp"
#include "sim/trajectory.hpp"
#include "topology/topology.hpp"

using namespace geyser;
using namespace geyser::bench;

namespace {

// ---- Golden gate ----------------------------------------------------

/** The probe circuits the golden capture was generated from. */
Circuit
logicalProbe()
{
    Circuit c(4);
    c.h(0);
    c.cx(0, 1);
    c.u3(2, 0.3, 0.1, 0.7);
    c.ccx(0, 1, 2);
    c.rz(3, 0.25);
    c.cz(2, 3);
    c.h(3);
    c.ccz(1, 2, 3);
    c.cx(3, 0);
    c.h(2);
    return c;
}

Circuit
physicalProbe()
{
    Circuit c(4);
    c.u3(0, 1.5707963267948966, 0.0, 3.141592653589793);
    c.cz(0, 1);
    c.u3(1, 0.4, 0.2, 0.9);
    c.ccz(0, 1, 2);
    c.u3(2, 0.8, 0.0, 0.1);
    c.cz(2, 3);
    c.u3(3, 0.6, 0.3, 0.2);
    c.ccz(1, 2, 3);
    c.u3(0, 0.2, 0.5, 0.4);
    c.cz(1, 3);
    return c;
}

bool
checkCase(const std::map<std::string, std::vector<uint64_t>> &golden,
          const std::string &name, const Distribution &got)
{
    const auto it = golden.find(name);
    if (it == golden.end()) {
        std::printf("  %-24s MISSING from golden file\n", name.c_str());
        return false;
    }
    if (it->second.size() != got.size()) {
        std::printf("  %-24s DIMENSION mismatch\n", name.c_str());
        return false;
    }
    for (size_t i = 0; i < got.size(); ++i) {
        uint64_t bits;
        std::memcpy(&bits, &got[i], sizeof bits);
        if (bits != it->second[i]) {
            std::printf("  %-24s MISMATCH at outcome %zu\n", name.c_str(),
                        i);
            return false;
        }
    }
    std::printf("  %-24s ok (%zu outcomes bit-identical)\n", name.c_str(),
                got.size());
    return true;
}

int
runGoldenGate(const std::string &path)
{
    std::ifstream in(path);
    if (!in.good()) {
        std::printf("cannot open golden file %s\n", path.c_str());
        return 1;
    }
    std::map<std::string, std::vector<uint64_t>> golden;
    std::string word;
    while (in >> word) {
        std::string name;
        size_t dim = 0;
        in >> name >> dim;
        auto &values = golden[name];
        for (size_t i = 0; i < dim; ++i) {
            std::string hex;
            in >> hex;
            values.push_back(std::stoull(hex, nullptr, 16));
        }
    }
    std::printf("Legacy golden-distribution gate (%zu cases, %s)\n\n",
                golden.size(), path.c_str());

    bool ok = true;
    {
        TrajectoryConfig cfg{64, 20260808, false, nullptr};
        ok &= checkCase(golden, "paper-default-logical",
                        noisyDistribution(logicalProbe(),
                                          NoiseModel::paperDefault(), cfg));
    }
    {
        TrajectoryConfig cfg{64, 4242, true, nullptr};
        ok &= checkCase(golden, "paper-default-physical",
                        noisyDistribution(physicalProbe(),
                                          NoiseModel::paperDefault(), cfg));
    }
    {
        TrajectoryConfig cfg{64, 31337, false, nullptr};
        NoiseModel nm = NoiseModel::paperDefault();
        nm.perPulse = true;
        ok &= checkCase(golden, "per-pulse-physical",
                        noisyDistribution(physicalProbe(), nm, cfg));
    }
    {
        TrajectoryConfig cfg{64, 77, false, nullptr};
        NoiseModel nm = NoiseModel::paperDefault();
        nm.atomLoss = 0.2;
        ok &= checkCase(golden, "atom-loss",
                        noisyDistribution(logicalProbe(), nm, cfg));
    }
    {
        const auto topo = Topology::makeTriangular(2, 2);
        TrajectoryConfig cfg{64, 99, false, &topo};
        NoiseModel nm = NoiseModel::paperDefault();
        nm.crosstalkPhase = 0.3;
        ok &= checkCase(golden, "crosstalk",
                        noisyDistribution(logicalProbe(), nm, cfg));
    }
    {
        const auto topo = Topology::makeTriangular(2, 2);
        TrajectoryConfig cfg{48, 5150, true, &topo};
        NoiseModel nm{0.002, 0.0015, true, 0.1, 0.05};
        ok &= checkCase(golden, "kitchen-sink-legacy",
                        noisyDistribution(physicalProbe(), nm, cfg));
    }
    std::printf("\n%s\n", ok ? "all cases bit-identical"
                             : "GOLDEN MISMATCH: the legacy noise model "
                               "no longer reproduces the paper numbers");
    return ok ? 0 : 1;
}

// ---- Per-channel ablation sweep -------------------------------------

const char *
flagValue(int argc, char **argv, const char *flag)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return argv[i + 1];
    return nullptr;
}

int
runAblations(int argc, char **argv)
{
    ReportSession session(argc, argv, "bench_noise_channels");
    const ChannelFlag only = parseChannelFlag(argc, argv);
    const char *jsonPath = flagValue(argc, argv, "--json");

    std::printf("Per-channel noise ablations, Fig 15 protocol "
                "(%d trajectories)\n\n",
                trajectoryConfig(0).trajectories);
    const std::vector<int> widths{18, 14, 10, 10, 10};
    printRow({"Channel", "Benchmark", "Baseline", "OptiMap", "Geyser"},
             widths);
    printRule(widths);

    obs::Json rows = obs::Json::array();
    for (size_t ci = 0; ci < kNumNoiseChannels; ++ci) {
        const auto id = static_cast<NoiseChannelId>(ci);
        if (only.set && only.id != id)
            continue;
        const double rate = only.set && only.rate >= 0.0
                                ? only.rate
                                : defaultChannelRate(id);
        const NoiseModel nm = NoiseModel::singleChannel(id, rate);
        for (const auto &spec : tvdSuite()) {
            const auto cfg =
                trajectoryConfig(7000 + spec.numQubits + 131 * ci);
            const double base = evaluateTvd(
                compileCached(spec, Technique::Baseline), nm, cfg);
            const double opti = evaluateTvd(
                compileCached(spec, Technique::OptiMap), nm, cfg);
            const double gey = evaluateTvd(
                compileCached(spec, Technique::Geyser), nm, cfg);
            printRow({noiseChannelName(id), spec.name, fmtTvd(base),
                      fmtTvd(opti), fmtTvd(gey)},
                     widths);
            obs::Json row = obs::Json::object();
            row.set("channel", noiseChannelName(id));
            row.set("rate", rate);
            row.set("benchmark", spec.name);
            row.set("baseline", base);
            row.set("optimap", opti);
            row.set("geyser", gey);
            if (session.active())
                session.addRow(row);
            rows.push(std::move(row));
        }
    }

    if (jsonPath != nullptr) {
        obs::Json out = obs::Json::object();
        out.set("bench", "noise-channels");
        out.set("trajectories", trajectoryConfig(0).trajectories);
        out.set("rows", std::move(rows));
        std::ofstream f(jsonPath);
        f << out.dump(2) << "\n";
        std::printf("\nwrote %s\n", jsonPath);
    }
    std::printf("\nExpected shape: each channel's TVD shrinks from "
                "Baseline to Geyser\n(fewer pulses, less idle time, fewer "
                "entangling gates to strike),\nexcept readout, which "
                "depends only on the final layout width.\n");
    return 0;
}

}  // namespace

int
main(int argc, char **argv)
{
    if (const char *golden = flagValue(argc, argv, "--golden"))
        return runGoldenGate(golden);
    return runAblations(argc, argv);
}
