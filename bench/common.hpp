/**
 * @file
 * Shared helpers for the per-table/per-figure bench binaries: cached
 * compilation through the persistent result cache (src/cache, shared by
 * all binaries and processes — content-addressed keys, so no cache
 * version string to hand-bump here), environment-controlled run scale,
 * and table printing.
 *
 * Environment knobs (numeric values are validated through
 * common/env.hpp — garbage, trailing junk, or out-of-range values
 * raise ValidationError naming the variable instead of degrading
 * silently):
 *   GEYSER_CACHE_DIR     cache directory (default /tmp/geyser_cache)
 *   GEYSER_NO_CACHE=1    disable the cache
 *   GEYSER_CACHE_MAX_MB  LRU size cap for the cache directory, in MB
 *                        (integer >= 0; 0 = unbounded)
 *   GEYSER_BENCH_HEAVY=1 include the >10-qubit benchmarks in TVD runs
 *   GEYSER_TRAJECTORIES  noisy-trajectory count (integer >= 1,
 *                        default 200)
 *   GEYSER_KERNEL_BENCH_SECONDS / GEYSER_KERNEL_BENCH_REPS /
 *   GEYSER_KERNEL_SPEEDUP_FLOOR
 *                        bench_compose_kernel budget, repetitions, and
 *                        per-ISA speedup assertion floor
 *   GEYSER_FLEET_MEMBERS / GEYSER_FLEET_SPEEDUP_FLOOR
 *                        bench_fleet sweep size (default 1000) and
 *                        warm-vs-cold wall-time floor (default 5.0)
 */
#ifndef GEYSER_BENCH_COMMON_HPP
#define GEYSER_BENCH_COMMON_HPP

#include <string>
#include <vector>

#include "algos/suite.hpp"
#include "geyser/pipeline.hpp"
#include "obs/report.hpp"
#include "sim/noise.hpp"

namespace geyser {
namespace bench {

/**
 * Per-binary run-report session. Parses observability flags from argv:
 *
 *   --report <file>   write a structured JSON run report on exit
 *                     (per-circuit stats + stage wall times + metrics)
 *   --trace <file>    write a Chrome trace_event JSON on exit
 *   --metrics <file>  write the JSONL event/metric log on exit
 *
 * Any of the flags enables obs collection for the whole run. Construct
 * one at the top of main(); record each compiled circuit with add().
 * The files are written when the session is destroyed.
 */
class ReportSession
{
  public:
    ReportSession(int argc, char **argv, const std::string &tool);
    ~ReportSession();

    ReportSession(const ReportSession &) = delete;
    ReportSession &operator=(const ReportSession &) = delete;

    /** True if any output was requested (collection is on). */
    bool active() const { return active_; }

    /** Record one compiled benchmark circuit. */
    void add(const std::string &circuit, const CompileResult &result);

    /** Record a free-form per-row object (microbench rows etc.). */
    void addRow(obs::Json row);

    /** Record an extra top-level config entry. */
    void note(const std::string &key, const std::string &value);

  private:
    std::string reportPath_;
    std::string tracePath_;
    std::string metricsPath_;
    bool active_ = false;
    obs::RunReport report_;
};

/** The per-circuit JSON row ReportSession::add records. */
obs::Json compileResultJson(const std::string &circuit,
                            const CompileResult &result);

/** Compile through the cross-binary cache. */
CompileResult compileCached(const BenchmarkSpec &spec, Technique technique);

/** Trajectory configuration honouring GEYSER_TRAJECTORIES. */
TrajectoryConfig trajectoryConfig(uint64_t seed);

/** True if GEYSER_BENCH_HEAVY=1. */
bool heavyEnabled();

/** Suite filtered for TVD runs (heavy rows only when enabled). */
std::vector<BenchmarkSpec> tvdSuite();

/**
 * Default operating point of each channel in ablation sweeps: the
 * legacy channel at the paper's 0.1%, the extended channels at rates
 * that produce comparable per-circuit TVD contributions.
 */
double defaultChannelRate(NoiseChannelId id);

/**
 * Parsed "--channel <name>[=<rate>]" flag shared by the TVD benches:
 * restrict the noise model to a single-channel ablation. The rate part
 * is optional and defaults to defaultChannelRate(id). Unknown names
 * throw ValidationError listing the known channels.
 */
struct ChannelFlag
{
    bool set = false;
    NoiseChannelId id = NoiseChannelId::LegacyPauli;
    /** Explicit rate from the flag; negative = use the default. */
    double rate = -1.0;

    /** Single-channel model at the flag's (or default) rate. */
    NoiseModel model() const;
    /** Single-channel model at an externally swept rate (Fig 17/18). */
    NoiseModel modelAt(double r) const;
};

ChannelFlag parseChannelFlag(int argc, char **argv);

/** Print an aligned row of columns with the given widths. */
void printRow(const std::vector<std::string> &cells,
              const std::vector<int> &widths);

/** Print a '-' rule matching the widths. */
void printRule(const std::vector<int> &widths);

/** Format helpers. */
std::string fmtLong(long value);
std::string fmtPct(double fraction);
std::string fmtTvd(double tvd);

}  // namespace bench
}  // namespace geyser

#endif  // GEYSER_BENCH_COMMON_HPP
