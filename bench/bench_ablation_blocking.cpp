/**
 * @file
 * Ablation of the paper's Sec 3.3 design decision to score blocks by
 * pulses rather than gates, plus the effect of the per-pulse noise
 * model that motivates it.
 */
#include <cstdio>

#include "blocking/blocker.hpp"
#include "common.hpp"
#include "transpile/basis.hpp"
#include "transpile/passes.hpp"
#include "transpile/router.hpp"

using namespace geyser;
using namespace geyser::bench;

int
main()
{
    std::printf("Ablation (Sec 3.3): pulse-aware vs gate-aware blocking\n\n");
    const std::vector<int> widths{14, 18, 18};
    printRow({"Benchmark", "PulseAware (r/b)", "GateAware (r/b)"}, widths);
    printRule(widths);
    for (const auto &spec : benchmarkSuite()) {
        if (spec.heavy)
            continue;
        const Circuit logical = spec.make();
        const Topology topo = Topology::forQubits(logical.numQubits());
        Circuit phys = decomposeToBasis(logical);
        optimize(phys);
        const Circuit routed = route(phys, topo).circuit;

        BlockerOptions pulse;
        pulse.pulseAware = true;
        BlockerOptions gate;
        gate.pulseAware = false;
        const auto a = blockCircuit(routed, topo, pulse);
        const auto b = blockCircuit(routed, topo, gate);
        printRow({spec.name,
                  fmtLong(static_cast<long>(a.rounds.size())) + "/" +
                      fmtLong(a.blockCount()),
                  fmtLong(static_cast<long>(b.rounds.size())) + "/" +
                      fmtLong(b.blockCount())},
                 widths);
    }
    std::printf("\nOn these benchmarks the two scorings pick the same\n"
                "families (greedy growth already captures whole entangling\n"
                "runs), so the pulse-aware choice is vindicated mainly by\n"
                "the noise model below: errors scale with pulses, not\n"
                "gates, which is exactly what composition optimizes.\n\n");

    std::printf("Noise-model ablation: per-operation vs per-pulse noise on "
                "multiplier-5\n");
    const auto &spec = benchmarkByName("multiplier-5");
    const auto opti = compileCached(spec, Technique::OptiMap);
    const auto gey = compileCached(spec, Technique::Geyser);
    const auto cfg = trajectoryConfig(5);
    for (const bool perPulse : {false, true}) {
        NoiseModel nm = NoiseModel::paperDefault();
        nm.perPulse = perPulse;
        const double to = evaluateTvd(opti, nm, cfg);
        const double tg = evaluateTvd(gey, nm, cfg);
        std::printf("  %-14s OptiMap TVD %.4f | Geyser TVD %.4f\n",
                    perPulse ? "per-pulse:" : "per-op:", to, tg);
    }
    std::printf("Per-pulse noise widens Geyser's advantage: CCZ costs 5\n"
                "pulses but replaces ~27 pulses of decomposed gates.\n");
    return 0;
}
