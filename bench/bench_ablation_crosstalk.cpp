/**
 * @file
 * Extension ablation: Rydberg crosstalk (zone dephasing during
 * multi-qubit gates) on top of the default gate noise. Geyser replaces
 * many CZ gates with few CCZs; each CCZ's zone is slightly larger
 * (9 vs 8 atoms) but the total number of Rydberg windows drops, so the
 * crosstalk exposure falls with it.
 */
#include <cstdio>

#include "common.hpp"

using namespace geyser;
using namespace geyser::bench;

int
main()
{
    std::printf("Ablation: Rydberg crosstalk on top of 0.1%% gate noise\n\n");
    const std::vector<int> widths{16, 10, 10};
    for (const char *name : {"adder-4", "multiplier-5"}) {
        const auto &spec = benchmarkByName(name);
        std::printf("%s:\n", name);
        printRow({"Crosstalk rate", "OptiMap", "Geyser"}, widths);
        printRule(widths);
        const auto opti = compileCached(spec, Technique::OptiMap);
        const auto gey = compileCached(spec, Technique::Geyser);
        const auto cfg = trajectoryConfig(7000);
        for (const double ct : {0.0, 0.001, 0.005}) {
            NoiseModel nm = NoiseModel::paperDefault();
            nm.crosstalkPhase = ct;
            char label[32];
            std::snprintf(label, sizeof(label), "%.2f%%", ct * 100.0);
            printRow({label, fmtTvd(evaluateTvd(opti, nm, cfg)),
                      fmtTvd(evaluateTvd(gey, nm, cfg))},
                     widths);
        }
        std::printf("\n");
    }
    std::printf("Expected: crosstalk hurts both, but Geyser's reduced\n"
                "Rydberg-window count keeps its TVD advantage.\n");
    return 0;
}
