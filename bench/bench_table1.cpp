/**
 * @file
 * Reproduces paper Table 1: Baseline characteristics of the ten
 * benchmark circuits (qubits, U3/CZ gate counts, total and depth
 * pulses), printed next to the paper-reported values.
 *
 * Observability flags (see bench/common.hpp): --report <file> writes a
 * structured JSON run report (per-circuit stats, stage wall times,
 * counters, git SHA); --trace/--metrics dump the raw obs session.
 */
#include <cstdio>

#include "common.hpp"

using namespace geyser;
using namespace geyser::bench;

int
main(int argc, char **argv)
{
    ReportSession report(argc, argv, "bench_table1");
    std::printf("Table 1: benchmark Baseline characteristics "
                "(ours vs paper)\n\n");
    const std::vector<int> widths{14, 6, 11, 11, 13, 13, 9};
    printRow({"Benchmark", "Qubits", "U3 gates", "CZ gates", "Total pulses",
              "Depth pulses", "Wall ms"},
             widths);
    printRule(widths);
    for (const auto &spec : benchmarkSuite()) {
        const auto result = compileCached(spec, Technique::Baseline);
        report.add(spec.name, result);
        const auto &s = result.stats;
        const auto &p = spec.paper;
        char wall[32];
        std::snprintf(wall, sizeof(wall), "%.1f", result.totalMs);
        printRow({spec.name, std::to_string(spec.numQubits),
                  fmtLong(s.u3Count) + "/" + fmtLong(p.u3Gates),
                  fmtLong(s.czCount) + "/" + fmtLong(p.czGates),
                  fmtLong(s.totalPulses) + "/" + fmtLong(p.totalPulses),
                  fmtLong(s.depthPulses) + "/" + fmtLong(p.depthPulses),
                  wall},
                 widths);
    }
    std::printf("\nEach cell: measured/paper. Absolute counts differ with\n"
                "the transpiler implementation; orders of magnitude and\n"
                "relative circuit sizes should match. Wall ms is the\n"
                "compile time (0.0 when replayed from the result cache).\n");
    return 0;
}
