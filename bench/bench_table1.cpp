/**
 * @file
 * Reproduces paper Table 1: Baseline characteristics of the ten
 * benchmark circuits (qubits, U3/CZ gate counts, total and depth
 * pulses), printed next to the paper-reported values.
 */
#include <cstdio>

#include "common.hpp"

using namespace geyser;
using namespace geyser::bench;

int
main()
{
    std::printf("Table 1: benchmark Baseline characteristics "
                "(ours vs paper)\n\n");
    const std::vector<int> widths{14, 6, 11, 11, 13, 13};
    printRow({"Benchmark", "Qubits", "U3 gates", "CZ gates", "Total pulses",
              "Depth pulses"},
             widths);
    printRule(widths);
    for (const auto &spec : benchmarkSuite()) {
        const auto result = compileCached(spec, Technique::Baseline);
        const auto &s = result.stats;
        const auto &p = spec.paper;
        printRow({spec.name, std::to_string(spec.numQubits),
                  fmtLong(s.u3Count) + "/" + fmtLong(p.u3Gates),
                  fmtLong(s.czCount) + "/" + fmtLong(p.czGates),
                  fmtLong(s.totalPulses) + "/" + fmtLong(p.totalPulses),
                  fmtLong(s.depthPulses) + "/" + fmtLong(p.depthPulses)},
                 widths);
    }
    std::printf("\nEach cell: measured/paper. Absolute counts differ with\n"
                "the transpiler implementation; orders of magnitude and\n"
                "relative circuit sizes should match.\n");
    return 0;
}
