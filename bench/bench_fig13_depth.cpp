/**
 * @file
 * Reproduces paper Fig 13: depth pulses (pulses on the critical path,
 * restriction-zone aware) under Baseline, OptiMap, and Geyser.
 */
#include <cstdio>

#include "common.hpp"

using namespace geyser;
using namespace geyser::bench;

int
main()
{
    std::printf("Fig 13: depth pulses (critical path) by technique\n\n");
    const std::vector<int> widths{14, 10, 10, 10, 12};
    printRow({"Benchmark", "Baseline", "OptiMap", "Geyser", "Gey vs Base"},
             widths);
    printRule(widths);
    for (const auto &spec : benchmarkSuite()) {
        const long base =
            compileCached(spec, Technique::Baseline).stats.depthPulses;
        const long opti =
            compileCached(spec, Technique::OptiMap).stats.depthPulses;
        const long gey =
            compileCached(spec, Technique::Geyser).stats.depthPulses;
        printRow({spec.name, fmtLong(base), fmtLong(opti), fmtLong(gey),
                  "-" + fmtPct(1.0 - static_cast<double>(gey) / base)},
                 widths);
    }
    std::printf("\nExpected shape (paper): same ordering as Fig 12. Depth\n"
                "reductions are smaller than total-pulse reductions on wide\n"
                "circuits (parallel blocks already overlap on the critical\n"
                "path) and can exceed them on deep serial circuits, where\n"
                "composed CCZs shorten the critical path directly.\n");
    return 0;
}
