/**
 * @file
 * Reproduces the paper's Sec 6 circuit-fidelity sanity check: the TVD
 * between the ideal output of the Geyser-compiled circuit and the ideal
 * output of the original program is practically negligible (< 1e-2).
 * The comparison itself runs through the shared differential-verification
 * layer (src/verify), the same code path tests and `geyserc --verify`
 * use.
 *
 * Observability flags (see bench/common.hpp): --report <file> writes a
 * structured JSON run report; --trace/--metrics dump the obs session.
 */
#include <cstdio>

#include "common.hpp"
#include "verify/equivalence.hpp"

using namespace geyser;
using namespace geyser::bench;

int
main(int argc, char **argv)
{
    ReportSession report(argc, argv, "bench_fidelity_check");
    std::printf("Sec 6: ideal-output TVD of Geyser circuits vs original\n\n");
    const std::vector<int> widths{14, 12, 12, 12, 12, 9};
    printRow({"Benchmark", "Verdict", "Ideal TVD", "Max block HSD",
              "Composed", "Wall ms"},
             widths);
    printRule(widths);
    bool allOk = true;
    verify::EquivalenceOptions eo;
    eo.tvdTolerance = 1e-2;  // Paper Sec 6 bound.
    for (const auto &spec : tvdSuite()) {
        const auto gey = compileCached(spec, Technique::Geyser);
        report.add(spec.name, gey);
        const auto verdict = verify::checkCompileResult(gey, eo);
        allOk = allOk && verdict.equivalent;
        char hsd[32];
        std::snprintf(hsd, sizeof(hsd), "%.1e", gey.maxBlockHsd);
        char wall[32];
        std::snprintf(wall, sizeof(wall), "%.1f", gey.totalMs);
        printRow({spec.name, verdict.equivalent ? "PASS" : "FAIL",
                  fmtTvd(verdict.tvd), hsd,
                  fmtLong(gey.composedBlockCount) + "/" +
                      fmtLong(gey.blockCount),
                  wall},
                 widths);
    }
    std::printf("\n%s (paper claims < 1e-2 across all algorithms)\n",
                allOk ? "PASS: all ideal TVDs below 1e-2"
                      : "FAIL: some ideal TVD exceeded 1e-2");
    return allOk ? 0 : 1;
}
