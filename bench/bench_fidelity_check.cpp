/**
 * @file
 * Reproduces the paper's Sec 6 circuit-fidelity sanity check: the TVD
 * between the ideal output of the Geyser-compiled circuit and the ideal
 * output of the original program is practically negligible (< 1e-2).
 */
#include <cstdio>

#include "common.hpp"

using namespace geyser;
using namespace geyser::bench;

int
main()
{
    std::printf("Sec 6: ideal-output TVD of Geyser circuits vs original\n\n");
    const std::vector<int> widths{14, 12, 12, 12};
    printRow({"Benchmark", "Ideal TVD", "Max block HSD", "Composed"},
             widths);
    printRule(widths);
    bool allOk = true;
    for (const auto &spec : tvdSuite()) {
        const auto gey = compileCached(spec, Technique::Geyser);
        const double tvd = idealTvd(gey);
        allOk = allOk && tvd < 1e-2;
        char hsd[32];
        std::snprintf(hsd, sizeof(hsd), "%.1e", gey.maxBlockHsd);
        printRow({spec.name, fmtTvd(tvd), hsd,
                  fmtLong(gey.composedBlockCount) + "/" +
                      fmtLong(gey.blockCount)},
                 widths);
    }
    std::printf("\n%s (paper claims < 1e-2 across all algorithms)\n",
                allOk ? "PASS: all ideal TVDs below 1e-2"
                      : "FAIL: some ideal TVD exceeded 1e-2");
    return allOk ? 0 : 1;
}
