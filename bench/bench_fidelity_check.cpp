/**
 * @file
 * Reproduces the paper's Sec 6 circuit-fidelity sanity check: the TVD
 * between the ideal output of the Geyser-compiled circuit and the ideal
 * output of the original program is practically negligible (< 1e-2).
 * The comparison itself runs through the shared differential-verification
 * layer (src/verify), the same code path tests and `geyserc --verify`
 * use.
 */
#include <cstdio>

#include "common.hpp"
#include "verify/equivalence.hpp"

using namespace geyser;
using namespace geyser::bench;

int
main()
{
    std::printf("Sec 6: ideal-output TVD of Geyser circuits vs original\n\n");
    const std::vector<int> widths{14, 12, 12, 12, 12};
    printRow({"Benchmark", "Verdict", "Ideal TVD", "Max block HSD",
              "Composed"},
             widths);
    printRule(widths);
    bool allOk = true;
    verify::EquivalenceOptions eo;
    eo.tvdTolerance = 1e-2;  // Paper Sec 6 bound.
    for (const auto &spec : tvdSuite()) {
        const auto gey = compileCached(spec, Technique::Geyser);
        const auto report = verify::checkCompileResult(gey, eo);
        allOk = allOk && report.equivalent;
        char hsd[32];
        std::snprintf(hsd, sizeof(hsd), "%.1e", gey.maxBlockHsd);
        printRow({spec.name, report.equivalent ? "PASS" : "FAIL",
                  fmtTvd(report.tvd), hsd,
                  fmtLong(gey.composedBlockCount) + "/" +
                      fmtLong(gey.blockCount)},
                 widths);
    }
    std::printf("\n%s (paper claims < 1e-2 across all algorithms)\n",
                allOk ? "PASS: all ideal TVDs below 1e-2"
                      : "FAIL: some ideal TVD exceeded 1e-2");
    return allOk ? 0 : 1;
}
