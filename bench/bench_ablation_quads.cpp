/**
 * @file
 * Ablation of the paper's Sec 3.2 composability argument: three-qubit
 * blocks (64 unitary components) are claimed to be ~4x easier to
 * compose than four-qubit blocks (256 components). We measure it:
 * random depth-D targets generated from the respective ansatz families
 * are re-composed by rotosolve under a fixed evaluation budget; the
 * success rate and the evaluations-to-threshold quantify the gap.
 */
#include <cstdio>

#include "common.hpp"
#include "common/rng.hpp"
#include "compose/composer.hpp"

using namespace geyser;
using namespace geyser::bench;

namespace {

struct Outcome
{
    int solved = 0;
    long evals = 0;
};

Outcome
recompose(int num_qubits, int depth, int instances, uint64_t seed)
{
    Outcome out;
    Rng rng(seed);
    const Ansatz ansatz(num_qubits, depth);
    for (int i = 0; i < instances; ++i) {
        const auto truth =
            rng.uniformVector(ansatz.numAngles(), 0.0, 2.0 * kPi);
        const Matrix target = ansatz.unitary(truth);
        bool solved = false;
        long evals = 0;
        for (int r = 0; r < 12 && !solved; ++r) {
            auto angles =
                rng.uniformVector(ansatz.numAngles(), 0.0, 2.0 * kPi);
            const double h =
                rotosolve(ansatz, target, angles, 200, 1e-5, evals);
            solved = h <= 1e-5;
            if (evals > 400000)
                break;
        }
        if (solved)
            ++out.solved;
        out.evals += evals;
    }
    return out;
}

}  // namespace

int
main()
{
    std::printf("Ablation (Sec 3.2): 3-qubit vs 4-qubit block "
                "composability\n\n");
    const std::vector<int> widths{8, 8, 12, 16};
    printRow({"Qubits", "Layers", "Solved", "Evals/instance"}, widths);
    printRule(widths);
    constexpr int kInstances = 6;
    for (const int nq : {3, 4}) {
        const Outcome o = recompose(nq, 1, kInstances, 43);
        printRow({std::to_string(nq), "1",
                  fmtLong(o.solved) + "/" + fmtLong(kInstances),
                  fmtLong(o.evals / kInstances)},
                 widths);
    }

    // Local refinement scaling: evaluations to re-converge from a
    // slightly perturbed known solution (isolates the dimensional cost
    // of the 64- vs 256-component unitary).
    std::printf("\nLocal refinement (perturbed-truth start):\n");
    printRow({"Qubits", "Layers", "Solved", "Evals/instance"}, widths);
    printRule(widths);
    Rng rng(7);
    for (const int depth : {1, 2, 3}) {
        for (const int nq : {3, 4}) {
            const Ansatz ansatz(nq, depth);
            long evals = 0;
            int solved = 0;
            for (int i = 0; i < kInstances; ++i) {
                const auto truth =
                    rng.uniformVector(ansatz.numAngles(), 0.0, 2.0 * kPi);
                const Matrix target = ansatz.unitary(truth);
                auto angles = truth;
                for (auto &x : angles)
                    x += 0.15 * rng.normal();
                if (rotosolve(ansatz, target, angles, 400, 1e-5, evals) <=
                    1e-5)
                    ++solved;
            }
            printRow({std::to_string(nq), std::to_string(depth),
                      fmtLong(solved) + "/" + fmtLong(kInstances),
                      fmtLong(evals / kInstances)},
                     widths);
        }
    }
    std::printf("\nMeasured: the 4-qubit family needs ~3-5x the\n"
                "evaluations of the 3-qubit family at every depth (256 vs\n"
                "64 unitary components), quantifying the paper's Sec 3.2\n"
                "argument for the triangular lattice and 3-qubit blocks\n"
                "over the square lattice's CCCZ.\n");
    return 0;
}
