/**
 * @file
 * Extension ablation: the paper's composition layers always entangle
 * with CCZ (the categorical parameter picks among pulse-equivalent CCZ
 * orientations). This repo also supports an Extended mode where each
 * layer may instead choose a cheaper CZ on one of the three pairs.
 * Compares the composed pulse counts of both modes.
 */
#include <cstdio>

#include "common.hpp"

using namespace geyser;
using namespace geyser::bench;

int
main()
{
    std::printf("Ablation: composition entangler mode (paper CCZ-only vs "
                "extended CZ-or-CCZ)\n\n");
    const std::vector<int> widths{14, 14, 14, 12};
    printRow({"Benchmark", "CCZ-only", "Extended", "Extended CCZs"},
             widths);
    printRule(widths);
    for (const auto &spec : benchmarkSuite()) {
        if (spec.numQubits > 5)
            continue;
        const Circuit logical = spec.make();

        PipelineOptions paper;
        paper.compose.entanglerMode = EntanglerMode::PaperCcz;
        PipelineOptions extended;
        extended.compose.entanglerMode = EntanglerMode::Extended;

        const auto a = compileGeyser(logical, paper);
        const auto b = compileGeyser(logical, extended);
        printRow({spec.name, fmtLong(a.stats.totalPulses),
                  fmtLong(b.stats.totalPulses), fmtLong(b.stats.cczCount)},
                 widths);
    }
    std::printf("\nExtended mode can only match or beat CCZ-only pulses\n"
                "(CZ layers cost 3 pulses vs 5) at the price of a larger\n"
                "per-layer search space.\n");
    return 0;
}
