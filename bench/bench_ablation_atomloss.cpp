/**
 * @file
 * Extension ablation for the paper's Sec 6 atom-loss discussion:
 * sweeps a per-shot atom-loss probability on top of the default gate
 * noise and checks that Geyser's fidelity advantage survives realistic
 * loss rates.
 */
#include <cstdio>

#include "common.hpp"

using namespace geyser;
using namespace geyser::bench;

int
main()
{
    std::printf("Ablation (Sec 6): atom loss on top of 0.1%% gate noise\n\n");
    const std::vector<int> widths{14, 10, 10, 10};
    printRow({"Loss rate", "Baseline", "OptiMap", "Geyser"}, widths);

    for (const char *name : {"adder-4", "multiplier-5"}) {
        const auto &spec = benchmarkByName(name);
        std::printf("\n%s:\n", name);
        printRule(widths);
        const auto base = compileCached(spec, Technique::Baseline);
        const auto opti = compileCached(spec, Technique::OptiMap);
        const auto gey = compileCached(spec, Technique::Geyser);
        const auto cfg = trajectoryConfig(6000);
        for (const double loss : {0.0, 0.002, 0.01, 0.02}) {
            NoiseModel nm = NoiseModel::paperDefault();
            nm.atomLoss = loss;
            char label[32];
            std::snprintf(label, sizeof(label), "%.1f%%", loss * 100.0);
            printRow({label, fmtTvd(evaluateTvd(base, nm, cfg)),
                      fmtTvd(evaluateTvd(opti, nm, cfg)),
                      fmtTvd(evaluateTvd(gey, nm, cfg))},
                     widths);
        }
    }
    std::printf("\nExpected: TVD degrades with the loss rate for every\n"
                "technique, but the ordering Geyser <= OptiMap <= Baseline\n"
                "is preserved at realistic (sub-percent) loss rates —\n"
                "matching the paper's claim that Geyser's effectiveness is\n"
                "not sensitive to atom loss.\n");
    return 0;
}
