/**
 * @file
 * Reproduces paper Fig 17: the Fig 15 comparison at error rates 0.05%
 * and 0.5% (robustness of the technique ordering to the noise level).
 */
#include <cstdio>

#include "common.hpp"

using namespace geyser;
using namespace geyser::bench;

int
main(int argc, char **argv)
{
    // --channel <name> sweeps the chosen channel's rate instead of the
    // paper's coupled bit/phase-flip rate.
    const ChannelFlag channel = parseChannelFlag(argc, argv);
    for (const double rate : {0.0005, 0.005}) {
        std::printf("Fig 17%s%s: TVD to ideal output, noise = %.2f%%\n\n",
                    channel.set ? " ablation " : "",
                    channel.set ? noiseChannelName(channel.id) : "",
                    rate * 100.0);
        const std::vector<int> widths{14, 10, 10, 10};
        printRow({"Benchmark", "Baseline", "OptiMap", "Geyser"}, widths);
        printRule(widths);
        const NoiseModel nm =
            channel.set ? channel.modelAt(rate) : NoiseModel::withRate(rate);
        for (const auto &spec : tvdSuite()) {
            const auto cfg = trajectoryConfig(
                3000 + spec.numQubits + static_cast<uint64_t>(rate * 1e6));
            const double base = evaluateTvd(
                compileCached(spec, Technique::Baseline), nm, cfg);
            const double opti = evaluateTvd(
                compileCached(spec, Technique::OptiMap), nm, cfg);
            const double gey = evaluateTvd(
                compileCached(spec, Technique::Geyser), nm, cfg);
            printRow({spec.name, fmtTvd(base), fmtTvd(opti), fmtTvd(gey)},
                     widths);
        }
        std::printf("\n");
    }
    std::printf("Expected shape (paper): the ordering Geyser <= OptiMap <=\n"
                "Baseline holds at both rates; absolute TVDs scale with\n"
                "the error rate.\n");
    return 0;
}
