/**
 * @file
 * Reproduces paper Fig 15: TVD to the ideal output under the default
 * 0.1% noise model for Baseline, OptiMap, and Geyser. Heavy (>10 qubit)
 * benchmarks run only with GEYSER_BENCH_HEAVY=1.
 */
#include <cstdio>

#include "common.hpp"

using namespace geyser;
using namespace geyser::bench;

int
main(int argc, char **argv)
{
    // --channel <name>[=<rate>] swaps the paper model for a
    // single-channel ablation (see bench_noise_channels for the full
    // per-channel sweep).
    const ChannelFlag channel = parseChannelFlag(argc, argv);
    if (channel.set)
        std::printf("Fig 15 (ablation: only '%s'): TVD to ideal output "
                    "(%d trajectories)\n\n",
                    noiseChannelName(channel.id),
                    trajectoryConfig(0).trajectories);
    else
        std::printf("Fig 15: TVD to ideal output, noise = 0.1%% "
                    "(%d trajectories)\n\n",
                    trajectoryConfig(0).trajectories);
    const std::vector<int> widths{14, 10, 10, 10, 14};
    printRow({"Benchmark", "Baseline", "OptiMap", "Geyser", "Gey vs Base"},
             widths);
    printRule(widths);
    const NoiseModel nm =
        channel.set ? channel.model() : NoiseModel::paperDefault();
    for (const auto &spec : tvdSuite()) {
        const auto cfg = trajectoryConfig(1000 + spec.numQubits);
        const double base =
            evaluateTvd(compileCached(spec, Technique::Baseline), nm, cfg);
        const double opti =
            evaluateTvd(compileCached(spec, Technique::OptiMap), nm, cfg);
        const double gey =
            evaluateTvd(compileCached(spec, Technique::Geyser), nm, cfg);
        printRow({spec.name, fmtTvd(base), fmtTvd(opti), fmtTvd(gey),
                  base > 0 ? "-" + fmtPct((base - gey) / base) : "n/a"},
                 widths);
    }
    std::printf("\nExpected shape (paper): TVD(Geyser) <= TVD(OptiMap) <=\n"
                "TVD(Baseline) on every row; improvements of 25-60%% where\n"
                "composition succeeds, parity on Advantage.\n");
    return 0;
}
