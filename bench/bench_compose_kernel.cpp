/**
 * @file
 * Microbenchmark of the rotosolve coordinate-probe kernel: the dense
 * path (full Ansatz::overlapTrace per probe, as the optimizer ran
 * before the incremental kernel) versus the environment-contraction
 * AnsatzEvaluator (O(1) per probe after per-column folds). Both sides
 * execute the exact probe pattern of one rotosolve sweep — two probes
 * (angle = 0, pi) per coordinate plus the sweep's environment
 * maintenance — so evaluations/sec are directly comparable.
 *
 * The binary first cross-checks the incremental kernel against the
 * dense oracle (verify/kernel_check, 1e-12) and exits non-zero if the
 * check fails or if the incremental kernel's throughput drops below
 * the dense kernel's (the CI sanity floor — a regression guard, not a
 * flaky absolute threshold).
 *
 * Flags: --report/--trace/--metrics as every bench binary.
 * Env: GEYSER_KERNEL_BENCH_SECONDS  per-configuration measure time
 *      (default 0.2).
 */
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.hpp"
#include "common/rng.hpp"
#include "compose/composer.hpp"
#include "compose/evaluator.hpp"
#include "obs/obs.hpp"
#include "verify/kernel_check.hpp"

namespace {

using namespace geyser;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

double
measureSeconds()
{
    if (const char *env = std::getenv("GEYSER_KERNEL_BENCH_SECONDS"))
        return std::max(0.01, std::atof(env));
    return 0.2;
}

struct KernelRate
{
    long probes = 0;
    double seconds = 0.0;
    double perSec() const { return probes / std::max(seconds, 1e-12); }
};

/** Dense baseline: one full overlapTrace per coordinate probe. */
KernelRate
denseRate(const Ansatz &ansatz, const Matrix &target,
          std::vector<double> angles, double budget_s)
{
    KernelRate rate;
    const auto t0 = Clock::now();
    double sink = 0.0;
    while ((rate.seconds = secondsSince(t0)) < budget_s) {
        for (int i = 0; i < ansatz.numAngles(); ++i) {
            const double saved = angles[static_cast<size_t>(i)];
            angles[static_cast<size_t>(i)] = 0.0;
            sink += std::abs(ansatz.overlapTrace(target, angles));
            angles[static_cast<size_t>(i)] = kPi;
            sink += std::abs(ansatz.overlapTrace(target, angles));
            angles[static_cast<size_t>(i)] = saved;
            rate.probes += 2;
        }
    }
    rate.seconds = secondsSince(t0);
    if (sink < 0.0)  // Defeat dead-code elimination.
        std::printf("%f", sink);
    return rate;
}

/** Incremental kernel: the same probe pattern through the evaluator. */
KernelRate
incrementalRate(const Ansatz &ansatz, const Matrix &target,
                const std::vector<double> &angles, double budget_s)
{
    AnsatzEvaluator evaluator(ansatz, target);
    evaluator.setAngles(angles);
    KernelRate rate;
    const auto t0 = Clock::now();
    double sink = 0.0;
    while ((rate.seconds = secondsSince(t0)) < budget_s) {
        evaluator.beginSweep();
        for (int col = 0; col < evaluator.columns(); ++col) {
            evaluator.beginColumn(col);
            for (int q = 0; q < evaluator.numQubits(); ++q) {
                evaluator.beginQubit(q);
                for (int role = 0; role < 3; ++role) {
                    sink += std::abs(evaluator.probe(role, 0.0));
                    sink += std::abs(evaluator.probe(role, kPi));
                    // Commit at the current value: the accept-path cost
                    // (U3 cache rebuild) without drifting the state.
                    evaluator.commitAngle(
                        role, evaluator.angle(col, q, role));
                    rate.probes += 2;
                }
            }
        }
    }
    rate.seconds = secondsSince(t0);
    if (sink < 0.0)
        std::printf("%f", sink);
    return rate;
}

}  // namespace

int
main(int argc, char **argv)
{
    bench::ReportSession session(argc, argv, "bench_compose_kernel");

    // Correctness gate before any timing: incremental must match dense.
    verify::KernelCheckOptions checkOptions;
    checkOptions.trials = 25;
    const auto check = verify::checkComposeKernel(checkOptions);
    std::printf("kernel cross-check: %s (%s)\n",
                check.pass ? "PASS" : "FAIL", check.detail.c_str());
    session.note("crossCheck", check.detail);
    if (!check.pass)
        return 1;

    const double budget = measureSeconds();
    const std::vector<int> layerSweep{1, 2, 4, 6};
    const std::vector<int> widths{8, 16, 16, 9};
    bench::printRow({"layers", "dense evals/s", "incr evals/s", "speedup"},
                    widths);
    bench::printRule(widths);

    Rng rng(123);
    bool floorOk = true;
    double speedupAtDeepest = 0.0;
    for (const int layers : layerSweep) {
        // 3-qubit (8x8) blocks — the composer's dominant case — with
        // the paper's CCZ entanglers and a random in-class target.
        const Ansatz ansatz(3, layers);
        const Matrix target = ansatz.unitary(
            rng.uniformVector(ansatz.numAngles(), 0.0, 2.0 * kPi));
        const auto angles =
            rng.uniformVector(ansatz.numAngles(), 0.0, 2.0 * kPi);

        const KernelRate dense = denseRate(ansatz, target, angles, budget);
        const KernelRate incr =
            incrementalRate(ansatz, target, angles, budget);
        const double speedup = incr.perSec() / dense.perSec();
        speedupAtDeepest = speedup;
        if (speedup < 1.0)
            floorOk = false;

        char denseBuf[32], incrBuf[32], speedBuf[32];
        std::snprintf(denseBuf, sizeof(denseBuf), "%.3e", dense.perSec());
        std::snprintf(incrBuf, sizeof(incrBuf), "%.3e", incr.perSec());
        std::snprintf(speedBuf, sizeof(speedBuf), "%.1fx", speedup);
        bench::printRow({std::to_string(layers), denseBuf, incrBuf,
                         speedBuf},
                        widths);

        obs::Json row = obs::Json::object();
        row.set("name", "kernel-layers-" + std::to_string(layers));
        row.set("layers", layers);
        row.set("denseEvalsPerSec", dense.perSec());
        row.set("incrementalEvalsPerSec", incr.perSec());
        row.set("speedup", speedup);
        row.set("denseProbes", dense.probes);
        row.set("incrementalProbes", incr.probes);
        session.addRow(std::move(row));
    }
    bench::printRule(widths);
    std::printf("sanity floor (incremental >= dense): %s\n",
                floorOk ? "ok" : "REGRESSED");
    std::printf("deepest-layer speedup: %.1fx\n", speedupAtDeepest);
    return floorOk ? 0 : 1;
}
