/**
 * @file
 * Microbenchmark of the rotosolve coordinate-probe kernel across the
 * compiled-in SIMD compute backends (src/linalg/kernels).
 *
 * Three layers of comparison:
 *
 *   dense        full Ansatz::overlapTrace per probe — the oracle path
 *                the optimizer ran before the incremental kernel. Pinned
 *                to the scalar reference backend, so it never moves.
 *   incremental  the environment-contraction AnsatzEvaluator (O(1) per
 *                probe after per-column folds), measured once per
 *                usable backend (scalar / avx2 / avx512) via
 *                kernels::ScopedBackend.
 *
 * Every backend is first cross-checked against the dense oracle
 * (verify/kernel_check, 1e-12) and the binary exits non-zero on any
 * deviation. Rates are the median of GEYSER_KERNEL_BENCH_REPS timed
 * repetitions after one warm-up repetition (not a single-run mean), so
 * the JSON baseline is stable enough to trend across CI runs.
 *
 * Exit is non-zero when:
 *   - any backend fails the 1e-12 oracle cross-check, or
 *   - the dispatched backend's incremental rate drops below the dense
 *     path (the CI sanity floor — a regression guard), or
 *   - GEYSER_KERNEL_SPEEDUP_FLOOR is set and the dispatched backend's
 *     rate is below floor x the scalar backend's rate (skipped when
 *     the host dispatches to scalar — nothing to compare).
 *
 * Flags: --json [FILE]  write the machine-readable per-ISA baseline
 *                       (default BENCH_compose_kernel.json)
 *        --report/--trace/--metrics as every bench binary.
 * Env: GEYSER_KERNEL_BENCH_SECONDS  per-repetition measure time
 *        (default 0.2)
 *      GEYSER_KERNEL_BENCH_REPS     timed repetitions per backend
 *        (default 5, median reported)
 *      GEYSER_KERNEL_SPEEDUP_FLOOR  required dispatched/scalar ratio
 *        (default unset = report only)
 */
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "compose/composer.hpp"
#include "compose/evaluator.hpp"
#include "linalg/kernels/backend.hpp"
#include "obs/obs.hpp"
#include "verify/kernel_check.hpp"

namespace {

using namespace geyser;
using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct KernelRate
{
    long probes = 0;
    double seconds = 0.0;
    double perSec() const { return probes / std::max(seconds, 1e-12); }
};

/** One benchmark shape: the composer's dominant 3-qubit (8x8) case and
 *  the 4-qubit (16x16) blocks the merge pass produces. */
struct Shape
{
    int qubits;
    int layers;
    Ansatz ansatz;
    Matrix target;
    std::vector<double> angles;
};

Shape
makeShape(Rng &rng, int qubits, int layers)
{
    std::vector<Entangler> entanglers;
    if (qubits == 4)
        entanglers.assign(static_cast<size_t>(layers), Entangler::Cccz);
    Ansatz ansatz(qubits, layers, entanglers);
    Matrix target = ansatz.unitary(
        rng.uniformVector(ansatz.numAngles(), 0.0, 2.0 * kPi));
    auto angles = rng.uniformVector(ansatz.numAngles(), 0.0, 2.0 * kPi);
    return {qubits, layers, std::move(ansatz), std::move(target),
            std::move(angles)};
}

/** Dense baseline: one full overlapTrace per coordinate probe. */
KernelRate
denseRate(const Shape &shape, double budget_s)
{
    std::vector<double> angles = shape.angles;
    KernelRate rate;
    const auto t0 = Clock::now();
    double sink = 0.0;
    while ((rate.seconds = secondsSince(t0)) < budget_s) {
        for (int i = 0; i < shape.ansatz.numAngles(); ++i) {
            const double saved = angles[static_cast<size_t>(i)];
            angles[static_cast<size_t>(i)] = 0.0;
            sink += std::abs(shape.ansatz.overlapTrace(shape.target, angles));
            angles[static_cast<size_t>(i)] = kPi;
            sink += std::abs(shape.ansatz.overlapTrace(shape.target, angles));
            angles[static_cast<size_t>(i)] = saved;
            rate.probes += 2;
        }
    }
    rate.seconds = secondsSince(t0);
    if (sink < 0.0)  // Defeat dead-code elimination.
        std::printf("%f", sink);
    return rate;
}

/**
 * Incremental kernel: rotosolve's exact probe pattern — the batched
 * (0, pi) probe pair per coordinate plus the sweep's environment
 * maintenance — through a pre-built evaluator.
 */
KernelRate
incrementalRate(AnsatzEvaluator &evaluator, double budget_s)
{
    KernelRate rate;
    const auto t0 = Clock::now();
    double sink = 0.0;
    while ((rate.seconds = secondsSince(t0)) < budget_s) {
        evaluator.beginSweep();
        for (int col = 0; col < evaluator.columns(); ++col) {
            evaluator.beginColumn(col);
            for (int q = 0; q < evaluator.numQubits(); ++q) {
                evaluator.beginQubit(q);
                for (int role = 0; role < 3; ++role) {
                    Complex p0, p1;
                    evaluator.probePair(role, 0.0, kPi, p0, p1);
                    sink += std::abs(p0) + std::abs(p1);
                    // Commit at the current value: the accept-path cost
                    // (U3 cache rebuild) without drifting the state.
                    evaluator.commitAngle(
                        role, evaluator.angle(col, q, role));
                    rate.probes += 2;
                }
            }
        }
    }
    rate.seconds = secondsSince(t0);
    if (sink < 0.0)
        std::printf("%f", sink);
    return rate;
}

/** Median probe rate over `reps` timed repetitions (after warm-up). */
double
medianRate(AnsatzEvaluator &evaluator, double budget_s, int reps,
           std::vector<double> *samples)
{
    incrementalRate(evaluator, budget_s * 0.5);  // Warm-up, untimed.
    std::vector<double> rates;
    for (int r = 0; r < reps; ++r)
        rates.push_back(incrementalRate(evaluator, budget_s).perSec());
    if (samples != nullptr)
        *samples = rates;
    std::sort(rates.begin(), rates.end());
    const size_t mid = rates.size() / 2;
    return rates.size() % 2 == 1 ? rates[mid]
                                 : 0.5 * (rates[mid - 1] + rates[mid]);
}

std::string
fmtRate(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3e", v);
    return buf;
}

std::string
fmtX(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", v);
    return buf;
}

}  // namespace

int
main(int argc, char **argv)
{
    bench::ReportSession session(argc, argv, "bench_compose_kernel");

    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") != 0)
            continue;
        jsonPath = "BENCH_compose_kernel.json";
        if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
            jsonPath = argv[i + 1];
    }

    const double budget =
        env::envDouble("GEYSER_KERNEL_BENCH_SECONDS", 0.2, 0.01, 600.0);
    const int reps = static_cast<int>(
        env::envInt("GEYSER_KERNEL_BENCH_REPS", 5, 1, 10'000));
    const double speedupFloor =
        env::envDouble("GEYSER_KERNEL_SPEEDUP_FLOOR", 0.0, 0.0, 1e6);

    // Correctness gates before any timing: every usable backend must
    // match the dense oracle (which is pinned to the scalar reference,
    // so this also covers scalar-vs-dense).
    const auto backends = kernels::availableBackends();
    for (const auto &info : backends) {
        if (info.backend == nullptr)
            continue;
        kernels::ScopedBackend scoped(info.name);
        verify::KernelCheckOptions checkOptions;
        checkOptions.trials = 12;
        const auto check = verify::checkComposeKernel(checkOptions);
        std::printf("kernel cross-check [%s]: %s (%s)\n", info.name.c_str(),
                    check.pass ? "PASS" : "FAIL", check.detail.c_str());
        session.note("crossCheck_" + info.name, check.detail);
        if (!check.pass)
            return 1;
    }

    Rng rng(123);
    std::vector<Shape> shapes;
    shapes.push_back(makeShape(rng, 3, 6));
    shapes.push_back(makeShape(rng, 4, 3));

    obs::Json jsonShapes = obs::Json::array();
    const std::string dispatched = kernels::activeName();
    bool denseFloorOk = true;
    double worstVsScalar = 0.0;     // Worst per-shape ratio.
    double logRatioSum = 0.0;       // For the geometric mean.
    int ratioCount = 0;

    const std::vector<int> widths{12, 5, 15, 11, 10};
    for (const auto &shape : shapes) {
        std::printf("shape: %d qubits (dim %d), %d layers\n", shape.qubits,
                    1 << shape.qubits, shape.layers);
        bench::printRow(
            {"backend", "dim", "evals/s (med)", "vs scalar", "vs dense"},
            widths);
        bench::printRule(widths);

        const KernelRate dense = denseRate(shape, budget);
        bench::printRow({"dense(ref)", std::to_string(1 << shape.qubits),
                         fmtRate(dense.perSec()), "-", "1.00x"},
                        widths);

        // Measure every backend first (scalar is listed last, but the
        // ratio columns need its rate), then render.
        struct Measured
        {
            std::string name;
            double rate = 0.0;
            std::vector<double> samples;
        };
        std::vector<Measured> measured;
        double scalarRate = 0.0, dispatchedRate = 0.0;
        for (const auto &info : backends) {
            if (info.backend == nullptr)
                continue;
            kernels::ScopedBackend scoped(info.name);
            // Evaluators bind their backend at construction; build it
            // inside the override so it measures this ISA.
            AnsatzEvaluator evaluator(shape.ansatz, shape.target);
            evaluator.setAngles(shape.angles);
            Measured m;
            m.name = info.name;
            m.rate = medianRate(evaluator, budget, reps, &m.samples);
            if (m.name == "scalar")
                scalarRate = m.rate;
            if (m.name == dispatched)
                dispatchedRate = m.rate;
            measured.push_back(std::move(m));
        }

        obs::Json jsonBackends = obs::Json::array();
        for (const auto &m : measured) {
            const double vsScalar =
                scalarRate > 0.0 ? m.rate / scalarRate : 0.0;
            bench::printRow({m.name, std::to_string(1 << shape.qubits),
                             fmtRate(m.rate), fmtX(vsScalar),
                             fmtX(m.rate / dense.perSec())},
                            widths);

            obs::Json row = obs::Json::object();
            row.set("name", m.name);
            row.set("evalsPerSec", m.rate);
            row.set("speedupVsScalar", vsScalar);
            row.set("speedupVsDense", m.rate / dense.perSec());
            obs::Json repRates = obs::Json::array();
            for (const double s : m.samples)
                repRates.push(s);
            row.set("repRates", std::move(repRates));
            jsonBackends.push(std::move(row));

            obs::Json sessionRow = obs::Json::object();
            sessionRow.set("name", "kernel-n" + std::to_string(shape.qubits) +
                                       "-" + m.name);
            sessionRow.set("qubits", shape.qubits);
            sessionRow.set("layers", shape.layers);
            sessionRow.set("backend", m.name);
            sessionRow.set("evalsPerSec", m.rate);
            sessionRow.set("denseEvalsPerSec", dense.perSec());
            sessionRow.set("speedupVsScalar", vsScalar);
            session.addRow(std::move(sessionRow));
        }
        bench::printRule(widths);

        if (dispatchedRate < dense.perSec())
            denseFloorOk = false;
        const double ratio =
            scalarRate > 0.0 ? dispatchedRate / scalarRate : 0.0;
        if (ratio > 0.0) {
            if (worstVsScalar == 0.0 || ratio < worstVsScalar)
                worstVsScalar = ratio;
            logRatioSum += std::log(ratio);
            ++ratioCount;
        }

        obs::Json jsonShape = obs::Json::object();
        jsonShape.set("qubits", shape.qubits);
        jsonShape.set("dim", 1 << shape.qubits);
        jsonShape.set("layers", shape.layers);
        jsonShape.set("denseEvalsPerSec", dense.perSec());
        jsonShape.set("backends", std::move(jsonBackends));
        jsonShapes.push(std::move(jsonShape));
    }

    // Headline ratio: geometric mean over shapes (the floor metric —
    // one shape's noise can't sink it); the worst shape is printed and
    // recorded alongside so per-dim regressions stay visible.
    const double dispatchedVsScalar =
        ratioCount > 0 ? std::exp(logRatioSum / ratioCount) : 0.0;
    std::printf("dispatched backend: %s (requested %s)\n",
                dispatched.c_str(), kernels::requestedName().c_str());
    std::printf("sanity floor (dispatched incremental >= dense): %s\n",
                denseFloorOk ? "ok" : "REGRESSED");
    std::printf("dispatched vs scalar: %.2fx geomean, %.2fx worst shape\n",
                dispatchedVsScalar, worstVsScalar);

    bool speedupOk = true;
    if (speedupFloor > 0.0 && dispatched != "scalar") {
        speedupOk = dispatchedVsScalar >= speedupFloor;
        std::printf("speedup floor (%.2fx geomean required): %s\n",
                    speedupFloor, speedupOk ? "ok" : "REGRESSED");
    }

    if (!jsonPath.empty()) {
        obs::Json doc = obs::Json::object();
        doc.set("tool", "bench_compose_kernel");
        doc.set("timestamp", obs::utcTimestamp());
        doc.set("gitSha", obs::gitSha());
        doc.set("dispatched", dispatched);
        doc.set("requested", kernels::requestedName());
        doc.set("repetitions", reps);
        doc.set("secondsPerRep", budget);
        doc.set("dispatchedVsScalar", dispatchedVsScalar);
        doc.set("dispatchedVsScalarWorst", worstVsScalar);
        doc.set("denseFloorPass", denseFloorOk);
        doc.set("speedupFloor", speedupFloor);
        doc.set("speedupFloorPass", speedupOk);
        doc.set("shapes", std::move(jsonShapes));
        std::ofstream out(jsonPath);
        if (!out) {
            std::fprintf(stderr, "cannot open %s\n", jsonPath.c_str());
            return 1;
        }
        out << doc.dump(2) << "\n";
        std::printf("wrote %s\n", jsonPath.c_str());
    }

    return denseFloorOk && speedupOk ? 0 : 1;
}
