#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <sys/stat.h>

#include "io/serialize.hpp"

namespace geyser {
namespace bench {

namespace {

std::string
cacheDir()
{
    const char *env = std::getenv("GEYSER_CACHE_DIR");
    return env ? env : "/tmp/geyser_bench_cache";
}

bool
cacheEnabled()
{
    const char *env = std::getenv("GEYSER_NO_CACHE");
    return !(env && std::string(env) == "1");
}

}  // namespace

CompileResult
compileCached(const BenchmarkSpec &spec, Technique technique)
{
    const Circuit logical = spec.make();
    const std::string dir = cacheDir();
    // kCacheVersion must be bumped whenever pipeline behaviour changes,
    // or stale circuits would be replayed.
    constexpr const char *kCacheVersion = "v3";
    const std::string path = dir + "/" + spec.name + "-" +
                             techniqueName(technique) + "-" + kCacheVersion +
                             ".txt";
    if (cacheEnabled()) {
        if (auto cached = loadCompileResult(path, logical))
            return *cached;
    }
    const CompileResult result = compile(technique, logical);
    if (cacheEnabled()) {
        ::mkdir(dir.c_str(), 0755);
        try {
            saveCompileResult(path, result);
        } catch (const std::exception &) {
            // Cache writes are best-effort.
        }
    }
    return result;
}

TrajectoryConfig
trajectoryConfig(uint64_t seed)
{
    TrajectoryConfig cfg;
    cfg.seed = seed;
    cfg.trajectories = 200;
    if (const char *env = std::getenv("GEYSER_TRAJECTORIES"))
        cfg.trajectories = std::max(1, std::atoi(env));
    return cfg;
}

bool
heavyEnabled()
{
    const char *env = std::getenv("GEYSER_BENCH_HEAVY");
    return env && std::string(env) == "1";
}

std::vector<BenchmarkSpec>
tvdSuite()
{
    std::vector<BenchmarkSpec> out;
    for (const auto &spec : benchmarkSuite())
        if (!spec.heavy || heavyEnabled())
            out.push_back(spec);
    return out;
}

void
printRow(const std::vector<std::string> &cells,
         const std::vector<int> &widths)
{
    for (size_t i = 0; i < cells.size(); ++i)
        std::printf("%-*s", widths[i] + 2, cells[i].c_str());
    std::printf("\n");
}

void
printRule(const std::vector<int> &widths)
{
    int total = 0;
    for (const int w : widths)
        total += w + 2;
    for (int i = 0; i < total; ++i)
        std::printf("-");
    std::printf("\n");
}

std::string
fmtLong(long value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%ld", value);
    return buf;
}

std::string
fmtPct(double fraction)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * fraction);
    return buf;
}

std::string
fmtTvd(double tvd)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", tvd);
    return buf;
}

}  // namespace bench
}  // namespace geyser
