#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "cache/result_cache.hpp"
#include "common/env.hpp"
#include "common/thread_pool.hpp"
#include "obs/obs.hpp"

namespace geyser {
namespace bench {

namespace {

bool
cacheEnabled()
{
    return cache::ResultCache::global().enabled();
}

}  // namespace

CompileResult
compileCached(const BenchmarkSpec &spec, Technique technique)
{
    // All caching concerns — content-addressed keys (so there is no
    // hand-bumped version string here anymore; see kPipelineVersion),
    // crash-safe framed writes, corruption quarantine, single-flight,
    // LRU size cap — live in src/cache now. The bench binaries share
    // the env-configured process-wide cache.
    const Circuit logical = spec.make();
    PipelineOptions options;
    options.cache = &cache::ResultCache::global();
    return compile(technique, logical, options);
}

TrajectoryConfig
trajectoryConfig(uint64_t seed)
{
    TrajectoryConfig cfg;
    cfg.seed = seed;
    cfg.trajectories = static_cast<int>(
        env::envInt("GEYSER_TRAJECTORIES", 200, 1, 10'000'000));
    return cfg;
}

bool
heavyEnabled()
{
    const char *env = std::getenv("GEYSER_BENCH_HEAVY");
    return env && std::string(env) == "1";
}

std::vector<BenchmarkSpec>
tvdSuite()
{
    std::vector<BenchmarkSpec> out;
    for (const auto &spec : benchmarkSuite())
        if (!spec.heavy || heavyEnabled())
            out.push_back(spec);
    return out;
}

double
defaultChannelRate(NoiseChannelId id)
{
    switch (id) {
      case NoiseChannelId::LegacyPauli:
        return 0.001;  // The paper's default rate.
      case NoiseChannelId::AmpDamping:
        return 0.001;
      case NoiseChannelId::IdleDephasing:
        return 0.0005;  // Per idle pulse.
      case NoiseChannelId::AtomLossTracking:
        return 0.0005;
      case NoiseChannelId::CorrelatedPauli:
        return 0.003;
      case NoiseChannelId::ReadoutError:
        return 0.01;
    }
    return 0.0;
}

NoiseModel
ChannelFlag::model() const
{
    return NoiseModel::singleChannel(
        id, rate < 0.0 ? defaultChannelRate(id) : rate);
}

NoiseModel
ChannelFlag::modelAt(double r) const
{
    return NoiseModel::singleChannel(id, r);
}

ChannelFlag
parseChannelFlag(int argc, char **argv)
{
    ChannelFlag flag;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--channel") != 0)
            continue;
        std::string arg = argv[i + 1];
        const size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            flag.rate = std::atof(arg.c_str() + eq + 1);
            arg.resize(eq);
        }
        flag.id = noiseChannelFromName(arg);
        flag.set = true;
    }
    return flag;
}

void
printRow(const std::vector<std::string> &cells,
         const std::vector<int> &widths)
{
    for (size_t i = 0; i < cells.size(); ++i)
        std::printf("%-*s", widths[i] + 2, cells[i].c_str());
    std::printf("\n");
}

void
printRule(const std::vector<int> &widths)
{
    int total = 0;
    for (const int w : widths)
        total += w + 2;
    for (int i = 0; i < total; ++i)
        std::printf("-");
    std::printf("\n");
}

std::string
fmtLong(long value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%ld", value);
    return buf;
}

std::string
fmtPct(double fraction)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * fraction);
    return buf;
}

std::string
fmtTvd(double tvd)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", tvd);
    return buf;
}

obs::Json
compileResultJson(const std::string &circuit, const CompileResult &result)
{
    obs::Json row = obs::Json::object();
    row.set("name", circuit);
    row.set("technique", techniqueName(result.technique));
    row.set("qubits", result.logical.numQubits());
    row.set("u3", result.stats.u3Count);
    row.set("cz", result.stats.czCount);
    row.set("ccz", result.stats.cczCount);
    row.set("totalPulses", result.stats.totalPulses);
    row.set("depthPulses", result.stats.depthPulses);
    row.set("swaps", result.swapsInserted);
    row.set("blocks", result.blockCount);
    row.set("composedBlocks", result.composedBlockCount);
    row.set("compositionEvaluations", result.compositionEvaluations);
    row.set("maxBlockHsd", result.maxBlockHsd);
    obs::Json times = obs::Json::object();
    times.set("transpile", result.transpileMs);
    times.set("blocking", result.blockingMs);
    times.set("compose", result.composeMs);
    times.set("total", result.totalMs);
    row.set("timesMs", std::move(times));
    return row;
}

ReportSession::ReportSession(int argc, char **argv, const std::string &tool)
    : report_(tool)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--report") == 0)
            reportPath_ = argv[i + 1];
        else if (std::strcmp(argv[i], "--trace") == 0)
            tracePath_ = argv[i + 1];
        else if (std::strcmp(argv[i], "--metrics") == 0)
            metricsPath_ = argv[i + 1];
    }
    active_ = !reportPath_.empty() || !tracePath_.empty() ||
              !metricsPath_.empty();
    if (!active_)
        return;
    obs::setEnabled(true);
    obs::setThreadName("main");
    report_.setConfig("trajectories", trajectoryConfig(0).trajectories);
    report_.setConfig("heavy", heavyEnabled());
    report_.setConfig("cacheEnabled", cacheEnabled());
    report_.setConfig("threads", globalPool().size());
}

ReportSession::~ReportSession()
{
    if (!active_)
        return;
    // Pool utilization over the whole session, for the report's gauges.
    const PoolStats pool = globalPool().snapshot();
    obs::gauge("pool.submitted").set(static_cast<double>(pool.submitted));
    obs::gauge("pool.completed").set(static_cast<double>(pool.completed));
    obs::gauge("pool.busy_ms")
        .set(static_cast<double>(pool.busyMicros) / 1000.0);
    try {
        if (!tracePath_.empty())
            obs::writeChromeTrace(tracePath_);
        if (!metricsPath_.empty())
            obs::writeMetricsJsonl(metricsPath_);
        if (!reportPath_.empty()) {
            report_.write(reportPath_);
            std::fprintf(stderr, "run report written to %s\n",
                         reportPath_.c_str());
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "report write failed: %s\n", e.what());
    }
    obs::setEnabled(false);
}

void
ReportSession::add(const std::string &circuit, const CompileResult &result)
{
    if (active_)
        report_.addCircuit(compileResultJson(circuit, result));
}

void
ReportSession::addRow(obs::Json row)
{
    if (active_)
        report_.addCircuit(std::move(row));
}

void
ReportSession::note(const std::string &key, const std::string &value)
{
    if (active_)
        report_.setConfig(key, value);
}

}  // namespace bench
}  // namespace geyser
